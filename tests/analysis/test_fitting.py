"""Tests for exponent fitting helpers."""

import numpy as np
import pytest

from repro.analysis.fitting import (
    fit_envelope_constant,
    fit_exponent_pairs,
    fit_power_law,
    geometric_sizes,
)


class TestFitPowerLaw:
    def test_exact_power(self):
        xs = np.array([1, 2, 4, 8, 16], dtype=float)
        ys = 3.0 * xs**0.5
        alpha, a = fit_power_law(xs, ys)
        assert alpha == pytest.approx(0.5)
        assert a == pytest.approx(3.0)

    def test_cube_root(self):
        xs = np.geomspace(10, 1e6, 8)
        alpha, _ = fit_power_law(xs, xs ** (1 / 3))
        assert alpha == pytest.approx(1 / 3, abs=1e-9)

    def test_noisy_fit(self):
        rng = np.random.default_rng(0)
        xs = np.geomspace(10, 1e5, 20)
        ys = xs**0.66 * np.exp(rng.normal(0, 0.05, 20))
        alpha, _ = fit_power_law(xs, ys)
        assert abs(alpha - 0.66) < 0.05

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([1], [1])


class TestPairs:
    def test_constant_exponent(self):
        xs = [1, 10, 100]
        ys = [2, 20, 200]
        assert fit_exponent_pairs(xs, ys) == pytest.approx([1.0, 1.0])


class TestGeometricSizes:
    def test_endpoints(self):
        s = geometric_sizes(10, 1000, 5)
        assert s[0] == 10 and s[-1] == 1000

    def test_strictly_increasing(self):
        s = geometric_sizes(1, 10**6, 12)
        assert all(b > a for a, b in zip(s, s[1:]))

    def test_single_point(self):
        assert geometric_sizes(5, 100, 1) == [100]

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_sizes(0, 10, 3)
        with pytest.raises(ValueError):
            geometric_sizes(10, 5, 3)


class TestFitPowerLawGuards:
    def test_nan_rejected(self):
        xs = np.array([1.0, 2.0, 4.0])
        ys = np.array([1.0, float("nan"), 2.0])
        with pytest.raises(ValueError, match="finite"):
            fit_power_law(xs, ys)

    def test_inf_rejected(self):
        xs = np.array([1.0, float("inf"), 4.0])
        with pytest.raises(ValueError, match="finite"):
            fit_power_law(xs, xs)


class TestFitEnvelopeConstant:
    def test_max_ratio_times_slack(self):
        c = fit_envelope_constant([2.0, 4.0], [1.0, 3.0], slack=1.5)
        assert c == pytest.approx(0.75 * 1.5)

    def test_degenerate_single_point(self):
        assert fit_envelope_constant([5.0], [10.0], slack=1.0) == pytest.approx(2.0)

    def test_monotone_constant_series(self):
        # flat measurements against a growing shape: the smallest size
        # dominates the ratio and the fit stays finite
        shapes = [2.0, 4.0, 8.0]
        c = fit_envelope_constant(shapes, [3.0, 3.0, 3.0], slack=1.0)
        assert c == pytest.approx(1.5)

    def test_all_zero_measured_gives_zero(self):
        assert fit_envelope_constant([1.0, 2.0], [0.0, 0.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_envelope_constant([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fit_envelope_constant([1.0, 2.0], [1.0])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            fit_envelope_constant([1.0], [float("nan")])

    def test_nonpositive_shape_rejected(self):
        with pytest.raises(ValueError):
            fit_envelope_constant([0.0], [1.0])

    def test_negative_measured_rejected(self):
        with pytest.raises(ValueError):
            fit_envelope_constant([1.0], [-1.0])

    def test_slack_below_one_rejected(self):
        with pytest.raises(ValueError):
            fit_envelope_constant([1.0], [1.0], slack=0.9)
