"""Tests for the ASCII visualization helpers."""

from repro.analysis.report import ascii_histogram, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant(self):
        out = sparkline([5, 5, 5])
        assert len(out) == 3 and len(set(out)) == 1

    def test_monotone_rises(self):
        out = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert out[0] < out[-1]
        assert list(out) == sorted(out)

    def test_length(self):
        assert len(sparkline(range(100))) == 100


class TestAsciiHistogram:
    def test_empty(self):
        assert ascii_histogram([]) == "(empty)"

    def test_rows_and_counts(self):
        out = ascii_histogram([1] * 50 + [10] * 5, bins=3)
        lines = out.splitlines()
        assert len(lines) == 3
        assert "50" in lines[0]
        assert "#" in lines[0]

    def test_peak_bar_width(self):
        out = ascii_histogram(list(range(100)), bins=4, width=20)
        assert max(line.count("#") for line in out.splitlines()) == 20
