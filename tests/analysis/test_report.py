"""Tests for table rendering."""

import pytest

from repro.analysis.report import Table, format_float


class TestFormatFloat:
    def test_ints_stay_ints(self):
        assert format_float(42) == "42"

    def test_whole_floats_collapse(self):
        assert format_float(42.0) == "42"

    def test_precision(self):
        assert format_float(3.14159, digits=3) == "3.14"

    def test_none(self):
        assert format_float(None) == "-"

    def test_strings_pass_through(self):
        assert format_float("pp") == "pp"

    def test_bool(self):
        assert format_float(True) == "True"


class TestTable:
    def test_render_markdown(self):
        t = Table(["a", "b"], title="demo")
        t.add_row([1, 2.5])
        out = t.render()
        assert "### demo" in out
        assert "| a | b |" in out
        assert "| 1 | 2.5 |" in out

    def test_row_length_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_no_title(self):
        t = Table(["x"])
        t.add_row([0])
        assert not t.render().startswith("###")

    def test_print(self, capsys):
        t = Table(["x"])
        t.add_row([7])
        t.print()
        assert "| 7 |" in capsys.readouterr().out


class TestCsv:
    def test_basic(self):
        t = Table(["a", "b"])
        t.add_row([1, 2.5])
        assert t.to_csv() == "a,b\n1,2.5\n"

    def test_escaping(self):
        t = Table(["name"])
        t.add_row(['he said "hi", twice'])
        assert t.to_csv() == 'name\n"he said ""hi"", twice"\n'

    def test_save(self, tmp_path):
        t = Table(["x"])
        t.add_row([3])
        p = tmp_path / "out.csv"
        t.save_csv(str(p))
        assert p.read_text() == "x\n3\n"
