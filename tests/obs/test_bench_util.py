"""benchmarks/_util.py: the schema-versioned metrics snapshot round trip.

The benchmark helpers live outside the package (they are pytest-side
glue), so this test imports them by path and redirects RESULTS_DIR at a
tmp dir to exercise save_tables/load_metrics without touching the real
benchmarks/results/.
"""

import importlib.util
import json
import os
import sys

import pytest

from repro.analysis.report import Table
from repro.obs.metrics import MetricsRegistry

BENCH_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "benchmarks"
)


@pytest.fixture()
def util(tmp_path, monkeypatch):
    """A fresh benchmarks/_util module with RESULTS_DIR -> tmp_path."""
    monkeypatch.syspath_prepend(BENCH_DIR)
    spec = importlib.util.spec_from_file_location(
        "_bench_util_under_test", os.path.join(BENCH_DIR, "_util.py")
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    mod.RESULTS_DIR = str(tmp_path)
    return mod


def _table():
    t = Table(["a", "b"], title="t")
    t.add_row([1, 2])
    return t


class TestSaveTables:
    def test_writes_markdown(self, util, tmp_path, capsys):
        text = util.save_tables("exp", [_table()], notes="a note")
        assert "a note" in text
        assert (tmp_path / "exp.md").read_text() == text
        assert "a note" in capsys.readouterr().out

    def test_metrics_envelope_is_versioned(self, util, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        util.save_tables("exp", [_table()], metrics=reg)
        payload = json.loads((tmp_path / "exp.metrics.json").read_text())
        assert payload["schema"] == util.METRICS_SCHEMA
        assert payload["name"] == "exp"
        assert payload["metrics"]["c"]["value"] == 3

    def test_accepts_plain_snapshot_dict(self, util):
        util.save_tables("exp", [_table()],
                         metrics={"c": {"type": "counter", "value": 1}})
        assert util.load_metrics("exp")["c"]["value"] == 1


class TestLoadMetrics:
    def test_roundtrip(self, util):
        reg = MetricsRegistry()
        reg.timer("t").observe(0.5)
        util.save_tables("exp", [_table()], metrics=reg)
        snap = util.load_metrics("exp")
        assert snap["t"]["total_seconds"] == 0.5
        assert snap["t"]["min_seconds"] == 0.5

    def test_missing_file_raises(self, util):
        with pytest.raises(FileNotFoundError):
            util.load_metrics("never_saved")

    def test_unversioned_snapshot_rejected(self, util, tmp_path):
        (tmp_path / "old.metrics.json").write_text(
            json.dumps({"c": {"value": 1}})
        )
        with pytest.raises(ValueError, match="unversioned"):
            util.load_metrics("old")

    def test_schema_mismatch_rejected(self, util, tmp_path):
        (tmp_path / "future.metrics.json").write_text(
            json.dumps({"schema": 99, "name": "future", "metrics": {}})
        )
        with pytest.raises(ValueError, match="schema 99"):
            util.load_metrics("future")

    def test_missing_payload_rejected(self, util, tmp_path):
        (tmp_path / "hollow.metrics.json").write_text(
            json.dumps({"schema": util.METRICS_SCHEMA, "name": "hollow"})
        )
        with pytest.raises(ValueError, match="missing metrics"):
            util.load_metrics("hollow")


class TestRecorderGlue:
    def test_scalar_routes_to_session_recorder(self, util):
        util.scalar("x.y", 4)
        assert not util.recorder().empty
        assert util.recorder().record("20260805T000000Z")["scalars"]["x.y"] == 4.0
