"""Tests for the tracer backends, the switchboard, and the end-to-end
trace round trip (JSONL must reproduce ``AccessResult`` exactly)."""

import json

import pytest

from repro import obs
from repro.obs.trace import NULL_SPAN, NullTracer, RecordingTracer, traced


class TestNullTracer:
    def test_span_is_shared_noop(self):
        t = NullTracer()
        sp = t.span("x", a=1)
        assert sp is NULL_SPAN
        with sp as inner:
            inner.add(b=2)  # silently dropped
        assert t.enabled is False

    def test_event_is_noop(self):
        NullTracer().event("x", a=1)  # must not raise


class TestRecordingTracer:
    def make(self):
        ticks = iter(range(100))
        return RecordingTracer(clock=lambda: float(next(ticks)))

    def test_event_record(self):
        t = self.make()
        t.event("hello", a=1)
        (ev,) = t.events
        assert ev == {"type": "event", "name": "hello", "seq": 1,
                      "ts": 1.0, "a": 1}

    def test_span_emits_at_close_with_dur(self):
        t = self.make()
        with t.span("work", x=1) as sp:
            assert t.events == []  # nothing until close
            sp.add(y=2)
        (ev,) = t.events
        assert ev["type"] == "span" and ev["name"] == "work"
        assert ev["x"] == 1 and ev["y"] == 2
        assert ev["dur"] == pytest.approx(ev["ts"] + ev["dur"] - ev["ts"])

    def test_children_precede_parents(self):
        t = self.make()
        with t.span("outer"):
            with t.span("inner"):
                pass
        assert [e["name"] for e in t.events] == ["inner", "outer"]
        assert [e["seq"] for e in t.events] == [1, 2]

    def test_jsonl_round_trip(self, tmp_path):
        t = self.make()
        t.event("e", k="v")
        with t.span("s"):
            pass
        path = tmp_path / "t.jsonl"
        assert t.write_jsonl(str(path)) == 2
        back = obs.read_jsonl(str(path))
        assert back == t.events

    def test_jsonl_handles_numpy(self, tmp_path):
        np = pytest.importorskip("numpy")
        t = self.make()
        t.event("e", n=np.int64(3), arr=np.array([1, 2]))
        line = t.to_jsonl().strip()
        rec = json.loads(line)
        assert rec["n"] == 3 and rec["arr"] == [1, 2]


class TestSwitchboard:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert not obs.metrics_enabled()
        assert isinstance(obs.tracer(), NullTracer)

    def test_enable_metrics_flips_guard(self):
        obs.enable_metrics()
        assert obs.enabled() and obs.metrics_enabled()
        obs.disable_metrics()
        assert not obs.enabled()

    def test_set_tracer_flips_guard_and_returns_prev(self):
        t = RecordingTracer()
        prev = obs.set_tracer(t)
        assert isinstance(prev, NullTracer)
        assert obs.enabled() and obs.tracer() is t
        assert obs.set_tracer(None) is t
        assert not obs.enabled()

    def test_collect_restores_state(self):
        with obs.collect() as (reg, tracer):
            assert obs.enabled() and obs.metrics_enabled()
            assert reg is obs.metrics()
            assert obs.tracer() is tracer
        assert not obs.enabled()
        assert isinstance(obs.tracer(), NullTracer)

    def test_collect_without_trace(self):
        with obs.collect(trace=False) as (reg, tracer):
            assert tracer is None
            assert isinstance(obs.tracer(), NullTracer)
            assert obs.metrics_enabled()

    def test_span_helper_off_is_null(self):
        with obs.span("x", a=1) as sp:
            assert sp is NULL_SPAN

    def test_span_helper_records_and_times(self):
        with obs.collect() as (reg, tracer):
            with obs.span("x", timer="x_seconds", a=1) as sp:
                sp.add(b=2)
        (ev,) = tracer.events
        assert ev["name"] == "x" and ev["a"] == 1 and ev["b"] == 2
        assert reg.timer("x_seconds").count == 1

    def test_traced_decorator(self):
        @traced("my.op")
        def f(x):
            return x + 1

        assert f(1) == 2  # disabled: passthrough
        t = RecordingTracer()
        obs.set_tracer(t)
        assert f(2) == 3
        obs.set_tracer(None)
        assert [e["name"] for e in t.events] == ["my.op"]

    def test_traced_default_name(self):
        @traced()
        def g():
            return None

        t = RecordingTracer()
        obs.set_tracer(t)
        g()
        obs.set_tracer(None)
        assert t.events[0]["name"].endswith("g")


class TestEndToEndRoundTrip:
    """Acceptance: the JSONL trace reproduces the per-phase iteration
    counts reported by ``AccessResult`` exactly."""

    def run_traced(self, scheme, count, tmp_path, seed=3):
        idx = scheme.random_request_set(count, seed=seed)
        tracer = RecordingTracer()
        prev = obs.set_tracer(tracer)
        try:
            res = scheme.access(idx, op="count")
        finally:
            obs.set_tracer(prev)
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        return res, obs.read_jsonl(str(path))

    def test_phase_iterations_match_exactly(self, scheme_2_5, tmp_path):
        res, events = self.run_traced(
            scheme_2_5, min(scheme_2_5.N, scheme_2_5.M), tmp_path
        )
        phases = sorted(
            (e for e in events if e["name"] == "protocol.phase"),
            key=lambda e: e["phase"],
        )
        assert [e["iterations"] for e in phases] == res.iterations_per_phase
        for e, trace in zip(phases, res.phases):
            assert e["live_history"] == list(trace.live_history)
            assert e["iterations"] == len(e["live_history"]) - 1

    def test_access_span_totals(self, scheme_2_5, tmp_path):
        res, events = self.run_traced(scheme_2_5, 256, tmp_path)
        (acc,) = [e for e in events if e["name"] == "protocol.access"]
        assert acc["total_iterations"] == res.total_iterations
        assert acc["requests"] == 256
        assert acc["phases"] == len(res.phases)
        assert acc["op"] == "count"

    def test_mpc_steps_match(self, scheme_2_5, tmp_path):
        res, events = self.run_traced(scheme_2_5, 256, tmp_path)
        steps = [e for e in events if e["name"] == "mpc.step"]
        assert len(steps) == res.mpc_stats.steps
        assert sum(e["served"] for e in steps) == res.mpc_stats.served
        assert (
            max(e["congestion"] for e in steps) == res.mpc_stats.max_congestion
        )

    def test_metrics_match_result(self, scheme_2_5):
        idx = scheme_2_5.random_request_set(256, seed=5)
        with obs.collect(trace=False) as (reg, _):
            res = scheme_2_5.access(idx, op="count")
        snap = reg.snapshot()
        assert snap["protocol.iterations"]["value"] == res.total_iterations
        assert snap["mpc.steps"]["value"] == res.mpc_stats.steps
        assert snap["mpc.served"]["value"] == res.mpc_stats.served
        assert (
            snap["mpc.max_congestion"]["value"] == res.mpc_stats.max_congestion
        )
        assert snap["protocol.accesses{op=count}"]["value"] == 1
        assert (
            snap["protocol.phase_iterations"]["count"] == len(res.phases)
        )

    def test_kvstore_trace_and_metrics(self):
        from repro.kvstore import ParallelKVStore
        from repro.schemes.pp_adapter import PPAdapter

        kv = ParallelKVStore(PPAdapter(2, 3), seed=1)
        keys = [f"k{i}" for i in range(20)]
        with obs.collect() as (reg, tracer):
            kv.batch_put(keys, list(range(20)))
            kv.batch_get(keys)
        names = {e["name"] for e in tracer.events}
        assert {"kvstore.op", "kvstore.probe", "kvstore.probe_round"} <= names
        ops = [e for e in tracer.events if e["name"] == "kvstore.op"]
        assert {e["op"] for e in ops} == {"put", "get"}
        assert all(e["keys"] == 20 for e in ops)
        probe = next(e for e in tracer.events if e["name"] == "kvstore.probe")
        rounds = [
            e for e in tracer.events if e["name"] == "kvstore.probe_round"
        ]
        assert probe["rounds"] >= 1 and len(rounds) >= probe["rounds"]
        snap = reg.snapshot()
        assert snap["kvstore.ops{op=put}"]["value"] == 1
        assert snap["kvstore.ops{op=get}"]["value"] == 1
        assert snap["kvstore.probe_rounds"]["value"] >= 2
