"""The <5% overhead budget (ISSUE acceptance criterion).

There is no instrumentation-free build to diff against at runtime, so
the budget is enforced by guard-cost accounting: with observability
disabled every instrumentation site costs one ``obs.enabled()`` call
returning False (plus, at ``obs.span`` sites, one no-op context enter).
We measure that per-guard cost directly, count the guard activations a
full-load (q=2, n=7) batch performs (via a recording trace -- every
emitted record is one activated site, counted with generous headroom),
and assert the total is below 5% of the batch's measured wall time.

The margin in practice is ~1000x: tens of ~50ns guards against a
~20ms batch.
"""

import time

import pytest

from repro import obs
from repro.core.scheme import PPScheme


@pytest.fixture(scope="module")
def scheme_2_7():
    return PPScheme(2, 7)


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestOverheadBudget:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert not obs.metrics_enabled()
        assert not obs.tracer().enabled

    def test_guard_cost_under_budget(self, scheme_2_7):
        s = scheme_2_7
        idx = s.random_request_set(min(s.N, s.M), seed=3)
        s.access(idx, op="count")  # warm every cache off the clock

        assert not obs.enabled()
        t_off = _best_of(lambda: s.access(idx, op="count"))

        # Count the instrumentation sites this exact batch activates:
        # every record a tracer emits is one site, and each span site is
        # at most two guard touches (enter + close).
        tracer = obs.RecordingTracer()
        prev = obs.set_tracer(tracer)
        try:
            s.access(idx, op="count")
        finally:
            obs.set_tracer(prev)
        touches = 2 * len(tracer.events) + 10  # +10: scheme-level slack

        # Per-guard cost of the disabled path, measured directly.
        n = 100_000
        t0 = time.perf_counter()
        for _ in range(n):
            obs.enabled()
        per_guard = (time.perf_counter() - t0) / n

        overhead = touches * per_guard
        budget = 0.05 * t_off
        assert overhead < budget, (
            f"guard overhead {overhead * 1e6:.1f}us exceeds 5% budget "
            f"{budget * 1e6:.1f}us ({touches} touches x "
            f"{per_guard * 1e9:.0f}ns on a {t_off * 1e3:.1f}ms batch)"
        )

    def test_disabled_run_emits_nothing(self, scheme_2_7):
        s = scheme_2_7
        idx = s.random_request_set(128, seed=4)
        before = len(obs.metrics())
        obs.metrics().reset()
        res = s.access(idx, op="count")
        assert res.total_iterations >= 1
        # no new instruments appeared and nothing was recorded
        assert len(obs.metrics()) == before
        snap = obs.metrics().snapshot()
        assert all(
            v.get("value", 0) == 0 and v.get("count", 0) == 0
            for v in snap.values()
        )
