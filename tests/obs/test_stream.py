"""Tests for the bounded event bus and the health aggregator."""

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.stream import DEFAULT_CAPACITY, EventBus, HealthAggregator, Subscription


class TestSubscription:
    def test_matches_all_when_names_none(self):
        sub = Subscription()
        assert sub.matches("anything")
        assert sub.names is None

    def test_matches_named_only(self):
        sub = Subscription(names={"mem.op"})
        assert sub.matches("mem.op")
        assert not sub.matches("kv.op")

    def test_push_drain_fifo(self):
        sub = Subscription()
        sub.push({"a": 1})
        sub.push({"a": 2})
        assert len(sub) == 2
        assert [e["a"] for e in sub.drain()] == [1, 2]
        assert len(sub) == 0

    def test_drain_limit(self):
        sub = Subscription()
        for i in range(5):
            sub.push({"i": i})
        assert [e["i"] for e in sub.drain(limit=2)] == [0, 1]
        assert len(sub) == 3

    def test_full_queue_drops_and_counts(self):
        sub = Subscription(capacity=2)
        assert sub.push({}) and sub.push({})
        assert not sub.push({})
        assert sub.dropped == 1
        assert sub.delivered == 2
        assert len(sub) == 2  # queue never exceeds capacity

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            Subscription(capacity=0)

    def test_repr_mentions_drops(self):
        sub = Subscription(names={"x"}, capacity=1)
        sub.push({})
        sub.push({})
        assert "dropped=1" in repr(sub)


class TestEventBus:
    def test_publish_stamps_name_and_monotonic_seq(self):
        bus = EventBus()
        sub = bus.subscribe()
        bus.publish("a", {"v": 1})
        bus.publish("b", {"v": 2})
        events = sub.drain()
        assert [e["name"] for e in events] == ["a", "b"]
        assert [e["seq"] for e in events] == [1, 2]

    def test_publish_does_not_mutate_caller_fields(self):
        bus = EventBus()
        sub = bus.subscribe()
        fields = {"v": 1}
        bus.publish("a", fields)
        assert fields == {"v": 1}
        assert sub.drain()[0]["v"] == 1

    def test_fanout_respects_name_filters(self):
        bus = EventBus()
        mem = bus.subscribe(names={"mem.op"})
        every = bus.subscribe()
        bus.publish("mem.op", {})
        bus.publish("kv.op", {})
        assert len(mem) == 1
        assert len(every) == 2

    def test_full_subscriber_drops_visibly_never_blocks(self):
        bus = EventBus()
        slow = bus.subscribe(capacity=2)
        fast = bus.subscribe()
        for _ in range(5):
            bus.publish("e", {})
        assert len(slow) == 2
        assert slow.dropped == 3
        assert bus.dropped == 3
        assert len(fast) == 5
        assert bus.published == 5

    def test_unsubscribe_stops_delivery_and_ignores_unknown(self):
        bus = EventBus()
        sub = bus.subscribe()
        bus.unsubscribe(sub)
        bus.unsubscribe(sub)  # second remove is a no-op
        bus.publish("e", {})
        assert len(sub) == 0
        assert bus.n_subscriptions == 0

    def test_capacity_defaults_and_override(self):
        bus = EventBus(capacity=4)
        assert bus.subscribe().capacity == 4
        assert bus.subscribe(capacity=9).capacity == 9
        assert Subscription().capacity == DEFAULT_CAPACITY

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            EventBus(capacity=0)


class TestSwitchboard:
    def test_set_bus_flips_enabled(self):
        assert not obs.enabled()
        prev = obs.set_bus(EventBus())
        assert prev is None
        assert obs.enabled()
        assert obs.set_bus(None) is not None
        assert not obs.enabled()

    def test_publish_reaches_bus_without_tracer(self):
        bus = EventBus()
        sub = bus.subscribe()
        obs.set_bus(bus)
        obs.publish("custom.event", x=3)
        (event,) = sub.drain()
        assert event["name"] == "custom.event"
        assert event["x"] == 3

    def test_publish_without_bus_or_tracer_is_noop(self):
        obs.publish("nowhere", x=1)  # must not raise

    def test_scheme_build_announces_topology(self):
        from repro.core.scheme import PPScheme

        bus = EventBus()
        sub = bus.subscribe(names={"scheme.topology"})
        obs.set_bus(bus)
        try:
            PPScheme(q=2, n=3)
        finally:
            obs.set_bus(None)
        (event,) = sub.drain()
        assert event["copies"] == 3
        assert event["majority"] == 2
        assert event["q"] == 2 and event["n"] == 3

    def test_protocol_batch_feeds_bus(self, scheme_2_3):
        bus = EventBus()
        sub = bus.subscribe()
        obs.set_bus(bus)
        try:
            store = scheme_2_3.make_store()
            idx = scheme_2_3.random_request_set(8, seed=1)
            scheme_2_3.write(idx, values=idx % 7, store=store, time=1)
        finally:
            obs.set_bus(None)
        names = {e["name"] for e in sub.drain()}
        assert "mem.op" in names
        assert "protocol.health" in names


class TestHealthAggregator:
    def _health(self, **kw):
        event = {
            "name": "protocol.health",
            "op": "write",
            "round": 1,
            "requests": 10,
            "iterations": 3,
            "load_skew": 120,
            "lost": 0,
            "degraded": 0,
            "quorum_margin": 1,
        }
        event.update(kw)
        return event

    def test_counters_and_round_gauge(self):
        reg = MetricsRegistry()
        agg = HealthAggregator(reg)
        agg.consume(self._health(round=4, requests=10))
        agg.consume(self._health(round=5, requests=6, lost=2, degraded=3))
        snap = reg.snapshot()
        assert snap["watch.batches"]["value"] == 2
        assert snap["watch.requests"]["value"] == 16
        assert snap["watch.lost"]["value"] == 2
        assert snap["watch.degraded"]["value"] == 3
        assert snap["watch.round"]["value"] == 5
        assert agg.batches == 2 and agg.lost == 2 and agg.degraded == 3

    def test_min_quorum_margin_tracks_minimum(self):
        agg = HealthAggregator(MetricsRegistry())
        agg.consume(self._health(quorum_margin=2))
        agg.consume(self._health(quorum_margin=0))
        agg.consume(self._health(quorum_margin=1))
        assert agg.min_quorum_margin == 0

    def test_topology_event_sets_gauges(self):
        reg = MetricsRegistry()
        agg = HealthAggregator(reg)
        agg.consume(
            {"name": "scheme.topology", "copies": 3, "majority": 2}
        )
        snap = reg.snapshot()
        assert snap["watch.copies"]["value"] == 3
        assert snap["watch.majority"]["value"] == 2

    def test_unrelated_events_ignored(self):
        reg = MetricsRegistry()
        agg = HealthAggregator(reg)
        agg.consume({"name": "mem.op", "var": 1})
        assert agg.batches == 0
        assert reg.snapshot() == {}

    def test_histograms_carry_quantiles(self):
        reg = MetricsRegistry()
        agg = HealthAggregator(reg)
        for i in range(1, 101):
            agg.consume(self._health(load_skew=i, iterations=i % 7 + 1))
        snap = reg.snapshot()
        skew = snap["watch.load_skew"]
        assert skew["count"] == 100
        assert {"p50", "p95", "p99"} <= set(skew)
        assert skew["p50"] <= skew["p95"] <= skew["p99"] <= skew["max"]
