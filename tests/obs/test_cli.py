"""Tests for the observability CLI surfacing (``metrics``, ``profile``,
``access --trace-out``) and the summarizer/profiler tools."""

import json
import os
import shutil
import subprocess
import sys

import pytest

from repro import obs
from repro.cli import main
from repro.obs.trace import read_jsonl

ROOT = os.path.join(os.path.dirname(__file__), "..", "..")


class TestAccessTraceOut:
    def test_writes_parseable_trace(self, capsys, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert main(
            ["access", "-q", "2", "-n", "3", "--count", "32",
             "--trace-out", path]
        ) == 0
        captured = capsys.readouterr()
        assert "Phi (max)" in captured.out
        assert "trace:" in captured.err and path in captured.err
        events = read_jsonl(path)
        names = {e["name"] for e in events}
        assert {"protocol.access", "protocol.phase", "mpc.step"} <= names

    def test_trace_matches_reported_iterations(self, capsys, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert main(
            ["access", "-q", "2", "-n", "5", "--count", "200",
             "--trace-out", path]
        ) == 0
        out = capsys.readouterr().out
        events = read_jsonl(path)
        phases = sorted(
            (e for e in events if e["name"] == "protocol.phase"),
            key=lambda e: e["phase"],
        )
        reported = [e["iterations"] for e in phases]
        assert f"| iterations/phase | {reported} |" in out

    def test_tracer_uninstalled_after_run(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        main(["access", "-q", "2", "-n", "3", "--count", "16",
              "--trace-out", path])
        assert not obs.enabled()

    def test_no_trace_without_flag(self, capsys):
        assert main(["access", "-q", "2", "-n", "3", "--count", "16"]) == 0
        assert "trace:" not in capsys.readouterr().err


class TestMetricsCommand:
    def test_prints_valid_json(self, capsys):
        assert main(["metrics", "-q", "2", "-n", "3", "--count", "32"]) == 0
        snap = json.loads(capsys.readouterr().out)
        for key in ("scheme.builds", "protocol.iterations", "mpc.steps",
                    "protocol.accesses{op=count}",
                    "protocol.phase_iterations"):
            assert key in snap, key
        assert snap["scheme.builds"]["value"] == 1
        assert snap["mpc.steps"]["value"] >= 1

    def test_restores_disabled_state(self):
        main(["metrics", "-q", "2", "-n", "3", "--count", "16"])
        assert not obs.metrics_enabled() and not obs.enabled()

    def test_count_too_large(self, capsys):
        assert main(["metrics", "-q", "2", "-n", "3", "--count", "999"]) == 2
        assert "error" in capsys.readouterr().err


class TestProfileCommand:
    def test_runs(self, capsys):
        assert main(["profile", "-n", "3", "--count", "40", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "Phi =" in out and "cumulative" in out

    def test_sort_tottime(self, capsys):
        assert main(
            ["profile", "-n", "3", "--count", "40", "--sort", "tottime",
             "--limit", "5"]
        ) == 0
        assert "internal time" in capsys.readouterr().out

    def test_bad_sort_rejected(self):
        with pytest.raises(SystemExit):
            main(["profile", "--sort", "nonsense"])


class TestTraceReportTool:
    def run_tool(self, *argv):
        return subprocess.run(
            [sys.executable, os.path.join(ROOT, "tools", "trace_report.py"),
             *argv],
            capture_output=True, text=True, timeout=120,
        )

    def test_renders_phase_table(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert main(["access", "-q", "2", "-n", "3", "--count", "32",
                     "--trace-out", path]) == 0
        proc = self.run_tool(path)
        assert proc.returncode == 0, proc.stderr
        assert "access #0" in proc.stdout
        assert "| phase | variables | iterations |" in proc.stdout
        assert "machine summary" in proc.stdout

    def test_missing_file_exits_2(self, tmp_path):
        proc = self.run_tool(str(tmp_path / "nope.jsonl"))
        assert proc.returncode == 2
        assert "error" in proc.stderr

    def test_traceless_file_exits_2(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"type": "event", "name": "x", "seq": 1, "ts": 0}\n')
        proc = self.run_tool(str(path))
        assert proc.returncode == 2
        assert "no protocol.access" in proc.stderr


class TestProfileTool:
    def test_runs_and_sorts(self):
        proc = subprocess.run(
            [sys.executable,
             os.path.join(ROOT, "tools", "profile_protocol.py"),
             "3", "40", "--sort", "tottime", "--limit", "5"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "internal time" in proc.stdout

    def test_import_failure_exits_nonzero(self, tmp_path):
        # Run a copy of the tool from outside the repo with a poisoned
        # ``repro`` shadowing any real installation: the import must
        # fail and the exit code must be non-zero (the satellite fix).
        tool = tmp_path / "profile_protocol.py"
        shutil.copy(
            os.path.join(ROOT, "tools", "profile_protocol.py"), tool
        )
        (tmp_path / "repro.py").write_text(
            'raise ImportError("poisoned for the test")\n'
        )
        env = {k: v for k, v in os.environ.items() if k != "PYTHONPATH"}
        proc = subprocess.run(
            [sys.executable, str(tool), "3", "10"],
            capture_output=True, text=True, timeout=60, env=env,
            cwd=str(tmp_path),
        )
        assert proc.returncode == 1
        assert "cannot import repro" in proc.stderr
