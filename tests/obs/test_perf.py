"""repro.obs.perf: recorder, trajectory store, and the regression gate.

Covers the BENCH_*.json schema round trip, the RegressionDetector edge
cases (first run, improvement, single-sample baseline, missing metric,
NaN/zero-time guard), and the acceptance scenario: a synthetically
injected 2x slowdown must fail ``repro perf check`` while an unchanged
re-run passes.
"""

import json
import math
import os

import pytest

from repro.cli import main
from repro.obs.perf import (
    BENCH_PREFIX,
    SCHEMA_VERSION,
    BenchRecorder,
    RegressionDetector,
    Trajectory,
    env_fingerprint,
    load_record,
    median_mad,
    render_report,
    trend,
)


def make_record(tmp_path, stamp, sections, scalars=None):
    """Write a synthetic BENCH record; sections maps name -> samples."""
    rec = BenchRecorder(source="test")
    for name, samples in sections.items():
        for s in samples:
            rec.observe(name, s)
    for name, v in (scalars or {}).items():
        rec.scalar(name, v)
    return rec.write(str(tmp_path), stamp=stamp)


class TestBenchRecorder:
    def test_measure_warmup_and_repeats(self):
        calls = []
        rec = BenchRecorder()
        summary = rec.measure("s", lambda: calls.append(1), warmup=2,
                              repeats=3)
        assert len(calls) == 5  # warmup runs are not recorded
        assert summary["count"] == 3 and len(summary["samples"]) == 3
        assert summary["warmup"] == 2 and summary["repeats"] == 3
        assert summary["best"] == min(summary["samples"])

    def test_measure_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            BenchRecorder().measure("s", lambda: None, repeats=0)

    def test_summary_median_mad(self):
        rec = BenchRecorder()
        for v in (1.0, 2.0, 10.0):
            rec.observe("s", v)
        s = rec.summary("s")
        assert s["median"] == 2.0 and s["mad"] == 1.0 and s["best"] == 1.0

    def test_empty_flag(self):
        rec = BenchRecorder()
        assert rec.empty
        rec.scalar("x", 1)
        assert not rec.empty

    def test_env_fingerprint(self):
        env = env_fingerprint("unit-test")
        assert env["source"] == "unit-test"
        assert env["python"] and env["cpus"] >= 1

    def test_write_and_load_roundtrip(self, tmp_path):
        rec = BenchRecorder(source="test")
        rec.observe("a.section", 0.5)
        rec.scalar("a.scalar", 1.25)
        rec.attach_metrics({"m": {"type": "counter", "value": 3}})
        path = rec.write(str(tmp_path), stamp="20260805T120000Z")
        assert os.path.basename(path) == f"{BENCH_PREFIX}20260805T120000Z.json"
        back = load_record(path)
        assert back["schema"] == SCHEMA_VERSION
        assert back["created_utc"] == "2026-08-05T12:00:00Z"
        assert back["sections"]["a.section"]["median"] == 0.5
        assert back["scalars"]["a.scalar"] == 1.25
        assert back["metrics"]["m"]["value"] == 3

    def test_write_collision_gets_fresh_name(self, tmp_path):
        rec = BenchRecorder()
        rec.observe("s", 1.0)
        p1 = rec.write(str(tmp_path), stamp="20260805T120000Z")
        p2 = rec.write(str(tmp_path), stamp="20260805T120000Z")
        assert p1 != p2 and os.path.exists(p1) and os.path.exists(p2)

    def test_load_rejects_wrong_schema(self, tmp_path):
        p = tmp_path / "BENCH_bad.json"
        p.write_text(json.dumps({"kind": "repro.bench", "schema": 99}))
        with pytest.raises(ValueError, match="schema"):
            load_record(str(p))
        p.write_text(json.dumps({"not": "a record"}))
        with pytest.raises(ValueError, match="record"):
            load_record(str(p))


class TestMedianMad:
    def test_values(self):
        assert median_mad([3.0]) == (3.0, 0.0)
        med, mad = median_mad([1, 1, 1, 9])
        assert med == 1.0 and mad == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median_mad([])


class TestTrajectory:
    def test_load_sorts_and_aligns(self, tmp_path):
        make_record(tmp_path, "20260805T120001Z", {"a": [2.0]})
        make_record(tmp_path, "20260805T120000Z", {"a": [1.0], "b": [5.0]})
        traj = Trajectory.load(str(tmp_path))
        assert len(traj) == 2
        assert traj.series("a") == [1.0, 2.0]  # chronological, not glob order
        assert traj.series("b") == [5.0, None]
        assert traj.section_names() == ["a", "b"]

    def test_unreadable_record_is_skipped(self, tmp_path):
        make_record(tmp_path, "20260805T120000Z", {"a": [1.0]})
        (tmp_path / "BENCH_garbage.json").write_text("{nope")
        traj = Trajectory.load(str(tmp_path))
        assert len(traj) == 1 and len(traj.skipped) == 1

    def test_baseline_excludes_latest(self, tmp_path):
        for i, v in enumerate((1.0, 2.0, 30.0)):
            make_record(tmp_path, f"2026080{5}T12000{i}Z", {"a": [v]})
        traj = Trajectory.load(str(tmp_path))
        med, mad, n = traj.baseline("a")
        assert med == 1.5 and n == 2  # the 30.0 latest is excluded

    def test_metrics_snapshots_schema_checked(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "e01.metrics.json").write_text(json.dumps(
            {"schema": 1, "name": "e01", "metrics": {"c": {"value": 1}}}
        ))
        (results / "old.metrics.json").write_text(json.dumps({"c": 1}))
        traj = Trajectory.load(str(tmp_path), results_dir=str(results))
        assert "e01" in traj.metrics_snapshots
        assert any(p.endswith("old.metrics.json") for p in traj.skipped)


class TestRegressionDetector:
    def test_first_run_no_baseline(self, tmp_path):
        make_record(tmp_path, "20260805T120000Z", {"a": [1.0]})
        res = RegressionDetector(Trajectory.load(str(tmp_path))).check()
        assert res.ok and res.checked == 0

    def test_unchanged_rerun_passes(self, tmp_path):
        make_record(tmp_path, "20260805T120000Z", {"a": [1.0, 1.0, 1.0]})
        make_record(tmp_path, "20260805T120001Z", {"a": [1.0, 1.0, 1.0]})
        res = RegressionDetector(Trajectory.load(str(tmp_path))).check()
        assert res.ok and res.checked == 1

    def test_2x_slowdown_flags(self, tmp_path):
        make_record(tmp_path, "20260805T120000Z", {"a": [1.0, 1.0, 1.0]})
        make_record(tmp_path, "20260805T120001Z", {"a": [2.0, 2.0, 2.0]})
        res = RegressionDetector(Trajectory.load(str(tmp_path))).check()
        assert not res.ok
        assert res.regressions[0].name == "a"
        assert res.regressions[0].ratio == pytest.approx(2.0)

    def test_improvement_not_flagged(self, tmp_path):
        make_record(tmp_path, "20260805T120000Z", {"a": [2.0]})
        make_record(tmp_path, "20260805T120001Z", {"a": [0.5]})
        res = RegressionDetector(Trajectory.load(str(tmp_path))).check()
        assert res.ok and res.checked == 1

    def test_single_sample_baseline_uses_ratio(self, tmp_path):
        # one baseline run -> MAD is 0; only the ratio guard applies
        make_record(tmp_path, "20260805T120000Z", {"a": [1.0]})
        make_record(tmp_path, "20260805T120001Z", {"a": [1.2]})
        det = RegressionDetector(Trajectory.load(str(tmp_path)), ratio=0.25)
        assert det.check().ok  # +20% < 25% tolerance
        make_record(tmp_path, "20260805T120002Z", {"a": [1.6]})
        det = RegressionDetector(Trajectory.load(str(tmp_path)), ratio=0.25)
        assert not det.check().ok

    def test_mad_term_absorbs_noisy_baseline(self, tmp_path):
        # noisy history: the MAD term must widen the tolerance band
        for i, v in enumerate((1.0, 2.0, 1.0, 2.0)):
            make_record(tmp_path, f"20260805T12000{i}Z", {"a": [v]})
        make_record(tmp_path, "20260805T120009Z", {"a": [2.4]})
        det = RegressionDetector(Trajectory.load(str(tmp_path)),
                                 ratio=0.25, mad_k=4.0)
        # baseline median 1.5, mad 0.5 -> threshold 1.5 + 2.0 = 3.5
        assert det.check().ok

    def test_missing_metric_in_baseline_skipped(self, tmp_path):
        make_record(tmp_path, "20260805T120000Z", {"a": [1.0]})
        make_record(tmp_path, "20260805T120001Z",
                    {"a": [1.0], "brand_new": [9.0]})
        res = RegressionDetector(Trajectory.load(str(tmp_path))).check()
        assert res.ok and res.new_sections == ["brand_new"]

    def test_nan_and_zero_time_guard(self, tmp_path):
        make_record(tmp_path, "20260805T120000Z",
                    {"a": [float("nan")], "b": [0.0], "c": [1.0]})
        make_record(tmp_path, "20260805T120001Z",
                    {"a": [float("nan")], "b": [0.0], "c": [1.0]})
        res = RegressionDetector(Trajectory.load(str(tmp_path))).check()
        assert res.ok and res.checked == 1  # only 'c' is checkable

    def test_bad_params_rejected(self, tmp_path):
        traj = Trajectory.load(str(tmp_path))
        with pytest.raises(ValueError):
            RegressionDetector(traj, window=0)


class TestReport:
    def test_trend_handles_gaps(self):
        line = trend([1.0, None, 2.0, float("nan"), 3.0])
        assert len(line) == 3

    def test_render_empty(self, tmp_path):
        text = render_report(Trajectory.load(str(tmp_path)))
        assert "No `BENCH_*.json` records" in text

    def test_render_with_history(self, tmp_path):
        make_record(tmp_path, "20260805T120000Z", {"a": [1.0]},
                    scalars={"phi": 4})
        make_record(tmp_path, "20260805T120001Z", {"a": [1.1]},
                    scalars={"phi": 4})
        text = render_report(Trajectory.load(str(tmp_path)))
        assert "| a |" in text and "phi" in text
        assert "Timed sections" in text


class TestPerfCli:
    def test_check_empty_dir_says_no_baseline_and_passes(
        self, tmp_path, capsys
    ):
        # fresh clone: no BENCH_*.json at all -- explicit message, exit 0
        assert main(["perf", "check", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "no baseline yet" in out
        assert "BENCH_*.json" in out
        assert "perf record" in out

    def test_check_no_baseline_ok(self, tmp_path):
        make_record(tmp_path, "20260805T120000Z", {"a": [1.0]})
        assert main(["perf", "check", "--dir", str(tmp_path)]) == 0

    def test_check_acceptance_cycle(self, tmp_path, capsys):
        # unchanged re-run passes ...
        make_record(tmp_path, "20260805T120000Z", {"a": [1.0, 1.0]})
        make_record(tmp_path, "20260805T120001Z", {"a": [1.0, 1.0]})
        assert main(["perf", "check", "--dir", str(tmp_path)]) == 0
        # ... an injected 2x slowdown exits non-zero ...
        make_record(tmp_path, "20260805T120002Z", {"a": [2.0, 2.0]})
        assert main(["perf", "check", "--dir", str(tmp_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # ... and --soft reports without failing
        assert main(["perf", "check", "--dir", str(tmp_path), "--soft"]) == 0

    def test_report_writes_dashboard(self, tmp_path):
        make_record(tmp_path, "20260805T120000Z", {"a": [1.0]})
        out = tmp_path / "dash.md"
        assert main(["perf", "report", "--dir", str(tmp_path),
                     "--md-out", str(out)]) == 0
        assert "Performance trajectory" in out.read_text()

    def test_record_quick_suite(self, tmp_path):
        assert main(["perf", "record", "--out", str(tmp_path),
                     "--repeats", "1"]) == 0
        paths = [p for p in os.listdir(tmp_path)
                 if p.startswith(BENCH_PREFIX)]
        assert len(paths) == 1
        rec = load_record(str(tmp_path / paths[0]))
        assert "quick.protocol_full_n7" in rec["sections"]
        assert "quick.phi_full_n7" in rec["scalars"]
        assert rec["env"]["source"] == "quick-suite"
        assert rec["metrics"]  # the obs snapshot rode along
        assert all(
            math.isfinite(s["median"]) and s["median"] > 0
            for s in rec["sections"].values()
        )
