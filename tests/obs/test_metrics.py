"""Tests for the metrics primitives and the registry."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)


class TestCounter:
    def test_inc(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)

    def test_merge_and_reset(self):
        a, b = Counter(), Counter()
        a.inc(2)
        b.inc(3)
        a.merge(b)
        assert a.value == 5
        a.reset()
        assert a.value == 0


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge()
        g.set(7)
        g.set(3)
        assert g.value == 3

    def test_update_max_is_watermark(self):
        g = Gauge()
        g.update_max(5)
        g.update_max(2)
        assert g.value == 5

    def test_merge_keeps_max(self):
        a, b = Gauge(), Gauge()
        a.set(4)
        b.set(9)
        a.merge(b)
        assert a.value == 9


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram(buckets=(1, 2, 5))
        for v in (1, 2, 2, 3, 99):
            h.observe(v)
        snap = h.snapshot()
        assert snap["buckets"] == {"<=1": 1, "<=2": 2, "<=5": 1, "+Inf": 1}
        assert snap["count"] == 5
        assert snap["sum"] == 107
        assert snap["min"] == 1 and snap["max"] == 99

    def test_default_buckets(self):
        h = Histogram()
        assert h.buckets == DEFAULT_BUCKETS

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram(buckets=(5, 1))

    def test_merge(self):
        a, b = Histogram(buckets=(1, 10)), Histogram(buckets=(1, 10))
        a.observe(1)
        b.observe(8)
        b.observe(100)
        a.merge(b)
        snap = a.snapshot()
        assert snap["count"] == 3
        assert snap["buckets"] == {"<=1": 1, "<=10": 1, "+Inf": 1}
        assert snap["min"] == 1 and snap["max"] == 100

    def test_merge_rejects_mismatched_buckets(self):
        with pytest.raises(ValueError, match="buckets"):
            Histogram(buckets=(1,)).merge(Histogram(buckets=(2,)))


class TestTimer:
    def test_observe(self):
        t = Timer()
        t.observe(0.5)
        t.observe(1.5)
        snap = t.snapshot()
        assert snap["count"] == 2
        assert snap["total_seconds"] == 2.0
        assert snap["min_seconds"] == 0.5
        assert snap["max_seconds"] == 1.5
        assert snap["mean_seconds"] == 1.0

    def test_min_tracking(self):
        t = Timer()
        assert t.snapshot()["min_seconds"] is None  # no samples yet
        t.observe(2.0)
        t.observe(0.25)
        t.observe(1.0)
        assert t.min == 0.25
        t.reset()
        assert t.min is None and t.snapshot()["min_seconds"] is None

    def test_time_context(self):
        t = Timer()
        with t.time():
            pass
        assert t.count == 1 and t.total >= 0.0
        assert t.min is not None and t.min <= t.max

    def test_merge(self):
        a, b = Timer(), Timer()
        a.observe(1.0)
        b.observe(3.0)
        a.merge(b)
        assert a.count == 2 and a.total == 4.0 and a.max == 3.0
        assert a.min == 1.0

    def test_merge_min_with_empty(self):
        a, b = Timer(), Timer()
        b.observe(0.5)
        a.merge(b)  # empty absorbs the other's min
        assert a.min == 0.5
        a.merge(Timer())  # merging an empty timer keeps the min
        assert a.min == 0.5


class TestRegistry:
    def test_get_or_create_identity(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.counter("a", op="x") is not r.counter("a", op="y")

    def test_label_key_is_sorted(self):
        r = MetricsRegistry()
        r.counter("a", b=1, a=2).inc()
        assert "a{a=2,b=1}" in r.snapshot()

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(ValueError, match="counter"):
            r.gauge("a")

    def test_snapshot_sorted_and_json(self):
        r = MetricsRegistry()
        r.counter("z").inc()
        r.gauge("a").set(1)
        r.histogram("h").observe(3)
        r.timer("t").observe(0.1)
        snap = r.snapshot()
        assert list(snap) == sorted(snap)
        parsed = json.loads(r.to_json())
        assert parsed == json.loads(json.dumps(snap))

    def test_merge_accumulates_and_adopts(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.gauge("g").set(5)
        b.histogram("h", buckets=(1, 2)).observe(2)
        a.merge(b)
        snap = a.snapshot()
        assert snap["c"]["value"] == 3
        assert snap["g"]["value"] == 5  # adopted from b
        assert snap["h"]["count"] == 1
        # b is untouched
        assert b.snapshot()["c"]["value"] == 2

    def test_merge_kind_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("m")
        b.gauge("m")
        with pytest.raises(ValueError, match="m"):
            a.merge(b)

    def test_reset_keeps_registrations(self):
        r = MetricsRegistry()
        r.counter("c").inc(9)
        r.reset()
        assert len(r) == 1
        assert r.counter("c").value == 0

    def test_numpy_values_serialize(self):
        np = pytest.importorskip("numpy")
        r = MetricsRegistry()
        r.counter("c").inc(np.int64(3))
        r.gauge("g").set(np.int32(7))
        parsed = json.loads(r.to_json())
        assert parsed["c"]["value"] == 3
        assert parsed["g"]["value"] == 7


class TestQuantileSketch:
    def test_exact_below_cap(self):
        from repro.obs.metrics import _QuantileSketch

        s = _QuantileSketch(cap=512)
        for v in range(100):
            s.observe(v)
        assert s.quantile(0.0) == 0
        assert s.quantile(0.5) == 50
        assert s.quantile(0.99) == 99
        assert s.quantile(1.0) == 99

    def test_empty_returns_none(self):
        from repro.obs.metrics import _QuantileSketch

        assert _QuantileSketch().quantile(0.5) is None

    def test_p_validated(self):
        from repro.obs.metrics import _QuantileSketch

        with pytest.raises(ValueError, match="quantile"):
            _QuantileSketch().quantile(1.5)

    def test_cap_validated(self):
        from repro.obs.metrics import _QuantileSketch

        with pytest.raises(ValueError, match="cap"):
            _QuantileSketch(cap=1)

    def test_thinning_bounds_memory_and_stays_deterministic(self):
        from repro.obs.metrics import _QuantileSketch

        a = _QuantileSketch(cap=64)
        b = _QuantileSketch(cap=64)
        for v in range(10_000):
            a.observe(v)
            b.observe(v)
        assert len(a.samples) < 64
        assert a.samples == b.samples  # no RNG anywhere (rule D2)
        assert a.n == 10_000
        # stride-uniform subsample keeps quantiles near truth
        assert abs(a.quantile(0.5) - 5_000) < 600

    def test_merge_pools_and_rethins(self):
        from repro.obs.metrics import _QuantileSketch

        a, b = _QuantileSketch(cap=16), _QuantileSketch(cap=16)
        for v in range(10):
            a.observe(v)
        for v in range(100, 140):
            b.observe(v)
        a.merge(b)
        assert a.n == 50
        assert len(a.samples) < 16
        assert a.quantile(0.99) >= 100


class TestQuantileSummaries:
    def test_histogram_snapshot_has_quantile_keys(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(v)
        snap = h.snapshot()
        assert snap["p50"] == h.quantile(0.5)
        assert snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]

    def test_timer_snapshot_has_seconds_quantile_keys(self):
        t = Timer()
        for ms in range(1, 51):
            t.observe(ms / 1000.0)
        snap = t.snapshot()
        assert {"p50_seconds", "p95_seconds", "p99_seconds"} <= set(snap)
        assert (
            snap["p50_seconds"] <= snap["p99_seconds"] <= snap["max_seconds"]
        )

    def test_histogram_merge_pools_quantiles(self):
        a, b = Histogram(), Histogram()
        for v in range(10):
            a.observe(v)
        for v in range(1000, 1010):
            b.observe(v)
        a.merge(b)
        assert a.quantile(0.99) >= 1000
        assert a.snapshot()["count"] == 20

    def test_histogram_reset_clears_quantiles(self):
        h = Histogram()
        h.observe(5)
        h.reset()
        assert h.quantile(0.5) is None
        assert h.snapshot()["p50"] is None

    def test_timer_merge_and_reset(self):
        a, b = Timer(), Timer()
        a.observe(0.001)
        b.observe(0.5)
        a.merge(b)
        assert a.quantile(0.99) == 0.5
        a.reset()
        assert a.quantile(0.5) is None

    def test_registry_roundtrip_serializes_quantiles(self):
        r = MetricsRegistry()
        h = r.histogram("h")
        for v in range(20):
            h.observe(v)
        parsed = json.loads(r.to_json())
        assert parsed["h"]["p95"] == h.quantile(0.95)
