"""Tests for the theory-vs-measured explain driver and its CLI."""

import pytest

from repro import obs
from repro.obs.explain import (
    _sweep_sizes,
    render_markdown,
    run_explain,
    write_report,
)


@pytest.fixture(scope="module")
def result():
    # module-scoped: one calibrate+check+attack pass feeds every test
    return run_explain(quick=True, scheme_keys=("single", "pp2"))


class TestSweepSizes:
    def test_fractions_of_m(self):
        assert _sweep_sizes(512, (0.125, 0.25, 0.5)) == [64, 128, 256]

    def test_floor_and_dedup(self):
        assert _sweep_sizes(16, (0.125, 0.25)) == [4]


class TestRunExplain:
    def test_checks_pass_within_envelopes(self, result):
        assert result.check_violations == []
        for rep in result.schemes:
            assert len(rep.checks) == 2  # two N' sizes per scheme
            assert len(rep.envelopes) == 4

    def test_attack_flagged_with_coordinates(self, result):
        assert result.attack_flagged
        v = next(
            v for v in result.attack.violations
            if v.quantity == "congestion_p95"
        )
        assert v.measured > v.bound
        assert v.coordinates() == (
            "(scheme=single, N=64, N'=16, quantity=congestion_p95)"
        )

    def test_pp_addressing_field_ops_measured(self, result):
        pp = next(r for r in result.schemes if r.key == "pp2")
        for row in pp.checks:
            assert row.measurement.quantities["addr_field_ops"] > 0

    def test_attribution_leaves_cover_total(self, result):
        att = result.attribution
        assert att["attributed_seconds"] <= att["total_seconds"] + 1e-9
        # exact floor (0.95) is enforced by the CI explain job on a
        # dedicated run; here stay loose against loaded test machines
        assert result.coverage > 0.5

    def test_ledger_events_streamed(self, result):
        # 2 batches per measured run: (3 cal + 2 check) * 2 schemes + attack
        assert result.bus_events == 22
        assert result.watch_congestion_p95 is not None

    def test_switchboard_left_clean(self, result):
        assert not obs.enabled()
        assert obs.ledger() is None


class TestRender:
    def test_report_sections(self, result):
        md = render_markdown(result)
        assert "# Cost attribution: theory vs measured" in md
        assert "## single (N=64, M=512, r=1)" in md
        assert "## Congestion heat" in md
        assert "Flagged as expected" in md
        assert "## Attribution tree" in md
        # the verdict tracks result.ok rather than being pinned to PASS:
        # coverage is wall-time-dependent and can dip under suite load
        assert ("**PASS**" if result.ok else "**FAIL**") in md

    def test_write_report(self, result, tmp_path):
        path = write_report(result, str(tmp_path / "sub" / "r.md"))
        with open(path) as fh:
            assert fh.read().startswith("# Cost attribution")


class TestCLI:
    def test_explain_check_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "explain_report.md"
        rc = main(["explain", "--quick", "--check", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "0 check violation(s), attack flagged" in capsys.readouterr().out

    def test_coverage_floor_enforced(self, tmp_path):
        from repro.cli import main

        rc = main([
            "explain", "--quick", "--check", "--coverage-min", "1.01",
            "--out", "-",
        ])
        assert rc == 1
