"""Observability tests share one process-global switchboard; make every
test start and end with it fully off and empty."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable_metrics()
    obs.set_tracer(None)
    obs.set_bus(None)
    obs.set_ledger(None)
    obs.metrics().reset()
    yield
    obs.disable_metrics()
    obs.set_tracer(None)
    obs.set_bus(None)
    obs.set_ledger(None)
    obs.metrics().reset()
