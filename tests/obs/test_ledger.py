"""Tests for the bound-accounting ledger and its switchboard wiring."""

import numpy as np
import pytest

from repro import obs
from repro.core.scheme import PPScheme
from repro.gf.gf2m import GF2m, set_op_sink
from repro.obs.ledger import PHASE_KEYS, BatchRecord, Ledger
from repro.obs.stream import EventBus


@pytest.fixture
def scheme():
    return PPScheme(2, 3)


class TestSwitchboard:
    def test_install_flips_enabled(self):
        assert not obs.enabled()
        led = Ledger()
        obs.set_ledger(led)
        assert obs.enabled()
        assert obs.ledger() is led
        obs.set_ledger(None)
        assert not obs.enabled()
        assert obs.ledger() is None

    def test_set_returns_previous(self):
        a, b = Ledger(), Ledger()
        assert obs.set_ledger(a) is None
        assert obs.set_ledger(b) is a
        assert obs.set_ledger(None) is b

    def test_install_routes_gf_ops(self):
        led = Ledger()
        obs.set_ledger(led)
        f = GF2m(3)
        f.mul(3, 5)
        f.add(1, 2)
        f.log(4)
        assert led.gf.mul == 1 and led.gf.add == 1 and led.gf.dlog == 1
        obs.set_ledger(None)
        f.mul(3, 5)  # sink uninstalled: no further counting
        assert led.gf.mul == 1

    def test_swap_moves_sink(self):
        a, b = Ledger(), Ledger()
        obs.set_ledger(a)
        obs.set_ledger(b)
        GF2m(3).mul(3, 5)
        assert a.gf.mul == 0 and b.gf.mul == 1

    def test_uninstall_restores_prior_sink(self):
        from repro.gf.opcount import GFOpSink

        outer = GFOpSink()
        prev = set_op_sink(outer)
        led = Ledger()
        obs.set_ledger(led)
        obs.set_ledger(None)
        GF2m(3).mul(3, 5)
        assert outer.mul == 1 and led.gf.mul == 0
        set_op_sink(prev)


class TestEmission:
    def test_count_and_seconds(self):
        led = Ledger()
        led.count("x")
        led.count("x", 4)
        led.add_seconds("memory", 0.25)
        assert led.counters["x"] == 5
        assert led.seconds["memory"] == 0.25

    def test_note_addressing_slices_gf_delta(self):
        led = Ledger()
        obs.set_ledger(led)
        f = GF2m(3)
        f.mul(3, 5)  # before the addressing block: not attributed
        before = led.gf.as_dict()
        f.mul(3, 5)
        f.log(4)
        led.note_addressing(7, 0.5, before)
        assert led.counters["addr.computed"] == 7
        assert led.seconds["addressing"] == 0.5
        assert led.addressing_ops.mul == 1
        assert led.addressing_ops.dlog == 1
        assert led.gf.mul == 2  # global sink keeps everything


class TestSchemeIntegration:
    def run_batch(self, scheme, n=16, seed=3):
        idx = scheme.random_request_set(n, seed=seed)
        store = scheme.make_store()
        vals = np.arange(1, n + 1, dtype=np.int64)
        scheme.write(idx, vals, store, time=1, seed=seed)
        res = scheme.read(idx, store, time=2, seed=seed + 1)
        assert np.array_equal(res.values, vals)

    def test_counters_and_batches(self, scheme):
        led = Ledger()
        obs.set_ledger(led)
        with led.run():
            self.run_batch(scheme)
        assert led.counters["addr.computed"] == 32  # write + read
        assert led.counters["addr.on_the_fly"] == 32  # q=2, odd n layer
        assert led.counters["protocol.batches"] == 2
        assert led.counters["protocol.rounds"] > 0
        assert led.counters["protocol.retries"] >= 0
        assert len(led.batches) == 2
        assert {rec.op for rec in led.batches} == {"read", "write"}
        for rec in led.batches:
            assert isinstance(rec, BatchRecord)
            assert rec.rounds >= rec.phi >= 1
            assert rec.congestion_max >= rec.congestion_p95 >= 1
            assert rec.seconds >= (
                rec.arbitration_seconds + rec.memory_seconds
            ) - 1e-12

    def test_addressing_field_work_counted(self, scheme):
        led = Ledger()
        obs.set_ledger(led)
        self.run_batch(scheme)
        assert led.addressing_ops.total() > 0
        assert led.addressing_ops.total() <= led.gf.total()

    def test_attribution_covers_leaves(self, scheme):
        led = Ledger()
        obs.set_ledger(led)
        with led.run():
            self.run_batch(scheme)
        att = led.attribution()
        assert set(att["leaves"]) == set(PHASE_KEYS)
        assert att["attributed_seconds"] == pytest.approx(
            sum(att["leaves"].values())
        )
        assert 0.0 < att["coverage"] <= 1.0 + 1e-9
        assert att["residual_seconds"] >= 0.0

    def test_attribution_trivial_when_never_ran(self):
        led = Ledger()
        assert led.attribution()["coverage"] == 1.0

    def test_event_published_on_bus(self, scheme):
        bus = EventBus()
        sub = bus.subscribe({"ledger.batch"})
        obs.set_bus(bus)
        obs.set_ledger(Ledger())
        self.run_batch(scheme, n=8)
        events = sub.drain()
        assert len(events) == 2
        for ev in events:
            assert ev["name"] == "ledger.batch"
            assert ev["requests"] == 8
            assert ev["rounds"] >= 1
            assert "congestion_p95" in ev
            assert "seconds" not in ev  # counts only on the wire

    def test_no_ledger_no_records(self, scheme):
        self.run_batch(scheme)  # must not raise, nothing installed
        assert obs.ledger() is None

    def test_congestion_pooled_across_batches(self, scheme):
        led = Ledger()
        obs.set_ledger(led)
        self.run_batch(scheme)
        s = led.congestion_summary()
        assert s["p50"] is not None
        assert s["max"] >= s["p95"] >= s["p50"] >= 1

    def test_snapshot_and_reset(self, scheme):
        led = Ledger()
        obs.set_ledger(led)
        with led.run():
            self.run_batch(scheme, n=8)
        snap = led.snapshot()
        assert snap["counters"]["protocol.batches"] == 2
        assert snap["gf_ops"]["mul"] >= 0
        assert len(snap["batches"]) == 2
        led.reset()
        assert led.counters == {} and led.batches == []
        assert led.total_seconds == 0.0
        assert led.gf.total() == 0
        # sink still installed: new work is counted again
        self.run_batch(scheme, n=8)
        assert led.counters["protocol.batches"] == 2
