"""Tests for the Section-3 access protocol engine."""

import numpy as np
import pytest

from repro.core.protocol import AccessResult, run_access_protocol
from repro.mpc.memory import SharedCopyStore


def manual_modules(rows):
    return np.array(rows, dtype=np.int64)


class TestValidation:
    def test_requires_2d(self):
        with pytest.raises(ValueError):
            run_access_protocol(np.array([1, 2, 3]), 10, 1)

    def test_bad_majority(self):
        mods = manual_modules([[0, 1, 2]])
        with pytest.raises(ValueError):
            run_access_protocol(mods, 10, 0)
        with pytest.raises(ValueError):
            run_access_protocol(mods, 10, 4)

    def test_bad_op(self):
        with pytest.raises(ValueError):
            run_access_protocol(manual_modules([[0, 1, 2]]), 10, 2, op="flush")

    def test_write_requires_store_and_values(self):
        mods = manual_modules([[0, 1, 2]])
        with pytest.raises(ValueError):
            run_access_protocol(mods, 10, 2, op="write")
        store = SharedCopyStore(10, 4)
        slots = np.zeros_like(mods)
        with pytest.raises(ValueError):
            run_access_protocol(mods, 10, 2, op="write", store=store, slots=slots)

    def test_value_range_enforced(self):
        mods = manual_modules([[0, 1, 2]])
        store = SharedCopyStore(10, 4)
        slots = np.zeros_like(mods)
        with pytest.raises(ValueError):
            run_access_protocol(
                mods, 10, 2, op="write", store=store, slots=slots,
                values=np.array([1 << 33]),
            )


class TestCounting:
    def test_single_variable_one_iteration(self):
        res = run_access_protocol(manual_modules([[0, 1, 2]]), 5, 2)
        # one phase has the variable; two empty phases
        assert res.iterations_per_phase.count(0) == 2
        assert res.max_phase_iterations == 1
        assert res.n_requests == 1

    def test_disjoint_variables_parallel(self):
        # 4 variables with fully disjoint copies: 1 iteration per phase
        mods = manual_modules(
            [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9, 10, 11]]
        )
        res = run_access_protocol(mods, 12, 2)
        assert res.max_phase_iterations == 1

    def test_total_conflict_serializes(self):
        # k variables sharing ALL their modules, forced into one phase:
        # per iteration each of 3 modules serves one copy, so ~k*2/3 iters
        k = 9
        mods = manual_modules([[0, 1, 2]] * k)
        res = run_access_protocol(mods, 5, 2, n_phases=1)
        assert res.max_phase_iterations >= (k * 2) // 3

    def test_majority_stops_early(self):
        # A variable that reaches its majority stops requesting its last
        # copy.  X = [0,1,2] wins modules 0 and 1 in iteration 1 (its
        # copy at module 2 is beaten by earlier competitors) and must
        # then retire; the competitors [2,7,8] serialize on their shared
        # modules.  Total serves: 3 per competitor + only 2 for X.
        mods = manual_modules([[2, 7, 8]] * 4 + [[0, 1, 2]])
        res = run_access_protocol(mods, 10, 2, n_phases=1)
        assert res.mpc_stats.served == 3 * 4 + 2

    def test_all_copies_requested_same_iteration_may_exceed_majority(self):
        # With no contention all q+1 copies are served simultaneously in
        # iteration 1 even though only the majority was required.
        res = run_access_protocol(manual_modules([[0, 1, 2]]), 5, 2)
        assert res.mpc_stats.served == 3
        assert res.max_phase_iterations == 1

    def test_full_quorum(self):
        mods = manual_modules([[0, 1, 2]])
        res = run_access_protocol(mods, 5, 3)
        assert res.mpc_stats.served == 3

    def test_phase_structure(self):
        mods = manual_modules([[i, i + 1, i + 2] for i in range(6)])
        res = run_access_protocol(mods, 10, 2)
        assert len(res.phases) == 3
        # variables 0,3 in phase 0; 1,4 in phase 1; 2,5 in phase 2
        assert all(p.live_history[0] == 2 for p in res.phases)

    def test_n_phases_override(self):
        mods = manual_modules([[i % 5, (i + 1) % 5, (i + 2) % 5] for i in range(10)])
        res1 = run_access_protocol(mods, 5, 2, n_phases=1)
        assert len(res1.phases) == 1
        assert res1.phases[0].live_history[0] == 10

    def test_n_phases_invalid(self):
        with pytest.raises(ValueError):
            run_access_protocol(manual_modules([[0, 1, 2]]), 5, 2, n_phases=0)

    def test_empty_request_set(self):
        mods = np.empty((0, 3), dtype=np.int64)
        res = run_access_protocol(mods, 5, 2)
        assert res.total_iterations == 0


class TestHistories:
    def test_live_history_monotone(self):
        rng = np.random.default_rng(0)
        mods = rng.integers(0, 20, size=(30, 3))
        # fix duplicate copies within rows
        for row in mods:
            while len(set(row.tolist())) < 3:
                row[:] = rng.integers(0, 20, 3)
        res = run_access_protocol(mods, 20, 2)
        for p in res.phases:
            hist = p.live_history
            assert hist == sorted(hist, reverse=True)
            assert hist[-1] == 0
            assert p.iterations == len(hist) - 1

    def test_history_disabled(self):
        mods = manual_modules([[0, 1, 2]])
        res = run_access_protocol(mods, 5, 2, collect_history=False)
        assert res.phases[0].live_history == [] or res.phases[0].iterations >= 0


class TestReadWrite:
    def test_round_trip(self):
        mods = manual_modules([[0, 1, 2], [1, 2, 3], [4, 0, 3]])
        slots = manual_modules([[0, 0, 0], [1, 1, 1], [2, 2, 2]])
        store = SharedCopyStore(5, 3)
        vals = np.array([10, 20, 30])
        run_access_protocol(
            mods, 5, 2, op="write", store=store, slots=slots, values=vals, time=1
        )
        res = run_access_protocol(
            mods, 5, 2, op="read", store=store, slots=slots, time=2
        )
        assert res.values.tolist() == [10, 20, 30]

    def test_unwritten_reads_minus_one(self):
        mods = manual_modules([[0, 1, 2]])
        slots = manual_modules([[0, 0, 0]])
        store = SharedCopyStore(5, 1)
        res = run_access_protocol(mods, 5, 2, op="read", store=store, slots=slots)
        assert res.values.tolist() == [-1]

    def test_majority_intersection_freshness(self):
        # write twice with increasing time; reader must see the new value
        # even though some copies still hold the old one
        mods = manual_modules([[0, 1, 2]])
        slots = manual_modules([[0, 0, 0]])
        store = SharedCopyStore(5, 1)
        run_access_protocol(
            mods, 5, 2, op="write", store=store, slots=slots,
            values=np.array([111]), time=1,
        )
        run_access_protocol(
            mods, 5, 2, op="write", store=store, slots=slots,
            values=np.array([222]), time=2,
        )
        res = run_access_protocol(mods, 5, 2, op="read", store=store, slots=slots)
        assert res.values.tolist() == [222]
        # at most one copy can be stale; verify via direct cell inspection
        stamps = store.stamps[[0, 1, 2], [0, 0, 0]]
        assert np.sort(stamps)[-2] == 2  # at least a majority carries t=2


class TestAccessResultAPI:
    def test_modeled_steps_positive(self):
        mods = manual_modules([[0, 1, 2], [3, 4, 5]])
        res = run_access_protocol(mods, 10, 2)
        assert res.modeled_steps(N=10) > 0
        assert res.modeled_steps(N=10, addressing_steps=7) > 0

    def test_totals(self):
        mods = manual_modules([[0, 1, 2]] * 6)
        res = run_access_protocol(mods, 5, 2)
        assert res.total_iterations == sum(res.iterations_per_phase)
        assert isinstance(res, AccessResult)


class TestDerivedProperties:
    """PhaseTrace/AccessResult arithmetic, pinned on synthetic traces."""

    def make_result(self, phases, q=2):
        from repro.mpc.stats import MPCStats

        return AccessResult(
            op="count", n_requests=0, q=q, phases=phases, values=None,
            mpc_stats=MPCStats(),
        )

    def test_phase_trace_invariant(self):
        from repro.core.protocol import PhaseTrace

        t = PhaseTrace(iterations=3, live_history=[9, 4, 1, 0])
        assert t.iterations == len(t.live_history) - 1

    def test_iterations_per_phase_order(self):
        from repro.core.protocol import PhaseTrace

        res = self.make_result(
            [PhaseTrace(2, [5, 1, 0]), PhaseTrace(4, [7, 5, 3, 1, 0]),
             PhaseTrace(1, [2, 0])]
        )
        assert res.iterations_per_phase == [2, 4, 1]
        assert res.max_phase_iterations == 4
        assert res.total_iterations == 7

    def test_empty_phases_defaults(self):
        res = self.make_result([])
        assert res.iterations_per_phase == []
        assert res.max_phase_iterations == 0  # max() default, no raise
        assert res.total_iterations == 0
        assert res.modeled_steps(N=8) == 0

    def test_modeled_steps_formula(self):
        from repro.core.protocol import PhaseTrace

        # q=2: coord = ceil(log2(3)) + 1 = 3; N=16: addr = 4
        res = self.make_result(
            [PhaseTrace(2, [3, 1, 0]), PhaseTrace(1, [1, 0])], q=2
        )
        assert res.modeled_steps(N=16) == (2 * 3 + 4) + (1 * 3 + 4)
        # explicit addressing_steps overrides the log2(N) default
        assert res.modeled_steps(N=16, addressing_steps=0) == 6 + 3
        assert res.modeled_steps(N=16, addressing_steps=10) == 16 + 13

    def test_modeled_steps_matches_live_run(self):
        mods = manual_modules([[0, 1, 2]] * 4)
        res = run_access_protocol(mods, 5, 2)
        import math

        coord = math.ceil(math.log2(res.q + 1)) + 1
        addr = math.ceil(math.log2(5))
        expect = sum(p.iterations * coord + addr for p in res.phases)
        assert res.modeled_steps(N=5) == expect
