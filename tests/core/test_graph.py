"""Tests for the memory graph G(V, U; E): Fact 1, Lemmas 1-3,
Theorems 2-3, against exhaustive ground truth at (2,3) and sampled at
larger parameters."""

from collections import Counter

import numpy as np
import pytest

from repro.core.bounds import fact1_counts
from repro.core.graph import MemoryGraph


class TestConstruction:
    def test_rejects_odd_q(self):
        with pytest.raises(ValueError):
            MemoryGraph(3, 3)
        with pytest.raises(ValueError):
            MemoryGraph(6, 3)

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            MemoryGraph(2, 2)

    def test_fact1_q2_n3(self, graph_2_3):
        c = fact1_counts(2, 3)
        assert graph_2_3.M == c["V"] == 84
        assert graph_2_3.N == c["U"] == 63
        assert graph_2_3.copies_per_variable == c["deg_V"] == 3
        assert graph_2_3.module_degree == c["deg_U"] == 4

    def test_fact1_q4_n3(self, graph_4_3):
        c = fact1_counts(4, 3)
        assert graph_4_3.M == c["V"] == 4368
        assert graph_4_3.N == c["U"] == 1365
        assert graph_4_3.copies_per_variable == 5
        assert graph_4_3.majority == 3

    @pytest.mark.parametrize("q,n", [(2, 5), (2, 7), (2, 9), (4, 3)])
    def test_fact1_formula_consistency(self, q, n):
        g = MemoryGraph(q, n)
        c = fact1_counts(q, n)
        assert g.M == c["V"] and g.N == c["U"]

    def test_describe_exponent(self, graph_2_5):
        d = graph_2_5.describe()
        # M = Theta(N^{3/2 - 3/(4n-2)}): measured exponent near prediction
        assert abs(d["M_exponent_vs_N"] - d["predicted_exponent"]) < 0.15


class TestPGamma:
    def test_size(self, graph_2_3):
        assert graph_2_3.p_gamma.shape[0] == 4  # q^{n-1}

    def test_distinct_and_inverse(self, graph_2_5):
        g = graph_2_5
        assert np.unique(g.p_gamma).size == g.p_gamma.size
        for k, p in enumerate(g.p_gamma):
            assert g.p_gamma_inverse[int(p)] == k

    def test_zero_constant_term_q2(self, graph_2_3):
        # for q=2 the basis (1, gamma, ...) is the bit basis: low bit 0
        assert all(int(p) % 2 == 0 for p in graph_2_3.p_gamma)

    def test_closed_under_addition(self, graph_2_5):
        # P_gamma is an F_q-subspace
        g = graph_2_5
        P = set(int(p) for p in g.p_gamma)
        some = sorted(P)[:8]
        for a in some:
            for b in some:
                assert (a ^ b) in P


class TestLemma1:
    def test_against_explicit_edges(self, graph_2_3):
        g = graph_2_3
        edges = g.explicit_edges()
        for A in g.all_variable_matrices():
            key = g.variables.key(A)
            mods = g.gamma_variable(A)
            assert len(set(mods)) == g.q + 1
            assert {(key, u) for u in mods} <= edges

    def test_copy_zero_is_A_itself(self, graph_2_3):
        g = graph_2_3
        A = g.all_variable_matrices()[10]
        assert g.gamma_variable(A)[0] == g.modules.index_of(A)

    def test_vectorized_agrees(self, graph_2_5, rng):
        g = graph_2_5
        mats = g.random_variable_matrices(200, rng)
        got = g.vgamma_variables(mats)
        for i in range(200):
            A = tuple(int(x[i]) for x in mats)
            assert got[i].tolist() == g.gamma_variable(A)

    def test_q4_five_distinct_copies(self, graph_4_3, rng):
        g = graph_4_3
        mats = g.random_variable_matrices(50, rng)
        got = g.vgamma_variables(mats)
        for row in got:
            assert len(set(row.tolist())) == 5


class TestLemma2:
    def test_against_explicit_edges(self, graph_2_3):
        g = graph_2_3
        edges = g.explicit_edges()
        for u in range(g.N):
            keys = g.gamma_module_keys(u)
            assert len(set(keys)) == g.module_degree
            assert {(v, u) for v in keys} <= edges

    def test_duality(self, graph_2_3):
        # v in Gamma(u) <=> u in Gamma(v)
        g = graph_2_3
        for u in range(0, g.N, 9):
            for mat in g.gamma_module(u):
                assert u in g.gamma_variable(g.variables.canon(mat))


class TestLemma3:
    def test_gamma2_size(self, graph_2_3):
        g = graph_2_3
        for u in range(0, g.N, 5):
            g2 = g.gamma2_module(u)
            # q^n cosets, one of which is u itself (delta making it wrap)
            assert len(g2) == g.F.order

    def test_gamma2_is_two_step_neighborhood(self, graph_2_3):
        g = graph_2_3
        for u in range(0, g.N, 13):
            two_step = set()
            for mat in g.gamma_module(u):
                two_step.update(g.gamma_variable(g.variables.canon(mat)))
            assert set(g.gamma2_module(u)) | {u} == two_step | {u}


class TestTheorem2:
    def test_pairwise_intersection_at_most_1_exhaustive(self, graph_2_3):
        g = graph_2_3
        gams = [set(g.gamma_variable(A)) for A in g.all_variable_matrices()]
        for i in range(len(gams)):
            for j in range(i):
                assert len(gams[i] & gams[j]) <= 1

    def test_sampled_n5(self, graph_2_5, rng):
        g = graph_2_5
        mats = g.random_variable_matrices(120, rng)
        rows = g.vgamma_variables(mats)
        for i in range(120):
            for j in range(i):
                inter = set(rows[i].tolist()) & set(rows[j].tolist())
                assert len(inter) <= 1

    def test_sampled_q4(self, graph_4_3, rng):
        g = graph_4_3
        mats = g.random_variable_matrices(60, rng)
        rows = g.vgamma_variables(mats)
        for i in range(60):
            for j in range(i):
                assert len(set(rows[i].tolist()) & set(rows[j].tolist())) <= 1


class TestTheorem3:
    def test_exhaustive_n3(self, graph_2_3):
        g = graph_2_3
        g2 = [set(g.gamma2_module(u)) - {u} for u in range(g.N)]
        worst = 0
        for i in range(g.N):
            for j in range(i):
                worst = max(worst, len(g2[i] & g2[j]))
        assert worst <= g.q - 1

    def test_case2_tightness_exists_q4(self, graph_4_3):
        # Theorem 3 CASE 2 achieves exactly q-1 for some module pairs.
        g = graph_4_3
        base = set(g.gamma2_module(0)) - {0}
        found = 0
        for u in range(1, 60):
            other = set(g.gamma2_module(u)) - {u}
            found = max(found, len(base & other))
        assert found == g.q - 1


class TestSamplingAndKeys:
    def test_random_distinct(self, graph_2_5, rng):
        g = graph_2_5
        mats = g.random_variable_matrices(500, rng)
        keys = g.vkeys(mats)
        assert np.unique(keys).size == 500

    def test_too_many_raises(self, graph_2_3, rng):
        with pytest.raises(ValueError):
            graph_2_3.random_variable_matrices(85, rng)

    def test_vkeys_matches_scalar(self, graph_2_3):
        g = graph_2_3
        mats = g.all_variable_matrices()
        arr = np.array(mats, dtype=np.int64)
        keys = g.vkeys((arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]))
        assert keys.tolist() == [g.variables.key(m) for m in mats]

    def test_explicit_edge_degrees(self, graph_2_3):
        g = graph_2_3
        edges = g.explicit_edges()
        vdeg = Counter(v for v, _ in edges)
        udeg = Counter(u for _, u in edges)
        assert set(vdeg.values()) == {g.q + 1}
        assert set(udeg.values()) == {g.module_degree}
