"""Tests for the Section-4 addressing layer (Theorem 8 realization)."""

import numpy as np
import pytest

from repro.core.addressing import AddressLayer, OpCounter
from repro.core.graph import MemoryGraph
from repro.pgl.matrix import pgl2_mul


@pytest.fixture(scope="module")
def addr3():
    return AddressLayer(MemoryGraph(2, 3))


@pytest.fixture(scope="module")
def addr5():
    return AddressLayer(MemoryGraph(2, 5))


class TestConstruction:
    def test_rejects_q4(self):
        with pytest.raises(ValueError):
            AddressLayer(MemoryGraph(4, 3))

    def test_rejects_even_n(self):
        with pytest.raises(ValueError):
            AddressLayer(MemoryGraph(2, 6))

    def test_block_sizes_n3(self, addr3):
        assert (addr3.c1, addr3.c2, addr3.c3, addr3.c4) == (7, 21, 21, 35)
        assert addr3.M == 84

    def test_block_sizes_n5(self, addr5):
        assert addr5.c1 == 31
        assert addr5.c2 == addr5.c3 == 31 * 15
        assert addr5.c4 == 5 * 31 * 29
        assert addr5.M == 5456

    def test_constants(self, addr5):
        # sigma = 3 tau; rho = tau (2^n - 1); G = 3 rho
        assert addr5.sigma == 3 * addr5.tau
        assert addr5.rho == addr5.tau * (2**5 - 1)
        assert addr5.G == 3 * addr5.rho

    def test_w_generates_f4(self, addr5):
        L = addr5.L
        assert addr5.w != 1
        assert L.pow(addr5.w, 3) == 1


class TestTheorem8Completeness:
    """The S-sets form a complete, distinct system of coset reps."""

    @pytest.mark.parametrize("fixture", ["addr3", "addr5"])
    def test_all_distinct_cosets(self, fixture, request):
        addr = request.getfixturevalue(fixture)
        g = addr.graph
        keys = {g.variables.key(addr.unrank(i)) for i in range(addr.M)}
        assert len(keys) == g.M

    def test_unrank_out_of_range(self, addr3):
        with pytest.raises(ValueError):
            addr3.unrank(-1)
        with pytest.raises(ValueError):
            addr3.unrank(84)


class TestRankUnrank:
    def test_rank_inverts_unrank_exhaustive_n3(self, addr3):
        for i in range(addr3.M):
            assert addr3.rank(addr3.unrank(i)) == i

    def test_rank_inverts_unrank_sampled_n5(self, addr5):
        for i in range(0, addr5.M, 13):
            assert addr5.rank(addr5.unrank(i)) == i

    def test_rank_constant_on_cosets(self, addr3):
        g = addr3.graph
        rng = np.random.default_rng(5)
        for _ in range(60):
            i = int(rng.integers(0, addr3.M))
            A = addr3.unrank(i)
            h = g.H0.elements()[int(rng.integers(0, 6))]
            assert addr3.rank(pgl2_mul(g.F, A, h)) == i

    def test_rank_invariant_under_scalar(self, addr5):
        # rank must not depend on which projective representative is fed
        g = addr5.graph
        A = addr5.unrank(1234)
        assert addr5.rank(A) == 1234


class TestVectorizedUnrank:
    def test_matches_scalar_exhaustive_n3(self, addr3):
        idx = np.arange(addr3.M, dtype=np.int64)
        va, vb, vc, vd = addr3.vunrank(idx)
        for i in range(addr3.M):
            assert (int(va[i]), int(vb[i]), int(vc[i]), int(vd[i])) == addr3.unrank(i)

    def test_matches_scalar_sampled_n5(self, addr5):
        rng = np.random.default_rng(7)
        idx = rng.choice(addr5.M, 400, replace=False).astype(np.int64)
        mats = addr5.vunrank(idx)
        for k in range(400):
            assert tuple(int(x[k]) for x in mats) == addr5.unrank(int(idx[k]))

    def test_out_of_range_raises(self, addr3):
        with pytest.raises(ValueError):
            addr3.vunrank(np.array([0, 84]))

    def test_scale_n9(self):
        addr = AddressLayer(MemoryGraph(2, 9))
        rng = np.random.default_rng(0)
        idx = rng.choice(addr.M, 5000, replace=False).astype(np.int64)
        mats = addr.vunrank(idx)
        for k in range(0, 5000, 487):
            assert tuple(int(x[k]) for x in mats) == addr.unrank(int(idx[k]))


class TestVectorizedRank:
    def test_inverts_vunrank_exhaustive_n3(self, addr3):
        idx = np.arange(addr3.M, dtype=np.int64)
        assert np.array_equal(addr3.vrank(addr3.vunrank(idx)), idx)

    def test_inverts_vunrank_exhaustive_n5(self, addr5):
        idx = np.arange(addr5.M, dtype=np.int64)
        assert np.array_equal(addr5.vrank(addr5.vunrank(idx)), idx)

    def test_non_canonical_representatives(self, addr5):
        g = addr5.graph
        rng = np.random.default_rng(3)
        sub = rng.choice(addr5.M, 300, replace=False)
        reps = []
        for i in sub:
            h = g.H0.elements()[int(rng.integers(0, 6))]
            reps.append(pgl2_mul(g.F, addr5.unrank(int(i)), h))
        arr = np.array(reps, dtype=np.int64)
        got = addr5.vrank((arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]))
        assert np.array_equal(got, sub)

    def test_matches_scalar_rank(self, addr3):
        idx = np.arange(addr3.M, dtype=np.int64)
        mats = addr3.vunrank(idx)
        scalar = [addr3.rank(tuple(int(x[i]) for x in mats)) for i in range(addr3.M)]
        assert addr3.vrank(mats).tolist() == scalar


class TestS4Combinatorics:
    def test_residues_structure(self, addr5):
        # {s, s+tau, s+2tau} with exactly one below tau
        for s in range(1, addr5.smax + 1):
            res = addr5._s4_residues(s)
            assert sorted(res) == sorted([s, s + addr5.tau, s + 2 * addr5.tau])
            assert sum(1 for r in res if r < addr5.tau) == 1

    def test_count_matches_bruteforce(self, addr3):
        a = addr3
        L, G = a.L, a.G
        for s in range(1, a.smax + 1):
            brute = []
            for i in range(1, a.rho):
                if i % a.tau == 0:
                    continue
                for j in range(3):
                    # condition: lambda^s * (w^j lambda^i)^{-1} in K^*
                    val = L.exp((s - j * a.rho - i) % G)
                    excluded = a.embedding.contains(val) and val != 0
                    if not excluded:
                        brute.append((i, j))
            assert len(brute) == a.c4_per_s
            # unrank agreement
            for r, (i, j) in enumerate(brute):
                assert a._s4_unrank(s, r) == (i, j)
                assert a._s4_rank(s, i, j) == r

    def test_paper_exclusion_count(self, addr5):
        # "for each s there are exactly 2^n - 1 excluded pairs"
        a = addr5
        qn = 1 << a.n
        for s in range(1, a.smax + 1):
            total_tau_ok = 3 * ((a.rho - 1) - (a.rho // a.tau - 1))
            assert total_tau_ok - a.c4_per_s == qn - 1

    def test_unrank_out_of_range(self, addr3):
        with pytest.raises(ValueError):
            addr3._s4_unrank(1, addr3.c4_per_s)


class TestSlots:
    def test_locate_consistent_with_lemma2(self, addr3):
        g = addr3.graph
        for i in range(0, addr3.M, 7):
            A = addr3.unrank(i)
            for (u, k) in addr3.locate(i):
                stored = g.gamma_module(u)[k]
                assert g.variables.key(stored) == g.variables.key(A)

    def test_slot_unique_per_module(self, addr3):
        # the M*(q+1) copies occupy distinct (module, slot) cells
        cells = set()
        for i in range(addr3.M):
            for cell in addr3.locate(i):
                cells.add(cell)
        assert len(cells) == addr3.M * 3

    def test_slot_of_non_neighbor_raises(self, addr3):
        g = addr3.graph
        A = addr3.unrank(0)
        mods = set(g.gamma_variable(A))
        non_neighbor = next(u for u in range(g.N) if u not in mods)
        with pytest.raises(ValueError):
            addr3.slot_of(A, non_neighbor)


class TestOpCounter:
    def test_counts_accumulate(self, addr5):
        addr5.ops.reset()
        addr5.unrank(17)
        addr5.unrank(5000)
        assert addr5.ops.calls == 2
        assert addr5.ops.field_ops > 0
        assert addr5.ops.modeled_steps() > 0

    def test_modeled_steps_logarithmic(self):
        # per-call modeled steps grow ~ n, not ~ N
        per_call = {}
        for n in (3, 5, 7, 9):
            addr = AddressLayer(MemoryGraph(2, n))
            addr.ops.reset()
            rng = np.random.default_rng(1)
            k = 200
            for i in rng.integers(0, addr.M, k):
                addr.unrank(int(i))
            per_call[n] = addr.ops.modeled_steps() / k
        # roughly linear in n: ratio between n=9 and n=3 below 9/3 * slack
        assert per_call[9] < per_call[3] * 8
        assert per_call[9] > per_call[3]

    def test_reset(self):
        c = OpCounter(n=5)
        c.field_ops = 10
        c.reset()
        assert c.field_ops == 0 and c.n == 5
