"""Property-based tests of the addressing layer (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.addressing import AddressLayer
from repro.core.graph import MemoryGraph
from repro.pgl.matrix import pgl2_mul


@pytest.fixture(scope="module")
def addr7():
    return AddressLayer(MemoryGraph(2, 7))


class TestRoundTripProperties:
    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, 349503))
    def test_rank_unrank_identity_n7(self, i):
        addr = AddressLayer(MemoryGraph(2, 7))
        assert addr.rank(addr.unrank(i)) == i

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 349503), st.integers(0, 5))
    def test_rank_invariant_under_h0(self, i, hidx):
        addr = AddressLayer(MemoryGraph(2, 7))
        g = addr.graph
        A = addr.unrank(i)
        h = g.H0.elements()[hidx]
        assert addr.rank(pgl2_mul(g.F, A, h)) == i

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 349503), min_size=1, max_size=64, unique=True))
    def test_vunrank_vrank_batch(self, indices):
        addr = AddressLayer(MemoryGraph(2, 7))
        idx = np.array(indices, dtype=np.int64)
        assert np.array_equal(addr.vrank(addr.vunrank(idx)), idx)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 349503))
    def test_unrank_produces_nonsingular_canonical(self, i):
        from repro.pgl.matrix import pgl2_canon, pgl2_det

        addr = AddressLayer(MemoryGraph(2, 7))
        A = addr.unrank(i)
        assert pgl2_det(addr.K, A) != 0
        assert pgl2_canon(addr.K, A) == A

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 349503))
    def test_locate_distinct_modules(self, i):
        addr = AddressLayer(MemoryGraph(2, 7))
        loc = addr.locate(i)
        mods = [u for u, _ in loc]
        slots_ok = all(0 <= k < addr.graph.module_degree for _, k in loc)
        assert len(set(mods)) == 3 and slots_ok


class TestS4Properties:
    @settings(max_examples=150, deadline=None)
    @given(st.integers(1, 10), st.integers(0, 100))
    def test_s4_rank_unrank_roundtrip(self, s, r):
        addr = AddressLayer(MemoryGraph(2, 7))
        s = min(s, addr.smax)
        r = r % addr.c4_per_s
        i, j = addr._s4_unrank(s, r)
        assert addr._s4_pair_valid(s, i, j)
        assert addr._s4_rank(s, i, j) == r

    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 10), st.integers(1, 10**6))
    def test_s4_count_monotone(self, s, x):
        addr = AddressLayer(MemoryGraph(2, 7))
        s = min(s, addr.smax)
        x = x % addr.rho
        assert addr._s4_count(s, x) >= addr._s4_count(s, max(0, x - 1))
