"""Tests for the executable bound formulas."""

import math

import pytest

from repro.core.bounds import (
    RECURRENCE_C,
    expansion_lower_bound,
    fact1_counts,
    live_expansion_lower_bound,
    lower_bound_average_r,
    lower_bound_exact_r,
    phi_bound,
    recurrence_step,
    simulate_recurrence,
    total_time_bound,
)


class TestFact1:
    def test_known_values(self):
        c = fact1_counts(2, 3)
        assert c == {"V": 84, "U": 63, "deg_V": 3, "deg_U": 4}

    def test_edge_count_consistency(self):
        # |V| * deg_V == |U| * deg_U for a biregular bipartite graph
        for q, n in [(2, 3), (2, 5), (2, 9), (4, 3), (4, 5), (8, 3)]:
            c = fact1_counts(q, n)
            assert c["V"] * c["deg_V"] == c["U"] * c["deg_U"]

    def test_asymptotics(self):
        # N = Theta(q^{2n-1}), M = Theta(q^{3n-3})
        c = fact1_counts(2, 9)
        assert 0.5 < c["U"] / 2 ** (2 * 9 - 1) < 2.5
        assert 0.1 < c["V"] / 2 ** (3 * 9 - 3) < 3


class TestExpansionBounds:
    def test_theorem4_constant(self):
        assert expansion_lower_bound(8, 2) == pytest.approx(8 ** (2 / 3) * 2 / 2 ** (1 / 3))

    def test_theorem5_weaker(self):
        for s in (1, 10, 1000):
            assert live_expansion_lower_bound(s, 2) < expansion_lower_bound(s, 2)

    def test_monotone_in_size(self):
        vals = [expansion_lower_bound(s, 2) for s in range(1, 100)]
        assert vals == sorted(vals)


class TestRecurrence:
    def test_step_decreases(self):
        r = 1000.0
        r2 = recurrence_step(r, 2)
        assert 0 < r2 < r

    def test_step_at_zero(self):
        assert recurrence_step(0, 2) == 0.0

    def test_default_constant(self):
        assert RECURRENCE_C == pytest.approx(0.397)

    def test_simulation_terminates(self):
        traj = simulate_recurrence(10000, 2)
        assert traj[0] == 10000
        assert traj[-1] <= 1.0
        assert all(traj[i + 1] <= traj[i] for i in range(len(traj) - 1))

    def test_iterations_scale_as_cube_root(self):
        # length of trajectory ~ R0^{1/3}: ratio for 1000x input ~ 10
        len1 = len(simulate_recurrence(1_000, 2))
        len2 = len(simulate_recurrence(1_000_000, 2))
        ratio = len2 / len1
        assert 7 < ratio < 14

    def test_larger_c_converges_faster(self):
        slow = len(simulate_recurrence(100000, 2, c=0.2))
        fast = len(simulate_recurrence(100000, 2, c=0.6))
        assert fast < slow

    def test_larger_q_converges_faster(self):
        q2 = len(simulate_recurrence(100000, 2))
        q8 = len(simulate_recurrence(100000, 8))
        assert q8 < q2


class TestTimeBounds:
    def test_phi_bound_shape(self):
        assert phi_bound(1, 2) == 1.0
        assert phi_bound(1000, 2) == pytest.approx(1000 ** (1 / 3) * 4)  # log*1000=4

    def test_total_time_includes_log_n(self):
        small_req = total_time_bound(2, 2**20, 2)
        assert small_req >= 20  # the log N term dominates tiny N'

    def test_lower_bound_exact(self):
        assert lower_bound_exact_r(10**6, 10**3, 3) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            lower_bound_exact_r(10, 10, 0)

    def test_lower_bound_average_weaker(self):
        # the exact-r bound (Theorem 7, this paper) strictly dominates the
        # average-r bound of [UW87]
        M, N = 10**6, 10**3
        for r in (2, 3, 5):
            assert lower_bound_exact_r(M, N, r) > lower_bound_average_r(M, N, r)

    def test_paper_closing_remark(self):
        # q=2 (r=3): lower bound ~ N^{1/6 - o(1)} when M = N^{3/2 - o(1)}
        N = 2**20
        M = int(N**1.45)
        got = lower_bound_exact_r(M, N, 3)
        assert got == pytest.approx((M / N) ** (1 / 3))
        assert math.log(got, N) == pytest.approx(0.15, abs=0.02)


class TestBoundRegistry:
    def ctx(self, n_prime, scheme="pp2", N=63):
        from repro.core.bounds import RunContext

        return RunContext(
            scheme=scheme, N=N, M=84, n_prime=n_prime, copies=3, majority=2
        )

    def test_shapes_known_quantities(self):
        from repro.core.bounds import ENVELOPE_QUANTITIES, envelope_shape

        c = self.ctx(32)
        for q in ENVELOPE_QUANTITIES:
            assert envelope_shape(q, c) > 0

    def test_unknown_quantity_rejected(self):
        from repro.core.bounds import BoundRegistry, Envelope, envelope_shape

        with pytest.raises(ValueError, match="unknown envelope"):
            envelope_shape("nope", self.ctx(8))
        with pytest.raises(ValueError, match="unknown envelope"):
            BoundRegistry().register(
                Envelope(scheme="x", quantity="nope", theorem="?", constant=1)
            )

    def test_rounds_shape_grows_with_both_coordinates(self):
        from repro.core.bounds import envelope_shape

        small = envelope_shape("rounds", self.ctx(8))
        assert envelope_shape("rounds", self.ctx(64)) > small
        assert envelope_shape("rounds", self.ctx(8, N=1023)) > small

    def test_fit_check_roundtrip(self):
        from repro.core.bounds import BoundRegistry, envelope_shape

        reg = BoundRegistry()
        cal = [
            (self.ctx(n), 0.5 * envelope_shape("rounds", self.ctx(n)))
            for n in (8, 16, 32)
        ]
        env = reg.fit("pp2", "rounds", cal, slack=1.25)
        assert env.theorem == "Theorem 1"
        assert env.constant == pytest.approx(0.625)
        assert reg.envelope("pp2", "rounds") is env
        # calibration points sit inside their own envelope
        for c, measured in cal:
            assert reg.check(c, {"rounds": measured}) == []

    def test_check_flags_with_exact_coordinates(self):
        from repro.core.bounds import BoundRegistry

        reg = BoundRegistry()
        reg.fit("pp2", "congestion_p95", [(self.ctx(16), 2.0)], slack=1.0)
        out = reg.check(self.ctx(16), {"congestion_p95": 50.0})
        assert len(out) == 1
        v = out[0]
        assert v.coordinates() == (
            "(scheme=pp2, N=63, N'=16, quantity=congestion_p95)"
        )
        assert "measured 50" in str(v) and "Fact 1" in str(v)

    def test_check_skips_unregistered(self):
        from repro.core.bounds import BoundRegistry

        reg = BoundRegistry()
        reg.fit("pp2", "rounds", [(self.ctx(16), 4.0)])
        # phi has no envelope for pp2; a huge value must NOT pass silently
        # as a violation of some other quantity -- it is skipped
        assert reg.check(self.ctx(16), {"phi": 1e9}) == []
        # and a different scheme has no envelopes at all
        assert reg.check(self.ctx(16, scheme="uw"), {"rounds": 1e9}) == []

    def test_envelopes_for_stable_order(self):
        from repro.core.bounds import BoundRegistry

        reg = BoundRegistry()
        reg.fit("pp2", "phi", [(self.ctx(16), 3.0)])
        reg.fit("pp2", "addr_field_ops", [(self.ctx(16), 6.0)])
        reg.fit("uw", "rounds", [(self.ctx(16, scheme="uw"), 9.0)])
        assert [e.quantity for e in reg.envelopes_for("pp2")] == [
            "addr_field_ops", "phi",
        ]
