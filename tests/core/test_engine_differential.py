"""Scalar-vs-vector engine differential harness.

The vectorized batch engine (`repro.core.protocol._run_phase`) is the
production path; the per-processor scalar loop (`repro.core.engine
.run_phase_scalar`) is the readable oracle.  These tests pin the two
op-for-op: same seeded workload through both engines must produce
identical values, arbitration winners, R_k histories, MPC statistics,
fault reports, and final module state -- across all six conformance
schemes, all three arbitration policies, and the fault/degraded paths.
"""

import numpy as np
import pytest

from repro.core.engine import (
    DEFAULT_ENGINE,
    ENGINE_ENV,
    ENGINES,
    resolve_engine,
)
from repro.core.protocol import run_access_protocol
from repro.core.scheme import PPScheme
from repro.conformance.streaming import SCHEME_KEYS, scheme_by_key
from repro.faults.models import FaultPlan
from repro.workloads.generators import op_batches


# ---------------------------------------------------------------------------
# comparison helpers


def _store_state(store):
    """Hashable/comparable snapshot of any store implementation."""
    if hasattr(store, "_cells"):  # sparse KeyedCopyStore
        return dict(store._cells)
    return store.values.copy(), store.stamps.copy()  # dense SharedCopyStore


def _assert_stores_equal(a, b):
    sa, sb = _store_state(a), _store_state(b)
    if isinstance(sa, dict):
        assert sa == sb
    else:
        np.testing.assert_array_equal(sa[0], sb[0])
        np.testing.assert_array_equal(sa[1], sb[1])


def _assert_results_equal(vec, sca):
    """Every observable of an AccessResult must match across engines."""
    assert vec.engine == "vector" and sca.engine == "scalar"
    assert vec.op == sca.op and vec.n_requests == sca.n_requests
    if vec.values is None:
        assert sca.values is None
    else:
        np.testing.assert_array_equal(vec.values, sca.values)
    assert len(vec.phases) == len(sca.phases)
    for pv, ps in zip(vec.phases, sca.phases):
        assert pv.iterations == ps.iterations
        assert pv.live_history == ps.live_history
    assert vec.mpc_stats.snapshot() == sca.mpc_stats.snapshot()
    if vec.unsatisfiable is None:
        assert sca.unsatisfiable is None
    else:
        np.testing.assert_array_equal(vec.unsatisfiable, sca.unsatisfiable)
    if vec.fault_report is None:
        assert sca.fault_report is None
    else:
        fv, fs = vec.fault_report, sca.fault_report
        np.testing.assert_array_equal(fv.outcomes, fs.outcomes)
        np.testing.assert_array_equal(fv.dead_copies, fs.dead_copies)
        np.testing.assert_array_equal(fv.grey_copies, fs.grey_copies)
        np.testing.assert_array_equal(fv.satisfied_at, fs.satisfied_at)
        np.testing.assert_array_equal(
            fv.implicated_modules, fs.implicated_modules
        )


def _run_workload(scheme, plan, engine, **kw):
    """Replay a read/write plan on a fresh store; return per-op results
    and the final store."""
    store = scheme.make_store() if hasattr(scheme, "make_store") else None
    results = []
    for t, (kind, idx) in enumerate(plan, start=1):
        if kind == "write":
            vals = (np.asarray(idx, dtype=np.int64) * 37 + t) % (1 << 20)
            res = scheme.write(
                idx, values=vals, store=store, time=t, engine=engine, **kw
            )
        else:
            res = scheme.read(idx, store=store, time=t, engine=engine, **kw)
        results.append(res)
    return results, store


# ---------------------------------------------------------------------------
# all six conformance schemes, mixed seeded workloads


@pytest.mark.parametrize("key", SCHEME_KEYS)
def test_workload_parity_across_schemes(key):
    scheme_v, scheme_s = scheme_by_key(key), scheme_by_key(key)
    plan = op_batches(min(scheme_v.M, 256), 120, seed=11, max_batch=16)
    res_v, store_v = _run_workload(scheme_v, plan, "vector")
    res_s, store_s = _run_workload(scheme_s, plan, "scalar")
    for rv, rs in zip(res_v, res_s):
        _assert_results_equal(rv, rs)
    _assert_stores_equal(store_v, store_s)


@pytest.mark.parametrize("key", SCHEME_KEYS)
def test_workload_parity_under_fault_plan(key):
    """A repro.faults plan (dead + grey modules) applied identically."""
    scheme_v, scheme_s = scheme_by_key(key), scheme_by_key(key)
    n = scheme_v.N
    grey = np.ones(n, dtype=np.int64)
    grey[:: max(1, n // 7)] = 3  # every 7th-ish module answers 1-in-3
    plan = FaultPlan(
        failed_modules=np.array([1, n - 2], dtype=np.int64),
        grey_periods=grey,
    )
    kw = plan.access_kwargs()
    ops = op_batches(min(scheme_v.M, 256), 80, seed=23, max_batch=12)
    res_v, store_v = _run_workload(scheme_v, ops, "vector", **kw)
    res_s, store_s = _run_workload(scheme_s, ops, "scalar", **kw)
    for rv, rs in zip(res_v, res_s):
        _assert_results_equal(rv, rs)
    _assert_stores_equal(store_v, store_s)


# ---------------------------------------------------------------------------
# arbitration policies (priority streams must match, incl. the RNG one)


@pytest.mark.parametrize("arbitration", ["lowest", "random", "rotating"])
def test_arbitration_parity(scheme_2_3, arbitration):
    idx = scheme_2_3.random_request_set(40, seed=5)
    common = dict(arbitration=arbitration, seed=17, collect_history=True)
    res_v = scheme_2_3.access(idx, op="count", engine="vector", **common)
    res_s = scheme_2_3.access(idx, op="count", engine="scalar", **common)
    _assert_results_equal(res_v, res_s)
    assert res_v.max_phase_iterations == res_s.max_phase_iterations


@pytest.mark.parametrize("arbitration", ["lowest", "random", "rotating"])
def test_arbitration_parity_read_write(scheme_2_3, arbitration):
    store_v, store_s = scheme_2_3.make_store(), scheme_2_3.make_store()
    idx = scheme_2_3.random_request_set(24, seed=8)
    vals = idx * 11 + 1
    kw = dict(arbitration=arbitration, seed=4)
    _assert_results_equal(
        scheme_2_3.write(idx, vals, store_v, time=1, engine="vector", **kw),
        scheme_2_3.write(idx, vals, store_s, time=1, engine="scalar", **kw),
    )
    _assert_results_equal(
        scheme_2_3.read(idx, store_v, time=2, engine="vector", **kw),
        scheme_2_3.read(idx, store_s, time=2, engine="scalar", **kw),
    )
    _assert_stores_equal(store_v, store_s)


# ---------------------------------------------------------------------------
# degraded / partial / lost paths


def test_failed_modules_allow_partial_parity(scheme_2_3):
    idx = scheme_2_3.random_request_set(30, seed=2)
    kw = dict(
        failed_modules=np.array([0, 5, 9], dtype=np.int64),
        allow_partial=True,
        collect_history=True,
    )
    res_v = scheme_2_3.access(idx, op="count", engine="vector", **kw)
    res_s = scheme_2_3.access(idx, op="count", engine="scalar", **kw)
    _assert_results_equal(res_v, res_s)
    assert res_v.fault_report is not None


def test_retry_limit_lost_variables_parity(scheme_2_3):
    """Grey modules + a tight retry budget: both engines must degrade
    and give up on the same variables at the same iteration."""
    n = scheme_2_3.N
    grey = np.ones(n, dtype=np.int64)
    grey[: n // 2] = 50  # half the machine nearly unresponsive
    idx = scheme_2_3.random_request_set(30, seed=3)
    kw = dict(
        grey_modules=grey, retry_limit=3, allow_partial=True,
        collect_history=True,
    )
    res_v = scheme_2_3.access(idx, op="count", engine="vector", **kw)
    res_s = scheme_2_3.access(idx, op="count", engine="scalar", **kw)
    _assert_results_equal(res_v, res_s)


def test_retry_exhaustion_error_message_parity(scheme_2_3):
    """Without allow_partial the engines must raise the *same* error."""
    n = scheme_2_3.N
    grey = np.full(n, 1000, dtype=np.int64)  # nobody answers in time
    idx = scheme_2_3.random_request_set(10, seed=1)
    msgs = []
    for engine in ENGINES:
        with pytest.raises(ValueError) as exc:
            scheme_2_3.access(
                idx, op="count", engine=engine,
                grey_modules=grey, retry_limit=2,
            )
        msgs.append(str(exc.value))
    assert msgs[0] == msgs[1]
    assert "retry_limit=2" in msgs[0]


def test_doomed_variables_unsatisfiable_parity():
    """Kill more than q/2 copies of everything: both engines must mark
    the same variables unsatisfiable upfront."""
    scheme = PPScheme(2, 3)
    idx = scheme.random_request_set(20, seed=6)
    dead = np.arange(scheme.N // 2, dtype=np.int64)  # half the machine
    kw = dict(failed_modules=dead, allow_partial=True)
    res_v = scheme.access(idx, op="count", engine="vector", **kw)
    res_s = scheme.access(idx, op="count", engine="scalar", **kw)
    _assert_results_equal(res_v, res_s)
    assert res_v.unsatisfiable is not None and res_v.unsatisfiable.any()


# ---------------------------------------------------------------------------
# raw protocol entry point (no scheme in the way)


def test_raw_protocol_parity_shared_modules():
    """Hand-built copy map with heavy module contention."""
    rng = np.random.default_rng(42)
    module_ids = rng.integers(0, 8, size=(25, 5)).astype(np.int64)
    out = [
        run_access_protocol(
            module_ids, 8, 3, op="count", collect_history=True,
            arbitration="random", seed=7, engine=engine,
        )
        for engine in ENGINES
    ]
    _assert_results_equal(*out)


# ---------------------------------------------------------------------------
# engine selection plumbing


def test_resolve_engine_rejects_unknown():
    with pytest.raises(ValueError, match="unknown engine"):
        resolve_engine("simd")


def test_resolve_engine_env_override(monkeypatch, scheme_2_3):
    monkeypatch.setenv(ENGINE_ENV, "scalar")
    assert resolve_engine(None) == "scalar"
    res = scheme_2_3.access(scheme_2_3.random_request_set(5, seed=0))
    assert res.engine == "scalar"
    monkeypatch.delenv(ENGINE_ENV)
    assert resolve_engine(None) == DEFAULT_ENGINE
    # explicit argument beats the environment
    monkeypatch.setenv(ENGINE_ENV, "scalar")
    assert resolve_engine("vector") == "vector"


def test_result_records_engine(scheme_2_3, monkeypatch):
    monkeypatch.delenv(ENGINE_ENV, raising=False)
    idx = scheme_2_3.random_request_set(4, seed=0)
    assert scheme_2_3.access(idx).engine == DEFAULT_ENGINE
    assert scheme_2_3.access(idx, engine="scalar").engine == "scalar"
