"""Property-based tests of the protocol engine on *arbitrary* placements.

The engine must be correct for any (V, r) module matrix with distinct
entries per row -- not just the PGL2 placement.  Hypothesis generates
placements; the invariants are model-level:

* termination, with iteration count bounded by total conflicting work;
* every variable accumulates >= quorum accessed copies;
* one-service-per-module-per-iteration (via the MPC contract);
* the live-variable history is non-increasing and ends at zero;
* cost is invariant under variable-order permutation when a single
  phase is used (same multiset of copy tasks).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.protocol import run_access_protocol


@st.composite
def placements(draw):
    n_modules = draw(st.integers(3, 40))
    copies = draw(st.integers(1, min(5, n_modules)))
    v = draw(st.integers(1, 30))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    rows = np.empty((v, copies), dtype=np.int64)
    for i in range(v):
        rows[i] = rng.choice(n_modules, copies, replace=False)
    quorum = draw(st.integers(1, copies))
    return rows, n_modules, quorum


class TestProtocolInvariants:
    @settings(max_examples=60, deadline=None)
    @given(placements())
    def test_terminates_within_work_bound(self, p):
        rows, n_modules, quorum = p
        res = run_access_protocol(rows, n_modules, quorum)
        V, copies = rows.shape
        # worst case: every copy of every variable serialized on 1 module
        assert res.total_iterations <= V * copies + copies

    @settings(max_examples=60, deadline=None)
    @given(placements())
    def test_every_variable_reaches_quorum(self, p):
        rows, n_modules, quorum = p
        res = run_access_protocol(rows, n_modules, quorum)
        V = rows.shape[0]
        # served copies count >= quorum per variable
        assert res.mpc_stats.served >= quorum * V

    @settings(max_examples=60, deadline=None)
    @given(placements())
    def test_live_history_monotone_to_zero(self, p):
        rows, n_modules, quorum = p
        res = run_access_protocol(rows, n_modules, quorum)
        for ph in res.phases:
            h = ph.live_history
            assert h == sorted(h, reverse=True)
            assert h[-1] == 0

    @settings(max_examples=40, deadline=None)
    @given(placements(), st.integers(0, 2**31 - 1))
    def test_single_phase_cost_order_invariant(self, p, perm_seed):
        rows, n_modules, quorum = p
        rng = np.random.default_rng(perm_seed)
        perm = rng.permutation(rows.shape[0])
        a = run_access_protocol(rows, n_modules, quorum, n_phases=1)
        b = run_access_protocol(rows[perm], n_modules, quorum, n_phases=1)
        # same multiset of tasks: identical module service structure up to
        # arbitration; iteration counts may differ by a small slack
        assert abs(a.total_iterations - b.total_iterations) <= max(
            2, a.total_iterations // 2
        )

    @settings(max_examples=40, deadline=None)
    @given(placements())
    def test_quorum_monotonicity(self, p):
        rows, n_modules, _ = p
        copies = rows.shape[1]
        prev = 0
        for quorum in range(1, copies + 1):
            iters = run_access_protocol(
                rows, n_modules, quorum, n_phases=1
            ).total_iterations
            assert iters >= prev
            prev = iters
