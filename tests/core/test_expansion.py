"""Tests for expansion measurement, adversarial search, and tight sets."""

import numpy as np
import pytest

from repro.core.bounds import expansion_lower_bound
from repro.core.expansion import (
    gamma_of_set,
    gamma_size,
    greedy_contracting_set,
    sampled_expansion_profile,
    subgroup_tight_set,
)


class TestGammaOfSet:
    def test_single_variable(self, graph_2_3):
        A = graph_2_3.all_variable_matrices()[0]
        assert gamma_size(graph_2_3, [A]) == 3

    def test_union_semantics(self, graph_2_3):
        mats = graph_2_3.all_variable_matrices()[:5]
        g = gamma_of_set(graph_2_3, mats)
        assert g == set().union(*(graph_2_3.gamma_variable(A) for A in mats))

    def test_whole_graph(self, graph_2_3):
        mats = graph_2_3.all_variable_matrices()
        assert gamma_size(graph_2_3, mats) == graph_2_3.N


class TestTheorem4Holds:
    def test_exhaustive_small_subsets(self, graph_2_3):
        # all subsets of size 1..3 of a sample; plus larger random ones
        import itertools

        mats = graph_2_3.all_variable_matrices()[::6]
        for size in (1, 2, 3):
            for combo in itertools.combinations(mats, size):
                assert gamma_size(graph_2_3, list(combo)) >= expansion_lower_bound(
                    size, 2
                )

    def test_random_sets_n5(self, graph_2_5, rng):
        for size in (10, 50, 200, 1000):
            mats4 = graph_2_5.random_variable_matrices(size, rng)
            mods = graph_2_5.vgamma_variables(mats4)
            got = int(np.unique(mods).size)
            assert got >= expansion_lower_bound(size, 2)

    def test_greedy_adversarial_still_above_bound(self, graph_2_3):
        for size in (5, 12, 25):
            S = greedy_contracting_set(graph_2_3, size)
            assert len(S) == size
            assert gamma_size(graph_2_3, S) >= expansion_lower_bound(size, 2)

    def test_profile_rows(self, graph_2_5, rng):
        rows = sampled_expansion_profile(graph_2_5, [10, 100], rng, trials=2)
        assert len(rows) == 2
        for row in rows:
            assert row["min"] >= row["bound"]
            assert row["min_over_bound"] >= 1.0


class TestTightSets:
    def test_requires_composite(self, graph_2_5):
        with pytest.raises(ValueError):
            subgroup_tight_set(graph_2_5, 2)

    def test_requires_proper_divisor(self, graph_2_6):
        with pytest.raises(ValueError):
            subgroup_tight_set(graph_2_6, 1)
        with pytest.raises(ValueError):
            subgroup_tight_set(graph_2_6, 6)

    def test_d3_structure(self, graph_2_6):
        S = subgroup_tight_set(graph_2_6, 3)
        assert len(S) == 84  # |PGL2(8)| / |PGL2(2)|
        gam = gamma_size(graph_2_6, S)
        assert gam == 63  # module space of the (2,3) subgeometry
        bound = expansion_lower_bound(len(S), 2)
        assert bound <= gam <= 3 * bound  # tight within a small constant

    def test_d2_structure(self, graph_2_6):
        S = subgroup_tight_set(graph_2_6, 2)
        assert len(S) == 10  # |PGL2(4)| / |PGL2(2)| = 60/6
        assert gamma_size(graph_2_6, S) == 15  # (4+1)(4-1)/(2-1)

    def test_distinct_cosets(self, graph_2_6):
        S = subgroup_tight_set(graph_2_6, 3)
        keys = {graph_2_6.variables.key(m) for m in S}
        assert len(keys) == len(S)

    def test_ratio_scales_as_two_thirds(self):
        # |Gamma(S_d)| / |S_d|^{2/3} stays bounded along d = 2, 3, 4
        from repro.core.graph import MemoryGraph

        ratios = []
        for n, d in [(4, 2), (6, 3), (8, 4)]:
            g = MemoryGraph(2, n)
            S = subgroup_tight_set(g, d)
            ratios.append(gamma_size(g, S) / len(S) ** (2 / 3) / g.q)
        assert max(ratios) / min(ratios) < 2.5


class TestGreedySearch:
    def test_greedy_is_contracting(self, graph_2_3, rng):
        # greedy sets should expand no more than random sets of equal size
        size = 20
        S = greedy_contracting_set(graph_2_3, size)
        greedy_gamma = gamma_size(graph_2_3, S)
        rand_gammas = []
        for _ in range(5):
            mats4 = graph_2_3.random_variable_matrices(size, rng)
            mods = graph_2_3.vgamma_variables(mats4)
            rand_gammas.append(int(np.unique(mods).size))
        assert greedy_gamma <= max(rand_gammas)

    def test_distinct_variables(self, graph_2_3):
        S = greedy_contracting_set(graph_2_3, 15)
        keys = {graph_2_3.variables.key(m) for m in S}
        assert len(keys) == 15

    def test_size_validation(self, graph_2_3):
        with pytest.raises(ValueError):
            greedy_contracting_set(graph_2_3, 0)
