"""Tests for the PPScheme facade (placement, access, fallback addressing)."""

import numpy as np
import pytest

from repro.core.scheme import EnumeratedAddressing, PPScheme


class TestConstruction:
    def test_explicit_addressing_q2_odd(self, scheme_2_5):
        assert scheme_2_5.addressing_kind == "explicit-O(logN)"

    def test_fallback_q4(self, scheme_4_3):
        assert scheme_4_3.addressing_kind == "enumerated-fallback"

    def test_fallback_even_n(self):
        s = PPScheme(2, 4)
        assert s.addressing_kind == "enumerated-fallback"

    def test_describe(self, scheme_2_5):
        d = scheme_2_5.describe()
        assert d["N"] == 1023 and d["addressing"] == "explicit-O(logN)"


class TestPlacement:
    def test_module_ids_shape(self, scheme_2_5):
        idx = scheme_2_5.random_request_set(100, seed=0)
        mods = scheme_2_5.module_ids_for(idx)
        assert mods.shape == (100, 3)
        assert mods.min() >= 0 and mods.max() < scheme_2_5.N

    def test_placement_matches_locate(self, scheme_2_3):
        idx = np.arange(scheme_2_3.M, dtype=np.int64)
        mods, slots = scheme_2_3.placement_for(idx)
        for i in range(scheme_2_3.M):
            assert scheme_2_3.locate(i) == list(
                zip(mods[i].tolist(), slots[i].tolist())
            )

    def test_global_injectivity(self, scheme_2_3):
        idx = np.arange(scheme_2_3.M, dtype=np.int64)
        mods, slots = scheme_2_3.placement_for(idx)
        cells = set(zip(mods.ravel().tolist(), slots.ravel().tolist()))
        assert len(cells) == scheme_2_3.M * 3

    def test_module_capacity_respected(self, scheme_2_3):
        idx = np.arange(scheme_2_3.M, dtype=np.int64)
        _, slots = scheme_2_3.placement_for(idx)
        assert slots.max() < scheme_2_3.module_capacity

    def test_q4_placement(self, scheme_4_3):
        idx = scheme_4_3.random_request_set(200, seed=1)
        mods, slots = scheme_4_3.placement_for(idx)
        assert mods.shape == (200, 5)
        for row in mods:
            assert len(set(row.tolist())) == 5
        cells = set(zip(mods.ravel().tolist(), slots.ravel().tolist()))
        assert len(cells) == 200 * 5


class TestAccess:
    def test_duplicate_requests_rejected(self, scheme_2_5):
        with pytest.raises(ValueError):
            scheme_2_5.access(np.array([1, 1, 2]))

    def test_count_mode(self, scheme_2_5):
        idx = scheme_2_5.random_request_set(300, seed=2)
        res = scheme_2_5.access(idx, op="count")
        assert res.max_phase_iterations >= 1
        assert res.n_requests == 300

    def test_read_write_round_trip(self, scheme_2_5):
        idx = scheme_2_5.random_request_set(400, seed=3)
        store = scheme_2_5.make_store()
        scheme_2_5.write(idx, values=idx * 3 % (1 << 30), store=store, time=1)
        res = scheme_2_5.read(idx, store=store, time=2)
        assert (res.values == idx * 3 % (1 << 30)).all()

    def test_read_write_q4(self, scheme_4_3):
        idx = scheme_4_3.random_request_set(150, seed=4)
        store = scheme_4_3.make_store()
        scheme_4_3.write(idx, values=idx, store=store, time=1)
        res = scheme_4_3.read(idx, store=store, time=2)
        assert (res.values == idx).all()

    def test_partial_overwrite(self, scheme_2_5):
        idx = scheme_2_5.random_request_set(300, seed=5)
        store = scheme_2_5.make_store()
        scheme_2_5.write(idx, values=np.full(300, 7), store=store, time=1)
        scheme_2_5.write(idx[:100], values=np.full(100, 9), store=store, time=2)
        res = scheme_2_5.read(idx, store=store, time=3)
        assert (res.values[:100] == 9).all()
        assert (res.values[100:] == 7).all()

    def test_arbitration_policies_agree_on_semantics(self, scheme_2_5):
        idx = scheme_2_5.random_request_set(200, seed=6)
        for policy in ("lowest", "random", "rotating"):
            store = scheme_2_5.make_store()
            scheme_2_5.write(idx, values=idx, store=store, time=1, arbitration=policy)
            res = scheme_2_5.read(idx, store=store, time=2, arbitration=policy)
            assert (res.values == idx).all()

    def test_request_too_many(self, scheme_2_3):
        with pytest.raises(ValueError):
            scheme_2_3.random_request_set(scheme_2_3.M + 1)


class TestEnumeratedAddressing:
    def test_round_trip(self, scheme_4_3):
        addr = scheme_4_3.addressing
        assert isinstance(addr, EnumeratedAddressing)
        for i in range(0, addr.M, 97):
            assert addr.rank(addr.unrank(i)) == i

    def test_vunrank(self, scheme_4_3):
        addr = scheme_4_3.addressing
        idx = np.arange(0, addr.M, 53, dtype=np.int64)
        a, b, c, d = addr.vunrank(idx)
        for k, i in enumerate(idx):
            assert (int(a[k]), int(b[k]), int(c[k]), int(d[k])) == addr.unrank(int(i))

    def test_locate_consistent(self, scheme_4_3):
        g = scheme_4_3.graph
        for i in (0, 11, 397):
            A = scheme_4_3.addressing.unrank(i)
            for (u, k) in scheme_4_3.locate(i):
                stored = g.gamma_module(u)[k]
                assert g.variables.key(stored) == g.variables.key(A)

    def test_refuses_huge_m(self):
        from repro.core.graph import MemoryGraph

        with pytest.raises(ValueError):
            EnumeratedAddressing(MemoryGraph(2, 10))
