"""Tests for the self-verification module and its CLI hook."""

import pytest

from repro.cli import main
from repro.core.verification import VerificationReport, verify_instance


class TestVerifyInstance:
    def test_quick_n3(self):
        rep = verify_instance(2, 3, level="quick")
        assert rep.passed
        names = [n for n, _, _ in rep.checks]
        assert "fact1-counts" in names
        assert "read-your-writes" in names

    def test_standard_exhaustive_addressing(self):
        rep = verify_instance(2, 3, level="standard")
        assert rep.passed
        round_trip = next(d for n, _, d in rep.checks if n == "addressing-roundtrip")
        assert "84 indices" in round_trip  # exhaustive at n=3

    def test_full_includes_edges(self):
        rep = verify_instance(2, 3, level="full")
        assert rep.passed
        assert any(n == "definition-edges" for n, _, _ in rep.checks)

    def test_full_refuses_when_infeasible(self):
        rep = verify_instance(2, 9, level="full", seed=1)
        edge = next((ok, d) for n, ok, d in rep.checks if n == "definition-edges")
        assert edge == (False, "infeasible at this size")
        assert not rep.passed  # the refusal is an explicit failure

    def test_q4(self):
        assert verify_instance(4, 3, level="quick").passed

    def test_bad_level(self):
        with pytest.raises(ValueError):
            verify_instance(2, 3, level="paranoid")

    def test_render(self):
        rep = VerificationReport(q=2, n=3, level="quick")
        rep.record("demo", True, "fine")
        rep.record("demo2", False)
        out = rep.render()
        assert "[PASS] demo" in out and "[FAIL] demo2" in out
        assert not rep.passed


class TestCliVerify:
    def test_exit_zero_on_pass(self, capsys):
        assert main(["verify", "-q", "2", "-n", "3"]) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_exit_nonzero_on_fail(self, capsys):
        # full level at n=9 refuses the edge check -> nonzero exit
        assert main(["verify", "-q", "2", "-n", "9", "--level", "full"]) == 1
