"""Tests for irreducibility / primitivity and the GF(2) polynomial table."""

import pytest

from repro.gf.irreducible import (
    find_irreducible,
    find_primitive,
    is_irreducible,
    is_primitive,
)
from repro.gf.poly import Poly
from repro.gf.tables import PRIMITIVE_POLY_GF2


class TestIsIrreducible:
    def test_known_irreducible_gf2(self):
        assert is_irreducible(Poly([1, 1, 0, 1], 2))  # x^3 + x + 1
        assert is_irreducible(Poly([1, 1, 1], 2))  # x^2 + x + 1

    def test_known_reducible_gf2(self):
        assert not is_irreducible(Poly([1, 0, 1], 2))  # (x+1)^2
        assert not is_irreducible(Poly([0, 1, 1], 2))  # x(x+1)

    def test_linear_always_irreducible(self):
        assert is_irreducible(Poly([1, 1], 2))
        assert is_irreducible(Poly([3, 1], 5))

    def test_zero_and_constants(self):
        assert not is_irreducible(Poly.zero(2))
        assert not is_irreducible(Poly.one(2))

    def test_gf3(self):
        assert is_irreducible(Poly([1, 0, 1], 3))  # x^2 + 1 over GF(3)
        assert not is_irreducible(Poly([2, 0, 1], 3))  # x^2 + 2 = (x+1)(x+2)

    def test_brute_force_agreement_gf2_deg4(self):
        # compare against explicit factor search for all monic quartics
        def brute(f):
            for d in range(1, f.degree):
                for mask in range(2**d, 2 ** (d + 1)):
                    g = Poly.from_int(mask, 2)
                    if g.degree == d and (f % g).is_zero():
                        return False
            return True

        for mask in range(16, 32):
            f = Poly.from_int(mask, 2)
            assert is_irreducible(f) == brute(f), mask


class TestIsPrimitive:
    def test_primitive_examples(self):
        assert is_primitive(Poly([1, 1, 0, 1], 2))  # x^3 + x + 1
        assert is_primitive(Poly([1, 1, 0, 0, 1], 2))  # x^4 + x + 1

    def test_irreducible_but_not_primitive(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible; x has order 5 != 15
        f = Poly([1, 1, 1, 1, 1], 2)
        assert is_irreducible(f)
        assert not is_primitive(f)

    def test_reducible_not_primitive(self):
        assert not is_primitive(Poly([1, 0, 1], 2))


class TestFinders:
    @pytest.mark.parametrize("m", range(1, 9))
    def test_find_irreducible_gf2(self, m):
        assert is_irreducible(find_irreducible(2, m))

    @pytest.mark.parametrize("p,m", [(3, 2), (3, 3), (5, 2), (7, 2)])
    def test_find_irreducible_odd_char(self, p, m):
        f = find_irreducible(p, m)
        assert f.p == p and f.degree == m and is_irreducible(f)

    @pytest.mark.parametrize("m", range(1, 9))
    def test_find_primitive_gf2(self, m):
        assert is_primitive(find_primitive(2, m))

    def test_find_primitive_gf3(self):
        assert is_primitive(find_primitive(3, 3))


class TestTable:
    @pytest.mark.parametrize("m", sorted(PRIMITIVE_POLY_GF2))
    def test_every_table_entry_is_primitive(self, m):
        if m > 20:
            pytest.skip("primitivity check above degree 20 is slow in CI")
        f = Poly.from_int(PRIMITIVE_POLY_GF2[m], 2)
        assert f.degree == m
        assert is_primitive(f)

    def test_table_covers_experiment_range(self):
        # fields used: q^n up to 2^20 and 2^(2n) up to 2^18 for n=9
        for m in range(1, 21):
            assert m in PRIMITIVE_POLY_GF2
