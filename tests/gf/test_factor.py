"""Unit tests for repro.gf.factor."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.gf.factor import factorize, prime_factors, divisors
from repro.gf.modular import is_prime


class TestFactorize:
    def test_small(self):
        assert dict(factorize(12)) == {2: 2, 3: 1}
        assert dict(factorize(1)) == {}
        assert dict(factorize(97)) == {97: 1}

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            factorize(0)

    def test_prime_powers(self):
        assert dict(factorize(2**20)) == {2: 20}
        assert dict(factorize(3**10)) == {3: 10}

    def test_mersenne_composite(self):
        # 2^29 - 1 = 233 * 1103 * 2089
        assert dict(factorize(2**29 - 1)) == {233: 1, 1103: 1, 2089: 1}

    def test_repo_relevant_orders(self):
        # The group orders the primitivity tests actually factor.
        for n in (3, 5, 7, 9):
            f = factorize(2 ** (2 * n) - 1)
            prod = 1
            for p, e in f.items():
                assert is_prime(p)
                prod *= p**e
            assert prod == 2 ** (2 * n) - 1

    @given(st.integers(1, 10**12))
    def test_product_reconstructs(self, n):
        prod = 1
        for p, e in factorize(n).items():
            assert is_prime(p)
            prod *= p**e
        assert prod == n


class TestPrimeFactors:
    def test_sorted_distinct(self):
        assert prime_factors(360) == [2, 3, 5]

    def test_prime(self):
        assert prime_factors(31) == [31]


class TestDivisors:
    def test_basic(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]

    def test_count_formula(self):
        # d(n) = prod (e_i + 1)
        n = 2**3 * 3**2 * 5
        assert len(divisors(n)) == 4 * 3 * 2

    @given(st.integers(1, 10**6))
    def test_all_divide(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds == sorted(set(ds))
        assert math.prod([]) == 1  # sanity for empty case semantics
