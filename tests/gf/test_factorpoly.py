"""Tests for polynomial factorization over GF(p)."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.gf.factorpoly import (
    distinct_degree_factorization,
    equal_degree_factorization,
    factor_poly,
    poly_roots,
    squarefree_decomposition,
)
from repro.gf.irreducible import find_irreducible, is_irreducible
from repro.gf.poly import Poly


def rebuild(factors: Counter, p: int) -> Poly:
    out = Poly.one(p)
    for g, e in factors.items():
        for _ in range(e):
            out = out * g
    return out


class TestSquarefree:
    def test_simple_square(self):
        a = Poly([1, 1], 2)  # x + 1
        f = a * a * Poly([1, 1, 1], 2)
        dec = squarefree_decomposition(f)
        assert (Poly([1, 1], 2), 2) in dec
        assert (Poly([1, 1, 1], 2), 1) in dec

    def test_pth_power(self):
        # (x^2 + x + 1)^2 over GF(2) has zero derivative
        g = Poly([1, 1, 1], 2)
        dec = squarefree_decomposition(g * g)
        assert dec == [(g, 2)]

    def test_squarefree_input(self):
        f = Poly([1, 1, 0, 1], 2)  # irreducible
        assert squarefree_decomposition(f) == [(f, 1)]

    def test_odd_characteristic(self):
        a = Poly([1, 1], 5)
        b = Poly([2, 1], 5)
        dec = squarefree_decomposition(a * a * a * b)
        assert (a, 3) in dec and (b, 1) in dec

    def test_product_reconstructs(self):
        rng = random.Random(1)
        for _ in range(20):
            f = Poly([rng.randrange(3) for _ in range(8)] + [1], 3)
            prod = Poly.one(3)
            for g, e in squarefree_decomposition(f):
                for _ in range(e):
                    prod = prod * g
            assert prod == f.monic()


class TestDistinctDegree:
    def test_splits_by_degree(self):
        # (x+1)(x^2+x+1)(x^3+x+1) over GF(2)
        f = Poly([1, 1], 2) * Poly([1, 1, 1], 2) * Poly([1, 1, 0, 1], 2)
        dd = dict((d, g) for g, d in distinct_degree_factorization(f))
        assert dd[1] == Poly([1, 1], 2)
        assert dd[2] == Poly([1, 1, 1], 2)
        assert dd[3] == Poly([1, 1, 0, 1], 2)

    def test_two_factors_same_degree(self):
        f = Poly([1, 1, 0, 1], 2) * Poly([1, 0, 1, 1], 2)  # two cubics
        dd = distinct_degree_factorization(f)
        assert len(dd) == 1 and dd[0][1] == 3 and dd[0][0].degree == 6


class TestEqualDegree:
    def test_splits_two_cubics(self):
        a, b = Poly([1, 1, 0, 1], 2), Poly([1, 0, 1, 1], 2)
        got = sorted(
            equal_degree_factorization(a * b, 3), key=lambda g: g.coeffs
        )
        assert got == sorted([a, b], key=lambda g: g.coeffs)

    def test_single_factor(self):
        a = Poly([1, 1, 0, 1], 2)
        assert equal_degree_factorization(a, 3) == [a]

    def test_wrong_degree_raises(self):
        with pytest.raises(ValueError):
            equal_degree_factorization(Poly([1, 1, 0, 1], 2), 2)

    def test_odd_characteristic(self):
        a, b = Poly([1, 1], 7), Poly([3, 1], 7)
        got = equal_degree_factorization(a * b, 1)
        assert sorted(g.coeffs for g in got) == sorted([a.coeffs, b.coeffs])


class TestFactorPoly:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=2, max_size=12))
    def test_reconstruction_gf2(self, coeffs):
        f = Poly(coeffs + [1], 2)
        if f.degree < 1:
            return
        factors = factor_poly(f)
        assert rebuild(factors, 2) == f.monic()
        for g in factors:
            assert is_irreducible(g)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 4), min_size=2, max_size=8))
    def test_reconstruction_gf5(self, coeffs):
        f = Poly(coeffs + [1], 5)
        if f.degree < 1:
            return
        factors = factor_poly(f)
        assert rebuild(factors, 5) == f.monic()

    def test_irreducible_stays_whole(self):
        for m in (2, 3, 5, 8):
            f = find_irreducible(2, m)
            assert factor_poly(f) == Counter({f: 1})

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            factor_poly(Poly.zero(2))

    def test_minimal_polynomials_multiply_to_xqn_minus_x(self):
        # prod over Frobenius orbits of min polys == x^(2^3) - x
        from repro.gf.gf2m import GF2m

        F = GF2m.get(3)
        target = Poly.monomial(8, 2) - Poly.x(2)
        factors = factor_poly(target)
        minpolys = {F.minimal_polynomial(a) for a in range(8)}
        assert set(factors) == minpolys


class TestRoots:
    def test_known_roots(self):
        # (x+1)(x+2) over GF(5) = x^2 + 3x + 2
        f = Poly([2, 3, 1], 5)
        assert poly_roots(f) == [3, 4]

    def test_multiplicity(self):
        f = Poly([1, 1], 2) * Poly([1, 1], 2)  # (x+1)^2
        assert poly_roots(f) == [1, 1]

    def test_no_roots(self):
        assert poly_roots(Poly([1, 1, 1], 2)) == []
