"""Tests for the GF(2^m) operation-counting sink."""

import numpy as np

from repro.gf.gf2m import GF2m, set_op_sink
from repro.gf.opcount import GFOpSink


def with_sink():
    sink = GFOpSink()
    prev = set_op_sink(sink)
    assert prev is None
    return sink


def drop_sink():
    set_op_sink(None)


class TestSink:
    def test_scalar_ops_counted(self):
        sink = with_sink()
        try:
            f = GF2m(3)
            f.add(1, 2)
            f.mul(3, 5)
            f.inv(3)
            f.div(6, 3)
            f.pow(3, 4)
            f.exp(2)
            f.log(4)
        finally:
            drop_sink()
        assert sink.add == 1
        assert sink.mul == 4  # mul + inv + div + pow each charge one mul
        assert sink.exp == 1
        assert sink.dlog == 1
        assert sink.total() == 7

    def test_vector_ops_counted_by_size(self):
        sink = with_sink()
        try:
            f = GF2m(3)
            a = np.array([1, 2, 3, 4], dtype=np.int64)
            b = np.array([5, 6, 7, 1], dtype=np.int64)
            f.vadd(a, b)
            f.vmul(a, b)
            f.vinv(b)
            f.vlog(b)
            f.vexp(np.array([0, 1], dtype=np.int64))
        finally:
            drop_sink()
        assert sink.add == 4
        assert sink.mul == 8  # vmul 4 + vinv 4
        assert sink.dlog == 4
        assert sink.exp == 2

    def test_no_sink_no_counting(self):
        f = GF2m(3)
        f.mul(3, 5)  # must not raise with no sink installed
        sink = with_sink()
        drop_sink()
        f.mul(3, 5)
        assert sink.total() == 0

    def test_set_returns_previous(self):
        a, b = GFOpSink(), GFOpSink()
        assert set_op_sink(a) is None
        assert set_op_sink(b) is a
        assert set_op_sink(None) is b


class TestAccounting:
    def test_as_dict_merge_reset_repr(self):
        a = GFOpSink()
        a.add, a.mul, a.dlog, a.exp = 1, 2, 3, 4
        assert a.as_dict() == {"add": 1, "mul": 2, "dlog": 3, "exp": 4}
        assert a.total() == 10
        b = GFOpSink()
        b.mul = 5
        a.merge(b)
        assert a.mul == 7 and b.mul == 5
        assert "mul=7" in repr(a)
        a.reset()
        assert a.total() == 0 and a.as_dict() == {
            "add": 0, "mul": 0, "dlog": 0, "exp": 0,
        }
