"""Tests for discrete logarithms (table-based and BSGS)."""

import pytest

from repro.gf.dlog import dlog, dlog_bsgs
from repro.gf.gf2m import GF2m


@pytest.fixture(scope="module")
def F():
    return GF2m.get(8)


class TestDlog:
    def test_generator_base(self, F):
        for e in (0, 1, 17, 200):
            assert dlog(F, F.generator, F.exp(e)) == e % F.group_order

    def test_arbitrary_base(self, F):
        base = F.exp(3)  # order 85
        for e in range(0, 85, 7):
            assert F.pow(base, dlog(F, base, F.pow(base, e))) == F.pow(base, e)

    def test_outside_subgroup_raises(self, F):
        base = F.exp(5)  # order 51; generator not a power of it
        with pytest.raises(ValueError):
            dlog(F, base, F.exp(1))

    def test_zero_raises(self, F):
        with pytest.raises(ValueError):
            dlog(F, 0, 1)
        with pytest.raises(ValueError):
            dlog(F, F.generator, 0)


class TestBsgs:
    def test_agrees_with_table(self, F):
        base = F.generator
        for e in range(0, 255, 13):
            val = F.exp(e)
            assert F.pow(base, dlog_bsgs(F, base, val)) == val

    def test_small_order_base(self, F):
        base = F.exp(85)  # order 3
        for e in range(3):
            val = F.pow(base, e)
            k = dlog_bsgs(F, base, val)
            assert F.pow(base, k) == val

    def test_not_in_subgroup_raises(self, F):
        base = F.exp(85)  # order 3 subgroup
        with pytest.raises(ValueError):
            dlog_bsgs(F, base, F.exp(1))

    def test_cross_check_full_sweep(self):
        F = GF2m.get(6)
        g = F.generator
        for val in range(1, 64):
            assert dlog(F, g, val) == dlog_bsgs(F, g, val)
