"""Tests for the generic reference field GF(p^m)."""

import pytest

from repro.gf.field import GFpm
from repro.gf.poly import Poly


@pytest.fixture(scope="module")
def F9():
    return GFpm(3, 2)


@pytest.fixture(scope="module")
def F25():
    return GFpm(5, 2)


class TestConstruction:
    def test_composite_characteristic_rejected(self):
        with pytest.raises(ValueError):
            GFpm(4, 2)

    def test_reducible_modulus_rejected(self):
        with pytest.raises(ValueError):
            GFpm(2, 2, Poly([1, 0, 1], 2))  # (x+1)^2

    def test_wrong_degree_modulus_rejected(self):
        with pytest.raises(ValueError):
            GFpm(2, 3, Poly([1, 1], 2))

    def test_order(self, F9):
        assert F9.order == 9 and F9.group_order == 8


class TestArithmetic:
    def test_add_sub_inverse(self, F9):
        for a in range(9):
            for b in range(9):
                assert F9.sub(F9.add(a, b), b) == a

    def test_neg(self, F9):
        for a in range(9):
            assert F9.add(a, F9.neg(a)) == 0

    def test_mul_inverse(self, F25):
        for a in range(1, 25):
            assert F25.mul(a, F25.inv(a)) == 1

    def test_inv_zero_raises(self, F9):
        with pytest.raises(ZeroDivisionError):
            F9.inv(0)

    def test_div(self, F9):
        for a in range(9):
            for b in range(1, 9):
                assert F9.mul(F9.div(a, b), b) == a

    def test_pow_fermat(self, F25):
        for a in range(1, 25):
            assert F25.pow(a, 24) == 1

    def test_pow_negative(self, F9):
        assert F9.pow(5, -1) == F9.inv(5)

    def test_distributivity_full(self, F9):
        for a in range(9):
            for b in range(9):
                for c in range(0, 9, 2):
                    assert F9.mul(a, F9.add(b, c)) == F9.add(F9.mul(a, b), F9.mul(a, c))


class TestStructure:
    def test_element_orders_divide(self, F25):
        for a in range(1, 25):
            assert F25.group_order % F25.element_order(a) == 0

    def test_generator_exists(self, F9):
        g = F9.find_generator()
        assert F9.is_primitive_element(g)
        seen = set()
        x = 1
        for _ in range(F9.group_order):
            seen.add(x)
            x = F9.mul(x, g)
        assert len(seen) == F9.group_order

    def test_prime_field(self):
        F7 = GFpm(7, 1)
        assert F7.mul(3, 5) == 1  # 15 mod 7
        assert F7.inv(3) == 5
