"""Property tests: bulk GF(2^m) ops vs their scalar counterparts.

The batch engine leans on the vectorized field kernels (`vmul`, `vexp`,
`vdlog`, per-element `vpowv`, and the batched Lemma-4 coset lookup).
Each bulk op must agree elementwise with the scalar op it amortizes,
raise in exactly the scalar cases, and charge the :class:`GFOpSink`
identically (one tally per element -- opcount parity is what keeps the
bound-accounting ledger honest across engines).
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.addressing import batched_slots
from repro.core.scheme import PPScheme
from repro.gf.gf2m import GF2m, set_op_sink
from repro.gf.opcount import GFOpSink

F3 = GF2m(3)
F8 = GF2m(8)
FIELDS = [F3, F8]


def field_and_elems(draw, min_size=1, max_size=32, nonzero=False):
    f = draw(st.sampled_from(FIELDS))
    lo = 1 if nonzero else 0
    xs = draw(
        st.lists(
            st.integers(lo, f.order - 1), min_size=min_size,
            max_size=max_size,
        )
    )
    return f, np.array(xs, dtype=np.int64)


# ---------------------------------------------------------------------------
# elementwise agreement with the scalar ops


@given(st.data())
def test_vmul_matches_scalar(data):
    f, a = field_and_elems(data.draw)
    b = np.array(
        data.draw(
            st.lists(
                st.integers(0, f.order - 1), min_size=a.size,
                max_size=a.size,
            )
        ),
        dtype=np.int64,
    )
    want = [f.mul(int(x), int(y)) for x, y in zip(a, b)]
    assert list(f.vmul(a, b)) == want


@given(st.data())
def test_vinv_vdiv_match_scalar(data):
    f, a = field_and_elems(data.draw, nonzero=True)
    assert list(f.vinv(a)) == [f.inv(int(x)) for x in a]
    b = np.roll(a, 1)
    assert list(f.vdiv(a, b)) == [
        f.div(int(x), int(y)) for x, y in zip(a, b)
    ]


@given(st.data(), st.integers(0, 40))
def test_vpow_matches_scalar(data, e):
    f, a = field_and_elems(data.draw)
    assert list(f.vpow(a, e)) == [f.pow(int(x), e) for x in a]


@given(st.data())
def test_vpowv_matches_scalar_including_negative(data):
    f, a = field_and_elems(data.draw)
    e = np.array(
        data.draw(
            st.lists(
                st.integers(-30, 30), min_size=a.size, max_size=a.size
            )
        ),
        dtype=np.int64,
    )
    e = np.where(a == 0, np.abs(e), e)  # 0**negative raises (both paths)
    want = [f.pow(int(x), int(k)) for x, k in zip(a, e)]
    assert list(f.vpowv(a, e)) == want


@given(st.data())
def test_vsqrt_vfrobenius_match_scalar(data):
    f, a = field_and_elems(data.draw)
    roots = f.vsqrt(a)
    assert list(roots) == [f.sqrt(int(x)) for x in a]
    # char-2 identity: sqrt really is the halving of squaring
    assert list(f.vmul(roots, roots)) == list(a)
    for k in (1, 2):
        assert list(f.vfrobenius(a, k)) == [
            f.frobenius(int(x), k) for x in a
        ]


@given(st.data())
def test_vfrobenius_is_additive(data):
    """Frobenius is a field automorphism: (a+b)^2 = a^2 + b^2."""
    f, a = field_and_elems(data.draw)
    b = np.roll(a, 1)
    lhs = f.vfrobenius(f.vadd(a, b))
    rhs = f.vadd(f.vfrobenius(a), f.vfrobenius(b))
    assert list(lhs) == list(rhs)


@given(st.data())
def test_vlog_vexp_match_scalar_and_invert(data):
    f, a = field_and_elems(data.draw, nonzero=True)
    logs = f.vlog(a)
    assert list(logs) == [f.log(int(x)) for x in a]
    assert list(f.vexp(logs)) == list(a)
    e = np.array(
        data.draw(
            st.lists(st.integers(-200, 200), min_size=1, max_size=16)
        ),
        dtype=np.int64,
    )
    assert list(f.vexp(e)) == [f.exp(int(k)) for k in e]


# ---------------------------------------------------------------------------
# error-path parity


def test_vector_zero_handling_matches_scalar():
    a = np.array([0, 1, 3], dtype=np.int64)
    with pytest.raises(ZeroDivisionError):
        F3.vinv(a)
    with pytest.raises(ZeroDivisionError):
        F3.vdiv(np.ones(3, dtype=np.int64), a)
    with pytest.raises(ZeroDivisionError):
        F3.vpowv(a, np.array([-1, 2, 2], dtype=np.int64))
    with pytest.raises(ValueError):
        F3.vlog(a)
    # scalar twins
    with pytest.raises(ZeroDivisionError):
        F3.inv(0)
    with pytest.raises(ZeroDivisionError):
        F3.div(1, 0)
    with pytest.raises(ZeroDivisionError):
        F3.pow(0, -1)
    with pytest.raises(ValueError):
        F3.log(0)


# ---------------------------------------------------------------------------
# opcount parity: one bulk op of size k == k scalar ops, same counters


@given(st.data())
def test_opcount_parity_bulk_vs_scalar(data):
    f, a = field_and_elems(data.draw, nonzero=True, max_size=16)
    b = np.roll(a, 1)
    e = np.arange(a.size, dtype=np.int64) + 1

    scalar_ops = lambda: [  # noqa: E731 -- paired with vector_ops below
        [f.add(int(x), int(y)) for x, y in zip(a, b)],
        [f.mul(int(x), int(y)) for x, y in zip(a, b)],
        [f.inv(int(x)) for x in a],
        [f.pow(int(x), int(k)) for x, k in zip(a, e)],
        [f.log(int(x)) for x in a],
        [f.exp(int(k)) for k in e],
    ]
    vector_ops = lambda: [  # noqa: E731
        list(f.vadd(a, b)),
        list(f.vmul(a, b)),
        list(f.vinv(a)),
        list(f.vpowv(a, e)),
        list(f.vlog(a)),
        list(f.vexp(e)),
    ]

    sink_s, sink_v = GFOpSink(), GFOpSink()
    prev = set_op_sink(sink_s)
    try:
        want = scalar_ops()
        set_op_sink(sink_v)
        got = vector_ops()
    finally:
        set_op_sink(prev)

    assert got == want
    assert sink_s.as_dict() == sink_v.as_dict()
    assert sink_v.total() == 6 * a.size


def test_vsqrt_vfrobenius_charge_like_scalar():
    a = np.array([1, 2, 3, 4, 5], dtype=np.int64)
    sink = GFOpSink()
    prev = set_op_sink(sink)
    try:
        F3.vsqrt(a)
        F3.vfrobenius(a)
    finally:
        set_op_sink(prev)
    # each is one vpow: a.size mul tallies, same as 5 scalar pow calls
    assert sink.as_dict() == {"add": 0, "mul": 10, "dlog": 0, "exp": 0}


# ---------------------------------------------------------------------------
# batched coset lookup (Lemma 4) vs the scalar locate path


@pytest.fixture(scope="module", params=[(2, 3), (4, 3)])
def scheme(request):
    q, n = request.param
    return PPScheme(q, n)


def test_batched_slots_match_scalar_locate(scheme):
    idx = scheme.random_request_set(32, seed=7)
    mats = scheme.addressing.vunrank(idx)
    modules = scheme.graph.vgamma_variables(mats)
    slots = batched_slots(scheme.graph, mats, modules)
    assert slots.shape == modules.shape == (idx.size, scheme.graph.q + 1)
    for i, var in enumerate(idx):
        want = set(scheme.locate(int(var)))
        got = set(zip(modules[i].tolist(), slots[i].tolist()))
        assert got == want


def test_vlocate_matches_locate(scheme):
    idx = scheme.random_request_set(24, seed=3)
    modules, slots = scheme.addressing.vlocate(idx)
    for i, var in enumerate(idx):
        want = set(scheme.addressing.locate(int(var)))
        got = set(zip(modules[i].tolist(), slots[i].tolist()))
        assert got == want


def test_vslots_delegates_to_shared_kernel(scheme):
    idx = scheme.random_request_set(8, seed=1)
    mats = scheme.addressing.vunrank(idx)
    modules = scheme.graph.vgamma_variables(mats)
    np.testing.assert_array_equal(
        scheme.addressing.vslots(mats, modules),
        batched_slots(scheme.graph, mats, modules),
    )
