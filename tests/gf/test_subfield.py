"""Tests for subfield embeddings, Frobenius and (w,1)-basis splitting."""

import numpy as np
import pytest

from repro.gf.gf2m import GF2m
from repro.gf.subfield import (
    BasisDecomposition,
    FieldEmbedding,
    frobenius_power,
    in_subfield,
)


@pytest.fixture(scope="module")
def emb_3_6():
    return FieldEmbedding(GF2m.get(3), GF2m.get(6))


@pytest.fixture(scope="module")
def emb_5_10():
    return FieldEmbedding(GF2m.get(5), GF2m.get(10))


class TestInSubfield:
    def test_counts(self):
        L = GF2m.get(6)
        members = [a for a in range(64) if in_subfield(L, a, 3)]
        assert len(members) == 8  # GF(8) inside GF(64)
        members2 = [a for a in range(64) if in_subfield(L, a, 2)]
        assert len(members2) == 4

    def test_non_divisor_raises(self):
        with pytest.raises(ValueError):
            in_subfield(GF2m.get(6), 1, 4)

    def test_frobenius_power(self):
        L = GF2m.get(6)
        for a in range(64):
            assert frobenius_power(L, a, 1) == L.mul(a, a)


class TestFieldEmbedding:
    def test_is_homomorphism(self, emb_3_6):
        K, L = emb_3_6.K, emb_3_6.L
        for a in range(8):
            for b in range(8):
                assert emb_3_6.embed(K.mul(a, b)) == L.mul(
                    emb_3_6.embed(a), emb_3_6.embed(b)
                )
                assert emb_3_6.embed(a ^ b) == emb_3_6.embed(a) ^ emb_3_6.embed(b)

    def test_injective_and_fixes_01(self, emb_3_6):
        images = {emb_3_6.embed(a) for a in range(8)}
        assert len(images) == 8
        assert emb_3_6.embed(0) == 0 and emb_3_6.embed(1) == 1

    def test_image_is_the_subfield(self, emb_3_6):
        L = emb_3_6.L
        images = {emb_3_6.embed(a) for a in range(8)}
        subfield = {a for a in range(64) if in_subfield(L, a, 3)}
        assert images == subfield

    def test_project_round_trip(self, emb_5_10):
        for a in range(32):
            assert emb_5_10.project(emb_5_10.embed(a)) == a

    def test_project_outside_raises(self, emb_3_6):
        outside = next(
            b for b in range(64) if not emb_3_6.contains(b)
        )
        with pytest.raises(ValueError):
            emb_3_6.project(outside)

    def test_vectorized_agree(self, emb_3_6):
        a = np.arange(8)
        assert list(emb_3_6.vembed(a)) == [emb_3_6.embed(int(x)) for x in a]
        assert list(emb_3_6.vproject(emb_3_6.vembed(a))) == list(a)

    def test_vcontains(self, emb_3_6):
        all_l = np.arange(64)
        mask = emb_3_6.vcontains(all_l)
        assert int(mask.sum()) == 8

    def test_non_divisor_raises(self):
        with pytest.raises(ValueError):
            FieldEmbedding(GF2m.get(4), GF2m.get(6))

    def test_same_degree_isomorphism(self):
        # embedding GF(2^3) into itself is an automorphism fixing GF(2)
        e = FieldEmbedding(GF2m.get(3), GF2m.get(3))
        K = GF2m.get(3)
        for a in range(8):
            for b in range(8):
                assert e.embed(K.mul(a, b)) == K.mul(e.embed(a), e.embed(b))


class TestBasisDecomposition:
    @pytest.fixture(scope="class")
    def bd(self):
        K, L = GF2m.get(3), GF2m.get(6)
        emb = FieldEmbedding(K, L)
        w = L.exp((L.order - 1) // 3)  # generator of F_4^*
        return BasisDecomposition(emb, w)

    def test_round_trip_all(self, bd):
        for u in range(64):
            z, v = bd.split(u)
            assert bd.combine(z, v) == u

    def test_split_of_subfield_elements(self, bd):
        # subfield elements have z = 0
        for a in range(8):
            z, v = bd.split(bd.embedding.embed(a))
            assert z == 0 and v == a

    def test_split_unique(self, bd):
        seen = set()
        for u in range(64):
            seen.add(bd.split(u))
        assert len(seen) == 64

    def test_vectorized_agree(self, bd):
        u = np.arange(64)
        z, v = bd.vsplit(u)
        for i in range(64):
            assert (int(z[i]), int(v[i])) == bd.split(i)
        assert np.all(bd.vcombine(z, v) == u)

    def test_w_in_subfield_rejected(self):
        K, L = GF2m.get(3), GF2m.get(6)
        emb = FieldEmbedding(K, L)
        with pytest.raises(ValueError):
            BasisDecomposition(emb, emb.embed(3))

    def test_non_quadratic_rejected(self):
        emb = FieldEmbedding(GF2m.get(2), GF2m.get(6))
        with pytest.raises(ValueError):
            BasisDecomposition(emb, 5)
