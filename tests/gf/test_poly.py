"""Unit and property tests for repro.gf.poly."""

import pytest
from hypothesis import given, strategies as st

from repro.gf.poly import Poly


def poly_strategy(p: int, max_deg: int = 8):
    return st.lists(st.integers(0, p - 1), max_size=max_deg + 1).map(
        lambda cs: Poly(cs, p)
    )


class TestConstruction:
    def test_trailing_zeros_trimmed(self):
        assert Poly([1, 2, 0, 0], 5).coeffs == (1, 2)

    def test_coefficients_reduced_mod_p(self):
        assert Poly([7, 5], 5).coeffs == (2,)

    def test_zero(self):
        z = Poly.zero(3)
        assert z.is_zero() and z.degree == -1

    def test_monomial(self):
        m = Poly.monomial(4, 2)
        assert m.degree == 4 and m.coeffs == (0, 0, 0, 0, 1)

    def test_bad_characteristic(self):
        with pytest.raises(ValueError):
            Poly([1], 1)


class TestIntPacking:
    def test_round_trip_gf2(self):
        for v in range(64):
            assert Poly.from_int(v, 2).to_int() == v

    def test_round_trip_gf3(self):
        for v in range(81):
            assert Poly.from_int(v, 3).to_int() == v

    def test_bit_semantics(self):
        # 0b1011 = x^3 + x + 1
        assert Poly.from_int(0b1011, 2).coeffs == (1, 1, 0, 1)


class TestRingAxioms:
    @given(poly_strategy(2), poly_strategy(2), poly_strategy(2))
    def test_add_associative_gf2(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(poly_strategy(3), poly_strategy(3))
    def test_add_commutative_gf3(self, a, b):
        assert a + b == b + a

    @given(poly_strategy(2), poly_strategy(2), poly_strategy(2))
    def test_mul_distributes(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(poly_strategy(5), poly_strategy(5))
    def test_mul_degree(self, a, b):
        if not a.is_zero() and not b.is_zero():
            assert (a * b).degree == a.degree + b.degree

    @given(poly_strategy(3))
    def test_additive_inverse(self, a):
        assert (a + (-a)).is_zero()

    def test_mixed_characteristic_raises(self):
        with pytest.raises(ValueError):
            Poly([1], 2) + Poly([1], 3)


class TestDivision:
    @given(poly_strategy(2, 10), poly_strategy(2, 6))
    def test_divmod_identity_gf2(self, a, b):
        if b.is_zero():
            return
        q, r = divmod(a, b)
        assert q * b + r == a
        assert r.degree < b.degree

    @given(poly_strategy(5, 8), poly_strategy(5, 5))
    def test_divmod_identity_gf5(self, a, b):
        if b.is_zero():
            return
        q, r = divmod(a, b)
        assert q * b + r == a

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            divmod(Poly([1], 2), Poly.zero(2))

    def test_exact_division(self):
        a = Poly([1, 1], 2)  # x + 1
        sq = a * a  # x^2 + 1 over GF(2)
        assert sq == Poly([1, 0, 1], 2)
        q, r = divmod(sq, a)
        assert r.is_zero() and q == a


class TestPowMod:
    def test_fermat_gf2(self):
        # x^(2^3) == x mod any irreducible cubic
        f = Poly([1, 1, 0, 1], 2)  # x^3 + x + 1
        x = Poly.x(2)
        assert x.pow_mod(8, f) == x

    def test_zero_exponent(self):
        f = Poly([1, 1, 0, 1], 2)
        assert Poly([0, 1], 2).pow_mod(0, f) == Poly.one(2)

    def test_negative_exponent_raises(self):
        with pytest.raises(ValueError):
            Poly.x(2).pow_mod(-1, Poly([1, 1], 2))

    @given(st.integers(0, 50), st.integers(0, 50))
    def test_exponent_addition(self, e1, e2):
        f = Poly([1, 1, 0, 0, 1], 2)  # x^4 + x + 1, irreducible
        x = Poly.x(2)
        assert (x.pow_mod(e1, f) * x.pow_mod(e2, f)) % f == x.pow_mod(e1 + e2, f)


class TestGcd:
    def test_coprime(self):
        a = Poly([1, 1], 2)
        b = Poly([1, 1, 1], 2)
        assert a.gcd(b) == Poly.one(2)

    def test_common_factor(self):
        a = Poly([1, 1], 2)
        b = Poly([1, 0, 1], 2)  # (x+1)^2 over GF(2)
        assert b.gcd(a) == a

    def test_with_zero(self):
        a = Poly([1, 2], 5)
        assert a.gcd(Poly.zero(5)) == a.monic()

    @given(poly_strategy(3, 6), poly_strategy(3, 6))
    def test_gcd_divides_both(self, a, b):
        g = a.gcd(b)
        if g.is_zero():
            assert a.is_zero() and b.is_zero()
        else:
            assert (a % g).is_zero() and (b % g).is_zero()


class TestEvalDerivative:
    def test_eval_horner(self):
        f = Poly([1, 2, 3], 5)  # 3x^2 + 2x + 1
        assert f(2) == (3 * 4 + 2 * 2 + 1) % 5

    def test_derivative_gf2_kills_even_powers(self):
        f = Poly([1, 1, 1, 1], 2)  # x^3 + x^2 + x + 1
        assert f.derivative() == Poly([1, 0, 1], 2)  # 3x^2 + 2x + 1 = x^2 + 1

    def test_derivative_of_constant(self):
        assert Poly([4], 7).derivative().is_zero()
