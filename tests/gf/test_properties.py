"""Hypothesis property tests for the field-theory layer (ISSUE satellite).

Three algebraic contracts, exercised over randomized inputs rather than
the fixed instances of the per-module tests:

* discrete logs round-trip (``base^dlog(v) == v``) and the table-based
  and baby-step/giant-step implementations agree;
* subfield embeddings are field homomorphisms (preserve +, *, 1) with
  ``project`` a true left inverse, and land exactly on the
  Frobenius-fixed subfield;
* ``factor_poly`` on deliberately reducible inputs (random products)
  returns irreducible monic factors that reconstruct the input.
"""

import random

from hypothesis import assume, given, settings, strategies as st

from repro.gf.dlog import dlog, dlog_bsgs
from repro.gf.factorpoly import factor_poly, poly_roots
from repro.gf.gf2m import GF2m
from repro.gf.irreducible import is_irreducible
from repro.gf.poly import Poly
from repro.gf.subfield import (
    BasisDecomposition,
    FieldEmbedding,
    frobenius_power,
    in_subfield,
)

_F8 = GF2m(8)
_F4 = GF2m(4)
_F10 = GF2m(10)
_F5 = GF2m(5)
_EMB_4_8 = FieldEmbedding(_F4, _F8)
_EMB_5_10 = FieldEmbedding(_F5, _F10)


class TestDlogRoundTrip:
    @settings(max_examples=60)
    @given(s=st.integers(0, _F8.group_order - 1),
           k=st.integers(0, 2 * _F8.group_order))
    def test_pow_of_dlog_recovers_value(self, s, k):
        base = _F8.exp(s)
        value = _F8.pow(base, k)
        got = dlog(_F8, base, value)
        assert _F8.pow(base, got) == value

    @settings(max_examples=40)
    @given(s=st.integers(0, _F8.group_order - 1),
           k=st.integers(0, _F8.group_order))
    def test_table_and_bsgs_agree(self, s, k):
        base = _F8.exp(s)
        value = _F8.pow(base, k)
        order = _F8.element_order(base)
        assert dlog(_F8, base, value) % order == dlog_bsgs(_F8, base, value)

    @settings(max_examples=40)
    @given(k=st.integers(0, _F8.group_order))
    def test_generator_dlog_is_plain_log(self, k):
        g = _F8.exp(1)
        value = _F8.exp(k)
        assert dlog(_F8, g, value) == k % _F8.group_order

    def test_outside_subgroup_raises(self):
        # an element of order 5 generates a 5-element subgroup of
        # GF(256)^*; anything outside it has no dlog
        base = _F8.exp(_F8.group_order // 5)
        outside = _F8.exp(1)
        try:
            dlog(_F8, base, outside)
        except ValueError:
            return
        raise AssertionError("expected ValueError for non-member value")


@st.composite
def _pairs(draw, order):
    return draw(st.integers(0, order - 1)), draw(st.integers(0, order - 1))


class TestEmbeddingHomomorphism:
    @settings(max_examples=60)
    @given(ab=_pairs(_F4.order))
    def test_multiplicative(self, ab):
        a, b = ab
        emb = _EMB_4_8
        assert emb.embed(_F4.mul(a, b)) == _F8.mul(emb.embed(a), emb.embed(b))

    @settings(max_examples=60)
    @given(ab=_pairs(_F4.order))
    def test_additive(self, ab):
        a, b = ab
        # addition in characteristic 2 is xor
        assert _EMB_4_8.embed(a ^ b) == _EMB_4_8.embed(a) ^ _EMB_4_8.embed(b)

    @settings(max_examples=40)
    @given(a=st.integers(0, _F4.order - 1))
    def test_project_left_inverse(self, a):
        assert _EMB_4_8.project(_EMB_4_8.embed(a)) == a

    @settings(max_examples=40)
    @given(a=st.integers(0, _F4.order - 1))
    def test_image_is_frobenius_fixed(self, a):
        b = _EMB_4_8.embed(a)
        assert _EMB_4_8.contains(b)
        assert in_subfield(_F8, b, 4)
        assert frobenius_power(_F8, b, 4) == b

    @settings(max_examples=30)
    @given(ab=_pairs(_F5.order))
    def test_second_tower_multiplicative(self, ab):
        a, b = ab
        emb = _EMB_5_10
        assert emb.embed(_F5.mul(a, b)) == _F10.mul(emb.embed(a), emb.embed(b))

    def test_unit_preserved(self):
        assert _EMB_4_8.embed(0) == 0
        assert _EMB_4_8.embed(1) == 1

    @settings(max_examples=30)
    @given(uz=_pairs(_F4.order))
    def test_basis_decomposition_round_trip(self, uz):
        z, v = uz
        # w generating the extension over the subfield: any element
        # outside the embedded image works; use the field generator
        w = _F8.exp(1)
        assume(not _EMB_4_8.contains(w))
        dec = BasisDecomposition(_EMB_4_8, w)
        u = dec.combine(z, v)
        assert dec.split(u) == (z, v)


def _pow(g: Poly, e: int) -> Poly:
    out = Poly.one(g.p)
    for _ in range(e):
        out = out * g
    return out


@st.composite
def _nonconstant_poly(draw, p, max_degree=4):
    deg = draw(st.integers(1, max_degree))
    coeffs = [draw(st.integers(0, p - 1)) for _ in range(deg)] + [
        draw(st.integers(1, p - 1))
    ]
    return Poly(coeffs, p)


class TestFactorReducible:
    @settings(max_examples=40)
    @given(
        parts=st.lists(_nonconstant_poly(p=2), min_size=2, max_size=4),
        seed=st.integers(0, 2**16),
    )
    def test_product_reconstructs_gf2(self, parts, seed):
        f = parts[0]
        for g in parts[1:]:
            f = f * g
        factors = factor_poly(f, rng=random.Random(seed))
        prod = Poly.one(2)
        for g, e in factors.items():
            assert g.degree >= 1 and is_irreducible(g)
            assert g.monic() == g
            prod = prod * _pow(g, e)
        assert prod == f.monic()
        assert sum(g.degree * e for g, e in factors.items()) == f.degree

    @settings(max_examples=25)
    @given(
        parts=st.lists(_nonconstant_poly(p=3, max_degree=3),
                       min_size=2, max_size=3),
        seed=st.integers(0, 2**16),
    )
    def test_product_reconstructs_gf3(self, parts, seed):
        f = parts[0]
        for g in parts[1:]:
            f = f * g
        factors = factor_poly(f, rng=random.Random(seed))
        prod = Poly.one(3)
        for g, e in factors.items():
            assert is_irreducible(g)
            prod = prod * _pow(g, e)
        assert prod == f.monic()

    @settings(max_examples=30)
    @given(roots=st.lists(st.integers(0, 4), min_size=1, max_size=5))
    def test_roots_of_linear_product_recovered(self, roots):
        p = 5
        f = Poly.one(p)
        for r in roots:
            f = f * Poly([(-r) % p, 1], p)  # (x - r)
        assert poly_roots(f) == sorted(roots)

    @settings(max_examples=30)
    @given(part=_nonconstant_poly(p=2), e=st.integers(2, 3))
    def test_repeated_factor_multiplicity(self, part, e):
        factors = factor_poly(_pow(part, e))
        total = sum(factors.values())
        assert total >= e  # e copies of each irreducible factor of part
        assert all(mult % e == 0 for mult in factors.values())
