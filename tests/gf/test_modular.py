"""Unit tests for repro.gf.modular."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.gf.modular import egcd, modinv, is_prime, log_star, int_nth_root


class TestEgcd:
    def test_basic(self):
        g, x, y = egcd(12, 18)
        assert g == 6
        assert 12 * x + 18 * y == 6

    def test_coprime(self):
        g, x, y = egcd(17, 31)
        assert g == 1
        assert 17 * x + 31 * y == 1

    def test_zero(self):
        assert egcd(0, 5)[0] == 5
        assert egcd(5, 0)[0] == 5

    @given(st.integers(1, 10**9), st.integers(1, 10**9))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g


class TestModinv:
    def test_small(self):
        assert modinv(3, 7) == 5  # 3*5 = 15 = 1 mod 7

    def test_identity(self):
        assert modinv(1, 97) == 1

    def test_noninvertible_raises(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    @given(st.integers(2, 10**6))
    def test_inverse_property(self, m):
        a = 1 + (m // 2)
        if math.gcd(a, m) == 1:
            assert a * modinv(a, m) % m == 1


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101):
            assert is_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 6, 9, 100, 561, 1105):  # includes Carmichaels
            assert not is_prime(c)

    def test_mersenne(self):
        assert is_prime(2**31 - 1)
        assert not is_prime(2**29 - 1)  # 233 * ...

    def test_large_semiprime(self):
        assert not is_prime((2**31 - 1) * (2**61 - 1))

    def test_matches_sieve(self):
        limit = 2000
        sieve = [True] * limit
        sieve[0] = sieve[1] = False
        for i in range(2, int(limit**0.5) + 1):
            if sieve[i]:
                for j in range(i * i, limit, i):
                    sieve[j] = False
        for n in range(limit):
            assert is_prime(n) == sieve[n], n


class TestLogStar:
    def test_base_cases(self):
        assert log_star(0) == 0
        assert log_star(1) == 0
        assert log_star(2) == 1

    def test_small_values(self):
        assert log_star(4) == 2  # log 4 = 2, log 2 = 1
        assert log_star(16) == 3  # 16 -> 4 -> 2 -> 1
        assert log_star(65536) == 4

    def test_slow_growth(self):
        # log* of anything remotely practical is tiny
        assert log_star(2**64) <= 5
        assert log_star(10**100) <= 6

    def test_monotone(self):
        vals = [log_star(n) for n in range(1, 200)]
        assert vals == sorted(vals)


class TestIntNthRoot:
    def test_exact_roots(self):
        assert int_nth_root(27, 3) == 3
        assert int_nth_root(1024, 10) == 2

    def test_floor_behavior(self):
        assert int_nth_root(26, 3) == 2
        assert int_nth_root(28, 3) == 3

    def test_zero_and_one(self):
        assert int_nth_root(0, 5) == 0
        assert int_nth_root(1, 5) == 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            int_nth_root(-1, 2)

    @given(st.integers(0, 10**15), st.integers(2, 8))
    def test_floor_invariant(self, x, n):
        r = int_nth_root(x, n)
        assert r**n <= x < (r + 1) ** n
