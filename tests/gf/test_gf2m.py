"""Tests for the fast table-based GF(2^m), including vectorized kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gf.gf2m import GF2m
from repro.gf.field import GFpm
from repro.gf.poly import Poly


@pytest.fixture(scope="module")
def F8():
    return GF2m.get(3)


@pytest.fixture(scope="module")
def F256():
    return GF2m.get(8)


class TestConstruction:
    def test_cached(self):
        assert GF2m.get(5) is GF2m.get(5)

    def test_basic_attributes(self, F8):
        assert F8.order == 8 and F8.group_order == 7 and F8.generator == 2

    def test_bad_degree(self):
        with pytest.raises(ValueError):
            GF2m(0)
        with pytest.raises(ValueError):
            GF2m(40)

    def test_bad_modulus_degree(self):
        with pytest.raises(ValueError):
            GF2m(3, modulus=0b111)  # degree 2, not 3

    def test_nonprimitive_modulus_rejected(self):
        # x^4 + x^3 + x^2 + x + 1: irreducible but x has order 5
        with pytest.raises(ValueError):
            GF2m(4, modulus=0b11111)

    def test_m1_field(self):
        F2 = GF2m.get(1)
        assert F2.mul(1, 1) == 1
        assert F2.add(1, 1) == 0
        assert F2.inv(1) == 1


class TestScalarOps:
    def test_add_is_xor(self, F8):
        assert F8.add(0b101, 0b011) == 0b110

    def test_mul_matches_reference(self, F8):
        ref = GFpm(2, 3, Poly.from_int(F8.modulus, 2))
        for a in range(8):
            for b in range(8):
                assert F8.mul(a, b) == ref.mul(a, b)

    def test_mul_zero(self, F8):
        for a in range(8):
            assert F8.mul(a, 0) == 0 and F8.mul(0, a) == 0

    def test_inverse(self, F256):
        for a in range(1, 256):
            assert F256.mul(a, F256.inv(a)) == 1

    def test_inv_zero_raises(self, F8):
        with pytest.raises(ZeroDivisionError):
            F8.inv(0)

    def test_div(self, F256):
        for a in (1, 7, 100, 255):
            for b in (1, 3, 200):
                assert F256.mul(F256.div(a, b), b) == a

    def test_div_by_zero_raises(self, F8):
        with pytest.raises(ZeroDivisionError):
            F8.div(3, 0)

    def test_pow(self, F8):
        for a in range(1, 8):
            acc = 1
            for e in range(10):
                assert F8.pow(a, e) == acc
                acc = F8.mul(acc, a)

    def test_pow_negative(self, F8):
        assert F8.pow(3, -1) == F8.inv(3)

    def test_pow_zero_base(self, F8):
        assert F8.pow(0, 0) == 1
        assert F8.pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            F8.pow(0, -1)

    def test_exp_log_inverse(self, F256):
        for a in range(1, 256):
            assert F256.exp(F256.log(a)) == a

    def test_log_zero_raises(self, F8):
        with pytest.raises(ValueError):
            F8.log(0)

    def test_sqrt(self, F256):
        for a in range(256):
            s = F256.sqrt(a)
            assert F256.mul(s, s) == a

    def test_frobenius_additive(self, F256):
        # (a + b)^2 = a^2 + b^2 in characteristic 2
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, b = rng.integers(0, 256, 2)
            assert F256.frobenius(int(a) ^ int(b)) == F256.frobenius(int(a)) ^ F256.frobenius(int(b))

    def test_element_order_divides_group(self, F256):
        for a in range(1, 256, 17):
            assert F256.group_order % F256.element_order(a) == 0

    def test_generator_primitive(self, F256):
        assert F256.is_primitive_element(F256.generator)
        assert not F256.is_primitive_element(1)

    def test_minimal_polynomial(self, F8):
        mp = F8.minimal_polynomial(F8.generator)
        assert mp.to_int() == F8.modulus
        assert F8.minimal_polynomial(1) == Poly([1, 1], 2)  # x + 1


class TestVectorOps:
    def test_vmul_matches_scalar(self, F256, rng=None):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 256, 500)
        b = rng.integers(0, 256, 500)
        got = F256.vmul(a, b)
        assert all(int(got[i]) == F256.mul(int(a[i]), int(b[i])) for i in range(500))

    def test_vmul_zero_handling(self, F8):
        a = np.array([0, 1, 0, 5])
        b = np.array([3, 0, 0, 5])
        assert list(F8.vmul(a, b)) == [0, 0, 0, F8.mul(5, 5)]

    def test_vinv(self, F256):
        a = np.arange(1, 256)
        assert np.all(F256.vmul(a, F256.vinv(a)) == 1)

    def test_vinv_zero_raises(self, F8):
        with pytest.raises(ZeroDivisionError):
            F8.vinv(np.array([1, 0]))

    def test_vdiv(self, F256):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 256, 300)
        b = rng.integers(1, 256, 300)
        assert np.all(F256.vmul(F256.vdiv(a, b), b) == a)

    def test_vpow(self, F256):
        a = np.arange(256)
        for e in (0, 1, 2, 7, 254):
            got = F256.vpow(a, e)
            assert all(int(got[i]) == F256.pow(i, e) for i in range(256))

    def test_vlog_vexp(self, F256):
        a = np.arange(1, 256)
        assert np.all(F256.vexp(F256.vlog(a)) == a)

    def test_vlog_zero_raises(self, F8):
        with pytest.raises(ValueError):
            F8.vlog(np.array([0, 1]))

    def test_broadcasting(self, F8):
        a = np.arange(8).reshape(2, 4)
        got = F8.vmul(a, np.full((2, 4), 3))
        assert got.shape == (2, 4)


class TestFieldAxiomsProperty:
    @settings(max_examples=200)
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_distributivity(self, a, b, c):
        F = GF2m.get(8)
        assert F.mul(a, b ^ c) == F.mul(a, b) ^ F.mul(a, c)

    @settings(max_examples=200)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_mul_commutative(self, a, b):
        F = GF2m.get(8)
        assert F.mul(a, b) == F.mul(b, a)

    @settings(max_examples=200)
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_mul_associative(self, a, b, c):
        F = GF2m.get(8)
        assert F.mul(F.mul(a, b), c) == F.mul(a, F.mul(b, c))

    @settings(max_examples=100)
    @given(st.integers(1, 255))
    def test_fermat(self, a):
        F = GF2m.get(8)
        assert F.pow(a, 255) == 1


class TestIterationHelpers:
    def test_elements(self, F8):
        assert list(F8.elements()) == list(range(8))

    def test_nonzero_elements_are_generator_powers(self, F8):
        nz = F8.nonzero_elements()
        assert nz[0] == 1 and set(nz.tolist()) == set(range(1, 8))

    def test_random_elements_range(self, F256):
        rng = np.random.default_rng(3)
        vals = F256.random_elements(1000, rng)
        assert vals.min() >= 0 and vals.max() < 256
