"""Tests for the PRAM emulation layer and its algorithms."""

import numpy as np
import pytest

from repro.pram import (
    PRAM,
    bitonic_sort,
    compact,
    list_ranking,
    odd_even_sort,
    parallel_max,
    prefix_sums,
)
from repro.schemes.pp_adapter import PPAdapter
from repro.schemes.single_copy import SingleCopyScheme
from repro.schemes.upfal_wigderson import UpfalWigdersonScheme


@pytest.fixture(scope="module")
def pp_scheme():
    return PPAdapter(2, 5)


def make_list(n, rng):
    perm = rng.permutation(n)
    succ = np.empty(n, dtype=np.int64)
    for i in range(n - 1):
        succ[perm[i]] = perm[i + 1]
    succ[perm[-1]] = perm[-1]
    expect = np.empty(n, dtype=np.int64)
    for i in range(n):
        expect[perm[i]] = n - 1 - i
    return succ, expect


class TestMachine:
    def test_read_before_write(self, pp_scheme):
        pram = PRAM(pp_scheme)
        got = pram.parallel_read(np.array([1, 2, 3]))
        assert got.tolist() == [-1, -1, -1]

    def test_write_then_read(self, pp_scheme):
        pram = PRAM(pp_scheme)
        pram.parallel_write(np.array([5, 9]), np.array([50, 90]))
        assert pram.parallel_read(np.array([9, 5, 9])).tolist() == [90, 50, 90]

    def test_concurrent_read_combining(self, pp_scheme):
        pram = PRAM(pp_scheme)
        pram.parallel_write(np.array([3]), np.array([7]))
        got = pram.parallel_read(np.full(64, 3))
        assert (got == 7).all()
        # combined into ONE protocol request: cost far below 64 serial hits
        assert pram.mpc_iterations <= 6

    def test_concurrent_write_arbitrary(self, pp_scheme):
        pram = PRAM(pp_scheme, combine="arbitrary")
        pram.parallel_write(np.array([4, 4, 4]), np.array([1, 2, 3]))
        assert int(pram.parallel_read(np.array([4]))[0]) == 1  # lowest proc wins

    @pytest.mark.parametrize("rule,expect", [("max", 9), ("min", 2), ("sum", 18)])
    def test_combining_rules(self, pp_scheme, rule, expect):
        pram = PRAM(pp_scheme, combine=rule)
        pram.parallel_write(np.array([0, 0, 0]), np.array([7, 2, 9]))
        assert int(pram.parallel_read(np.array([0]))[0]) == expect

    def test_bad_combine_rule(self, pp_scheme):
        with pytest.raises(ValueError):
            PRAM(pp_scheme, combine="xor")

    def test_address_bounds(self, pp_scheme):
        pram = PRAM(pp_scheme)
        with pytest.raises(ValueError):
            pram.parallel_read(np.array([pp_scheme.M]))
        with pytest.raises(ValueError):
            pram.parallel_write(np.array([-1]), np.array([0]))

    def test_shape_mismatch(self, pp_scheme):
        pram = PRAM(pp_scheme)
        with pytest.raises(ValueError):
            pram.parallel_write(np.array([1, 2]), np.array([1]))

    def test_empty_steps_free(self, pp_scheme):
        pram = PRAM(pp_scheme)
        assert pram.parallel_read(np.empty(0, dtype=np.int64)).size == 0
        pram.parallel_write(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert pram.steps == 0

    def test_load_dump(self, pp_scheme):
        pram = PRAM(pp_scheme)
        data = np.arange(30) * 2
        pram.load(10, data)
        assert (pram.dump(10, 30) == data).all()

    def test_cost_accumulates(self, pp_scheme):
        pram = PRAM(pp_scheme)
        pram.load(0, np.arange(100))
        _ = pram.dump(0, 100)
        c = pram.cost_summary()
        assert c["pram_steps"] == 2
        assert c["mpc_iterations"] >= 2
        assert c["modeled_mpc_steps"] > c["mpc_iterations"]


class TestAlgorithms:
    def test_prefix_sums(self, pp_scheme, rng):
        data = rng.integers(0, 1000, 200)
        pram = PRAM(pp_scheme)
        assert (prefix_sums(pram, data) == np.cumsum(data)).all()

    def test_prefix_sums_singleton_and_empty(self, pp_scheme):
        pram = PRAM(pp_scheme)
        assert prefix_sums(pram, np.array([7])).tolist() == [7]
        assert prefix_sums(pram, np.array([], dtype=np.int64)).size == 0

    def test_list_ranking(self, pp_scheme, rng):
        succ, expect = make_list(64, rng)
        pram = PRAM(pp_scheme)
        assert (list_ranking(pram, succ, base=500) == expect).all()

    def test_list_ranking_non_power_of_two(self, pp_scheme, rng):
        succ, expect = make_list(37, rng)
        pram = PRAM(pp_scheme)
        assert (list_ranking(pram, succ) == expect).all()

    def test_parallel_max(self, pp_scheme, rng):
        data = rng.integers(-5000, 5000, 99) + 5000
        pram = PRAM(pp_scheme)
        assert parallel_max(pram, data) == int(data.max())

    def test_parallel_max_empty(self, pp_scheme):
        with pytest.raises(ValueError):
            parallel_max(PRAM(pp_scheme), np.array([], dtype=np.int64))

    def test_compact(self, pp_scheme, rng):
        data = rng.integers(0, 1000, 150)
        keep = rng.random(150) < 0.4
        pram = PRAM(pp_scheme)
        got = compact(pram, data, keep)
        assert got.tolist() == data[keep].tolist()

    def test_compact_none_kept(self, pp_scheme):
        pram = PRAM(pp_scheme)
        got = compact(pram, np.arange(10), np.zeros(10, dtype=bool))
        assert got.size == 0

    def test_compact_all_kept(self, pp_scheme):
        pram = PRAM(pp_scheme)
        data = np.arange(20) * 3
        assert (compact(pram, data, np.ones(20, dtype=bool)) == data).all()

    def test_compact_shape_mismatch(self, pp_scheme):
        with pytest.raises(ValueError):
            compact(PRAM(pp_scheme), np.arange(5), np.ones(4, dtype=bool))

    def test_odd_even_sort(self, pp_scheme, rng):
        data = rng.integers(0, 10_000, 48)
        pram = PRAM(pp_scheme)
        assert odd_even_sort(pram, data).tolist() == sorted(data.tolist())

    def test_odd_even_sort_with_duplicates(self, pp_scheme, rng):
        data = rng.integers(0, 5, 30)
        pram = PRAM(pp_scheme)
        assert odd_even_sort(pram, data).tolist() == sorted(data.tolist())

    def test_odd_even_sort_trivial(self, pp_scheme):
        pram = PRAM(pp_scheme)
        assert odd_even_sort(pram, np.array([5])).tolist() == [5]
        assert odd_even_sort(pram, np.array([], dtype=np.int64)).size == 0

    def test_sort_already_sorted(self, pp_scheme):
        pram = PRAM(pp_scheme)
        data = np.arange(25)
        assert (odd_even_sort(pram, data) == data).all()

    @pytest.mark.parametrize("n", [2, 16, 33, 100])
    def test_bitonic_sort(self, pp_scheme, rng, n):
        data = rng.integers(0, 10_000, n)
        pram = PRAM(pp_scheme)
        assert bitonic_sort(pram, data).tolist() == sorted(data.tolist())

    def test_bitonic_vs_odd_even_round_counts(self, pp_scheme, rng):
        data = rng.integers(0, 1000, 64)
        p1, p2 = PRAM(pp_scheme), PRAM(pp_scheme)
        assert bitonic_sort(p1, data).tolist() == odd_even_sort(p2, data).tolist()
        # bitonic: O(log^2 n) rounds; odd-even: O(n) rounds
        assert p1.steps < p2.steps

    def test_bitonic_duplicates_and_sorted(self, pp_scheme, rng):
        pram = PRAM(pp_scheme)
        data = np.array([5, 5, 5, 1, 1, 9])
        assert bitonic_sort(pram, data).tolist() == [1, 1, 5, 5, 5, 9]
        pram = PRAM(pp_scheme)
        assert (bitonic_sort(pram, np.arange(17)) == np.arange(17)).all()

    def test_logarithmic_round_count(self, pp_scheme, rng):
        # doubling algorithms: PRAM steps ~ 3-5 log n, not ~ n
        data = rng.integers(0, 100, 256)
        pram = PRAM(pp_scheme)
        prefix_sums(pram, data)
        assert pram.steps <= 5 * 8 + 5


class TestCrossScheme:
    @pytest.mark.parametrize(
        "scheme_factory",
        [
            lambda: PPAdapter(2, 5),
            lambda: UpfalWigdersonScheme(1023, 5456, c=2, seed=3),
            lambda: SingleCopyScheme(1023, 5456, seed=3),
        ],
    )
    def test_same_answers_different_costs(self, scheme_factory, rng):
        data = rng.integers(0, 100, 128)
        pram = PRAM(scheme_factory())
        assert (prefix_sums(pram, data) == np.cumsum(data)).all()
