"""Integration: sequential consistency of majority read/write histories.

The paper's correctness argument (inherited from [UW87]/[Tho79]): any
read majority intersects any write majority, and timestamps order the
writes; hence every read returns the value of the latest completed
write.  These tests drive long random histories through the full stack
(addressing -> placement -> protocol -> MPC -> store) and check against
a flat reference memory.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scheme import PPScheme
from repro.schemes.pp_adapter import PPAdapter
from repro.schemes.upfal_wigderson import UpfalWigdersonScheme


class TestRandomHistories:
    @pytest.mark.parametrize("arbitration", ["lowest", "random", "rotating"])
    def test_against_reference_memory(self, scheme_2_5, arbitration):
        s = scheme_2_5
        rng = np.random.default_rng(99)
        store = s.make_store()
        reference = {}
        t = 1
        for _ in range(12):
            count = int(rng.integers(1, 400))
            idx = np.sort(rng.choice(s.M, count, replace=False)).astype(np.int64)
            if rng.random() < 0.5:
                vals = rng.integers(0, 1 << 20, count)
                s.write(idx, values=vals, store=store, time=t, arbitration=arbitration)
                for i, v in zip(idx, vals):
                    reference[int(i)] = int(v)
            else:
                res = s.read(idx, store=store, time=t, arbitration=arbitration)
                for i, v in zip(idx, res.values):
                    assert int(v) == reference.get(int(i), -1)
            t += 1

    def test_interleaved_disjoint_batches(self, scheme_2_3):
        # two disjoint halves written at different times; reads see both
        s = scheme_2_3
        store = s.make_store()
        all_idx = np.arange(s.M, dtype=np.int64)
        a, b = all_idx[::2], all_idx[1::2]
        s.write(a, values=a + 1000, store=store, time=1)
        s.write(b, values=b + 2000, store=store, time=2)
        res = s.read(all_idx, store=store, time=3)
        assert (res.values[::2] == a + 1000).all()
        assert (res.values[1::2] == b + 2000).all()

    def test_q4_history(self, scheme_4_3):
        s = scheme_4_3
        store = s.make_store()
        rng = np.random.default_rng(5)
        reference = {}
        for t in range(1, 8):
            idx = np.sort(rng.choice(s.M, 200, replace=False)).astype(np.int64)
            vals = rng.integers(0, 1 << 16, 200)
            s.write(idx, values=vals, store=store, time=t)
            for i, v in zip(idx, vals):
                reference[int(i)] = int(v)
        probe = np.array(sorted(reference), dtype=np.int64)[:500]
        res = s.read(probe, store=store, time=100)
        for i, v in zip(probe, res.values):
            assert int(v) == reference[int(i)]


class TestPropertyBasedSemantics:
    @settings(max_examples=20, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.booleans(),  # write?
                st.integers(0, 6),  # seed offset
                st.integers(1, 60),  # batch size
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_uw_and_pp_agree_with_reference(self, ops):
        pp = PPScheme(2, 3)
        store = pp.make_store()
        reference = {}
        rng_master = np.random.default_rng(7)
        t = 1
        for is_write, seed_off, size in ops:
            rng = np.random.default_rng(1000 + seed_off)
            size = min(size, pp.M)
            idx = np.sort(rng.choice(pp.M, size, replace=False)).astype(np.int64)
            if is_write:
                vals = rng_master.integers(0, 1 << 10, size)
                pp.write(idx, values=vals, store=store, time=t)
                for i, v in zip(idx, vals):
                    reference[int(i)] = int(v)
            else:
                res = pp.read(idx, store=store, time=t)
                for i, v in zip(idx, res.values):
                    assert int(v) == reference.get(int(i), -1)
            t += 1


class TestCrossSchemeEquivalence:
    def test_all_schemes_read_what_they_wrote(self):
        N, M = 1023, 5456
        schemes = [
            PPAdapter(2, 5),
            UpfalWigdersonScheme(N, M, c=2, seed=1),
        ]
        for sch in schemes:
            idx = sch.random_request_set(300, seed=4)
            st_ = sch.make_store()
            sch.write(idx, values=idx + 5, store=st_, time=1)
            res = sch.read(idx, store=st_, time=2)
            assert (res.values == idx + 5).all(), sch.name
