"""Golden regression tests: exact addresses, frozen forever.

The Section-4 addressing defines a *specific* bijection; any change to
the field modulus table, the S-set ordering, the coset canonicalization
or the P_gamma slot order silently remaps every physical address and
invalidates stored data.  These constants pin the layout.  If a change
legitimately redefines the layout, this file must be updated in the
same commit -- loudly.
"""

import numpy as np

from repro.core.scheme import PPScheme


class TestGoldenAddresses:
    def test_n3_layout(self, scheme_2_3):
        assert scheme_2_3.locate(0) == [(1, 0), (0, 0), (2, 0)]
        assert scheme_2_3.locate(41) == [(0, 2), (5, 0), (6, 0)]
        assert scheme_2_3.locate(83) == [(53, 2), (3, 1), (14, 3)]

    def test_n5_layout(self, scheme_2_5):
        assert scheme_2_5.locate(4242) == [(584, 15), (613, 13), (9, 10)]

    def test_n7_layout(self):
        s = PPScheme(2, 7)
        assert s.locate(123456) == [(2338, 39), (6921, 47), (9182, 6)]

    def test_n5_unrank_matrices(self, scheme_2_5):
        a = scheme_2_5.addressing
        assert a.unrank(0) == (0, 1, 1, 0)
        assert a.unrank(100) == (0, 30, 15, 1)
        assert a.unrank(5455) == (24, 7, 13, 1)

    def test_module_rows(self, scheme_2_5):
        mods = scheme_2_5.module_ids_for(np.array([0, 1, 2]))
        assert mods.tolist() == [[1, 0, 2], [463, 462, 492], [925, 924, 947]]

    def test_seeded_request_set(self, scheme_2_5):
        idx = scheme_2_5.random_request_set(8, seed=42)
        assert idx.tolist() == [468, 3804, 4682, 3568, 2361, 2392, 486, 4218]

    def test_field_moduli_frozen(self):
        from repro.gf.gf2m import GF2m

        assert GF2m.get(5).modulus == 0b100101
        assert GF2m.get(10).modulus == 0b10000001001
        assert GF2m.get(14).modulus == 0b100010001000011
