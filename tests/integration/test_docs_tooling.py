"""Tests for the documentation tooling and the docs themselves."""

import os
import subprocess
import sys

ROOT = os.path.join(os.path.dirname(__file__), "..", "..")


class TestApiDocGenerator:
    def test_generator_runs_and_covers_packages(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, os.path.join(ROOT, "tools", "gen_api_docs.py")],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        text = open(os.path.join(ROOT, "docs", "API.md")).read()
        for pkg in (
            "repro.core.scheme",
            "repro.core.addressing",
            "repro.mpc.machine",
            "repro.schemes.upfal_wigderson",
            "repro.pram.machine",
            "repro.network.routing",
            "repro.kvstore.store",
            "repro.obs",
            "repro.obs.metrics",
            "repro.obs.trace",
        ):
            assert f"## `{pkg}`" in text, pkg
        assert "class `PPScheme" in text
        assert "*(undocumented)*" not in text  # everything public has docs

    def test_observability_reference_emitted_in_full(self):
        # repro.obs sets __apidoc__ = "full": its whole docstring (the
        # metric-name and trace-schema tables) must land in API.md.
        text = open(os.path.join(ROOT, "docs", "API.md")).read()
        assert "### Metric names" in text
        assert "### Trace event schema" in text
        assert "protocol.phase_iterations" in text
        assert "kvstore.probe_round" in text


class TestDocsPresent:
    def test_top_level_docs_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     os.path.join("docs", "THEORY.md")):
            path = os.path.join(ROOT, name)
            assert os.path.exists(path), name
            assert len(open(path).read()) > 1000, name

    def test_experiments_covers_all_benches(self):
        bench_dir = os.path.join(ROOT, "benchmarks")
        experiments = open(os.path.join(ROOT, "EXPERIMENTS.md")).read()
        for fn in os.listdir(bench_dir):
            if fn.startswith("bench_e") and fn.endswith(".py"):
                tag = fn.split("_")[1]  # e01 ...
                assert tag.upper()[0] + tag[1:] in experiments or tag in experiments.lower(), fn
