"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.q == 2 and args.n == 5


class TestInfo:
    def test_prints_structure(self, capsys):
        assert main(["info", "-q", "2", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "| N | 63 |" in out
        assert "| M | 84 |" in out

    def test_bad_q(self, capsys):
        assert main(["info", "-q", "3", "-n", "3"]) == 2
        assert "error" in capsys.readouterr().err


class TestLocate:
    def test_locates(self, capsys):
        assert main(["locate", "-q", "2", "-n", "3", "0", "83"]) == 0
        out = capsys.readouterr().out
        assert out.count("| 0 |") >= 3  # three copies of variable 0

    def test_out_of_range(self, capsys):
        assert main(["locate", "-q", "2", "-n", "3", "84"]) == 2


class TestAccess:
    @pytest.mark.parametrize("workload", ["uniform", "strided", "hotspot",
                                          "neighborhood"])
    def test_workloads(self, capsys, workload):
        assert main(
            ["access", "-q", "2", "-n", "5", "--count", "60",
             "--workload", workload]
        ) == 0
        out = capsys.readouterr().out
        assert "Phi (max)" in out

    @pytest.mark.parametrize("op", ["count", "read", "write"])
    def test_ops(self, capsys, op):
        assert main(
            ["access", "-q", "2", "-n", "5", "--count", "64", "--op", op]
        ) == 0

    def test_count_too_large(self, capsys):
        assert main(["access", "-q", "2", "-n", "3", "--count", "10000"]) == 2


class TestSweep:
    def test_rows(self, capsys):
        assert main(["sweep", "--max-n", "5"]) == 0
        out = capsys.readouterr().out
        assert "| 3 | 63 |" in out
        assert "| 5 | 1023 |" in out


class TestExpansion:
    def test_ratio_at_least_one(self, capsys):
        assert main(
            ["expansion", "-q", "2", "-n", "5", "--sizes", "16", "64",
             "--trials", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "expansion profile" in out


class TestFaults:
    def test_campaign_writes_report_and_passes(self, capsys, tmp_path):
        code = main(
            ["faults", "campaign", "--qs", "2", "--intensities", "0.0",
             "0.1", "--models", "crash", "stale", "--victims", "3",
             "--requests", "80", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Verdict: PASS" in out
        assert (tmp_path / "faults_campaign.md").exists()
        assert (tmp_path / "faults_campaign.json").exists()

    def test_report_rerenders_stored_campaign(self, capsys, tmp_path):
        assert main(
            ["faults", "campaign", "--qs", "2", "--intensities", "0.1",
             "--models", "crash", "--victims", "2", "--requests", "60",
             "--out", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        assert main(["faults", "report", "--dir", str(tmp_path)]) == 0
        assert "q/2 threshold ladders" in capsys.readouterr().out

    def test_campaign_exits_nonzero_on_violations(self, capsys, monkeypatch,
                                                  tmp_path):
        from repro.faults import campaign as campaign_mod

        def broken_campaign(**kwargs):
            return campaign_mod.CampaignResult(
                violations=["scenario q=2 crash: 1 silent wrong read"]
            )

        monkeypatch.setattr(campaign_mod, "run_campaign", broken_campaign)
        code = main(["faults", "campaign", "--out", str(tmp_path)])
        assert code == 1
        assert "Verdict: FAIL" in capsys.readouterr().out

    def test_report_exits_nonzero_on_stored_violations(self, capsys,
                                                       tmp_path):
        import json

        record = {
            "schema": 1, "ok": False, "meta": {},
            "violations": ["threshold q=2 killed k=1: not sharp"],
            "thresholds": [], "scenarios": [],
        }
        with open(tmp_path / "faults_campaign.json", "w") as fh:
            json.dump(record, fh)
        assert main(["faults", "report", "--dir", str(tmp_path)]) == 1
        assert "Verdict: FAIL" in capsys.readouterr().out

    def test_report_missing_file_is_error(self, capsys, tmp_path):
        assert main(["faults", "report", "--dir", str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_model_name_is_error(self, capsys, tmp_path):
        assert main(
            ["faults", "campaign", "--models", "meteor",
             "--out", str(tmp_path)]
        ) == 2
        assert "unknown fault model" in capsys.readouterr().err
