"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.q == 2 and args.n == 5


class TestInfo:
    def test_prints_structure(self, capsys):
        assert main(["info", "-q", "2", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "| N | 63 |" in out
        assert "| M | 84 |" in out

    def test_bad_q(self, capsys):
        assert main(["info", "-q", "3", "-n", "3"]) == 2
        assert "error" in capsys.readouterr().err


class TestLocate:
    def test_locates(self, capsys):
        assert main(["locate", "-q", "2", "-n", "3", "0", "83"]) == 0
        out = capsys.readouterr().out
        assert out.count("| 0 |") >= 3  # three copies of variable 0

    def test_out_of_range(self, capsys):
        assert main(["locate", "-q", "2", "-n", "3", "84"]) == 2


class TestAccess:
    @pytest.mark.parametrize("workload", ["uniform", "strided", "hotspot",
                                          "neighborhood"])
    def test_workloads(self, capsys, workload):
        assert main(
            ["access", "-q", "2", "-n", "5", "--count", "60",
             "--workload", workload]
        ) == 0
        out = capsys.readouterr().out
        assert "Phi (max)" in out

    @pytest.mark.parametrize("op", ["count", "read", "write"])
    def test_ops(self, capsys, op):
        assert main(
            ["access", "-q", "2", "-n", "5", "--count", "64", "--op", op]
        ) == 0

    def test_count_too_large(self, capsys):
        assert main(["access", "-q", "2", "-n", "3", "--count", "10000"]) == 2


class TestSweep:
    def test_rows(self, capsys):
        assert main(["sweep", "--max-n", "5"]) == 0
        out = capsys.readouterr().out
        assert "| 3 | 63 |" in out
        assert "| 5 | 1023 |" in out


class TestExpansion:
    def test_ratio_at_least_one(self, capsys):
        assert main(
            ["expansion", "-q", "2", "-n", "5", "--sizes", "16", "64",
             "--trials", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "expansion profile" in out
