"""Tests for the parallel key-value store application layer."""

import numpy as np
import pytest

from repro.kvstore import ParallelKVStore
from repro.schemes.pp_adapter import PPAdapter
from repro.schemes.upfal_wigderson import UpfalWigdersonScheme


@pytest.fixture()
def kv():
    return ParallelKVStore(PPAdapter(2, 5), seed=1)


class TestBasics:
    def test_put_get(self, kv):
        keys = [f"user:{i}" for i in range(50)]
        vals = np.arange(50) * 10
        stats = kv.batch_put(keys, vals)
        assert stats["inserted"] == 50 and stats["updated"] == 0
        assert (kv.batch_get(keys) == vals).all()
        assert len(kv) == 50

    def test_missing_keys(self, kv):
        kv.batch_put(["a", "b"], [1, 2])
        got = kv.batch_get(["a", "zzz", "b"])
        assert got.tolist() == [1, -1, 2]

    def test_update_in_place(self, kv):
        kv.batch_put(["k"], [5])
        stats = kv.batch_put(["k"], [9])
        assert stats["updated"] == 1 and stats["inserted"] == 0
        assert kv.batch_get(["k"]).tolist() == [9]
        assert len(kv) == 1

    def test_int_keys(self, kv):
        keys = list(range(1000, 1040))
        kv.batch_put(keys, np.arange(40))
        assert (kv.batch_get(keys) == np.arange(40)).all()

    def test_mixed_put_batches(self, kv):
        kv.batch_put(["a", "b"], [1, 2])
        kv.batch_put(["b", "c"], [20, 3])
        assert kv.batch_get(["a", "b", "c"]).tolist() == [1, 20, 3]

    def test_value_range_checked(self, kv):
        with pytest.raises(ValueError):
            kv.batch_put(["x"], [1 << 33])

    def test_duplicate_keys_rejected(self, kv):
        with pytest.raises(ValueError):
            kv.batch_put(["a", "a"], [1, 2])
        with pytest.raises(ValueError):
            kv.batch_get(["a", "a"])

    def test_length_mismatch(self, kv):
        with pytest.raises(ValueError):
            kv.batch_put(["a"], [1, 2])


class TestDelete:
    def test_delete_and_miss(self, kv):
        kv.batch_put(["a", "b", "c"], [1, 2, 3])
        assert kv.batch_delete(["b", "nope"]) == 1
        assert kv.batch_get(["a", "b", "c"]).tolist() == [1, -1, 3]
        assert len(kv) == 2

    def test_reinsert_after_delete(self, kv):
        kv.batch_put(["a"], [1])
        kv.batch_delete(["a"])
        kv.batch_put(["a"], [2])
        assert kv.batch_get(["a"]).tolist() == [2]

    def test_tombstone_does_not_break_chain(self, kv):
        # build a chain, delete the middle, later keys stay reachable
        keys = [f"x{i}" for i in range(200)]
        kv.batch_put(keys, np.arange(200))
        kv.batch_delete(keys[50:100])
        got = kv.batch_get(keys)
        assert (got[:50] == np.arange(50)).all()
        assert (got[50:100] == -1).all()
        assert (got[100:] == np.arange(100, 200)).all()


class TestScaleAndCost:
    def test_thousand_keys(self, kv):
        keys = np.arange(1000) + 7
        vals = (keys * 13) % (1 << 30)
        kv.batch_put(list(keys), vals)
        assert (kv.batch_get(list(keys)) == vals).all()
        c = kv.cost_summary()
        # probe chains stay short: rounds << number of keys
        assert c["protocol_rounds"] < 150
        assert c["mpc_iterations"] > 0

    def test_fills_toward_capacity(self):
        small = ParallelKVStore(UpfalWigdersonScheme(64, 512, c=2, seed=0), seed=2)
        n = small.capacity // 2
        keys = list(range(n))
        small.batch_put(keys, np.arange(n))
        assert (small.batch_get(keys) == np.arange(n)).all()

    def test_deterministic_across_instances(self):
        a = ParallelKVStore(PPAdapter(2, 5), seed=3)
        b = ParallelKVStore(PPAdapter(2, 5), seed=3)
        keys = [f"k{i}" for i in range(30)]
        a.batch_put(keys, np.arange(30))
        b.batch_put(keys, np.arange(30))
        assert (a.batch_get(keys) == b.batch_get(keys)).all()


class TestScan:
    def test_scan_matches_contents(self, kv):
        keys = [f"s{i}" for i in range(60)]
        vals = np.arange(60) + 100
        kv.batch_put(keys, vals)
        fps, scanned = kv.scan()
        assert fps.size == 60
        assert sorted(scanned.tolist()) == sorted(vals.tolist())

    def test_scan_skips_tombstones(self, kv):
        kv.batch_put(["a", "b", "c"], [1, 2, 3])
        kv.batch_delete(["b"])
        fps, vals = kv.scan()
        assert fps.size == 2
        assert sorted(vals.tolist()) == [1, 3]

    def test_scan_empty(self, kv):
        fps, vals = kv.scan()
        assert fps.size == 0 and vals.size == 0


class TestFaultToleranceComposition:
    def test_store_survives_module_failures(self):
        # the KV layer composes with scheme-level replication: reads via
        # the underlying store still succeed when a module dies, because
        # every slot variable has 3 copies
        kv = ParallelKVStore(PPAdapter(2, 5), seed=4)
        keys = [f"k{i}" for i in range(100)]
        kv.batch_put(keys, np.arange(100))
        # simulate failure by reading through the scheme with failures
        fps = kv._fingerprint(keys)
        found, slot, _ = kv._probe(fps)
        assert found.all()
        res = kv.scheme.scheme.read(
            np.unique(2 * slot + 1), store=kv.store, time=10_000,
            failed_modules=np.array([3]),
        )
        assert res.unsatisfiable is None
