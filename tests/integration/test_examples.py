"""The examples must run clean end to end (they are executable docs)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "pram_simulation.py", "replicated_storage.py",
     "scheme_shootout.py", "fault_tolerance.py",
     "bounded_degree_network.py", "parallel_database.py"],
)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_directory_complete():
    present = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    assert "quickstart.py" in present
    assert len(present) >= 4
