"""Integration: every theorem's bound checked against measured behaviour
of the assembled system (the in-suite miniature of EXPERIMENTS.md)."""

import numpy as np
import pytest

from repro.core.bounds import (
    expansion_lower_bound,
    phi_bound,
    recurrence_step,
    simulate_recurrence,
)
from repro.core.graph import MemoryGraph
from repro.core.protocol import run_access_protocol
from repro.core.scheme import PPScheme
from repro.workloads.adversarial import tight_set_module_ids
from repro.workloads.generators import random_distinct


class TestTheorem6Shape:
    """Phi stays under the O(N^{1/3} log* N) worst-case shape."""

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_full_load_random(self, n):
        s = PPScheme(2, n)
        idx = s.random_request_set(min(s.N, s.M), seed=0)
        res = s.access(idx, op="count")
        # generous constant: bound shape with constant 4
        assert res.max_phase_iterations <= 4 * phi_bound(s.N, 2)

    def test_partial_load_n_prime(self):
        s = PPScheme(2, 7)
        for n_prime in (64, 512, 4096):
            idx = s.random_request_set(n_prime, seed=1)
            res = s.access(idx, op="count")
            assert res.max_phase_iterations <= 4 * phi_bound(n_prime, 2)

    def test_phi_increases_with_tight_sets(self):
        phis = []
        for n, d in [(4, 2), (6, 3), (8, 4)]:
            g = MemoryGraph(2, n)
            mods = tight_set_module_ids(g, d)
            res = run_access_protocol(mods, g.N, g.majority, n_phases=1)
            phis.append(res.max_phase_iterations)
            assert res.max_phase_iterations <= 4 * phi_bound(mods.shape[0], 2)
        assert phis == sorted(phis) and phis[-1] > phis[0]


class TestRecurrence2:
    """Measured live-variable decay obeys R_{k+1} <= R_k(1 - c(q/R_k)^{1/3})."""

    def test_trajectory_dominated_by_recurrence(self):
        g = MemoryGraph(2, 8)
        mods = tight_set_module_ids(g, 4)
        res = run_access_protocol(mods, g.N, g.majority, n_phases=1)
        traj = res.phases[0].live_history
        for k in range(len(traj) - 1):
            if traj[k] > 1:
                bound = recurrence_step(traj[k], 2)
                assert traj[k + 1] <= np.ceil(bound) + 1e-9, (k, traj[k], traj[k + 1])

    def test_recurrence_is_worst_case_for_random_loads(self):
        s = PPScheme(2, 5)
        idx = s.random_request_set(s.N, seed=3)
        res = s.access(idx, op="count")
        for p in res.phases:
            traj = p.live_history
            pred = simulate_recurrence(traj[0], 2)
            # measured terminates no later than prediction length
            assert p.iterations <= len(pred) - 1


class TestTheorem4AtScale:
    def test_random_sets_never_violate(self):
        g = MemoryGraph(2, 7)
        rng = np.random.default_rng(0)
        for size in (32, 256, 2048):
            mats = g.random_variable_matrices(size, rng)
            mods = g.vgamma_variables(mats)
            assert np.unique(mods).size >= expansion_lower_bound(size, 2)

    def test_tight_sets_near_bound(self):
        for n, d in [(6, 3), (8, 4)]:
            g = MemoryGraph(2, n)
            mods = tight_set_module_ids(g, d)
            got = np.unique(mods).size
            bound = expansion_lower_bound(mods.shape[0], 2)
            assert bound <= got <= 3 * bound


class TestTheorem1EndToEnd:
    def test_total_modeled_time_shape(self):
        # modeled steps ~ q(Phi log q + log N): grows mildly with N
        steps = {}
        for n in (3, 5, 7):
            s = PPScheme(2, n)
            idx = s.random_request_set(min(s.N, s.M) // 2, seed=2)
            res = s.access(idx, op="count")
            steps[n] = res.modeled_steps(s.N)
        assert steps[7] < 40 * steps[3]  # sub-polynomial growth in N

    def test_address_computation_never_scans_memory(self):
        # O(1) registers: addressing uses only arithmetic on the index,
        # never a table proportional to M (spot-check the layer type)
        s = PPScheme(2, 7)
        assert s.addressing_kind == "explicit-O(logN)"
        # and the op counts per call stay ~log N
        s.addressing.ops.reset()
        s.addressing.unrank(123456)
        assert s.addressing.ops.modeled_steps() < 100 * s.n


class TestWorkloadRobustness:
    def test_protocol_cost_order_insensitive_for_random_sets(self):
        from repro.workloads.generators import phase_shuffled

        s = PPScheme(2, 5)
        idx = s.random_request_set(600, seed=5)
        r1 = s.access(idx, op="count")
        r2 = s.access(phase_shuffled(idx, seed=6), op="count")
        assert abs(r1.total_iterations - r2.total_iterations) <= max(
            3, r1.total_iterations
        )

    def test_strided_workloads_fine(self):
        s = PPScheme(2, 5)
        from repro.workloads.generators import strided

        idx = strided(s.M, 500, stride=7)
        res = s.access(idx, op="count")
        assert res.max_phase_iterations <= 4 * phi_bound(500, 2)
