"""Tests for the bounded-degree network substrate."""

import numpy as np
import pytest

from repro.network import (
    HypercubeTopology,
    TorusTopology,
    route_packets,
    run_protocol_on_network,
)


class TestHypercube:
    def test_sizes(self):
        h = HypercubeTopology(4)
        assert h.n_nodes == 16 and h.degree == 4 and h.diameter() == 4

    def test_at_least(self):
        assert HypercubeTopology.at_least(1000).n_nodes == 1024
        assert HypercubeTopology.at_least(1024).n_nodes == 1024

    def test_neighbors(self):
        h = HypercubeTopology(3)
        assert sorted(h.neighbors(0)) == [1, 2, 4]
        assert sorted(h.neighbors(5)) == [1, 4, 7]

    def test_vnext_fixes_lowest_bit(self):
        h = HypercubeTopology(4)
        cur = np.array([0b0000, 0b1010, 7])
        dest = np.array([0b0101, 0b1010, 7])
        nxt = h.vnext(cur, dest)
        assert nxt.tolist() == [0b0001, 0b1010, 7]

    def test_greedy_reaches_destination_in_distance_steps(self):
        h = HypercubeTopology(6)
        rng = np.random.default_rng(0)
        cur = rng.integers(0, 64, 100)
        dest = rng.integers(0, 64, 100)
        dist = h.distance(cur, dest)
        x = cur.copy()
        for _ in range(6):
            x = h.vnext(x, dest)
        assert (x == dest).all()
        assert dist.max() <= 6

    def test_bad_dimension(self):
        with pytest.raises(ValueError):
            HypercubeTopology(0)


class TestTorus:
    def test_sizes(self):
        t = TorusTopology(5)
        assert t.n_nodes == 25 and t.degree == 4 and t.diameter() == 4

    def test_neighbors(self):
        t = TorusTopology(4)
        assert sorted(t.neighbors(0)) == [1, 3, 4, 12]

    def test_greedy_terminates_at_distance(self):
        t = TorusTopology(7)
        rng = np.random.default_rng(1)
        cur = rng.integers(0, 49, 200)
        dest = rng.integers(0, 49, 200)
        x = cur.copy()
        for _ in range(t.diameter()):
            x = t.vnext(x, dest)
        assert (x == dest).all()

    def test_distance_symmetric(self):
        t = TorusTopology(6)
        a = np.arange(36)
        b = np.roll(a, 7)
        assert (t.distance(a, b) == t.distance(b, a)).all()

    def test_wraparound_shortcut(self):
        t = TorusTopology(8)
        # node 0 to node 7 (same row): wrap distance 1, not 7
        assert int(t.distance(np.array([0]), np.array([7]))[0]) == 1


class TestRouting:
    def test_empty(self):
        h = HypercubeTopology(3)
        res = route_packets(h, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert res.rounds == 0 and res.delivered == 0

    def test_already_there(self):
        h = HypercubeTopology(3)
        res = route_packets(h, np.array([3, 5]), np.array([3, 5]))
        assert res.rounds == 0 and res.total_hops == 0

    def test_single_packet_takes_distance_rounds(self):
        h = HypercubeTopology(5)
        res = route_packets(h, np.array([0]), np.array([0b11111]))
        assert res.rounds == 5 and res.total_hops == 5

    def test_conflict_free_permutation_parallel(self):
        # packets all moving along disjoint dimension-1 edges: 1 round
        h = HypercubeTopology(4)
        src = np.array([0, 2, 4, 6])
        dst = src ^ 1
        res = route_packets(h, src, dst)
        assert res.rounds == 1

    def test_hotspot_serializes_on_last_link(self):
        # many packets into one node: the final links bound the time
        h = HypercubeTopology(4)
        src = np.arange(16)
        dst = np.zeros(16, dtype=np.int64)
        res = route_packets(h, src, dst)
        assert res.rounds >= (16 - 1) / h.degree  # degree-limited fan-in
        assert res.max_link_load >= 2

    def test_total_hops_at_least_distance_sum(self):
        h = HypercubeTopology(6)
        rng = np.random.default_rng(2)
        src = rng.integers(0, 64, 300)
        dst = rng.integers(0, 64, 300)
        res = route_packets(h, src, dst)
        assert res.total_hops == int(h.distance(src, dst).sum())

    def test_node_out_of_range(self):
        h = HypercubeTopology(3)
        with pytest.raises(ValueError):
            route_packets(h, np.array([9]), np.array([0]))

    def test_torus_routing(self):
        t = TorusTopology(6)
        rng = np.random.default_rng(3)
        src = rng.integers(0, 36, 100)
        dst = rng.integers(0, 36, 100)
        res = route_packets(t, src, dst)
        assert res.delivered == 100
        assert res.rounds >= int(t.distance(src, dst).max())


class TestRandomizedRouting:
    def test_random_policy_delivers(self):
        h = HypercubeTopology(6)
        rng = np.random.default_rng(4)
        src = rng.integers(0, 64, 200)
        dst = rng.integers(0, 64, 200)
        rng2 = np.random.default_rng(5)
        res = route_packets(
            h, src, dst, next_fn=lambda c, d: h.vnext_random(c, d, rng2)
        )
        assert res.delivered == 200
        assert res.total_hops == int(h.distance(src, dst).sum())

    def test_random_hop_is_productive(self):
        h = HypercubeTopology(8)
        rng = np.random.default_rng(6)
        cur = rng.integers(0, 256, 500)
        dest = rng.integers(0, 256, 500)
        nxt = h.vnext_random(cur, dest, rng)
        moved = cur != dest
        assert (h.distance(nxt, dest)[moved] == h.distance(cur, dest)[moved] - 1).all()
        assert (nxt[~moved] == cur[~moved]).all()

    def test_random_spreads_bit_reversal_congestion(self):
        # the classic deterministic-oblivious bad case: bit-reversal
        # permutation; randomized bit choice should not be (much) worse
        # and typically lowers the worst link load
        d = 8
        h = HypercubeTopology(d)
        src = np.arange(1 << d)
        dst = np.array(
            [int(format(v, f"0{d}b")[::-1], 2) for v in range(1 << d)]
        )
        greedy = route_packets(h, src, dst)
        rng = np.random.default_rng(7)
        rand = route_packets(
            h, src, dst, next_fn=lambda c, dd: h.vnext_random(c, dd, rng)
        )
        assert rand.delivered == greedy.delivered == 256
        assert rand.max_link_load <= greedy.max_link_load + 2


class TestProtocolOnNetwork:
    def test_runs_and_charges_overhead(self, scheme_2_5):
        idx = scheme_2_5.random_request_set(200, seed=0)
        mods = scheme_2_5.module_ids_for(idx)
        topo = HypercubeTopology.at_least(scheme_2_5.N)
        res = run_protocol_on_network(mods, scheme_2_5.N, 2, topo)
        assert res.mpc_iterations >= 1
        assert res.network_rounds > res.mpc_iterations
        assert res.overhead_factor > 1.0
        assert len(res.per_iteration_rounds) == res.mpc_iterations

    def test_same_satisfaction_as_mpc(self, scheme_2_5):
        # network execution must not change the iteration structure much:
        # iterations equal the single-phase MPC run (same arbitration)
        from repro.core.protocol import run_access_protocol

        idx = scheme_2_5.random_request_set(300, seed=1)
        mods = scheme_2_5.module_ids_for(idx)
        topo = HypercubeTopology.at_least(scheme_2_5.N)
        net = run_protocol_on_network(mods, scheme_2_5.N, 2, topo)
        mpc = run_access_protocol(mods, scheme_2_5.N, 2, n_phases=1)
        assert net.mpc_iterations == mpc.max_phase_iterations

    def test_topology_too_small(self):
        mods = np.array([[0, 1, 2]])
        with pytest.raises(ValueError):
            run_protocol_on_network(mods, 100, 2, HypercubeTopology(3))

    def test_overhead_scales_with_diameter(self, scheme_2_5):
        # a torus (diameter ~ sqrt N) must cost more than a hypercube
        # (diameter log N) on the same traffic
        idx = scheme_2_5.random_request_set(150, seed=2)
        mods = scheme_2_5.module_ids_for(idx)
        hyper = HypercubeTopology.at_least(scheme_2_5.N)
        torus = TorusTopology.at_least(scheme_2_5.N)
        rh = run_protocol_on_network(mods, scheme_2_5.N, 2, hyper)
        rt = run_protocol_on_network(mods, scheme_2_5.N, 2, torus)
        assert rt.network_rounds > rh.network_rounds
