"""Fault injection: the majority discipline tolerates module failures.

With q+1 copies and quorum q/2+1, a variable survives as long as at
most q/2 of its copies sit in failed modules (for q=2: one failure per
variable).  This is the [Tho79] availability property the paper's
scheme inherits; these tests exercise it end to end.
"""

import numpy as np
import pytest

from repro.core.protocol import run_access_protocol
from repro.core.scheme import PPScheme


class TestProtocolLevel:
    def test_single_failed_module_still_completes(self):
        mods = np.array([[0, 1, 2], [3, 4, 5]])
        res = run_access_protocol(
            mods, 10, 2, failed_modules=np.array([0])
        )
        assert res.unsatisfiable is None
        # variable 0 reached quorum using modules 1 and 2 only
        assert res.mpc_stats.served >= 4

    def test_too_many_failures_raise(self):
        mods = np.array([[0, 1, 2]])
        with pytest.raises(ValueError, match="cannot reach quorum"):
            run_access_protocol(mods, 10, 2, failed_modules=np.array([0, 1]))

    def test_allow_partial_reports_casualties(self):
        mods = np.array([[0, 1, 2], [3, 4, 5]])
        res = run_access_protocol(
            mods, 10, 2, failed_modules=np.array([0, 1]), allow_partial=True
        )
        assert res.unsatisfiable.tolist() == [0]

    def test_failed_modules_never_serve(self):
        mods = np.array([[0, 1, 2]] * 5)
        res = run_access_protocol(
            mods, 10, 2, failed_modules=np.array([0]), n_phases=1
        )
        # module 0 contributed nothing: 5 vars x quorum 2 all from mods 1,2
        assert res.mpc_stats.served == 10
        assert res.max_phase_iterations >= 5

    def test_empty_failure_set_is_noop(self):
        mods = np.array([[0, 1, 2]])
        a = run_access_protocol(mods, 10, 2)
        b = run_access_protocol(mods, 10, 2, failed_modules=np.array([], dtype=np.int64))
        assert a.total_iterations == b.total_iterations


class TestSchemeLevel:
    @pytest.fixture(scope="class")
    def scheme(self):
        return PPScheme(2, 5)

    def test_reads_survive_one_module_down(self, scheme):
        idx = scheme.random_request_set(300, seed=0)
        store = scheme.make_store()
        scheme.write(idx, values=idx, store=store, time=1)
        # fail one module; for q=2 every variable has copies in 3 distinct
        # modules, so a single machine-wide failure hurts no variable twice
        res = scheme.read(
            idx, store=store, time=2, failed_modules=np.array([7])
        )
        assert res.unsatisfiable is None
        assert (res.values == idx).all()

    def test_write_then_fail_then_read_fresh(self, scheme):
        # a write reaches quorum; afterwards one module holding some fresh
        # copies dies; reads must still return the fresh value
        idx = scheme.random_request_set(300, seed=1)
        store = scheme.make_store()
        scheme.write(idx, values=np.full(300, 3), store=store, time=1)
        scheme.write(idx, values=np.full(300, 4), store=store, time=2)
        res = scheme.read(idx, store=store, time=3, failed_modules=np.array([0]))
        assert (res.values == 4).all()

    def test_degraded_write_then_healthy_read(self, scheme):
        # writes under failure touch a quorum of the live copies; after
        # recovery (no failures) readers still see the fresh value
        idx = scheme.random_request_set(200, seed=2)
        store = scheme.make_store()
        scheme.write(idx, values=idx, store=store, time=1,
                     failed_modules=np.array([5]))
        res = scheme.read(idx, store=store, time=2)
        assert (res.values == idx).all()

    def test_many_failures_partial(self, scheme):
        rng = np.random.default_rng(3)
        failed = rng.choice(scheme.N, 200, replace=False)
        idx = scheme.random_request_set(400, seed=4)
        res = scheme.access(
            idx, op="count", failed_modules=failed, allow_partial=True
        )
        mods = scheme.module_ids_for(idx)
        failed_mask = np.zeros(scheme.N, dtype=bool)
        failed_mask[failed] = True
        doomed = (failed_mask[mods].sum(axis=1) >= 2).nonzero()[0]
        got = res.unsatisfiable if res.unsatisfiable is not None else np.array([])
        assert sorted(got.tolist()) == sorted(doomed.tolist())

    def test_q4_tolerates_two_failures_per_variable(self):
        # q=4: 5 copies, quorum 3 -- two failed copies per variable are fine
        s = PPScheme(4, 3)
        idx = s.random_request_set(100, seed=5)
        store = s.make_store()
        s.write(idx, values=idx, store=store, time=1)
        mods = s.module_ids_for(idx)
        # fail the modules of the first two copies of variable 0
        failed = mods[0, :2]
        res = s.read(idx, store=store, time=2, failed_modules=failed)
        assert res.unsatisfiable is None
        assert (res.values == idx).all()
