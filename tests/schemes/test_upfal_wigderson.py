"""Tests for the Upfal-Wigderson random-graph baseline."""

import numpy as np
import pytest

from repro.schemes.upfal_wigderson import UpfalWigdersonScheme


@pytest.fixture(scope="module")
def uw():
    return UpfalWigdersonScheme(1023, 5456, c=2, seed=0)


class TestConstruction:
    def test_copies_and_quorums(self, uw):
        assert uw.copies_per_variable == 3
        assert uw.read_quorum == uw.write_quorum == 2

    def test_c1_rejected(self):
        with pytest.raises(ValueError):
            UpfalWigdersonScheme(100, 1000, c=1)

    def test_log_copies_config(self):
        s = UpfalWigdersonScheme.log_copies(1024, 10**6)
        assert s.copies_per_variable == 2 * s.c - 1
        assert s.c >= 5  # ~ log2(1024)/2


class TestPlacement:
    def test_distinct_rows(self, uw):
        pl = uw.placement(np.arange(2000))
        for row in pl[::37]:
            assert len(set(row.tolist())) == 3

    def test_seeded_reproducible(self):
        a = UpfalWigdersonScheme(256, 10**4, c=2, seed=5)
        b = UpfalWigdersonScheme(256, 10**4, c=2, seed=5)
        idx = np.arange(500)
        assert np.array_equal(a.placement(idx), b.placement(idx))

    def test_different_seeds_differ(self):
        a = UpfalWigdersonScheme(256, 10**4, c=2, seed=5)
        b = UpfalWigdersonScheme(256, 10**4, c=2, seed=6)
        idx = np.arange(500)
        assert not np.array_equal(a.placement(idx), b.placement(idx))

    def test_balanced_loads(self, uw):
        pl = uw.placement(np.arange(5456))
        loads = np.bincount(pl.ravel(), minlength=uw.N)
        # random placement: no module wildly overloaded
        assert loads.max() < 12 * loads.mean()


class TestSemantics:
    def test_read_write(self, uw):
        idx = uw.random_request_set(300, seed=1)
        st = uw.make_store()
        uw.write(idx, values=idx, store=st, time=1)
        res = uw.read(idx, store=st, time=2)
        assert (res.values == idx).all()

    def test_majority_freshness(self, uw):
        # two writes; majority intersection must expose the newer value
        idx = uw.random_request_set(100, seed=2)
        st = uw.make_store()
        uw.write(idx, values=np.full(100, 1), store=st, time=1)
        uw.write(idx, values=np.full(100, 2), store=st, time=2)
        res = uw.read(idx, store=st, time=3)
        assert (res.values == 2).all()
