"""Tests for the Mehlhorn-Vishkin baseline."""

import numpy as np
import pytest

from repro.schemes.mehlhorn_vishkin import (
    MehlhornVishkinScheme,
    largest_prime_at_most,
)


@pytest.fixture(scope="module")
def mv():
    return MehlhornVishkinScheme(1023, 5456, c=3)


class TestPrimeHelper:
    def test_values(self):
        assert largest_prime_at_most(10) == 7
        assert largest_prime_at_most(7) == 7
        assert largest_prime_at_most(341) == 337

    def test_too_small(self):
        with pytest.raises(ValueError):
            largest_prime_at_most(1)


class TestConstruction:
    def test_quorums(self, mv):
        assert mv.read_quorum == 1 and mv.write_quorum == 3
        assert mv.copies_per_variable == 3

    def test_m_too_large_rejected(self):
        with pytest.raises(ValueError):
            MehlhornVishkinScheme(10, 10**6, c=2)

    def test_c_too_small(self):
        with pytest.raises(ValueError):
            MehlhornVishkinScheme(100, 1000, c=1)


class TestPlacement:
    def test_distinct_rows(self, mv):
        pl = mv.placement(mv.random_request_set(500, seed=0))
        for row in pl:
            assert len(set(row.tolist())) == 3

    def test_group_partitioning(self, mv):
        # copy j lives in group j
        pl = mv.placement(np.arange(300))
        group = mv.N // mv.c
        for j in range(3):
            assert (pl[:, j] // group == j).all()

    def test_coefficients_round_trip(self, mv):
        idx = mv.random_request_set(300, seed=1)
        assert (mv.from_coefficients(mv.coefficients(idx)) == idx).all()

    def test_polynomial_agreement_bound(self, mv):
        # distinct variables collide on <= c-1 copy positions
        pl = mv.placement(np.arange(150))
        for i in range(150):
            for j in range(i):
                assert int((pl[i] == pl[j]).sum()) <= mv.c - 1


class TestAdversaries:
    def test_write_adversary_shares_module(self, mv):
        adv = mv.adversarial_write_set(16)
        pl = mv.placement(adv)
        assert len(set(pl[:, 0].tolist())) == 1

    def test_write_adversary_serializes_writes(self, mv):
        adv = mv.adversarial_write_set(16)
        res = mv.access(adv, op="count", count_as="write")
        assert res.total_iterations >= 16

    def test_reads_escape_the_write_adversary(self, mv):
        # the same set is cheap to READ (any 1 copy suffices)
        adv = mv.adversarial_write_set(16)
        res = mv.access(adv, op="count", count_as="read")
        assert res.total_iterations < 16

    def test_interpolation_concentration(self, mv):
        grid = [np.arange(3)] * 3
        vars_ = mv.interpolate_variables(grid)
        assert vars_.size > 0
        pl = mv.placement(vars_)
        group = mv.N // mv.c
        assert set((pl % group).ravel().tolist()) <= set(range(3))

    def test_too_large_adversary_rejected(self, mv):
        with pytest.raises(ValueError):
            mv.adversarial_write_set(mv.M)


class TestSemantics:
    def test_read_write(self, mv):
        idx = mv.random_request_set(200, seed=2)
        st = mv.make_store()
        mv.write(idx, values=idx, store=st, time=1)
        res = mv.read(idx, store=st, time=2)
        assert (res.values == idx).all()

    def test_overwrite_visible_without_timestamp_logic(self, mv):
        # MV writes ALL copies, so reads need no timestamps to be right
        idx = mv.random_request_set(100, seed=3)
        st = mv.make_store()
        mv.write(idx, values=np.zeros(100, dtype=np.int64), store=st, time=1)
        mv.write(idx, values=np.full(100, 9), store=st, time=2)
        res = mv.read(idx, store=st, time=3)
        assert (res.values == 9).all()
