"""Tests for the deterministic integer mixers."""

import numpy as np
import pytest

from repro.schemes.hashing import distinct_hash_modules, hash_to_range, mix64


class TestMix64:
    def test_deterministic(self):
        x = np.arange(100, dtype=np.uint64)
        assert np.array_equal(mix64(x), mix64(x))

    def test_bijective_on_sample(self):
        x = np.arange(100000, dtype=np.uint64)
        assert np.unique(mix64(x)).size == 100000

    def test_avalanche(self):
        # flipping one input bit flips ~half the output bits
        a = mix64(np.array([12345], dtype=np.uint64))[0]
        b = mix64(np.array([12344], dtype=np.uint64))[0]
        diff = bin(int(a) ^ int(b)).count("1")
        assert 16 <= diff <= 48


class TestHashToRange:
    def test_range(self):
        keys = np.arange(10000)
        vals = hash_to_range(keys, 97, seed=1)
        assert vals.min() >= 0 and vals.max() < 97

    def test_seed_changes_mapping(self):
        keys = np.arange(1000)
        a = hash_to_range(keys, 256, seed=0)
        b = hash_to_range(keys, 256, seed=1)
        assert (a != b).mean() > 0.9

    def test_roughly_uniform(self):
        vals = hash_to_range(np.arange(100000), 10, seed=2)
        counts = np.bincount(vals, minlength=10)
        assert counts.min() > 8000 and counts.max() < 12000


class TestDistinctHashModules:
    def test_shape_and_distinct(self):
        out = distinct_hash_modules(np.arange(5000), 3, 1023, seed=0)
        assert out.shape == (5000, 3)
        srt = np.sort(out, axis=1)
        assert not (srt[:, 1:] == srt[:, :-1]).any()

    def test_distinct_under_pressure(self):
        # small module count forces collisions that must be repaired
        out = distinct_hash_modules(np.arange(2000), 4, 8, seed=1)
        for row in out:
            assert len(set(row.tolist())) == 4

    def test_too_many_copies(self):
        with pytest.raises(ValueError):
            distinct_hash_modules(np.arange(4), 5, 3)

    def test_deterministic(self):
        a = distinct_hash_modules(np.arange(100), 3, 64, seed=9)
        b = distinct_hash_modules(np.arange(100), 3, 64, seed=9)
        assert np.array_equal(a, b)
