"""Tests for the MemoryScheme base plumbing, KeyedCopyStore, and PPAdapter."""

import numpy as np
import pytest

from repro.schemes.base import KeyedCopyStore
from repro.schemes.pp_adapter import PPAdapter
from repro.schemes.single_copy import SingleCopyScheme


class TestKeyedCopyStore:
    def test_unwritten_default(self):
        st = KeyedCopyStore(8)
        vals, stamps = st.read(np.array([0, 1]), np.array([5, 6]))
        assert vals.tolist() == [0, 0] and stamps.tolist() == [-1, -1]

    def test_round_trip(self):
        st = KeyedCopyStore(8)
        st.write(np.array([1, 2]), np.array([10, 20]), np.array([7, 8]), 3)
        vals, stamps = st.read(np.array([1, 2]), np.array([10, 20]))
        assert vals.tolist() == [7, 8] and stamps.tolist() == [3, 3]

    def test_2d(self):
        st = KeyedCopyStore(8)
        mods = np.array([[0, 1], [2, 3]])
        slots = np.array([[9, 9], [9, 9]])
        st.write(mods, slots, np.array([[1, 2], [3, 4]]), 1)
        vals, _ = st.read(mods, slots)
        assert vals.tolist() == [[1, 2], [3, 4]]


class TestBaseValidation:
    def test_duplicate_requests_rejected(self):
        sc = SingleCopyScheme(16, 100)
        with pytest.raises(ValueError):
            sc.access(np.array([1, 1]))

    def test_random_request_set_bounds(self):
        sc = SingleCopyScheme(16, 100)
        with pytest.raises(ValueError):
            sc.random_request_set(101)
        idx = sc.random_request_set(100)
        assert np.unique(idx).size == 100

    def test_count_as_write(self):
        sc = SingleCopyScheme(16, 100)
        idx = sc.random_request_set(10, seed=1)
        res = sc.access(idx, op="count", count_as="write")
        assert res.n_requests == 10


class TestPPAdapter:
    @pytest.fixture(scope="class")
    def pp(self):
        return PPAdapter(q=2, n=5)

    def test_interface_attributes(self, pp):
        assert pp.N == 1023 and pp.M == 5456
        assert pp.copies_per_variable == 3
        assert pp.read_quorum == pp.write_quorum == 2

    def test_placement_matches_inner(self, pp):
        idx = pp.random_request_set(100, seed=0)
        assert np.array_equal(pp.placement(idx), pp.scheme.module_ids_for(idx))

    def test_slots_match_inner(self, pp):
        idx = pp.random_request_set(50, seed=1)
        mods = pp.placement(idx)
        slots = pp.slots(idx, mods)
        _, want = pp.scheme.placement_for(idx)
        assert np.array_equal(slots, want)

    def test_semantics_through_adapter(self, pp):
        idx = pp.random_request_set(200, seed=2)
        st = pp.make_store()
        pp.write(idx, values=idx, store=st, time=1)
        res = pp.read(idx, store=st, time=2)
        assert (res.values == idx).all()

    def test_dense_store(self, pp):
        from repro.mpc.memory import SharedCopyStore

        assert isinstance(pp.make_store(), SharedCopyStore)
