"""Tests for the [PP93]-style grid scheme."""

import numpy as np
import pytest

from repro.schemes.grid import GridScheme


@pytest.fixture(scope="module")
def grid():
    return GridScheme(1023)  # P = 337, M = 113569


class TestStructure:
    def test_parameters(self, grid):
        assert grid.P == 337
        assert grid.M == 337**2
        assert grid.copies_per_variable == 3
        assert grid.read_quorum == grid.write_quorum == 2

    def test_m_is_theta_n_squared(self, grid):
        assert 0.05 < grid.M / grid.N**2 < 1.0

    def test_too_small(self):
        with pytest.raises(ValueError):
            GridScheme(8)

    def test_point_round_trip(self, grid):
        idx = np.array([0, 1, 336, 337, grid.M - 1])
        i, j = grid.point_of(idx)
        assert (grid.index_of(i, j) == idx).all()


class TestPlacement:
    def test_groups_disjoint(self, grid):
        pl = grid.placement(np.arange(5000))
        P = grid.P
        assert (pl[:, 0] < P).all()
        assert ((pl[:, 1] >= P) & (pl[:, 1] < 2 * P)).all()
        assert (pl[:, 2] >= 2 * P).all()
        assert pl.max() < grid.N

    def test_distinct_rows(self, grid):
        pl = grid.placement(np.arange(3000))
        srt = np.sort(pl, axis=1)
        assert not (srt[:, 1:] == srt[:, :-1]).any()

    def test_theorem2_analog(self, grid):
        # two points share at most one line => at most one common module
        rng = np.random.default_rng(0)
        idx = rng.choice(grid.M, 200, replace=False)
        pl = grid.placement(idx)
        for a in range(200):
            for b in range(a):
                assert int((pl[a] == pl[b]).sum()) <= 1

    def test_module_stores_exactly_one_line(self, grid):
        for direction, module in ((0, 5), (1, 17), (2, 100)):
            vars_ = grid.line_variables(direction, module)
            pl = grid.placement(vars_)
            assert (pl[:, direction] == direction * grid.P + module).all()
            assert np.unique(vars_).size == grid.P


class TestAdversary:
    def test_block_concentration(self, grid):
        k = 16
        block = grid.adversarial_block(k)
        assert block.size == k * k
        mods = np.unique(grid.placement(block))
        assert mods.size <= 4 * k  # k rows + k cols + (2k-1) diagonals

    def test_block_forces_sqrt_time(self, grid):
        k = 20
        block = grid.adversarial_block(k)
        res = grid.access(block, op="count")
        # |S| * quorum / |Gamma(S)| >= k^2 * 2 / 4k = k/2
        assert res.total_iterations >= k // 2

    def test_block_too_large(self, grid):
        with pytest.raises(ValueError):
            grid.adversarial_block(grid.P + 1)

    def test_sqrt_scaling(self, grid):
        from repro.analysis.fitting import fit_power_law

        sizes, iters = [], []
        for k in (8, 16, 32, 64):
            block = grid.adversarial_block(k)
            res = grid.access(block, op="count", collect_history=False)
            sizes.append(k * k)
            iters.append(res.total_iterations)
        alpha, _ = fit_power_law(sizes, iters)
        assert 0.35 < alpha < 0.65  # Theta(sqrt(|S|))


class TestSemantics:
    def test_read_write(self, grid):
        idx = grid.random_request_set(500, seed=1)
        st = grid.make_store()
        grid.write(idx, values=idx % (1 << 20), store=st, time=1)
        res = grid.read(idx, store=st, time=2)
        assert (res.values == idx % (1 << 20)).all()

    def test_freshness(self, grid):
        idx = grid.random_request_set(200, seed=2)
        st = grid.make_store()
        grid.write(idx, values=np.full(200, 1), store=st, time=1)
        grid.write(idx, values=np.full(200, 2), store=st, time=2)
        res = grid.read(idx, store=st, time=3)
        assert (res.values == 2).all()
