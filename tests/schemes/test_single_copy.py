"""Tests for the single-copy baseline."""

import numpy as np
import pytest

from repro.schemes.single_copy import SingleCopyScheme


class TestPlacement:
    def test_modular_placement(self):
        sc = SingleCopyScheme(10, 100, hashed=False)
        idx = np.array([0, 5, 15, 99])
        assert sc.placement(idx)[:, 0].tolist() == [0, 5, 5, 9]

    def test_hashed_range(self):
        sc = SingleCopyScheme(64, 1000, hashed=True, seed=1)
        mods = sc.placement(np.arange(1000))[:, 0]
        assert mods.min() >= 0 and mods.max() < 64

    def test_m_smaller_than_n_rejected(self):
        with pytest.raises(ValueError):
            SingleCopyScheme(100, 50)


class TestAdversary:
    def test_modular_adversary(self):
        sc = SingleCopyScheme(10, 200, hashed=False)
        adv = sc.adversarial_request_set(15, target_module=3)
        assert np.unique(adv).size == 15
        assert set(sc.placement(adv)[:, 0].tolist()) == {3}

    def test_hashed_adversary(self):
        sc = SingleCopyScheme(32, 5000, hashed=True, seed=5)
        adv = sc.adversarial_request_set(20, target_module=7)
        assert set(sc.placement(adv)[:, 0].tolist()) == {7}

    def test_adversary_forces_linear_time(self):
        sc = SingleCopyScheme(32, 5000, hashed=True, seed=5)
        adv = sc.adversarial_request_set(30)
        res = sc.access(adv, op="count")
        assert res.total_iterations >= 30  # fully serialized

    def test_insufficient_variables(self):
        sc = SingleCopyScheme(10, 20, hashed=False)
        with pytest.raises(ValueError):
            sc.adversarial_request_set(5, target_module=0)


class TestSemantics:
    def test_read_write(self):
        sc = SingleCopyScheme(16, 500, hashed=True)
        idx = sc.random_request_set(100, seed=0)
        st = sc.make_store()
        sc.write(idx, values=idx * 2, store=st, time=1)
        res = sc.read(idx, store=st, time=2)
        assert (res.values == idx * 2).all()

    def test_random_load_balanced(self):
        sc = SingleCopyScheme(64, 10000, hashed=True, seed=2)
        idx = sc.random_request_set(64, seed=3)
        res = sc.access(idx, op="count")
        # random load: far below the serial worst case
        assert res.total_iterations < 15
