"""Closed-loop load generator: scripts, keyspaces, reports, and small
end-to-end runs (fault-free and crash-degraded)."""

import numpy as np
import pytest

from repro.obs.perf import BenchRecorder
from repro.service.loadgen import (
    LoadConfig,
    client_values,
    collision_free_keyspace,
    run_load,
)
from repro.service.shards import ShardedKV
from repro.workloads.generators import client_keys, zipf_weights

#: tiny shard schemes for every in-test service
_SVC = dict(q=2, n=3)


def _svc(**kw):
    from repro.service.batcher import ServiceConfig

    return ServiceConfig(**{**_SVC, **kw})


class TestScripts:
    def test_zipf_weights_normalized_and_monotone(self):
        w = zipf_weights(100, s=1.2)
        assert w.sum() == pytest.approx(1.0)
        assert (np.diff(w) < 0).all()

    def test_zipf_weights_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0)

    def test_client_keys_mixes_are_seeded(self):
        for mix in ("uniform", "zipf", "hotkey"):
            a = client_keys(256, 2000, mix=mix, seed=3)
            b = client_keys(256, 2000, mix=mix, seed=3)
            assert np.array_equal(a, b)
            assert a.min() >= 0 and a.max() < 256

    def test_client_keys_unknown_mix(self):
        with pytest.raises(ValueError, match="unknown key mix"):
            client_keys(16, 10, mix="bogus")

    def test_zipf_concentrates_mass_on_few_keys(self):
        # rank identities are scattered by a seeded permutation, so
        # check skew on the sorted histogram: the 16 hottest keys must
        # outdraw the coldest 512 combined
        ks = client_keys(1024, 20_000, mix="zipf", seed=0)
        counts = np.sort(np.bincount(ks, minlength=1024))[::-1]
        assert counts[:16].sum() > counts[-512:].sum()

    def test_hotkey_mix_concentrates_on_hot_set(self):
        ks = client_keys(1024, 20_000, mix="hotkey", seed=0,
                         hot=8, hot_mass=0.9)
        counts = np.sort(np.bincount(ks, minlength=1024))[::-1]
        assert counts[:8].sum() > 0.8 * len(ks)

    def test_client_values_bounded_stable_distinct(self):
        clients = np.asarray([0, 1, 2, 0])
        cursor = np.asarray([0, 0, 0, 1])
        key_idx = np.asarray([5, 5, 5, 5])
        v = client_values(clients, cursor, key_idx)
        assert np.array_equal(
            v, client_values(clients, cursor, key_idx)
        )  # retry-stable
        assert (v >= 1).all() and (v < 1 << 20).all()
        assert len(set(v.tolist())) == 4  # distinct writers/cursors


class TestKeyspace:
    def test_collision_free_within_each_shard(self):
        store = ShardedKV(n_shards=2, q=2, n=3, seed=0)
        keys = collision_free_keyspace(store, 400)
        shard = store.route_ints(keys)
        for s in range(2):
            mine = keys[shard == s]
            fps = store.shards[s].fingerprints(mine.tolist())
            assert len(np.unique(fps)) == mine.size

    def test_deterministic_given_store_seed(self):
        a = collision_free_keyspace(ShardedKV(2, q=2, n=3, seed=4), 300)
        b = collision_free_keyspace(ShardedKV(2, q=2, n=3, seed=4), 300)
        assert np.array_equal(a, b)


class TestRunLoad:
    def test_fault_free_run_is_clean_and_complete(self):
        cfg = LoadConfig(clients=60, ops_per_client=3, keyspace=128,
                         mix="zipf", seed=0, oracle=True)
        rep = run_load(cfg, _svc(round_capacity=32, max_pending=128))
        assert rep.completed == rep.total_requests == 180
        assert rep.unfinished_clients == 0
        assert rep.fault_free_clean
        assert rep.oracle_mismatches == 0
        assert rep.oracle_checked > 0
        assert rep.lost == 0
        assert rep.latency["count"] == 180
        assert rep.rounds_per_sec > 0

    def test_same_seed_same_service_trace(self):
        cfg = LoadConfig(clients=40, ops_per_client=2, keyspace=64, seed=5)
        a = run_load(cfg, _svc(round_capacity=16))
        b = run_load(cfg, _svc(round_capacity=16))
        assert a.rounds == b.rounds
        assert a.completed == b.completed
        assert a.retries == b.retries

    def test_crash_run_declares_losses_never_lies(self):
        cfg = LoadConfig(clients=50, ops_per_client=2, keyspace=96,
                         seed=1, fault="crash", crash_rate=0.05,
                         repair_lag=2, oracle=True)
        rep = run_load(cfg, _svc(round_capacity=16, max_pending=128))
        assert rep.unfinished_clients == 0
        # lost requests are retried: each retry completes once more
        assert rep.completed == rep.total_requests + rep.retries
        assert rep.lost == rep.retries > 0
        # degraded answers stay inside the admissible envelope
        assert rep.oracle_mismatches == 0
        assert rep.fault == "crash"

    def test_overflowing_keyspace_raises_actionable_error(self):
        # 256 distinct keys cannot fit 84 slots: the mid-run table-full
        # condition must surface as a clean ValueError (CLI exit 2),
        # not a RuntimeError traceback
        cfg = LoadConfig(clients=400, ops_per_client=3, keyspace=256,
                         mix="zipf", seed=0, delete_fraction=0.0,
                         get_fraction=0.2)
        with pytest.raises(ValueError, match="overflowed mid-run"):
            run_load(cfg, _svc(round_capacity=128, max_pending=1024))

    def test_max_rounds_cuts_run_and_counts_unfinished(self):
        cfg = LoadConfig(clients=50, ops_per_client=4, keyspace=64,
                         seed=0, max_rounds=3)
        rep = run_load(cfg, _svc(round_capacity=8, max_pending=64))
        assert rep.rounds == 3
        assert rep.unfinished_clients > 0

    def test_log_callback_sees_progress(self):
        lines = []
        cfg = LoadConfig(clients=30, ops_per_client=2, keyspace=64,
                         seed=0, log_every=1)
        run_load(cfg, _svc(round_capacity=8), log=lines.append)
        assert lines and any("round" in ln for ln in lines)


class TestReport:
    @pytest.fixture(scope="class")
    def rep(self):
        cfg = LoadConfig(clients=30, ops_per_client=2, keyspace=64, seed=2)
        return run_load(cfg, _svc(round_capacity=16))

    def test_to_dict_round_trips_json(self, rep):
        import json

        d = rep.to_dict()
        assert json.loads(json.dumps(d))["completed"] == rep.completed

    def test_record_bench_emits_sections_and_scalars(self, rep):
        rec = BenchRecorder(source="test")
        rep.record_bench(rec)
        data = rec.record()
        assert "load.latency_p95" in data["sections"]
        assert data["scalars"]["load.rounds_per_sec"] > 0
        assert data["scalars"]["load.clients"] == 30
