"""Unit tests of the deterministic service core: admission, fairness,
round semantics, arbitration, and quorum-loss mapping."""

import numpy as np
import pytest

import repro.obs as obs
from repro.service.batcher import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    RoundResult,
    ServiceConfig,
    ServiceCore,
)
from repro.service.errors import (
    STATUS_LOST,
    STATUS_OK,
    Backpressure,
    PipelineFull,
)

#: small shard schemes (PPAdapter(2, 3): N=63, M=84) keep rounds cheap
_SMALL = dict(q=2, n=3, watchdog=False)


def _core(**kw) -> ServiceCore:
    return ServiceCore(ServiceConfig(**{**_SMALL, **kw}))


def _result_of(res: RoundResult, session: int) -> tuple[int, int]:
    i = int(np.nonzero(np.asarray(res.session) == session)[0][0])
    return int(res.status[i]), int(res.value[i])


class TestRoundSemantics:
    def test_put_then_get_across_rounds(self):
        with _core() as core:
            a, b = core.register_sessions(2)
            core.submit(a, OP_PUT, 5, 42)
            core.run_round()
            core.submit(b, OP_GET, 5)
            res = core.run_round()
            assert _result_of(res, b) == (STATUS_OK, 42)

    def test_get_sees_pre_round_state(self):
        with _core() as core:
            a, b = core.register_sessions(2)
            core.submit(a, OP_PUT, 9, 100)
            core.submit(b, OP_GET, 9)
            res = core.run_round()
            # both in one round: the get observes the pre-round value
            assert _result_of(res, b) == (STATUS_OK, -1)
            assert _result_of(res, a) == (STATUS_OK, 100)

    def test_same_key_put_conflict_largest_value_wins(self):
        with _core() as core:
            a, b, c = core.register_sessions(3)
            core.submit(a, OP_PUT, 7, 10)
            core.submit(b, OP_PUT, 7, 30)
            res = core.run_round()
            # losers are acked OK with their own value (combined write)
            assert _result_of(res, a) == (STATUS_OK, 10)
            assert _result_of(res, b) == (STATUS_OK, 30)
            core.submit(c, OP_GET, 7)
            assert _result_of(core.run_round(), c) == (STATUS_OK, 30)

    def test_put_tie_lowest_session_wins(self):
        with _core() as core:
            a, b, c = core.register_sessions(3)
            # same value: the duplicate write collapses to one winner --
            # indistinguishable by value, but exercise the tiebreak path
            core.submit(b, OP_PUT, 3, 50)
            core.submit(a, OP_PUT, 3, 50)
            core.run_round()
            core.submit(c, OP_GET, 3)
            assert _result_of(core.run_round(), c) == (STATUS_OK, 50)

    def test_delete_runs_after_put_in_same_round(self):
        with _core() as core:
            a, b, c = core.register_sessions(3)
            core.submit(a, OP_PUT, 11, 5)
            core.submit(b, OP_DELETE, 11)
            res = core.run_round()
            assert _result_of(res, b)[0] == STATUS_OK
            core.submit(c, OP_GET, 11)
            assert _result_of(core.run_round(), c) == (STATUS_OK, -1)

    def test_empty_queue_round_returns_none(self):
        with _core() as core:
            assert core.run_round() is None


class TestAdmission:
    def test_per_session_fairness_one_request_per_round(self):
        with _core(pipeline_depth=4) as core:
            (a,) = core.register_sessions(1)
            for i in range(3):
                core.submit(a, OP_PUT, 20 + i, i + 1)
            sizes = [core.run_round().admitted for _ in range(3)]
            assert sizes == [1, 1, 1]

    def test_round_capacity_truncates(self):
        with _core(round_capacity=4) as core:
            ids = core.register_sessions(10)
            for s in ids:
                core.submit(int(s), OP_PUT, int(s), 1)
            assert core.run_round().admitted == 4
            assert core.run_round().admitted == 4
            assert core.run_round().admitted == 2

    def test_admission_is_fifo_oldest_first(self):
        with _core(round_capacity=2) as core:
            ids = core.register_sessions(4)
            for s in ids:
                core.submit(int(s), OP_GET, 0)
            first = core.run_round()
            assert sorted(np.asarray(first.session).tolist()) == [0, 1]

    def test_pipeline_full_raises(self):
        with _core() as core:
            (a,) = core.register_sessions(1)
            core.submit(a, OP_GET, 0)
            with pytest.raises(PipelineFull):
                core.submit(a, OP_GET, 1)

    def test_pipeline_depth_two_allows_two_in_flight(self):
        with _core(pipeline_depth=2) as core:
            (a,) = core.register_sessions(1)
            core.submit(a, OP_PUT, 1, 1)
            core.submit(a, OP_PUT, 2, 2)
            with pytest.raises(PipelineFull):
                core.submit(a, OP_PUT, 3, 3)

    def test_backpressure_raises_when_queue_full(self):
        with _core(max_pending=1) as core:
            a, b = core.register_sessions(2)
            core.submit(a, OP_GET, 0)
            with pytest.raises(Backpressure):
                core.submit(b, OP_GET, 1)

    def test_submit_batch_masks_over_depth_and_room(self):
        with _core(max_pending=2, pipeline_depth=1) as core:
            ids = core.register_sessions(3)
            # two requests from session 0: the second exceeds depth
            ok = core.submit_batch(
                np.asarray([0, 0, 1, 2]),
                np.full(4, OP_GET),
                np.arange(4),
                np.zeros(4),
            )
            # depth cut drops the duplicate; room cut keeps a FIFO
            # prefix of the remainder (max_pending=2)
            assert ok.tolist() == [True, False, True, False]
            assert core.rejected == 2
            del ids

    def test_submit_batch_rejects_unregistered_session(self):
        with _core() as core:
            core.register_sessions(1)
            with pytest.raises(ValueError, match="unregistered"):
                core.submit_batch(
                    np.asarray([5]), np.asarray([OP_GET]),
                    np.asarray([0]), np.asarray([0]),
                )

    def test_submit_batch_empty_and_mismatched(self):
        with _core() as core:
            assert core.submit_batch(
                np.empty(0), np.empty(0), np.empty(0), np.empty(0)
            ).size == 0
            with pytest.raises(ValueError, match="equal length"):
                core.submit_batch(
                    np.asarray([0]), np.asarray([OP_GET]),
                    np.asarray([0, 1]), np.asarray([0]),
                )

    def test_register_sessions_rejects_negative(self):
        with _core() as core:
            with pytest.raises(ValueError):
                core.register_sessions(-1)


class TestQuorumLossMapping:
    def test_lost_batch_statuses_and_value_echo(self):
        with _core() as core:
            ids = core.register_sessions(8)
            keys = np.arange(100, 108)
            vals = np.arange(1, 9) * 11
            for s, k, v in zip(ids, keys, vals):
                core.submit(int(s), OP_PUT, int(k), int(v))
            # kill every module on every shard: all quorums lost
            for s in range(core.config.n_shards):
                n_mod = core.store.shards[s].scheme.N
                core.store.set_failed_modules(s, np.arange(n_mod))
            res = core.run_round()
            assert (np.asarray(res.status) == STATUS_LOST).all()
            assert res.lost == 8
            # lost puts still echo the attempted value (oracle food)
            order = np.argsort(np.asarray(res.key))
            assert np.asarray(res.value)[order].tolist() == vals.tolist()
            assert core.lost == 8
            # recovery: clear the faults, resubmit, all served
            for s in range(core.config.n_shards):
                core.store.set_failed_modules(s, None)
            for s, k, v in zip(ids, keys, vals):
                core.submit(int(s), OP_PUT, int(k), int(v))
            assert core.run_round().lost == 0

    def test_lost_gets_and_deletes(self):
        with _core() as core:
            a, b = core.register_sessions(2)
            core.submit(a, OP_PUT, 55, 9)
            core.run_round()
            for s in range(core.config.n_shards):
                n_mod = core.store.shards[s].scheme.N
                core.store.set_failed_modules(s, np.arange(n_mod))
            core.submit(a, OP_GET, 55)
            core.submit(b, OP_DELETE, 55)
            res = core.run_round()
            assert (np.asarray(res.status) == STATUS_LOST).all()


class TestAccounting:
    def test_latency_and_stats(self):
        with _core() as core:
            ids = core.register_sessions(4)
            for s in ids:
                core.submit(int(s), OP_PUT, int(s), 1)
            core.run_round()
            lat = core.latency_summary()
            assert lat["count"] == 4
            assert 0 <= lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
            st = core.stats()
            assert st["rounds"] == 1
            assert st["completed"] == 4
            assert st["pending"] == 0
            assert "watch" not in st  # watchdog off in _SMALL

    def test_latency_summary_empty(self):
        with _core() as core:
            assert core.latency_summary() == {"count": 0}

    def test_drain_runs_until_empty(self):
        with _core(round_capacity=2) as core:
            ids = core.register_sessions(5)
            for s in ids:
                core.submit(int(s), OP_GET, 0)
            out = core.drain()
            assert [r.admitted for r in out] == [2, 2, 1]
            assert core.pending == 0

    def test_drain_respects_max_rounds(self):
        with _core(round_capacity=1) as core:
            ids = core.register_sessions(3)
            for s in ids:
                core.submit(int(s), OP_GET, 0)
            assert len(core.drain(max_rounds=2)) == 2
            assert core.pending == 1


class TestLifecycle:
    def test_open_installs_and_close_restores_bus(self):
        before = obs.bus()
        core = ServiceCore(ServiceConfig(q=2, n=3, watchdog=True))
        core.open()
        assert obs.bus() is not None
        assert obs.bus() is not before
        assert core.watchdog is not None
        core.close()
        assert obs.bus() is before

    def test_open_and_close_are_idempotent(self):
        core = ServiceCore(ServiceConfig(q=2, n=3, watchdog=True))
        core.open()
        core.open()
        core.close()
        core.close()

    def test_watchdog_stats_surface(self):
        with ServiceCore(ServiceConfig(q=2, n=3, watchdog=True)) as core:
            (a,) = core.register_sessions(1)
            core.submit(a, OP_PUT, 1, 2)
            core.run_round()
            watch = core.stats()["watch"]
            assert watch["violations"] == 0
            assert watch["events_dropped"] == 0

    def test_resolve_bus_capacity(self):
        assert ServiceConfig(bus_capacity=77).resolve_bus_capacity() == 77
        cfg = ServiceConfig(round_capacity=100)
        assert cfg.resolve_bus_capacity() == 4 * 100 + 4096
