"""Sharded repository: routing, namespacing, and the shared clock."""

import numpy as np
import pytest

from repro.service.shards import ShardedKV


@pytest.fixture(scope="module")
def store() -> ShardedKV:
    """Small 2-shard store (n=3 schemes keep the module fast)."""
    return ShardedKV(n_shards=2, q=2, n=3, seed=0)


class TestRouting:
    def test_route_is_deterministic_and_stable(self):
        a = ShardedKV(n_shards=4, q=2, n=3, seed=7)
        b = ShardedKV(n_shards=4, q=2, n=3, seed=7)
        keys = np.arange(1000, dtype=np.int64)
        assert np.array_equal(a.route_ints(keys), b.route_ints(keys))

    def test_route_seed_changes_assignment(self):
        keys = np.arange(1000, dtype=np.int64)
        a = ShardedKV(n_shards=4, q=2, n=3, seed=0).route_ints(keys)
        b = ShardedKV(n_shards=4, q=2, n=3, seed=1).route_ints(keys)
        assert not np.array_equal(a, b)

    def test_route_covers_all_shards_roughly_evenly(self):
        s = ShardedKV(n_shards=4, q=2, n=3, seed=0)
        counts = np.bincount(
            s.route_ints(np.arange(4000, dtype=np.int64)), minlength=4
        )
        assert counts.min() > 0
        # a seeded avalanche hash should stay within a loose band
        assert counts.max() < 2 * counts.min()

    def test_route_one_matches_vectorized(self, store):
        for k in (0, 1, 17, 123456789, 2**40):
            assert store.route_one(k) == int(
                store.route_ints(np.asarray([k]))[0]
            )

    def test_route_one_str_in_range(self, store):
        assert store.route_one("alpha") in range(store.n_shards)

    def test_single_shard_routes_everything_to_zero(self):
        s = ShardedKV(n_shards=1, q=2, n=3, seed=0)
        assert not s.route_ints(np.arange(100, dtype=np.int64)).any()

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardedKV(n_shards=0)


class TestNamespacing:
    def test_var_bases_are_disjoint(self):
        s = ShardedKV(n_shards=3, q=2, n=3, seed=0)
        spans = [
            (st.var_base, st.var_base + st.scheme.M) for st in s.shards
        ]
        spans.sort()
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            assert hi <= lo


class TestClockedOps:
    def test_put_get_delete_through_shard_wrappers(self):
        s = ShardedKV(n_shards=2, q=2, n=3, seed=0)
        keys = [3, 5, 9]
        shard = int(s.route_ints(np.asarray([3]))[0])
        same = [k for k in keys if s.route_one(k) == shard]
        s.shard_put(shard, same, np.arange(1, len(same) + 1))
        got = s.shard_get(shard, same)
        assert got.tolist() == list(range(1, len(same) + 1))
        assert s.shard_delete(shard, same) == len(same)
        assert s.shard_get(shard, same).tolist() == [-1] * len(same)

    def test_shared_clock_is_monotone_across_shards(self):
        s = ShardedKV(n_shards=2, q=2, n=3, seed=0)
        k0 = next(k for k in range(100) if s.route_one(k) == 0)
        k1 = next(k for k in range(100) if s.route_one(k) == 1)
        s.shard_put(0, [k0], [1])
        after_first = s.clock
        s.shard_put(1, [k1], [2])
        assert s.clock > after_first
        # each shard's local clock was pulled up past the other's rounds
        assert s.shards[1].clock >= after_first

    def test_enter_leave_folds_direct_driving_into_clock(self):
        s = ShardedKV(n_shards=2, q=2, n=3, seed=0)
        st = s.enter_shard(0)
        k0 = next(k for k in range(100) if s.route_one(k) == 0)
        st.batch_put([k0], [7])
        before = s.clock
        s.leave_shard(st)
        assert s.clock >= before
        assert s.clock == max(sh.clock for sh in s.shards)


class TestAccounting:
    def test_capacity_and_size_aggregate(self, store):
        assert store.capacity == sum(sh.capacity for sh in store.shards)
        assert store.size == sum(sh.size for sh in store.shards)

    def test_cost_summary_shape(self, store):
        cs = store.cost_summary()
        assert cs["n_shards"] == store.n_shards
        assert len(cs["shards"]) == store.n_shards
        assert cs["protocol_rounds"] == sum(
            p["protocol_rounds"] for p in cs["shards"]
        )

    def test_set_failed_modules_passthrough(self):
        s = ShardedKV(n_shards=2, q=2, n=3, seed=0)
        s.set_failed_modules(0, np.asarray([0, 1]))
        s.set_failed_modules(0, None)  # clears without error

    def test_repr(self, store):
        assert "ShardedKV" in repr(store)
