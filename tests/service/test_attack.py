"""Stale-majority attack: the silent fault only the watchdog can see.

Rolling ``q/2 + 1`` copies of a victim's value variable back to a
coherent older epoch and crashing the fresh copies makes every read
quorum serve the stale value with a healthy status.  These tests mount
the attack directly on a sharded store, prove the protocol is fooled,
prove :meth:`heal` undoes it -- and then prove the service-level soak
flags the phantom read mid-run at exact coordinates.
"""

import numpy as np

from repro.service.attack import poison_stale_majority
from repro.service.batcher import ServiceConfig
from repro.service.loadgen import LoadConfig, run_load
from repro.service.shards import ShardedKV


def _seeded_store(n_keys=12):
    store = ShardedKV(n_shards=2, q=2, n=3, seed=0)
    keys = np.arange(100, 100 + n_keys, dtype=np.int64)
    for s in range(store.n_shards):
        mine = keys[store.route_ints(keys) == s]
        store.shard_put(s, mine.tolist(), mine * 7)
    return store, keys


class TestMount:
    def test_stale_value_served_silently(self):
        store, keys = _seeded_store()
        atk = poison_stale_majority(store, keys[:4], seed=0)
        assert atk.victims.size == 4
        assert atk.cells_rolled_back > 0
        for k, stale, fresh in zip(
            atk.victims, atk.stale_values, atk.fresh_values
        ):
            s = store.route_one(int(k))
            got = int(store.shard_get(s, [int(k)])[0])
            # healthy read, wrong answer -- the protocol cannot tell
            assert got == stale != fresh

    def test_unpoisoned_keys_unaffected(self):
        store, keys = _seeded_store()
        atk = poison_stale_majority(store, keys[:4], seed=0)
        assert atk.victims.size
        for k in keys[4:]:
            s = store.route_one(int(k))
            assert int(store.shard_get(s, [int(k)])[0]) == int(k) * 7

    def test_absent_keys_are_skipped(self):
        store, _ = _seeded_store()
        atk = poison_stale_majority(
            store, np.asarray([999_999]), seed=0
        )
        assert atk.victims.size == 0
        assert atk.cells_rolled_back == 0

    def test_heal_restores_fresh_values_and_is_idempotent(self):
        store, keys = _seeded_store()
        atk = poison_stale_majority(store, keys[:5], seed=1)
        atk.heal(store)
        atk.heal(store)  # no-op second time
        assert atk.healed
        for k in atk.victims:
            s = store.route_one(int(k))
            assert int(store.shard_get(s, [int(k)])[0]) == int(k) * 7

    def test_expected_victims_are_checker_coordinates(self):
        store, keys = _seeded_store()
        atk = poison_stale_majority(store, keys[:3], seed=0)
        assert atk.expected_victims() == {
            str(int(k)) for k in atk.victims
        }


class TestServedSoak:
    def test_watchdog_flags_phantom_read_mid_run(self):
        cfg = LoadConfig(
            clients=120, ops_per_client=4, keyspace=64, mix="hotkey",
            hot=8, seed=3, fault="stale", attack_round=2,
            attack_victims=3, heal_after=4, get_fraction=0.6,
            delete_fraction=0.0,
        )
        rep = run_load(
            cfg,
            ServiceConfig(q=2, n=3, round_capacity=64, max_pending=512),
        )
        assert rep.unfinished_clients == 0
        # flagged online, while the run was still going
        det = rep.detection
        assert det is not None
        assert det["kind"] == "phantom-read"
        assert det["service_round"] >= 2
        assert det["service_round"] < rep.rounds  # mid-run, not post hoc
        # pinned to exact checker coordinates
        assert isinstance(det["proc"], int)
        assert isinstance(det["round"], int)
        assert det["var"].lstrip("-").isdigit()
        assert rep.violations > 0
        assert rep.first_violation is not None

    def test_detection_is_seed_reproducible(self):
        cfg = LoadConfig(
            clients=80, ops_per_client=3, keyspace=48, mix="hotkey",
            hot=6, seed=7, fault="stale", attack_round=1,
            attack_victims=2, heal_after=3, get_fraction=0.6,
            delete_fraction=0.0,
        )
        svc = dict(q=2, n=3, round_capacity=48, max_pending=512)
        a = run_load(cfg, ServiceConfig(**svc)).detection
        b = run_load(cfg, ServiceConfig(**svc)).detection
        assert a is not None
        assert a == b


class TestQuorumLossAtAttackBoundary:
    """run_load owns the QuorumLostError policy at the attack boundary.

    Regression (found by lint F3): a quorum loss inside the attack
    mount or heal used to escape ``run_load`` entirely, crashing the
    soak instead of retrying on the next round.
    """

    def test_run_completes_when_mount_keeps_losing_quorum(self, monkeypatch):
        from repro.faults.report import QuorumLostError
        from repro.service import loadgen

        mounts = {"n": 0}

        def broken_mount(store, keys, seed=0, stale_time=1):
            mounts["n"] += 1
            raise QuorumLostError("mount: no read quorum")

        monkeypatch.setattr(loadgen, "poison_stale_majority", broken_mount)
        cfg = LoadConfig(
            clients=40, ops_per_client=3, keyspace=32, mix="hotkey",
            hot=4, seed=3, fault="stale", attack_round=1,
            get_fraction=0.6, delete_fraction=0.0,
        )
        rep = run_load(
            cfg, ServiceConfig(q=2, n=3, round_capacity=32, max_pending=256)
        )
        assert rep.unfinished_clients == 0
        assert mounts["n"] > 1  # retried, not abandoned
        assert rep.detection is None  # nothing ever mounted

    def test_heal_retries_after_transient_quorum_loss(self, monkeypatch):
        from repro.faults.report import QuorumLostError
        from repro.service.attack import StalePoisoning

        real_heal = StalePoisoning.heal
        heals = {"n": 0}

        def flaky_heal(self, store):
            heals["n"] += 1
            if heals["n"] <= 2:
                raise QuorumLostError("heal: transient quorum loss")
            real_heal(self, store)

        monkeypatch.setattr(StalePoisoning, "heal", flaky_heal)
        mounted = {}
        real_mount = poison_stale_majority

        def record_mount(store, keys, seed=0, stale_time=1):
            atk = real_mount(store, keys, seed=seed, stale_time=stale_time)
            mounted["atk"] = atk
            return atk

        from repro.service import loadgen

        monkeypatch.setattr(loadgen, "poison_stale_majority", record_mount)
        cfg = LoadConfig(
            clients=120, ops_per_client=4, keyspace=64, mix="hotkey",
            hot=8, seed=3, fault="stale", attack_round=2,
            attack_victims=3, heal_after=2, get_fraction=0.6,
            delete_fraction=0.0,
        )
        rep = run_load(
            cfg, ServiceConfig(q=2, n=3, round_capacity=64, max_pending=512)
        )
        assert rep.unfinished_clients == 0
        assert heals["n"] >= 3  # two losses absorbed, then success
        assert mounted["atk"].healed  # retry loop finished the heal
