"""CLI surface of the served mode: ``repro serve`` and ``repro load``."""

import json

import pytest

from repro.cli import build_parser, main

#: tiny schemes so each CLI invocation stays fast
_QN = ["-q", "2", "-n", "3"]


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.shards == 2
        assert args.clients == 100
        assert args.round_capacity == 1024

    def test_load_defaults(self):
        args = build_parser().parse_args(["load"])
        assert args.clients == 100_000
        assert args.fault == "none"

    def test_load_rejects_bad_fault(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["load", "--fault", "nope"])


class TestServe:
    def test_lockstep_demo_is_deterministic(self, capsys):
        argv = ["serve", *_QN, "--clients", "12", "--ops-per-client", "3",
                "--keyspace", "64", "--seed", "0"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert "completed" in first
        assert "serve: clean" in first

    def test_jitter_spreads_rounds(self, capsys):
        assert main(
            ["serve", *_QN, "--clients", "6", "--ops-per-client", "2",
             "--keyspace", "32", "--jitter", "0.01", "--seed", "1"]
        ) == 0
        assert "rounds" in capsys.readouterr().out


class TestLoad:
    def test_fault_free_run_reports_healthy(self, capsys):
        assert main(
            ["load", *_QN, "--clients", "60", "--ops-per-client", "2",
             "--keyspace", "128", "--round-capacity", "32",
             "--max-pending", "256", "--oracle"]
        ) == 0
        out = capsys.readouterr().out
        assert "load: healthy" in out
        assert "rounds/sec" in out

    def test_stale_soak_detects_and_exits_zero(self, capsys):
        assert main(
            ["load", *_QN, "--clients", "120", "--ops-per-client", "4",
             "--keyspace", "64", "--mix", "hotkey",
             "--round-capacity", "64", "--max-pending", "512",
             "--fault", "stale", "--attack-round", "2",
             "--victims", "3", "--heal-after", "4",
             "--get-fraction", "0.6", "--delete-fraction", "0",
             "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "phantom-read" in out

    def test_stale_soak_without_detection_fails(self, capsys):
        # attack mounted after the run already ended: nothing to detect
        assert main(
            ["load", *_QN, "--clients", "20", "--ops-per-client", "2",
             "--keyspace", "64", "--round-capacity", "32",
             "--fault", "stale", "--attack-round", "99999"]
        ) == 1
        assert "load: FAILED" in capsys.readouterr().out

    def test_json_out(self, capsys, tmp_path):
        path = tmp_path / "rep.json"
        assert main(
            ["load", *_QN, "--clients", "30", "--ops-per-client", "2",
             "--keyspace", "64", "--round-capacity", "16",
             "--json-out", str(path)]
        ) == 0
        rep = json.loads(path.read_text())
        assert rep["completed"] == 60
        assert rep["violations"] == 0

    def test_bench_out_writes_record(self, capsys, tmp_path):
        assert main(
            ["load", *_QN, "--clients", "30", "--ops-per-client", "2",
             "--keyspace", "64", "--round-capacity", "16",
             "--bench-out", str(tmp_path)]
        ) == 0
        benches = list(tmp_path.glob("BENCH_*.json"))
        assert len(benches) == 1
        rec = json.loads(benches[0].read_text())
        assert "load.latency_p95" in rec["sections"]
        assert rec["scalars"]["load.clients"] == 30

    def test_engine_flag_accepted(self, capsys):
        assert main(
            ["load", *_QN, "--clients", "20", "--ops-per-client", "2",
             "--keyspace", "64", "--round-capacity", "16",
             "--engine", "vector"]
        ) == 0
