"""Vector/scalar engine parity through every service layer.

The vectorized batch engine and the scalar protocol walker must be
interchangeable: per-call ``engine=`` overrides on the kv store, the
sharded repository, and whole rounds of the service core all have to
produce bit-identical responses.
"""

import numpy as np
import pytest

from repro.kvstore.store import ParallelKVStore
from repro.schemes.pp_adapter import PPAdapter
from repro.service.batcher import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    ServiceConfig,
    ServiceCore,
)
from repro.service.shards import ShardedKV


def _store(engine=None) -> ParallelKVStore:
    return ParallelKVStore(PPAdapter(2, 3), seed=0, engine=engine)


class TestStoreEngineOverride:
    def test_per_call_override_matches_default(self):
        keys = list(range(20))
        vals = [10 * k + 1 for k in keys]
        a, b = _store(), _store()
        a.batch_put(keys, vals)  # default (scalar walker)
        b.batch_put(keys, vals, engine="vector")
        assert np.array_equal(a.batch_get(keys), b.batch_get(keys))
        # cross-engine reads of the same store agree too
        assert np.array_equal(
            a.batch_get(keys, engine="vector"), a.batch_get(keys)
        )

    def test_override_applies_to_all_ops(self):
        a, b = _store("scalar"), _store("scalar")
        keys = list(range(12))
        for s, eng in ((a, None), (b, "vector")):
            s.batch_put(keys, [k + 1 for k in keys], engine=eng)
            s.batch_delete(keys[::3], engine=eng)
        ga = a.batch_get(keys)
        gb = b.batch_get(keys, engine="vector")
        assert np.array_equal(ga, gb)
        fa, va = a.scan()
        fb, vb = b.scan(engine="vector")
        assert sorted(va.tolist()) == sorted(vb.tolist())
        assert sorted(fa.tolist()) == sorted(fb.tolist())

    def test_locate_parity(self):
        s = _store()
        s.batch_put([4, 8], [1, 2])
        assert np.array_equal(
            s.locate([4, 8, 99])[0], s.locate([4, 8, 99], engine="vector")[0]
        )

    def test_unknown_engine_rejected(self):
        s = _store()
        with pytest.raises((KeyError, ValueError)):
            s.batch_put([1], [1], engine="nonsense")


class TestShardEngineOverride:
    def test_shard_ops_forward_engine(self):
        a = ShardedKV(n_shards=2, q=2, n=3, seed=0)
        b = ShardedKV(n_shards=2, q=2, n=3, seed=0)
        keys = np.arange(30, dtype=np.int64)
        for sh in range(2):
            mine = keys[a.route_ints(keys) == sh].tolist()
            if not mine:
                continue
            vals = [k + 5 for k in mine]
            a.shard_put(sh, mine, vals)
            b.shard_put(sh, mine, vals, engine="vector")
            assert np.array_equal(
                a.shard_get(sh, mine),
                b.shard_get(sh, mine, engine="vector"),
            )
            assert a.shard_delete(sh, mine[:2]) == b.shard_delete(
                sh, mine[:2], engine="vector"
            )


def _round_trace(engine):
    """Drive a fixed workload through a core; return each round's tuple."""
    cfg = ServiceConfig(q=2, n=3, watchdog=False, engine=engine,
                        round_capacity=8, pipeline_depth=2)
    trace = []
    with ServiceCore(cfg) as core:
        ids = core.register_sessions(6)
        rng = np.random.default_rng(13)
        for step in range(12):
            for s in ids:
                op = (OP_GET, OP_PUT, OP_PUT, OP_DELETE)[
                    int(rng.integers(4))
                ]
                k = int(rng.integers(16))
                core.submit(int(s), op, k, int(rng.integers(1, 999)))
            res = core.run_round()
            trace.append(
                (
                    res.round_id,
                    np.asarray(res.session).tolist(),
                    np.asarray(res.op).tolist(),
                    np.asarray(res.key).tolist(),
                    np.asarray(res.value).tolist(),
                    np.asarray(res.status).tolist(),
                )
            )
        for res in core.drain():
            trace.append((res.round_id, np.asarray(res.value).tolist()))
        trace.append(core.stats()["completed"])
    return trace


class TestServiceEngineParity:
    def test_scalar_and_vector_cores_serve_identically(self):
        assert _round_trace("scalar") == _round_trace("vector")

    def test_default_engine_matches_scalar(self):
        assert _round_trace(None) == _round_trace("scalar")
