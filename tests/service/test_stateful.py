"""Stateful end-to-end service battery.

A Hypothesis rule machine drives one fault-free :class:`ServiceCore`
through interleaved session submissions and rounds, and cross-checks
the service three independent ways:

* online: the core's own streaming watchdog (mem.op + kv.op);
* replay: :class:`SerialOracle` dict semantics per completed round;
* batch: every event the service bus published, re-checked offline by
  the batch :class:`ConsistencyChecker` at teardown.

Any disagreement anywhere is a round-semantics bug.
"""

import numpy as np
from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.conformance.checker import ConsistencyChecker
from repro.service.batcher import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    ServiceConfig,
    ServiceCore,
)
from repro.service.errors import Backpressure, PipelineFull

_N_SESSIONS = 6
_KEYS = st.integers(min_value=0, max_value=23)
_VALS = st.integers(min_value=1, max_value=2**20 - 1)
_SESS = st.integers(min_value=0, max_value=_N_SESSIONS - 1)


class ServiceMachine(RuleBasedStateMachine):
    """Interleaved submissions/rounds vs a dict model."""

    def __init__(self):
        super().__init__()
        self.core = ServiceCore(
            ServiceConfig(
                q=2, n=3, round_capacity=4, max_pending=12,
                pipeline_depth=2, watchdog=True, window=4,
                snapshot_every=2,
            )
        )
        self.core.open()
        self.core.register_sessions(_N_SESSIONS)
        # tap the service bus for the offline batch re-check
        self.tap = self.core._bus.subscribe(capacity=200_000)
        from repro.service.testing import SerialOracle

        self.oracle = SerialOracle()
        self.events: list[dict] = []
        self.submitted = 0

    @initialize()
    def warm(self):
        pass

    @rule(sess=_SESS, key=_KEYS, val=_VALS,
          op=st.sampled_from([OP_GET, OP_PUT, OP_PUT, OP_DELETE]))
    def submit(self, sess, key, val, op):
        try:
            self.core.submit(sess, op, key, val if op == OP_PUT else 0)
            self.submitted += 1
        except (PipelineFull, Backpressure):
            pass  # admission control working as specified

    @precondition(lambda self: self.core.pending > 0)
    @rule()
    def run_round(self):
        res = self.core.run_round()
        assert res is not None
        self.oracle.apply_round(res)
        self.events.extend(self.tap.drain())

    @invariant()
    def serial_oracle_agrees(self):
        assert self.oracle.ok, self.oracle.mismatches

    @invariant()
    def watchdog_clean_and_lossless(self):
        wd = self.core.watchdog
        assert wd.violations_seen == 0
        assert wd.subscription.dropped == 0
        assert self.tap.dropped == 0

    def teardown(self):
        try:
            for res in self.core.drain():
                self.oracle.apply_round(res)
            self.events.extend(self.tap.drain())
            assert self.oracle.ok, self.oracle.mismatches
            # final read-back: every key the model holds is served back
            if self.oracle.model:
                keys = sorted(self.oracle.model)
                sess = np.arange(len(keys)) % _N_SESSIONS
                # probe in per-session fairness slices; capacity may
                # split a slice over several rounds, so drain + merge
                for lo in range(0, len(keys), _N_SESSIONS):
                    chunk = keys[lo:lo + _N_SESSIONS]
                    ok = self.core.submit_batch(
                        sess[: len(chunk)],
                        np.full(len(chunk), OP_GET, dtype=np.int64),
                        np.asarray(chunk, dtype=np.int64),
                        np.zeros(len(chunk), dtype=np.int64),
                    )
                    assert ok.all()
                    got = {}
                    for res in self.core.drain():
                        got.update(
                            zip(np.asarray(res.key).tolist(),
                                np.asarray(res.value).tolist())
                        )
                    for k in chunk:
                        assert got[k] == self.oracle.model[k]
                self.events.extend(self.tap.drain())
            # offline batch re-check of the full published event stream
            rep = ConsistencyChecker().check_events(self.events)
            assert rep.ok, [v.describe() for v in rep.violations]
            wd = self.core.watchdog
            assert wd.violations_seen == 0
            assert wd.subscription.dropped == 0
        finally:
            self.core.close()


ServiceMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestServiceMachine = ServiceMachine.TestCase
