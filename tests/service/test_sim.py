"""Deterministic event loop: virtual clock, stall detection, jitter."""

import asyncio

import pytest

from repro.service.sim import DeterministicEventLoop, Jitter, det_run


class TestVirtualClock:
    def test_sleep_advances_virtual_time_exactly(self):
        async def main():
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            await asyncio.sleep(1.5)
            await asyncio.sleep(0.25)
            return loop.time() - t0

        assert det_run(main()) == pytest.approx(1.75)

    def test_timer_order_is_exact(self):
        order = []

        async def waiter(tag, delay):
            await asyncio.sleep(delay)
            order.append(tag)

        async def main():
            await asyncio.gather(
                waiter("c", 0.3), waiter("a", 0.1), waiter("b", 0.2)
            )

        det_run(main())
        assert order == ["a", "b", "c"]

    def test_advance_rejects_negative(self):
        loop = DeterministicEventLoop()
        try:
            with pytest.raises(ValueError):
                loop.advance(-1.0)
        finally:
            loop.close()

    def test_stall_raises_instead_of_hanging(self):
        async def main():
            await asyncio.get_running_loop().create_future()  # never set

        with pytest.raises(RuntimeError, match="stalled"):
            det_run(main())


class TestJitter:
    def test_seeded_stream_is_reproducible(self):
        a = Jitter(seed=3)
        b = Jitter(seed=3)
        assert [a.next_delay() for _ in range(5)] == [
            b.next_delay() for _ in range(5)
        ]

    def test_distinct_seeds_distinct_schedules(self):
        a = Jitter(seed=0)
        b = Jitter(seed=1)
        assert [a.next_delay() for _ in range(5)] != [
            b.next_delay() for _ in range(5)
        ]

    def test_delays_bounded_by_scale(self):
        j = Jitter(seed=0, scale=1e-2)
        for _ in range(100):
            assert 0 <= j.next_delay() < 1e-2

    def test_awaiting_jitter_advances_clock(self):
        async def main(jitter: Jitter):
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            await jitter()
            return loop.time() - t0

        delay = Jitter(seed=5).next_delay()
        assert det_run(main, seed=5) == pytest.approx(delay)


class TestDetRun:
    def test_callable_receives_seeded_jitter(self):
        def main(jitter):
            assert isinstance(jitter, Jitter)

            async def go():
                return jitter.next_delay()

            return go()

        assert det_run(main, seed=9) == Jitter(seed=9).next_delay()

    def test_same_seed_same_result(self):
        async def noisy(jitter):
            out = []
            for _ in range(4):
                await jitter()
                out.append(asyncio.get_running_loop().time())
            return out

        assert det_run(lambda j: noisy(j), seed=2) == det_run(
            lambda j: noisy(j), seed=2
        )
