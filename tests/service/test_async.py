"""Derandomized asyncio service tests on the virtual-clock loop.

Every test here runs under :func:`repro.service.sim.det_run`, so task
interleavings, timer order, and latency stamps are identical on every
machine and every run -- an asyncio failure in this file reproduces
exactly from its seed.
"""

import asyncio

import pytest

from repro.service.batcher import ServiceConfig
from repro.service.errors import (
    Backpressure,
    PipelineFull,
    RequestLost,
    ServiceClosed,
)
from repro.service.service import KVService
from repro.service.sim import Jitter, det_run

#: small shard schemes; watchdog on -- the served path under test
_CFG = dict(q=2, n=3)


def _service(**kw) -> KVService:
    loop = asyncio.get_running_loop()
    return KVService(ServiceConfig(**{**_CFG, **kw}), clock=loop.time)


class TestRoundTrip:
    def test_put_get_delete(self):
        async def main():
            async with await _service().start() as svc:
                s = svc.session()
                assert await s.put(7, 42) == 42
                assert await s.get(7) == 42
                await s.delete(7)
                assert await s.get(7) == -1

        det_run(main())

    def test_sessions_have_dense_distinct_ids(self):
        async def main():
            async with await _service().start() as svc:
                ids = [svc.session().id for _ in range(5)]
                assert ids == sorted(set(ids))

        det_run(main())

    def test_concurrent_sessions_batch_into_rounds(self):
        async def client(svc, c):
            s = svc.session()
            await s.put(c, c + 1)
            assert await s.get(c) == c + 1

        async def main():
            async with await _service().start() as svc:
                await asyncio.gather(*(client(svc, c) for c in range(20)))
                stats = svc.stats()
                assert stats["completed"] == 40
                # lockstep submissions batch: 2 ops each, not 40 rounds
                assert stats["rounds"] < 10
                assert stats["watch"]["violations"] == 0
                return svc.latency_summary()

        lat = det_run(main())
        assert lat["count"] == 40

    def test_same_round_conflict_resolved_by_arbitration(self):
        async def main():
            async with await _service().start() as svc:
                a, b, c = (svc.session() for _ in range(3))
                ra, rb = await asyncio.gather(a.put(5, 10), b.put(5, 90))
                assert (ra, rb) == (10, 90)  # both acked with own value
                assert await c.get(5) == 90  # largest value won

        det_run(main())


class TestAdmissionSurface:
    def test_pipeline_full_surfaces_synchronously(self):
        async def main():
            async with await _service().start() as svc:
                s = svc.session()
                fut = s.submit(1, 3)  # in flight, depth 1
                with pytest.raises(PipelineFull):
                    s.submit(1, 4)
                await fut

        det_run(main())

    def test_pipelined_session_overlaps_rounds(self):
        async def main():
            async with await _service(pipeline_depth=3).start() as svc:
                s = svc.session()
                futs = [s.submit(1, 0, k) for k in (10, 20, 30)]
                await asyncio.gather(*futs)
                # fairness still serves one per round per session
                assert svc.stats()["rounds"] == 3
                assert await s.get(0) == 30

        det_run(main())

    def test_backpressure_when_queue_full(self):
        async def main():
            async with await _service(max_pending=1).start() as svc:
                a, b = svc.session(), svc.session()
                fut = a.submit(0, 0)
                with pytest.raises(Backpressure):
                    b.submit(0, 1)
                await fut

        det_run(main())

    def test_submit_after_stop_raises_service_closed(self):
        async def main():
            svc = _service()
            await svc.start()
            s = svc.session()
            await s.put(1, 1)
            await svc.stop()
            with pytest.raises(ServiceClosed):
                s.submit(0, 1)

        det_run(main())

    def test_stop_without_start_and_double_start(self):
        async def main():
            svc = _service()
            await svc.stop()  # no-op
            await svc.start()
            await svc.start()  # idempotent
            await svc.stop()

        det_run(main())

    def test_start_during_drain_raises_service_closed(self):
        # regression (found by lint F1): stop() used to re-read
        # self._task after its await, so a start() issued while the
        # drain was suspended silently returned a closing service
        # whose every submission failed
        async def main():
            svc = _service()
            await svc.start()
            draining = asyncio.create_task(svc.stop())
            await asyncio.sleep(0)  # stop() is now parked on the driver
            assert svc._closed and svc._task is not None
            with pytest.raises(ServiceClosed):
                await svc.start()
            await draining
            # once the drain finishes, a fresh start works
            await svc.start()
            s = svc.session()
            assert await s.put(1, 5) == 5
            await svc.stop()

        det_run(main())

    def test_concurrent_stops_tear_down_once(self):
        async def main():
            svc = _service()
            await svc.start()
            s = svc.session()
            await s.put(3, 9)
            await asyncio.gather(svc.stop(), svc.stop())
            assert svc._task is None
            await svc.start()  # double stop leaves a restartable service
            s2 = svc.session()
            assert await s2.put(4, 16) == 16
            await svc.stop()

        det_run(main())


class TestQuorumLossSurface:
    def test_lost_request_raises_retriable_with_keys(self):
        async def main():
            async with await _service().start() as svc:
                s = svc.session()
                await s.put(33, 1)
                for sh in range(svc.core.config.n_shards):
                    n_mod = svc.core.store.shards[sh].scheme.N
                    svc.core.store.set_failed_modules(
                        sh, __import__("numpy").arange(n_mod)
                    )
                with pytest.raises(RequestLost) as ei:
                    await s.put(33, 2)
                assert ei.value.retriable
                assert ei.value.keys == (33,)
                # heal and retry the identical request: succeeds
                for sh in range(svc.core.config.n_shards):
                    svc.core.store.set_failed_modules(sh, None)
                assert await s.put(33, 2) == 2
                assert await s.get(33) == 2

        det_run(main())


class TestDeterminism:
    async def _fleet(self, jitter: Jitter):
        results = []
        async with await _service().start() as svc:

            async def client(c):
                s = svc.session()
                for i in range(3):
                    await jitter()
                    if i % 2:
                        results.append((c, await s.get(c)))
                    else:
                        results.append((c, await s.put(c, 10 * c + i)))

            await asyncio.gather(*(client(c) for c in range(8)))
            return results, svc.stats()["rounds"], svc.latency_summary()

    def test_seeded_fleet_replays_identically(self):
        a = det_run(lambda j: self._fleet(j), seed=4)
        b = det_run(lambda j: self._fleet(j), seed=4)
        assert a == b

    def test_distinct_seeds_change_round_composition(self):
        a = det_run(lambda j: self._fleet(j), seed=0)
        b = det_run(lambda j: self._fleet(j), seed=1)
        # responses agree (semantics), schedules need not
        assert sorted(a[0]) == sorted(b[0])
