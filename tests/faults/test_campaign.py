"""Campaign-runner tests: ladder sharpness, sweeps, report round-trip."""

import json

import pytest

import repro.obs as obs
from repro.faults.campaign import (
    CampaignResult,
    ScenarioRow,
    ThresholdRow,
    harness_for_q,
    render_markdown,
    run_campaign,
    threshold_experiment,
    write_report,
)
from repro.faults.models import RandomCrashes, StaleCopies


class TestHarness:
    def test_q2_and_q4_use_the_paper_scheme(self):
        for q in (2, 4):
            sch = harness_for_q(q)
            assert sch.copies_per_variable == q + 1
            assert sch.read_quorum == q // 2 + 1
            assert sch.name == "pietracaprina-preparata"

    def test_larger_q_uses_random_placement(self):
        sch = harness_for_q(8)
        assert sch.copies_per_variable == 9
        assert sch.read_quorum == 5

    @pytest.mark.parametrize("bad", [0, 3, -2])
    def test_odd_or_nonpositive_q_rejected(self, bad):
        with pytest.raises(ValueError, match="even"):
            harness_for_q(bad)


class TestThresholdExperiment:
    def test_q2_ladder_is_sharp(self):
        violations: list[str] = []
        rows = threshold_experiment(
            2, n_victims=4, n_requests=100, seed=3, violations=violations
        )
        assert not violations
        assert len(rows) == 2 * 3  # k = 0, 1, 2 for both attacks
        for r in rows:
            assert r.ok
            if r.expect_break:
                assert r.k == 2  # q/2 + 1
                if r.attack == "killed":
                    assert r.lost_victims == r.n_victims
                else:
                    assert r.wrong_victims == r.n_victims
            else:
                assert r.lost_victims == 0 and r.wrong_victims == 0

    def test_threshold_rows_cover_both_attacks(self):
        rows = threshold_experiment(2, n_victims=3, n_requests=60)
        assert {r.attack for r in rows} == {"killed", "stale"}


class TestRunCampaign:
    def test_mini_campaign_passes_and_reports(self, tmp_path):
        res = run_campaign(
            qs=(2,),
            intensities=(0.0, 0.1),
            models=[RandomCrashes(), StaleCopies()],
            n_victims=3,
            n_requests=80,
            seed=2,
        )
        assert res.ok
        assert len(res.scenarios) == 4
        zero = [s for s in res.scenarios if s.intensity == 0.0]
        assert all(
            s.lost == 0 and s.degraded == 0 and s.extra_iterations == 0
            for s in zero
        )
        md_path, json_path = write_report(res, str(tmp_path))
        text = (tmp_path / "faults_campaign.md").read_text()
        assert "Verdict: PASS" in text
        with open(json_path) as fh:
            round_trip = CampaignResult.from_dict(json.load(fh))
        assert round_trip.ok
        assert [r.__dict__ for r in round_trip.thresholds] == [
            r.__dict__ for r in res.thresholds
        ]
        assert [s.__dict__ for s in round_trip.scenarios] == [
            s.__dict__ for s in res.scenarios
        ]

    def test_campaign_emits_metrics(self):
        obs.enable_metrics()
        obs.metrics().reset()
        try:
            run_campaign(
                qs=(2,), intensities=(0.1,), models=[RandomCrashes()],
                n_victims=2, n_requests=60, seed=1,
            )
            snap = obs.metrics().snapshot()
        finally:
            obs.disable_metrics()
        names = {k.split("{")[0] for k in snap}
        assert "faults.scenarios" in names
        assert "faults.violations" in names

    def test_violations_render_as_failure(self):
        res = CampaignResult(
            thresholds=[
                ThresholdRow(
                    q=2, attack="killed", k=1, n_victims=2, lost_victims=2,
                    wrong_victims=0, expect_break=False, ok=False,
                )
            ],
            scenarios=[
                ScenarioRow(
                    q=2, model="crash", intensity=0.1, n_requests=10,
                    satisfied=8, degraded=0, lost=2, wrong_below=0,
                    lost_below=2, extra_iterations=0, ok=False,
                )
            ],
            violations=["threshold q=2 killed k=1: 2 lost below threshold"],
        )
        assert not res.ok
        text = render_markdown(res)
        assert "Verdict: FAIL" in text
        assert "## Violations" in text
        assert "**NO**" in text


class TestPackageSurface:
    def test_campaign_symbols_resolve_lazily(self):
        import repro.faults as F

        assert F.run_campaign is run_campaign
        assert F.CampaignResult is CampaignResult
        assert F.harness_for_q is harness_for_q

    def test_unknown_attribute_raises(self):
        import repro.faults as F

        with pytest.raises(AttributeError, match="mixer"):
            F.mixer
