"""Degraded-mode kvstore tests: safety when table variables lose quorum.

The hash table's probing cannot distinguish "cell unreachable" from
"cell empty", so the store must refuse (raise
:class:`QuorumLostError`) rather than return silently wrong answers --
and keep working normally while every table variable retains a
majority of live copies.
"""

import numpy as np
import pytest

from repro.faults.report import QuorumLostError
from repro.kvstore.store import ParallelKVStore
from repro.schemes.pp_adapter import PPAdapter


@pytest.fixture()
def kv():
    return ParallelKVStore(PPAdapter(2, 3), seed=4)


class TestToleratedFailures:
    def test_single_failed_module_is_transparent(self, kv):
        kv.batch_put(["a", "b", "c"], [1, 2, 3])
        kv.set_failed_modules([5])
        np.testing.assert_array_equal(kv.batch_get(["a", "b", "c"]), [1, 2, 3])
        kv.batch_put(["d"], [4])  # writes survive a tolerated failure too
        assert kv.batch_get(["d"])[0] == 4
        assert kv.batch_delete(["a"]) == 1
        assert kv.batch_get(["a"])[0] == -1

    def test_constructor_accepts_failed_modules(self):
        kv = ParallelKVStore(PPAdapter(2, 3), failed_modules=[7])
        kv.batch_put(["x"], [9])
        assert kv.batch_get(["x"])[0] == 9

    def test_set_failed_modules_normalizes(self, kv):
        kv.set_failed_modules(np.empty(0, dtype=np.int64))
        assert kv.failed_modules is None
        kv.set_failed_modules([3, 4])
        np.testing.assert_array_equal(kv.failed_modules, [3, 4])
        kv.set_failed_modules(None)
        assert kv.failed_modules is None


class TestQuorumLoss:
    def test_massive_failure_raises_not_lies(self, kv):
        kv.batch_put(["a", "b", "c"], [1, 2, 3])
        kv.set_failed_modules(np.arange(kv.scheme.N - 1))
        with pytest.raises(QuorumLostError) as exc:
            kv.batch_get(["a", "b", "c"])
        assert exc.value.variables.size > 0
        assert exc.value.modules.size > 0
        # heal and the data is still there -- the refusal protected it
        kv.set_failed_modules(None)
        np.testing.assert_array_equal(kv.batch_get(["a", "b", "c"]), [1, 2, 3])

    def test_put_under_quorum_loss_raises(self, kv):
        kv.set_failed_modules(np.arange(kv.scheme.N - 1))
        with pytest.raises(QuorumLostError):
            kv.batch_put(["k"], [1])
