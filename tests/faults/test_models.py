"""Unit and property tests of the fault-model library.

The models' contract is exactness and reproducibility: a plan is a pure
function of (context, intensity, seed); targeted attacks kill *exactly*
the requested number of copies of each disjoint victim; the schedule's
repair lag is exact to the step.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.models import (
    MODEL_NAMES,
    FaultContext,
    FaultPlan,
    GreyModules,
    RandomCrashes,
    StaleCopies,
    TargetedAttack,
    default_models,
    disjoint_victims,
    make_model,
)
from repro.mpc.faults import FaultSchedule


def _ctx(n_modules=40, v=20, copies=3, majority=2, seed=0, slots=False):
    rng = np.random.default_rng(seed)
    mods = np.empty((v, copies), dtype=np.int64)
    for i in range(v):
        mods[i] = rng.choice(n_modules, copies, replace=False)
    sl = np.broadcast_to(np.arange(v, dtype=np.int64)[:, None], mods.shape)
    return FaultContext(n_modules, mods, majority, slots=sl if slots else None)


class TestContextAndPlan:
    def test_context_properties(self):
        ctx = _ctx(n_modules=10, v=7, copies=5, majority=3)
        assert ctx.n_variables == 7
        assert ctx.copies == 5
        assert ctx.tolerance == 2  # q/2 = copies - majority

    def test_empty_plan_has_empty_kwargs(self):
        plan = FaultPlan()
        assert plan.empty
        assert plan.access_kwargs() == {}

    def test_failed_plan_kwargs(self):
        plan = FaultPlan(failed_modules=np.array([3, 5], dtype=np.int64))
        kw = plan.access_kwargs()
        assert kw["allow_partial"] is True
        np.testing.assert_array_equal(kw["failed_modules"], [3, 5])

    def test_dead_copy_counts(self):
        mods = np.array([[0, 1, 2], [3, 4, 5], [0, 4, 6]])
        plan = FaultPlan(failed_modules=np.array([0, 4], dtype=np.int64))
        np.testing.assert_array_equal(
            plan.dead_copy_counts(mods), [1, 1, 2]
        )

    def test_stale_copy_counts(self):
        plan = FaultPlan(
            stale=(np.array([1, 1, 3]), np.array([0, 2, 1]))
        )
        np.testing.assert_array_equal(
            plan.stale_copy_counts(5), [0, 2, 0, 1, 0]
        )


class TestDisjointVictims:
    def test_victims_are_pairwise_disjoint(self):
        ctx = _ctx(n_modules=30, v=25)
        victims = disjoint_victims(ctx.module_ids, 8)
        seen: set[int] = set()
        for v in victims:
            row = {int(m) for m in ctx.module_ids[int(v)]}
            assert not (row & seen)
            seen |= row

    def test_want_respected(self):
        ctx = _ctx(n_modules=100, v=30)
        assert disjoint_victims(ctx.module_ids, 3).size == 3


class TestIntensityValidation:
    @pytest.mark.parametrize("bad", [-0.1, 1.5, 2.0])
    def test_out_of_range_rejected(self, bad):
        ctx = _ctx()
        for model in default_models():
            with pytest.raises(ValueError, match="intensity"):
                model.plan(ctx, bad)

    def test_zero_intensity_plans_are_empty(self):
        ctx = _ctx(slots=True)
        for model in default_models():
            assert model.plan(ctx, 0.0).empty, model.name


class TestRandomCrashes:
    def test_kill_count_scales_with_intensity(self):
        ctx = _ctx(n_modules=50)
        plan = RandomCrashes().plan(ctx, 0.2, seed=3)
        assert plan.failed_modules.size == 10
        assert np.unique(plan.failed_modules).size == 10
        assert plan.failed_modules.max() < 50

    def test_transient_name_and_schedule(self):
        m = RandomCrashes(repair_lag=4)
        assert m.name == "transient-crash"
        fs = m.schedule(20, 0.5, seed=1)
        assert isinstance(fs, FaultSchedule)
        assert fs.repair_lag == 4

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError):
            RandomCrashes(repair_lag=-1)


class TestTargetedAttack:
    @settings(max_examples=40)
    @given(
        k=st.integers(1, 3),
        seed=st.integers(0, 2**16),
        ctx_seed=st.integers(0, 2**16),
    )
    def test_kills_exactly_k_copies_per_victim(self, k, seed, ctx_seed):
        ctx = _ctx(n_modules=60, v=30, seed=ctx_seed)
        victims = disjoint_victims(ctx.module_ids, 5)
        plan = TargetedAttack(copies_per_victim=k, victims=victims).plan(
            ctx, 1.0, seed=seed
        )
        dead = plan.dead_copy_counts(ctx.module_ids)
        # disjoint victims: exactly k dead copies each, and the targeted
        # record matches what dead_copy_counts reconstructs
        np.testing.assert_array_equal(dead[victims], k)
        assert set(plan.targeted) == {int(v) for v in victims}
        for cols in plan.targeted.values():
            assert cols.size == k

    def test_victim_out_of_range_rejected(self):
        ctx = _ctx(v=10)
        atk = TargetedAttack(victims=np.array([10]))
        with pytest.raises(ValueError, match="victim"):
            atk.plan(ctx, 1.0)

    def test_auto_victim_count_scales(self):
        ctx = _ctx(n_modules=200, v=40)
        plan = TargetedAttack().plan(ctx, 0.5, seed=0)
        assert len(plan.targeted) <= 20
        assert len(plan.targeted) >= 1


class TestGreyModules:
    def test_periods_shape_and_values(self):
        ctx = _ctx(n_modules=30)
        plan = GreyModules(period=4).plan(ctx, 0.5, seed=2)
        assert plan.grey_periods.shape == (30,)
        assert set(np.unique(plan.grey_periods)) == {1, 4}
        assert (plan.grey_periods == 4).sum() == 15
        assert plan.access_kwargs() == {"grey_modules": plan.grey_periods}

    def test_period_below_two_rejected(self):
        with pytest.raises(ValueError):
            GreyModules(period=1)


class TestStaleCopies:
    def test_marks_exactly_k_copies(self):
        ctx = _ctx(v=20, slots=True)
        victims = disjoint_victims(ctx.module_ids, 4)
        plan = StaleCopies(copies_per_victim=2, victims=victims).plan(
            ctx, 1.0, seed=1
        )
        counts = plan.stale_copy_counts(20)
        np.testing.assert_array_equal(counts[victims], 2)
        assert counts.sum() == 2 * victims.size

    def test_apply_requires_slots(self):
        ctx = _ctx(slots=False)
        plan = StaleCopies(victims=np.array([0])).plan(ctx, 1.0)
        with pytest.raises(ValueError, match="slots"):
            StaleCopies.apply(plan, None, ctx, np.zeros(20), 0)

    def test_apply_rolls_back_cells(self):
        from repro.schemes.pp_adapter import PPAdapter

        sch = PPAdapter(2, 3)
        idx = sch.random_request_set(10, seed=0)
        mods = sch.placement(idx)
        slots = sch.slots(idx, mods)
        ctx = FaultContext(sch.N, mods, sch.read_quorum, slots=slots)
        store = sch.make_store()
        old = np.arange(10, dtype=np.int64) + 100
        new = np.arange(10, dtype=np.int64) + 200
        store.write(mods, slots, np.broadcast_to(old[:, None], mods.shape), 1)
        store.write(mods, slots, np.broadcast_to(new[:, None], mods.shape), 2)
        plan = StaleCopies(victims=np.array([3])).plan(ctx, 1.0, seed=5)
        assert StaleCopies.apply(plan, store, ctx, old, 1) == 1
        row, col = plan.stale[0][0], plan.stale[1][0]
        vals, stamps = store.read(mods[row, col], slots[row, col])
        assert int(vals) == 103 and int(stamps) == 1


class TestRegistry:
    def test_every_name_constructs(self):
        for name in MODEL_NAMES:
            assert make_model(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            make_model("meteor")

    def test_default_models_cover_all_names(self):
        assert {m.name for m in default_models()} == set(MODEL_NAMES)


class TestPlanReproducibility:
    @settings(max_examples=30)
    @given(
        intensity=st.floats(0.0, 1.0, allow_nan=False),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_same_seed_same_plan(self, intensity, seed):
        ctx = _ctx(slots=True)
        for model in default_models():
            a = model.plan(ctx, intensity, seed=seed)
            b = model.plan(ctx, intensity, seed=seed)
            np.testing.assert_array_equal(a.failed_modules, b.failed_modules)
            assert (a.grey_periods is None) == (b.grey_periods is None)
            if a.grey_periods is not None:
                np.testing.assert_array_equal(a.grey_periods, b.grey_periods)
            assert (a.stale is None) == (b.stale is None)
            if a.stale is not None:
                np.testing.assert_array_equal(a.stale[0], b.stale[0])
                np.testing.assert_array_equal(a.stale[1], b.stale[1])


class TestFaultScheduleProperties:
    @settings(max_examples=40)
    @given(
        n=st.integers(1, 60),
        rate=st.floats(0.0, 1.0, allow_nan=False),
        lag=st.integers(0, 5),
        seed=st.integers(0, 2**16),
        steps=st.integers(1, 12),
    )
    def test_down_set_bounded_by_pool(self, n, rate, lag, seed, steps):
        fs = FaultSchedule(n, rate, repair_lag=lag, seed=seed)
        for _ in range(steps):
            failed = fs.step()
            assert 0 <= failed.size <= n
            assert np.unique(failed).size == failed.size
            if failed.size:
                assert failed.min() >= 0 and failed.max() < n

    @settings(max_examples=20)
    @given(lag=st.integers(1, 6), n=st.integers(1, 20))
    def test_repair_lag_is_exact(self, lag, n):
        # rate 1.0 fails every healthy module at step 1; then freeze the
        # failure process and watch the cohort heal at exactly t=1+lag
        fs = FaultSchedule(n, 1.0, repair_lag=lag, seed=0)
        assert fs.step().size == n
        fs.failure_rate = 0.0
        for _ in range(lag - 1):
            assert fs.step().size == n  # down through t = 1 + lag - 1
        assert fs.step().size == 0  # healthy again at t = 1 + lag

    def test_permanent_without_repair(self):
        fs = FaultSchedule(10, 1.0, repair_lag=0, seed=0)
        assert fs.step().size == 10
        fs.failure_rate = 0.0
        for _ in range(5):
            assert fs.step().size == 10

    @settings(max_examples=20)
    @given(seed=st.integers(0, 2**16))
    def test_same_seed_same_trajectory(self, seed):
        a = FaultSchedule(25, 0.3, repair_lag=2, seed=seed)
        b = FaultSchedule(25, 0.3, repair_lag=2, seed=seed)
        for _ in range(6):
            np.testing.assert_array_equal(a.step(), b.step())
