"""Tests of the fault-injection subsystem (:mod:`repro.faults`)."""
