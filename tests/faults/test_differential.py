"""Differential tests: zero-intensity faults are bit-identical to none.

Every fault model at intensity 0 must produce an empty plan whose
kwargs are ``{}``, so an access under it follows the *exact* fault-free
code path: same values, same per-phase iteration counts, same live
histories, same machine statistics, no fault report.  This pins the
zero-fault hot path -- fault support may not perturb healthy runs.
"""

import numpy as np
import pytest

from repro.faults.models import FaultContext, default_models
from repro.schemes.pp_adapter import PPAdapter


@pytest.fixture(scope="module", params=[(2, 3), (4, 3)], ids=["q2", "q4"])
def adapter(request):
    """The paper's scheme at q=2 and q=4 behind the uniform interface."""
    return PPAdapter(*request.param)


def _run(sch, op, **kw):
    idx = sch.random_request_set(40, seed=7)
    store = None
    if op in ("read", "write"):
        store = sch.make_store()
        sch.write(idx, values=idx + 1, store=store, time=1)
    if op == "write":
        return sch.access(
            idx, op=op, store=store, values=idx + 2, time=2,
            collect_history=True, **kw,
        )
    return sch.access(
        idx, op=op, store=store, time=2, collect_history=True, **kw
    )


def _assert_identical(a, b):
    assert a.iterations_per_phase == b.iterations_per_phase
    assert [p.live_history for p in a.phases] == [
        p.live_history for p in b.phases
    ]
    for f in ("steps", "requests", "served", "max_congestion"):
        assert getattr(a.mpc_stats, f) == getattr(b.mpc_stats, f)
    if a.values is None:
        assert b.values is None
    else:
        np.testing.assert_array_equal(a.values, b.values)
    assert a.unsatisfiable is None and b.unsatisfiable is None
    assert a.fault_report is None and b.fault_report is None


@pytest.mark.parametrize("op", ["count", "read", "write"])
def test_every_model_at_zero_intensity_is_identity(adapter, op):
    idx = adapter.random_request_set(40, seed=7)
    ctx = FaultContext(
        adapter.N, adapter.placement(idx), adapter.read_quorum,
        slots=adapter.slots(idx, adapter.placement(idx)),
    )
    baseline = _run(adapter, op)
    for model in default_models():
        plan = model.plan(ctx, 0.0, seed=11)
        assert plan.access_kwargs() == {}, model.name
        res = _run(adapter, op, **plan.access_kwargs())
        _assert_identical(baseline, res)


@pytest.mark.parametrize("op", ["count", "read", "write"])
def test_empty_failed_modules_array_is_identity(adapter, op):
    """An explicitly empty failure set must also be a no-op (no report,
    no degraded tracking) -- the schedule feeds these on quiet steps."""
    baseline = _run(adapter, op)
    res = _run(
        adapter, op,
        failed_modules=np.empty(0, dtype=np.int64), allow_partial=True,
    )
    _assert_identical(baseline, res)


def test_rerun_reproducibility(adapter):
    """The healthy path itself is deterministic, making the differential
    comparison meaningful."""
    _assert_identical(_run(adapter, "read"), _run(adapter, "read"))
