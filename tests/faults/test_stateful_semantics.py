"""Stateful memory-semantics test of the store under tolerated faults.

A Hypothesis rule machine drives the paper's q=2 scheme (3 copies,
quorum 2) through interleaved batched writes, reads, module crashes,
repairs, and stale-copy attacks, mirroring every write in a plain dict.
The fault pressure stays within the tolerated budget -- at most one
failed module at a time (= q/2 dead copies per variable, as copies of a
variable occupy distinct modules), and at most one stale copy ever per
variable, rolled back from a fully propagated write -- so the majority
discipline guarantees every read returns the latest completed write.
Any divergence from the dict is a memory-semantics bug.
"""

import numpy as np
from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.schemes.pp_adapter import PPAdapter

#: the smallest paper instance: N=63 modules, M=84 variables
_ADAPTER = PPAdapter(2, 3)


class FaultyStoreMachine(RuleBasedStateMachine):
    """Interleaved ops on one store vs a dict reference model."""

    def __init__(self):
        super().__init__()
        self.sch = _ADAPTER
        self.store = self.sch.make_store()
        self.model: dict[int, int] = {}
        self.time = 0
        self.failed: np.ndarray | None = None
        self.stale_used: set[int] = set()

    def _tick(self) -> int:
        self.time += 1
        return self.time

    def _kw(self) -> dict:
        if self.failed is None:
            return {}
        return {"failed_modules": self.failed, "allow_partial": True}

    @initialize()
    def seed_some_data(self):
        idx = np.arange(0, 84, 7, dtype=np.int64)
        vals = idx * 3 + 1
        self.sch.write(idx, values=vals, store=self.store, time=self._tick())
        self.model.update(zip(idx.tolist(), vals.tolist()))

    @rule(
        vars=st.lists(
            st.integers(0, 83), min_size=1, max_size=6, unique=True
        ),
        salt=st.integers(0, 1 << 16),
    )
    def write_batch(self, vars, salt):
        idx = np.asarray(vars, dtype=np.int64)
        vals = (idx * 131 + salt) % (1 << 20)
        res = self.sch.write(
            idx, values=vals, store=self.store, time=self._tick(), **self._kw()
        )
        assert res.unsatisfiable is None  # <= q/2 dead copies per var
        self.model.update(zip(idx.tolist(), vals.tolist()))

    @precondition(lambda self: bool(self.model))
    @rule(data=st.data())
    def read_batch(self, data):
        keys = data.draw(
            st.lists(
                st.sampled_from(sorted(self.model)),
                min_size=1,
                max_size=8,
                unique=True,
            )
        )
        idx = np.asarray(keys, dtype=np.int64)
        res = self.sch.read(
            idx, store=self.store, time=self._tick(), **self._kw()
        )
        assert res.unsatisfiable is None
        expect = np.asarray([self.model[k] for k in keys], dtype=np.int64)
        np.testing.assert_array_equal(res.values, expect)

    @rule(m=st.integers(0, 62))
    def fail_module(self, m):
        self.failed = np.asarray([m], dtype=np.int64)

    @rule()
    def heal(self):
        self.failed = None

    @precondition(
        lambda self: bool(set(self.model) - self.stale_used)
    )
    @rule(data=st.data(), salt=st.integers(0, 1 << 16))
    def stale_attack(self, data, salt):
        """Fully propagate a fresh write to all 3 copies of one variable,
        then roll exactly one copy back to the old state -- one stale
        copy is within the q/2 budget, so reads must stay exact."""
        var = data.draw(
            st.sampled_from(sorted(set(self.model) - self.stale_used))
        )
        copy = data.draw(st.integers(0, 2))
        idx = np.asarray([var], dtype=np.int64)
        mods = self.sch.placement(idx)
        slots = self.sch.slots(idx, mods)
        old_val = self.model[var]
        old_time = self.time
        new_val = (var * 977 + salt) % (1 << 20)
        self.store.write(
            mods, slots, np.full_like(mods, new_val), self._tick()
        )
        self.store.write(
            mods[0, copy], slots[0, copy], old_val, old_time
        )
        self.model[var] = int(new_val)
        self.stale_used.add(var)

    @invariant()
    def spot_check_one_key(self):
        if not self.model:
            return
        var = sorted(self.model)[len(self.model) // 2]
        idx = np.asarray([var], dtype=np.int64)
        res = self.sch.read(
            idx, store=self.store, time=self._tick(), **self._kw()
        )
        assert res.unsatisfiable is None
        assert int(res.values[0]) == self.model[var]


FaultyStoreMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=25
)

TestFaultyStoreSemantics = FaultyStoreMachine.TestCase
