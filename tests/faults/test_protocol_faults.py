"""Protocol-boundary validation and degraded-mode reporting tests.

The ``failed_modules`` / ``grey_modules`` / ``retry_limit`` hooks are a
trust boundary: malformed fault sets must be rejected with
:class:`ValueError` at the protocol entry instead of flowing silently
into the masks, and well-formed faults must be accounted exactly in the
per-variable :class:`~repro.faults.report.FaultReport`.
"""

import numpy as np
import pytest

from repro.core.protocol import run_access_protocol
from repro.faults.report import (
    DEGRADED,
    LOST,
    OUTCOME_NAMES,
    SATISFIED,
    FaultReport,
    QuorumLostError,
)

# 4 variables x 3 copies over 8 modules; variable 0 has two copies in
# modules {0, 1}, so failing both dooms it (quorum 2 of 3)
MODS = np.array(
    [[0, 1, 2], [2, 3, 4], [4, 5, 6], [6, 7, 0]], dtype=np.int64
)


class TestBoundaryValidation:
    def test_out_of_range_id_rejected(self):
        with pytest.raises(ValueError, match=r"failed_modules ids"):
            run_access_protocol(MODS, 8, 2, failed_modules=[8])

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError, match=r"failed_modules ids"):
            run_access_protocol(MODS, 8, 2, failed_modules=[-1])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_access_protocol(MODS, 8, 2, failed_modules=[3, 3])

    def test_doomed_without_allow_partial_raises(self):
        with pytest.raises(ValueError, match="allow_partial"):
            run_access_protocol(MODS, 8, 2, failed_modules=[0, 1])

    def test_grey_shape_enforced(self):
        with pytest.raises(ValueError, match="grey_modules must have shape"):
            run_access_protocol(MODS, 8, 2, grey_modules=[1, 2])

    def test_grey_period_below_one_rejected(self):
        grey = np.ones(8, dtype=np.int64)
        grey[0] = 0
        with pytest.raises(ValueError, match="periods must be >= 1"):
            run_access_protocol(MODS, 8, 2, grey_modules=grey)

    def test_retry_limit_below_one_rejected(self):
        with pytest.raises(ValueError, match="retry_limit"):
            run_access_protocol(MODS, 8, 2, retry_limit=0)

    def test_all_healthy_grey_periods_are_noop(self):
        base = run_access_protocol(MODS, 8, 2)
        res = run_access_protocol(
            MODS, 8, 2, grey_modules=np.ones(8, dtype=np.int64)
        )
        assert res.iterations_per_phase == base.iterations_per_phase
        assert res.fault_report is None


class TestDegradedModeReport:
    def test_outcome_classification(self):
        res = run_access_protocol(
            MODS, 8, 2, failed_modules=[0, 1], allow_partial=True
        )
        rep = res.fault_report
        assert isinstance(rep, FaultReport)
        # var 0 lost (both copies in {0, 1} dead), var 3 degraded (one
        # dead copy), vars 1 and 2 untouched
        assert list(rep.outcomes) == [LOST, SATISFIED, SATISFIED, DEGRADED]
        np.testing.assert_array_equal(rep.dead_copies, [2, 0, 0, 1])
        np.testing.assert_array_equal(res.unsatisfiable, [0])
        np.testing.assert_array_equal(rep.lost_variables, [0])
        np.testing.assert_array_equal(rep.degraded_variables, [3])
        np.testing.assert_array_equal(rep.implicated_modules, [0, 1])
        assert rep.satisfied_at[0] == -1  # lost: never satisfied
        assert (rep.satisfied_at[1:] >= 1).all()
        assert not rep.ok
        assert rep.n_satisfied == 2 and rep.n_degraded == 1 and rep.n_lost == 1

    def test_lost_reads_stay_minus_one(self):
        store_mods = MODS
        slots = np.broadcast_to(
            np.arange(4, dtype=np.int64)[:, None], store_mods.shape
        )
        from repro.mpc.memory import SharedCopyStore

        store = SharedCopyStore(8, 4)
        run_access_protocol(
            store_mods, 8, 2, op="write", slots=slots, store=store,
            values=np.arange(4) + 10, time=1,
        )
        res = run_access_protocol(
            store_mods, 8, 2, op="read", slots=slots, store=store, time=2,
            failed_modules=[0, 1], allow_partial=True,
        )
        assert res.values[0] == -1
        np.testing.assert_array_equal(res.values[1:], [11, 12, 13])

    def test_grey_modules_degrade_not_lose(self):
        grey = np.ones(8, dtype=np.int64)
        grey[2] = 3  # variable 0 and 1 each have a copy in module 2
        res = run_access_protocol(MODS, 8, 2, grey_modules=grey)
        rep = res.fault_report
        assert res.unsatisfiable is None
        assert rep.n_lost == 0
        np.testing.assert_array_equal(rep.grey_copies, [1, 1, 0, 0])
        assert rep.outcomes[2] == SATISFIED and rep.outcomes[3] == SATISFIED

    def test_retry_exhaustion_marks_lost(self):
        # quorum 3 of 3 with a dead copy can never finish: the retry
        # bound must declare the variable lost instead of spinning
        res = run_access_protocol(
            np.array([[0, 1, 2]], dtype=np.int64), 8, 3,
            failed_modules=[0], allow_partial=True, retry_limit=5,
        )
        np.testing.assert_array_equal(res.unsatisfiable, [0])
        assert res.fault_report.outcomes[0] == LOST

    def test_retry_exhaustion_without_allow_partial_raises(self):
        # a satisfiable variable (nothing dead) that cannot finish in
        # time: quorum 3 of 3 with one module serving every 10th
        # iteration needs ~10 iterations, but the budget is 3
        grey = np.ones(8, dtype=np.int64)
        grey[0] = 10
        with pytest.raises(ValueError, match="retry_limit"):
            run_access_protocol(
                np.array([[0, 1, 2]], dtype=np.int64), 8, 3,
                grey_modules=grey, retry_limit=3,
            )

    def test_generous_retry_limit_changes_nothing(self):
        base = run_access_protocol(MODS, 8, 2)
        res = run_access_protocol(MODS, 8, 2, retry_limit=10_000)
        assert res.iterations_per_phase == base.iterations_per_phase
        assert res.unsatisfiable is None
        assert res.fault_report is None  # retry alone is not a fault

    def test_report_accounting_helpers(self):
        res = run_access_protocol(
            MODS, 8, 2, failed_modules=[0, 1], allow_partial=True
        )
        rep = res.fault_report
        rep.with_baseline(res.total_iterations - 2, res.total_iterations)
        assert rep.extra_iterations == 2
        text = rep.render()
        for name in OUTCOME_NAMES:
            assert name in text
        assert "+2 iterations" in text
        s = rep.summary()
        assert s["lost"] == 1 and s["extra_iterations"] == 2


class TestQuorumLostError:
    def test_carries_variables_and_modules(self):
        err = QuorumLostError(
            "boom",
            variables=np.array([3, 5]),
            modules=np.array([1]),
        )
        assert str(err) == "boom"
        np.testing.assert_array_equal(err.variables, [3, 5])
        np.testing.assert_array_equal(err.modules, [1])
        assert isinstance(err, RuntimeError)
