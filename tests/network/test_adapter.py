"""Tests for running the majority protocol over a measured network."""

import numpy as np
import pytest

from repro.network.adapter import run_protocol_on_network
from repro.network.topology import HypercubeTopology, TorusTopology


def small_batch(n_modules=16, V=8, copies=3, seed=0):
    rng = np.random.default_rng(seed)
    # distinct modules per variable row, as the schemes guarantee
    module_ids = np.empty((V, copies), dtype=np.int64)
    for i in range(V):
        module_ids[i] = rng.choice(n_modules, size=copies, replace=False)
    return module_ids


class TestRunProtocolOnNetwork:
    def test_topology_must_hold_all_modules(self):
        module_ids = small_batch(n_modules=16)
        with pytest.raises(ValueError, match="nodes < N"):
            run_protocol_on_network(
                module_ids, 16, 2, HypercubeTopology(3)
            )

    def test_completes_and_charges_overhead(self):
        module_ids = small_batch(n_modules=16, V=8, copies=3)
        res = run_protocol_on_network(
            module_ids, 16, 2, HypercubeTopology(4)
        )
        assert res.mpc_iterations >= 1
        assert res.network_rounds == res.request_rounds + res.response_rounds
        assert res.network_rounds >= res.mpc_iterations
        assert res.overhead_factor >= 1.0
        assert len(res.per_iteration_rounds) == res.mpc_iterations
        assert sum(res.per_iteration_rounds) == res.network_rounds
        assert res.max_link_load >= 1

    def test_majority_one_single_copy(self):
        module_ids = np.arange(8, dtype=np.int64).reshape(8, 1)
        res = run_protocol_on_network(
            module_ids, 8, 1, HypercubeTopology(3)
        )
        # distinct modules, one copy each: a single MPC iteration
        assert res.mpc_iterations == 1

    def test_torus_agrees_with_hypercube_on_iterations(self):
        # MPC iteration count is a property of the module map, not the
        # interconnect; only the routing cost differs
        module_ids = small_batch(n_modules=16, V=8, copies=3, seed=2)
        a = run_protocol_on_network(module_ids, 16, 2, HypercubeTopology(4))
        b = run_protocol_on_network(module_ids, 16, 2, TorusTopology(4))
        assert a.mpc_iterations == b.mpc_iterations

    def test_zero_distance_batch_has_unit_overhead(self):
        # every processor co-located with its module: routing is free
        module_ids = np.zeros((1, 1), dtype=np.int64)
        res = run_protocol_on_network(
            module_ids, 1, 1, HypercubeTopology(1)
        )
        assert res.network_rounds == 0
        assert res.overhead_factor >= 0.0
        assert res.mpc_iterations == 1

    def test_deterministic_given_seed(self):
        module_ids = small_batch(n_modules=32, V=12, copies=3, seed=5)
        a = run_protocol_on_network(module_ids, 32, 2, HypercubeTopology(5))
        b = run_protocol_on_network(module_ids, 32, 2, HypercubeTopology(5))
        assert a == b
