"""Tests for the bounded-degree topologies and their greedy routes."""

import numpy as np
import pytest

from repro.network.topology import HypercubeTopology, TorusTopology


class TestHypercube:
    def test_structure(self):
        h = HypercubeTopology(4)
        assert h.n_nodes == 16
        assert h.degree == 4
        assert h.diameter() == 4
        assert "dimension=4" in repr(h)

    def test_dimension_validated(self):
        with pytest.raises(ValueError, match="dimension"):
            HypercubeTopology(0)
        with pytest.raises(ValueError, match="dimension"):
            HypercubeTopology(25)

    def test_at_least(self):
        assert HypercubeTopology.at_least(1).n_nodes == 2
        assert HypercubeTopology.at_least(16).n_nodes == 16
        assert HypercubeTopology.at_least(17).n_nodes == 32
        with pytest.raises(ValueError, match="positive"):
            HypercubeTopology.at_least(0)

    def test_neighbors_are_single_bit_flips(self):
        h = HypercubeTopology(3)
        ns = h.neighbors(5)
        assert sorted(ns) == sorted([5 ^ 1, 5 ^ 2, 5 ^ 4])
        with pytest.raises(ValueError, match="out of range"):
            h.neighbors(8)

    def test_vnext_fixes_lowest_differing_bit(self):
        h = HypercubeTopology(4)
        cur = np.array([0b0000, 0b1010, 0b0110])
        dest = np.array([0b0101, 0b1010, 0b0111])
        nxt = h.vnext(cur, dest)
        assert nxt[0] == 0b0001  # lowest differing bit first
        assert nxt[1] == 0b1010  # arrived: unchanged
        assert nxt[2] == 0b0111

    def test_greedy_route_reaches_dest_in_distance_hops(self):
        h = HypercubeTopology(5)
        rng = np.random.default_rng(0)
        cur = rng.integers(0, h.n_nodes, size=64)
        dest = rng.integers(0, h.n_nodes, size=64)
        d = h.distance(cur, dest)
        pos = cur.copy()
        for _ in range(h.diameter()):
            pos = h.vnext(pos, dest)
        assert np.all(pos == dest)
        # each hop fixes exactly one bit, so hops used == distance
        assert np.all(d <= h.diameter())

    def test_distance_is_hamming(self):
        h = HypercubeTopology(4)
        assert h.distance(np.array([0]), np.array([0b1111]))[0] == 4
        assert h.distance(np.array([0b1010]), np.array([0b1010]))[0] == 0

    def test_vnext_random_is_productive(self):
        h = HypercubeTopology(4)
        rng = np.random.default_rng(7)
        cur = np.array([0b0000, 0b1111, 0b0101])
        dest = np.array([0b1111, 0b1111, 0b1010])
        for _ in range(h.diameter()):
            nxt = h.vnext_random(cur, dest, rng)
            moved = cur != dest
            # every unfinished packet strictly reduces Hamming distance
            assert np.all(
                h.distance(nxt[moved], dest[moved])
                == h.distance(cur[moved], dest[moved]) - 1
            )
            assert np.all(nxt[~moved] == cur[~moved])
            cur = nxt
        assert np.all(cur == dest)

    def test_vnext_random_all_arrived_short_circuits(self):
        h = HypercubeTopology(3)
        rng = np.random.default_rng(0)
        cur = np.array([1, 2, 3])
        assert np.all(h.vnext_random(cur, cur, rng) == cur)


class TestTorus:
    def test_structure(self):
        t = TorusTopology(5)
        assert t.n_nodes == 25
        assert t.degree == 4
        assert t.diameter() == 4
        assert "k=5" in repr(t)

    def test_k_validated(self):
        with pytest.raises(ValueError, match=">= 2"):
            TorusTopology(1)

    def test_at_least(self):
        assert TorusTopology.at_least(1).k == 2
        assert TorusTopology.at_least(25).k == 5
        assert TorusTopology.at_least(26).k == 6

    def test_neighbors_wrap(self):
        t = TorusTopology(3)
        # node 0 = (0, 0): wraps to (1,0), (2,0), (0,1), (0,2)
        assert sorted(t.neighbors(0)) == sorted([1, 2, 3, 6])

    def test_distance_wraparound_manhattan(self):
        t = TorusTopology(5)
        # (0,0) to (4,4): wrapping is 1+1, not 4+4
        a = np.array([0])
        b = np.array([4 + 4 * 5])
        assert t.distance(a, b)[0] == 2
        assert t.distance(a, a)[0] == 0

    def test_vnext_dimension_ordered(self):
        t = TorusTopology(5)
        # x corrected before y; shorter wrap direction chosen
        cur = np.array([0])          # (0, 0)
        dest = np.array([4 + 2 * 5])  # (4, 2)
        nxt = t.vnext(cur, dest)
        assert nxt[0] == 4  # x steps backwards across the wrap to x=4

    def test_greedy_route_reaches_dest_within_diameter(self):
        t = TorusTopology(6)
        rng = np.random.default_rng(1)
        cur = rng.integers(0, t.n_nodes, size=64)
        dest = rng.integers(0, t.n_nodes, size=64)
        pos = cur.copy()
        for _ in range(t.diameter()):
            pos = t.vnext(pos, dest)
        assert np.all(pos == dest)

    def test_each_hop_is_a_neighbor_step(self):
        t = TorusTopology(4)
        rng = np.random.default_rng(2)
        cur = rng.integers(0, t.n_nodes, size=32)
        dest = rng.integers(0, t.n_nodes, size=32)
        while np.any(cur != dest):
            nxt = t.vnext(cur, dest)
            moved = cur != dest
            for c, nx in zip(cur[moved].tolist(), nxt[moved].tolist()):
                assert nx in t.neighbors(c)
            cur = nxt
