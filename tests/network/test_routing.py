"""Tests for the synchronous store-and-forward router."""

import numpy as np
import pytest

from repro.network.routing import RoutingResult, route_packets
from repro.network.topology import HypercubeTopology, TorusTopology


class TestRoutePackets:
    def test_zero_packets(self):
        res = route_packets(HypercubeTopology(3), np.array([]), np.array([]))
        assert res == RoutingResult(0, 0, 0, 0)

    def test_already_arrived_costs_nothing(self):
        h = HypercubeTopology(3)
        res = route_packets(h, np.array([5, 2]), np.array([5, 2]))
        assert res.rounds == 0
        assert res.total_hops == 0
        assert res.delivered == 2

    def test_shape_mismatch_raises(self):
        h = HypercubeTopology(3)
        with pytest.raises(ValueError, match="equal shape"):
            route_packets(h, np.array([1, 2]), np.array([1]))

    def test_node_range_validated(self):
        h = HypercubeTopology(2)
        with pytest.raises(ValueError, match="out of range"):
            route_packets(h, np.array([4]), np.array([0]))
        with pytest.raises(ValueError, match="out of range"):
            route_packets(h, np.array([0]), np.array([-1]))

    def test_single_packet_takes_distance_rounds(self):
        h = HypercubeTopology(4)
        src, dst = np.array([0b0000]), np.array([0b1011])
        res = route_packets(h, src, dst)
        d = int(h.distance(src, dst)[0])
        assert res.rounds == d == res.total_hops == 3
        assert res.max_link_load == 1
        assert res.delivered == 1

    def test_disjoint_packets_route_in_parallel(self):
        # vertex/link-disjoint greedy paths: rounds = max distance
        h = HypercubeTopology(3)
        src = np.array([0b000, 0b110])
        dst = np.array([0b011, 0b101])
        res = route_packets(h, src, dst)
        assert res.rounds == 2
        assert res.total_hops == 4
        assert res.max_link_load == 1

    def test_link_contention_serializes_lowest_id_first(self):
        # two packets at the same node, same first hop: one waits
        h = HypercubeTopology(3)
        src = np.array([0b000, 0b000])
        dst = np.array([0b001, 0b011])
        res = route_packets(h, src, dst)
        # both need link 000->001 in round 1; packet 0 wins, packet 1
        # crosses it in round 2 and then hops once more
        assert res.rounds == 3
        assert res.total_hops == 3
        assert res.max_link_load == 2
        assert res.delivered == 2

    def test_custom_next_fn_is_used(self):
        h = HypercubeTopology(4)
        rng = np.random.default_rng(3)
        src = rng.integers(0, h.n_nodes, size=16)
        dst = rng.integers(0, h.n_nodes, size=16)

        def random_next(cur, dest):
            return h.vnext_random(cur, dest, rng)

        res = route_packets(h, src, dst, next_fn=random_next)
        assert res.delivered == 16
        # productive policy: total hops equal sum of distances
        assert res.total_hops == int(h.distance(src, dst).sum())

    def test_permutation_on_torus_delivers_everything(self):
        t = TorusTopology(4)
        rng = np.random.default_rng(9)
        perm = rng.permutation(t.n_nodes)
        src = np.arange(t.n_nodes)
        res = route_packets(t, src, perm)
        assert res.delivered == t.n_nodes
        assert res.total_hops == int(t.distance(src, perm).sum())
        assert res.rounds >= int(t.distance(src, perm).max())
        assert res.max_link_load >= 1

    def test_hops_equal_sum_of_distances_under_greedy(self):
        h = HypercubeTopology(5)
        rng = np.random.default_rng(4)
        src = rng.integers(0, h.n_nodes, size=100)
        dst = rng.integers(0, h.n_nodes, size=100)
        res = route_packets(h, src, dst)
        # greedy bit-fixing never detours: every hop fixes one bit
        assert res.total_hops == int(h.distance(src, dst).sum())
        assert res.rounds >= int(h.distance(src, dst).max())
