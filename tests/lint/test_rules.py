"""Fixture-driven positive + negative tests, one block per rule D1-D6.

Each rule gets at least one snippet it must flag and one idiomatic
snippet it must stay silent on; zone scoping is exercised by linting the
same source under different virtual ``repro/...`` paths.
"""

import pytest

from repro.lint import LintConfig, lint_source

CORE = "repro/core/_snippet.py"
GF = "repro/gf/_snippet.py"
WORKLOADS = "repro/workloads/_snippet.py"
ANALYSIS = "repro/analysis/_snippet.py"


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------------------
# D1 -- set iteration

#: module-level set literals in the fixtures would also trip D5; the
#: select isolates the rule under test
D1_ONLY = LintConfig(select=frozenset({"D1"}))


class TestD1SetIteration:
    def test_for_loop_over_set_literal_flagged(self):
        found = lint_source("for x in {1, 2, 3}:\n    print(x)\n", CORE)
        assert rules_of(found) == ["D1"]
        assert found[0].line == 1

    def test_for_loop_over_set_typed_name_flagged(self):
        src = "s: set[int] = make()\nfor x in s:\n    use(x)\n"
        assert rules_of(lint_source(src, CORE)) == ["D1"]

    def test_assignment_propagates_set_type(self):
        src = "a = {1, 2}\nb = a\nfor x in b:\n    use(x)\n"
        assert rules_of(lint_source(src, CORE, D1_ONLY)) == ["D1"]

    def test_set_operator_result_is_a_set(self):
        src = "a = {1}\nb = {2}\nxs = list(a | b)\n"
        assert rules_of(lint_source(src, CORE, D1_ONLY)) == ["D1"]

    def test_annotated_parameter_tracked(self):
        src = (
            "def f(s: set[int]) -> list[int]:\n"
            "    return [x for x in s]\n"
        )
        assert rules_of(lint_source(src, CORE)) == ["D1"]

    def test_sorted_iteration_clean(self):
        src = "s = {3, 1, 2}\nfor x in sorted(s):\n    use(x)\n"
        assert lint_source(src, CORE, D1_ONLY) == []

    def test_order_insensitive_consumers_clean(self):
        src = (
            "s = {1, 2}\n"
            "n = len(s)\n"
            "t = sum(v for v in s)\n"
            "ok = all(v > 0 for v in s)\n"
            "m = min(s)\n"
        )
        assert lint_source(src, CORE, D1_ONLY) == []

    def test_set_comprehension_over_set_clean(self):
        # building a set from a set is order-insensitive
        src = "s = {1, 2}\nt = {x + 1 for x in s}\n"
        assert lint_source(src, CORE, D1_ONLY) == []

    def test_list_comprehension_over_set_flagged(self):
        src = "s = {1, 2}\nxs = [x for x in s]\n"
        assert rules_of(lint_source(src, CORE, D1_ONLY)) == ["D1"]

    def test_outside_deterministic_zone_clean(self):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        assert lint_source(src, ANALYSIS) == []

    def test_dict_iteration_not_flagged(self):
        # dicts are insertion-ordered; only sets are hazards
        src = "d = {1: 2}\nfor k in d:\n    use(k)\n"
        assert lint_source(src, CORE, D1_ONLY) == []


# ---------------------------------------------------------------------------
# D2 -- unseeded randomness / wall clock


class TestD2UnseededRandomness:
    def test_global_random_flagged(self):
        src = "import random\nx = random.random()\n"
        assert rules_of(lint_source(src, CORE)) == ["D2"]

    def test_seeded_random_instance_clean(self):
        src = "import random\nrng = random.Random(42)\nx = rng.random()\n"
        assert lint_source(src, CORE) == []

    def test_numpy_legacy_global_flagged(self):
        src = "import numpy as np\nx = np.random.rand(4)\n"
        assert rules_of(lint_source(src, CORE)) == ["D2"]

    def test_seeded_default_rng_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert lint_source(src, CORE) == []

    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_of(lint_source(src, CORE)) == ["D2"]

    def test_wall_clock_flagged(self):
        src = "import time\nt = time.time()\n"
        assert rules_of(lint_source(src, CORE)) == ["D2"]

    def test_perf_counter_clean(self):
        # duration measurement is legal; it never feeds simulation state
        src = "import time\nt = time.perf_counter()\n"
        assert lint_source(src, CORE) == []

    def test_workloads_function_scope_relaxed(self):
        src = (
            "import random\n"
            "def plan(seed):\n"
            "    return random.random()\n"
        )
        assert lint_source(src, WORKLOADS) == []

    def test_workloads_module_level_still_flagged(self):
        src = "import random\nX = random.random()\n"
        assert rules_of(lint_source(src, WORKLOADS)) == ["D2"]

    def test_from_import_binding_flagged(self):
        src = "from random import randrange\nx = randrange(10)\n"
        assert rules_of(lint_source(src, CORE)) == ["D2"]


# ---------------------------------------------------------------------------
# D3 -- float arithmetic in field zones


class TestD3FloatArithmetic:
    def test_true_division_flagged(self):
        assert rules_of(lint_source("x = a / b\n", GF)) == ["D3"]

    def test_float_literal_flagged(self):
        assert rules_of(lint_source("x = 0.5\n", GF)) == ["D3"]

    def test_float_call_flagged(self):
        assert rules_of(lint_source("x = float(n)\n", GF)) == ["D3"]

    def test_aug_div_flagged(self):
        assert rules_of(lint_source("x /= 2\n", GF)) == ["D3"]

    def test_floor_division_clean(self):
        assert lint_source("x = a // b\n", GF) == []

    def test_outside_field_zone_clean(self):
        assert lint_source("x = a / b\n", CORE) == []

    def test_noqa_suppresses(self):
        assert lint_source("x = 1.5  # noqa: D3\n", GF) == []


# ---------------------------------------------------------------------------
# D4 -- unguarded observability emission


class TestD4UnguardedObs:
    OBS_IMPORT = "import repro.obs as _obs\n"

    def test_unguarded_chain_flagged(self):
        src = self.OBS_IMPORT + "_obs.tracer().event('x')\n"
        assert rules_of(lint_source(src, CORE)) == ["D4"]

    def test_guarded_chain_clean(self):
        src = self.OBS_IMPORT + (
            "if _obs.enabled():\n"
            "    _obs.tracer().event('x')\n"
        )
        assert lint_source(src, CORE) == []

    def test_guard_variable_recognized(self):
        src = self.OBS_IMPORT + (
            "obs_on = _obs.enabled()\n"
            "if obs_on:\n"
            "    _obs.tracer().event('x')\n"
        )
        assert lint_source(src, CORE) == []

    def test_early_return_guard_clean(self):
        src = self.OBS_IMPORT + (
            "def emit(tr):\n"
            "    if not tr.enabled:\n"
            "        return\n"
            "    tr = _obs.tracer()\n"
            "    tr.event('x')\n"
        )
        assert lint_source(src, CORE) == []

    def test_bound_tracer_name_flagged(self):
        src = self.OBS_IMPORT + (
            "def emit():\n"
            "    tr = _obs.tracer()\n"
            "    tr.event('x')\n"
        )
        assert rules_of(lint_source(src, CORE)) == ["D4"]

    def test_walrus_guard_variable_recognized(self):
        src = self.OBS_IMPORT + (
            "if (obs_on := _obs.enabled()):\n"
            "    _obs.tracer().event('x')\n"
        )
        assert lint_source(src, CORE) == []

    def test_walrus_guard_reused_later_clean(self):
        src = self.OBS_IMPORT + (
            "def emit():\n"
            "    if not (obs_on := _obs.enabled()):\n"
            "        return\n"
            "    if obs_on:\n"
            "        _obs.tracer().event('x')\n"
        )
        assert lint_source(src, CORE) == []

    def test_attribute_chain_guard_variable_recognized(self):
        src = self.OBS_IMPORT + (
            "class Core:\n"
            "    def __init__(self):\n"
            "        self._on = _obs.enabled()\n"
            "        self._tr = _obs.tracer()\n"
            "    def emit(self):\n"
            "        if self._on:\n"
            "            self._tr.event('x')\n"
        )
        assert lint_source(src, CORE) == []

    def test_attribute_bound_tracer_unguarded_flagged(self):
        src = self.OBS_IMPORT + (
            "class Core:\n"
            "    def __init__(self):\n"
            "        self._tr = _obs.tracer()\n"
            "    def emit(self):\n"
            "        self._tr.event('x')\n"
        )
        assert rules_of(lint_source(src, CORE)) == ["D4"]

    def test_walrus_bound_tracer_unguarded_flagged(self):
        src = self.OBS_IMPORT + (
            "def emit():\n"
            "    (tr := _obs.tracer()).event('x')\n"
        )
        assert rules_of(lint_source(src, CORE)) == ["D4"]

    def test_no_obs_import_no_findings(self):
        src = "tracer().event('x')\n"
        assert lint_source(src, CORE) == []

    def test_outside_zone_clean(self):
        src = self.OBS_IMPORT + "_obs.tracer().event('x')\n"
        assert lint_source(src, ANALYSIS) == []

    def test_unguarded_publish_flagged(self):
        src = self.OBS_IMPORT + "_obs.publish('mem.op', var=1)\n"
        assert rules_of(lint_source(src, CORE)) == ["D4"]

    def test_guarded_publish_clean(self):
        src = self.OBS_IMPORT + (
            "if _obs.enabled():\n"
            "    _obs.publish('mem.op', var=1)\n"
        )
        assert lint_source(src, CORE) == []

    def test_unguarded_bus_chain_flagged(self):
        src = self.OBS_IMPORT + "_obs.bus().publish('x', {})\n"
        assert rules_of(lint_source(src, CORE)) == ["D4"]

    def test_bound_bus_name_flagged(self):
        src = self.OBS_IMPORT + (
            "def emit():\n"
            "    b = _obs.bus()\n"
            "    b.publish('x', {})\n"
        )
        assert rules_of(lint_source(src, CORE)) == ["D4"]

    def test_bound_bus_name_guarded_clean(self):
        src = self.OBS_IMPORT + (
            "def emit():\n"
            "    if not _obs.enabled():\n"
            "        return\n"
            "    b = _obs.bus()\n"
            "    if b is not None:\n"
            "        b.publish('x', {})\n"
        )
        assert lint_source(src, CORE) == []

    def test_dual_guard_early_return_clean(self):
        # the mem.op/kv.op emission idiom: bail unless a tracer records
        # or a bus listens, then publish to both through obs.publish
        src = self.OBS_IMPORT + (
            "def emit():\n"
            "    tr = _obs.tracer()\n"
            "    if not tr.enabled and _obs.bus() is None:\n"
            "        return\n"
            "    _obs.publish('mem.op', var=1)\n"
        )
        assert lint_source(src, CORE) == []


class TestD4LedgerEmission:
    OBS_IMPORT = "import repro.obs as _obs\n"

    def test_unguarded_ledger_chain_flagged(self):
        src = self.OBS_IMPORT + "_obs.ledger().count('addr.computed')\n"
        assert rules_of(lint_source(src, CORE)) == ["D4"]

    def test_unguarded_bound_ledger_flagged(self):
        src = self.OBS_IMPORT + (
            "def emit():\n"
            "    led = _obs.ledger()\n"
            "    led.record_batch(op='read')\n"
        )
        assert rules_of(lint_source(src, CORE)) == ["D4"]

    def test_conditional_binding_with_none_check_clean(self):
        # the repo's idiom: a ledger bound under enabled() can only be
        # non-None while observability is on
        src = self.OBS_IMPORT + (
            "def emit():\n"
            "    led = _obs.ledger() if _obs.enabled() else None\n"
            "    if led is not None:\n"
            "        led.count('addr.computed', 4)\n"
        )
        assert lint_source(src, CORE) == []

    def test_enabled_block_binding_clean(self):
        src = self.OBS_IMPORT + (
            "def emit():\n"
            "    if _obs.enabled():\n"
            "        led = _obs.ledger()\n"
            "        if led is not None:\n"
            "            led.add_seconds('memory', 0.1)\n"
        )
        assert lint_source(src, CORE) == []

    def test_none_check_alone_suffices(self):
        src = self.OBS_IMPORT + (
            "def emit():\n"
            "    led = _obs.ledger()\n"
            "    if led is not None:\n"
            "        led.note_addressing(4, 0.1, {})\n"
        )
        assert lint_source(src, CORE) == []

    def test_ordinary_count_method_not_confused(self):
        src = self.OBS_IMPORT + (
            "def f(xs):\n"
            "    return xs.count(1)\n"
        )
        assert lint_source(src, CORE) == []


# ---------------------------------------------------------------------------
# D5 -- mutable shared state


class TestD5MutableSharedState:
    def test_mutable_default_arg_flagged(self):
        src = "def f(xs=[]):\n    return xs\n"
        assert rules_of(lint_source(src, ANALYSIS)) == ["D5"]

    def test_kwonly_mutable_default_flagged(self):
        src = "def f(*, xs={}):\n    return xs\n"
        assert rules_of(lint_source(src, ANALYSIS)) == ["D5"]

    def test_none_default_clean(self):
        src = "def f(xs=None):\n    return xs or []\n"
        assert lint_source(src, ANALYSIS) == []

    def test_module_level_empty_accumulator_flagged(self):
        src = "_cache = {}\n"
        assert rules_of(lint_source(src, ANALYSIS)) == ["D5"]

    def test_upper_case_empty_accumulator_flagged(self):
        # an empty UPPER_CASE container is an accumulator, not a table
        src = "REGISTRY = {}\n"
        assert rules_of(lint_source(src, ANALYSIS)) == ["D5"]

    def test_upper_case_populated_table_clean(self):
        src = "TABLE = {1: 'a', 2: 'b'}\n"
        assert lint_source(src, ANALYSIS) == []

    def test_dunder_all_clean(self):
        src = "__all__ = ['f']\n"
        assert lint_source(src, ANALYSIS) == []

    def test_function_local_mutable_clean(self):
        src = "def f():\n    acc = []\n    return acc\n"
        assert lint_source(src, ANALYSIS) == []


# ---------------------------------------------------------------------------
# D6 -- exception hygiene


class TestD6ExceptionHygiene:
    def test_bare_except_on_protocol_path_flagged(self):
        src = "try:\n    go()\nexcept:\n    pass\n"
        assert "D6" in rules_of(lint_source(src, CORE))

    def test_broad_except_without_reraise_flagged(self):
        src = "try:\n    go()\nexcept Exception:\n    x = 1\n"
        assert rules_of(lint_source(src, CORE)) == ["D6"]

    def test_broad_except_with_reraise_clean(self):
        src = (
            "try:\n    go()\n"
            "except Exception:\n    log()\n    raise\n"
        )
        assert lint_source(src, CORE) == []

    def test_specific_except_clean(self):
        src = "try:\n    go()\nexcept ValueError:\n    x = 1\n"
        assert lint_source(src, CORE) == []

    def test_swallowed_quorum_lost_flagged_everywhere(self):
        src = (
            "try:\n    go()\n"
            "except QuorumLostError:\n    pass\n"
        )
        found = lint_source(src, ANALYSIS)  # outside protocol zones
        assert rules_of(found) == ["D6"]
        assert "swallowed" in found[0].message

    def test_handled_quorum_lost_clean_outside_protocol(self):
        src = (
            "try:\n    go()\n"
            "except QuorumLostError:\n    report()\n"
        )
        assert lint_source(src, ANALYSIS) == []

    def test_broad_except_outside_protocol_clean(self):
        src = "try:\n    go()\nexcept Exception:\n    x = 1\n"
        assert lint_source(src, ANALYSIS) == []


# ---------------------------------------------------------------------------
# engine mechanics shared across rules


class TestEngineMechanics:
    def test_syntax_error_yields_e0(self):
        found = lint_source("def f(:\n", CORE)
        assert rules_of(found) == ["E0"]

    def test_bare_noqa_suppresses_all(self):
        src = "for x in {1, 2}:  # noqa\n    use(x)\n"
        assert lint_source(src, CORE) == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        src = "for x in {1, 2}:  # noqa: D3\n    use(x)\n"
        assert rules_of(lint_source(src, CORE)) == ["D1"]

    def test_select_limits_rules(self):
        src = "import random\nx = random.random()\nfor y in {1}:\n    use(y)\n"
        cfg = LintConfig(select=frozenset({"D1"}))
        assert rules_of(lint_source(src, CORE, cfg)) == ["D1"]

    def test_ignore_drops_rules(self):
        src = "import random\nx = random.random()\nfor y in {1}:\n    use(y)\n"
        cfg = LintConfig(ignore=frozenset({"D1"}))
        assert rules_of(lint_source(src, CORE, cfg)) == ["D2"]

    def test_zone_override_rescopes_rule(self):
        cfg = LintConfig(zone_overrides={"D3": ("repro/analysis",)})
        assert rules_of(lint_source("x = 0.5\n", ANALYSIS, cfg)) == ["D3"]
        assert lint_source("x = 0.5\n", GF, cfg) == []

    def test_findings_sorted_and_fingerprinted(self):
        src = "x = 0.5\ny = a / b\n"
        found = lint_source(src, GF)
        assert [f.line for f in found] == [1, 2]
        f = found[0]
        assert f.fingerprint == ("D3", "repro/gf/_snippet.py", "x = 0.5")
        assert f.describe().startswith("repro/gf/_snippet.py:1:")
