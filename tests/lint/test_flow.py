"""Flow tier: the project model, the seeded F1-F4 fixtures, and the
engine/CLI/baseline plumbing that makes ``--tier`` honest.

The eight trees under ``fixtures/flow/`` pin the acceptance criterion:
one seeded violation per interprocedural rule (each must fire exactly
once) and one idiomatic negative per rule (each must stay silent).
"""

import json
import os
import textwrap

import pytest

from repro.lint.cli import main
from repro.lint.config import LintConfig
from repro.lint.flow import FlowEngine, all_flow_rules
from repro.lint.flow.project import Project

HERE = os.path.dirname(os.path.abspath(__file__))
FLOW = os.path.join(HERE, "fixtures", "flow")


def tree(case: str) -> str:
    return os.path.join(FLOW, case)


def run_flow(case: str, **cfg):
    return FlowEngine(LintConfig(**cfg)).run([tree(case)])


def write_tree(root, files: dict) -> str:
    for rel, src in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src))
    return str(root)


# ---------------------------------------------------------------------------
# seeded fixtures: one positive + one negative per rule


class TestSeededFlowFixtures:
    @pytest.mark.parametrize("rule,case", [
        ("F1", "f1_pos"),
        ("F2", "f2_pos"),
        ("F3", "f3_pos"),
        ("F4", "f4_pos"),
    ])
    def test_positive_fixture_fires_exactly_once(self, rule, case):
        found = run_flow(case)
        assert [f.rule for f in found] == [rule], found

    @pytest.mark.parametrize("case", [
        "f1_neg", "f2_neg", "f3_neg", "f4_neg",
    ])
    def test_negative_fixture_is_clean(self, case):
        assert run_flow(case) == []

    def test_f1_message_names_guard_await_and_fix(self):
        (f,) = run_flow("f1_pos")
        assert f.path == "repro/service/driver.py"
        assert "'self._task'" in f.message
        assert "re-validate" in f.message

    def test_f2_witness_is_the_caller_chain(self):
        (f,) = run_flow("f2_pos")
        assert f.path == "repro/workloads/draws.py"
        assert "repro/core/step.py::advance" in f.message
        assert "->" in f.message

    def test_f3_message_carries_raise_site_and_entry_edge(self):
        (f,) = run_flow("f3_pos")
        assert f.path == "repro/service/api.py"
        assert "repro/kvstore/quorum.py:10" in f.message
        assert "read_quorum()" in f.message
        assert "Raises QuorumLostError" in f.message

    def test_f4_message_names_both_roots(self):
        (f,) = run_flow("f4_pos")
        assert f.path == "repro/core/common.py"
        assert "run_phase_scalar" in f.message
        assert "_run_phase" in f.message
        assert "division" in f.message


# ---------------------------------------------------------------------------
# the project model


class TestProjectModel:
    def _project(self, tmp_path, files):
        root = write_tree(tmp_path, files)
        project, errors = Project.build([root])
        assert errors == []
        return project

    def test_qualified_names_and_symbols(self, tmp_path):
        p = self._project(tmp_path, {
            "repro/core/a.py": """\
                def top():
                    return 1

                class Box:
                    def get(self):
                        return top()
                """,
        })
        assert "repro/core/a.py::top" in p.functions
        assert "repro/core/a.py::Box.get" in p.functions
        assert "repro/core/a.py::Box" in p.classes

    def test_self_call_resolves_to_own_method(self, tmp_path):
        p = self._project(tmp_path, {
            "repro/core/a.py": """\
                class Box:
                    def get(self):
                        return self.helper()

                    def helper(self):
                        return 1
                """,
        })
        (site,) = p.functions["repro/core/a.py::Box.get"].calls
        assert site.callee == "repro/core/a.py::Box.helper"

    def test_cross_module_from_import_resolves(self, tmp_path):
        p = self._project(tmp_path, {
            "repro/core/a.py": "def helper():\n    return 1\n",
            "repro/core/b.py": (
                "from repro.core.a import helper\n"
                "def use():\n    return helper()\n"
            ),
        })
        (site,) = p.functions["repro/core/b.py::use"].calls
        assert site.callee == "repro/core/a.py::helper"
        assert "repro/core/a.py" in p.module_deps["repro/core/b.py"]

    def test_typed_local_resolves_method(self, tmp_path):
        p = self._project(tmp_path, {
            "repro/core/a.py": """\
                class Store:
                    def get(self):
                        return 1

                def use():
                    s = Store()
                    return s.get()
                """,
        })
        calls = p.functions["repro/core/a.py::use"].calls
        callees = {c.callee for c in calls}
        assert "repro/core/a.py::Store.get" in callees

    def test_nested_function_calls_attributed_to_enclosing(self, tmp_path):
        # a closure's body runs "inside" the enclosing function for
        # reachability purposes (the F3 fix depended on this)
        p = self._project(tmp_path, {
            "repro/core/a.py": """\
                def helper():
                    return 1

                def outer():
                    def inner():
                        return helper()
                    return inner()
                """,
        })
        callees = {
            c.callee for c in p.functions["repro/core/a.py::outer"].calls
        }
        assert "repro/core/a.py::helper" in callees

    def test_reachability_and_caller_chain(self, tmp_path):
        p = self._project(tmp_path, {
            "repro/core/a.py": """\
                def leaf():
                    return 1

                def mid():
                    return leaf()

                def root():
                    return mid()
                """,
        })
        reach = p.reachable_from(["repro/core/a.py::root"])
        assert "repro/core/a.py::leaf" in reach
        chain = p.shortest_caller_chain(
            "repro/core/a.py::leaf",
            lambda q: q.endswith("::root"),
        )
        assert chain is not None
        assert chain[0].endswith("::root") and chain[-1].endswith("::leaf")

    def test_exception_ancestors_walk_project_classes(self, tmp_path):
        p = self._project(tmp_path, {
            "repro/core/a.py": """\
                class Base(RuntimeError):
                    pass

                class Leaf(Base):
                    pass
                """,
        })
        assert "Base" in p.exception_ancestors("Leaf")
        assert "RuntimeError" in p.exception_ancestors("Leaf")

    def test_graph_export_schema(self, tmp_path):
        p = self._project(tmp_path, {
            "repro/core/a.py": "def helper():\n    return 1\n",
            "repro/core/b.py": (
                "from repro.core.a import helper\n"
                "def use():\n    return helper()\n"
            ),
        })
        out = tmp_path / "graph.json"
        p.write_graph(str(out))
        data = json.loads(out.read_text())
        assert data["schema"] == 1
        by_q = {f["qname"]: f for f in data["functions"]}
        assert by_q["repro/core/b.py::use"]["calls"] == [
            "repro/core/a.py::helper"
        ]
        assert data["modules"]["repro/core/b.py"] == ["repro/core/a.py"]

    def test_syntax_error_surfaces_as_e0(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/core/bad.py": "def broken(:\n",
        })
        project, errors = Project.build([root])
        assert [e.rule for e in errors] == ["E0"]
        assert project.functions == {}


# ---------------------------------------------------------------------------
# engine plumbing


class TestFlowEngine:
    def test_registry_has_all_four_rules(self):
        assert {r.id for r in all_flow_rules()} == {"F1", "F2", "F3", "F4"}
        assert all(r.tier == "flow" for r in all_flow_rules())

    def test_noqa_suppresses_flow_finding(self, tmp_path):
        src = (tree("f1_pos") + "/repro/service/driver.py")
        hazard = open(src).read().replace(
            "self._task = None  # F1",
            "self._task = None  # noqa: F1 -- F1",
        )
        root = write_tree(tmp_path, {"repro/service/driver.py": hazard})
        assert FlowEngine(LintConfig()).run([root]) == []

    def test_select_and_ignore_scope_the_run(self):
        assert run_flow("f1_pos", select=frozenset({"F2"})) == []
        assert run_flow("f1_pos", ignore=frozenset({"F1"})) == []
        eng = FlowEngine(LintConfig(select=frozenset({"F2"})))
        assert [r.id for r in eng.active_rules()] == ["F2"]

    def test_parity_roots_are_configurable(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/core/x.py": """\
                from repro.core.y import shared

                def alpha():
                    return shared()

                def beta():
                    return shared()
                """,
            "repro/core/y.py": (
                "def shared():\n    return 1 / 3\n"
            ),
        })
        # default roots absent in this tree: F4 has no surface
        assert FlowEngine(LintConfig()).run([root]) == []
        cfg = LintConfig(parity_roots=(
            "repro/core/x.py::alpha", "repro/core/x.py::beta",
        ))
        found = FlowEngine(cfg).run([root])
        assert [f.rule for f in found] == ["F4"]
        assert found[0].path == "repro/core/y.py"


# ---------------------------------------------------------------------------
# CLI integration


class TestFlowCLI:
    def test_tier_flow_fails_on_seeded_tree(self, capsys):
        assert main(["--no-baseline", "--tier", "flow", tree("f1_pos")]) == 1
        assert "F1" in capsys.readouterr().out

    def test_tier_file_ignores_flow_violation(self, capsys):
        assert main(["--no-baseline", "--tier", "file", tree("f1_pos")]) == 0

    def test_tier_all_reports_both_tiers(self, tmp_path, capsys):
        root = write_tree(tmp_path, {
            # D1 (file tier) + the F1 fixture (flow tier) in one tree
            "repro/service/d.py": open(
                tree("f1_pos") + "/repro/service/driver.py"
            ).read(),
            "repro/core/s.py": "for x in {1, 2}:\n    print(x)\n",
        })
        assert main(["--no-baseline", "--format", "json", root]) == 1
        data = json.loads(capsys.readouterr().out)
        assert set(data["counts"]) == {"D1", "F1"}
        fams = data["families"]
        assert fams["D"]["new"] == 1 and fams["F"]["new"] == 1

    def test_parse_error_not_duplicated_across_tiers(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"repro/core/bad.py": "def broken(:\n"})
        assert main(["--no-baseline", "--format", "json", root]) == 1
        data = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in data["new"]] == ["E0"]

    def test_graph_out_writes_call_graph(self, tmp_path, capsys):
        out = tmp_path / "graph.json"
        code = main([
            "--no-baseline", "--tier", "flow",
            "--graph-out", str(out), tree("f3_neg"),
        ])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["schema"] == 1
        assert any(
            f["qname"].endswith("::serve_get") for f in data["functions"]
        )

    def test_graph_out_requires_flow_tier(self, tmp_path, capsys):
        code = main([
            "--no-baseline", "--tier", "file",
            "--graph-out", str(tmp_path / "g.json"), tree("f1_pos"),
        ])
        assert code == 2
        assert "flow tier" in capsys.readouterr().err

    def test_flow_rule_ids_known_to_select(self, capsys):
        code = main([
            "--no-baseline", "--select", "F3", tree("f3_pos"),
        ])
        assert code == 1
        assert "F3" in capsys.readouterr().out

    def test_list_rules_spans_both_tiers(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "F1" in out and "D1" in out and "flow" in out

    def test_partial_tier_leaves_other_tiers_baseline_alone(
        self, tmp_path, capsys
    ):
        """A --tier file run must not report F-rule entries stale."""
        baseline = tmp_path / "b.json"
        (f,) = run_flow("f1_pos")
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "F1", "path": f.path, "snippet": f.snippet,
                "reason": "seeded fixture, grandfathered for this test",
            }],
        }))
        # file tier: F1 never ran; the entry must not go stale
        code = main([
            "--tier", "file", "--baseline", str(baseline), tree("f1_pos"),
        ])
        assert code == 0, capsys.readouterr().out
        # flow tier: the entry matches and grandfather applies
        code = main([
            "--tier", "flow", "--baseline", str(baseline), tree("f1_pos"),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "1 baselined" in out
