"""Engine edge cases: noqa on multi-line statements, fingerprint
stability across line drift, and parse errors inside real packages.

These pin behaviours the rule tests take for granted: suppression is
*per physical line* (the line a finding anchors to), baseline identity
is line-number-free, and one broken file never hides its siblings.
"""

from repro.lint import LintConfig, lint_source
from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.engine import LintEngine

CORE = "repro/core/_snippet.py"

D2_ONLY = LintConfig(select=frozenset({"D2"}))

#: a D2 violation whose call spans three physical lines
MULTILINE = (
    "import random\n"
    "x = random.random(\n"
    "    # spread across lines\n"
    ")\n"
)


class TestNoqaOnMultilineStatements:
    def test_multiline_statement_flagged_at_its_first_line(self):
        found = lint_source(MULTILINE, CORE, D2_ONLY)
        assert [f.rule for f in found] == ["D2"]
        assert found[0].line == 2

    def test_noqa_on_anchor_line_suppresses(self):
        src = MULTILINE.replace(
            "x = random.random(", "x = random.random(  # noqa: D2"
        )
        assert lint_source(src, CORE, D2_ONLY) == []

    def test_noqa_on_continuation_line_does_not_suppress(self):
        # suppression is per physical line: the comment must sit on the
        # line the finding anchors to, not somewhere inside the statement
        src = MULTILINE.replace(
            "    # spread across lines", "    # noqa: D2"
        )
        found = lint_source(src, CORE, D2_ONLY)
        assert [f.rule for f in found] == ["D2"]

    def test_noqa_inside_string_literal_is_inert(self):
        src = 'import random\nx = random.random()\ny = "# noqa: D2"\n'
        found = lint_source(src, CORE, D2_ONLY)
        assert [f.rule for f in found] == ["D2"]

    def test_bare_noqa_silences_every_rule_on_the_line(self):
        src = "import random\nx = random.random()  # noqa\n"
        assert lint_source(src, CORE, D2_ONLY) == []


class TestFingerprintStability:
    def test_fingerprint_survives_line_drift(self):
        before = "import random\nx = random.random()\n"
        after = (
            "import random\n"
            "\n"
            "PAD = 1  # unrelated edit above the finding\n"
            "\n"
            "x = random.random()\n"
        )
        (f1,) = lint_source(before, CORE, D2_ONLY)
        (f2,) = lint_source(after, CORE, D2_ONLY)
        assert f1.line != f2.line
        assert f1.fingerprint == f2.fingerprint

    def test_baseline_matches_across_drift(self):
        (f,) = lint_source(
            "import random\nx = random.random()\n", CORE, D2_ONLY
        )
        base = Baseline([BaselineEntry(
            rule=f.rule, path=f.path, snippet=f.snippet,
            reason="drift test entry",
        )])
        drifted = lint_source(
            "import random\n\n\nx = random.random()\n", CORE, D2_ONLY
        )
        res = base.apply(drifted)
        assert res.new == [] and res.stale == []
        assert len(res.baselined) == 1

    def test_changed_snippet_breaks_the_match(self):
        (f,) = lint_source(
            "import random\nx = random.random()\n", CORE, D2_ONLY
        )
        base = Baseline([BaselineEntry(
            rule=f.rule, path=f.path, snippet=f.snippet,
            reason="drift test entry",
        )])
        edited = lint_source(
            "import random\ny = random.random()\n", CORE, D2_ONLY
        )
        res = base.apply(edited)
        assert len(res.new) == 1  # the edited line is a new finding
        assert len(res.stale) == 1  # and the old entry went stale


class TestParseErrorsInPackages:
    def _pkg(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "__main__.py").write_text(
            "import random\nx = random.random()\n"
        )
        (pkg / "broken.py").write_text("def nope(:\n")
        return tmp_path / "repro"

    def test_e0_reported_once_siblings_still_scanned(self, tmp_path):
        root = self._pkg(tmp_path)
        found = LintEngine(D2_ONLY).run([str(root)])
        by_rule = {}
        for f in found:
            by_rule.setdefault(f.rule, []).append(f)
        # the broken file yields exactly one E0...
        assert [f.path for f in by_rule["E0"]] == ["repro/core/broken.py"]
        assert "does not parse" in by_rule["E0"][0].message
        # ...and __main__.py was still parsed and linted
        assert [f.path for f in by_rule["D2"]] == ["repro/core/__main__.py"]

    def test_e0_carries_the_syntax_error_location(self, tmp_path):
        root = self._pkg(tmp_path)
        (e0,) = [
            f for f in LintEngine(D2_ONLY).run([str(root)])
            if f.rule == "E0"
        ]
        assert e0.line == 1 and e0.col > 0
