"""Baseline semantics: round-trip, justification enforcement, staleness."""

import json

import pytest

from repro.lint import Baseline, BaselineEntry, lint_source
from repro.lint.baseline import PLACEHOLDER_REASON, find_default_baseline

GF = "repro/gf/_snippet.py"


def findings_for(src: str, path: str = GF):
    return lint_source(src, path)


class TestApply:
    def test_matching_finding_is_baselined(self):
        found = findings_for("x = 0.5\n")
        base = Baseline([BaselineEntry(
            rule="D3", path=GF, snippet="x = 0.5", reason="test table",
        )])
        res = base.apply(found)
        assert res.new == [] and len(res.baselined) == 1 and res.stale == []

    def test_unmatched_finding_is_new(self):
        found = findings_for("x = 0.5\n")
        res = Baseline().apply(found)
        assert len(res.new) == 1 and res.baselined == []

    def test_fingerprint_ignores_line_numbers(self):
        # the same snippet moved down two lines still matches
        found = findings_for("a = 1\nb = 2\nx = 0.5\n")
        base = Baseline([BaselineEntry(
            rule="D3", path=GF, snippet="x = 0.5", reason="test table",
        )])
        res = base.apply(found)
        assert res.new == [] and len(res.baselined) == 1

    def test_stale_entry_reported(self):
        base = Baseline([BaselineEntry(
            rule="D3", path=GF, snippet="gone = 0.5", reason="was removed",
        )])
        res = base.apply(findings_for("y = 1\n"))
        assert res.stale == base.entries

    def test_count_budget_caps_matches(self):
        # two identical snippets, budget of one: second is new
        found = findings_for("x = 0.5\nif True:\n    x = 0.5\n")
        assert len(found) == 2
        base = Baseline([BaselineEntry(
            rule="D3", path=GF, snippet="x = 0.5", reason="one only",
        )])
        res = base.apply(found)
        assert len(res.baselined) == 1 and len(res.new) == 1

    def test_count_two_covers_both(self):
        found = findings_for("x = 0.5\nif True:\n    x = 0.5\n")
        base = Baseline([BaselineEntry(
            rule="D3", path=GF, snippet="x = 0.5", reason="both", count=2,
        )])
        res = base.apply(found)
        assert len(res.baselined) == 2 and res.new == [] and res.stale == []


class TestLoadWrite:
    def test_round_trip(self, tmp_path):
        found = findings_for("x = 0.5\n")
        base = Baseline.from_findings(found)
        base.entries[0].reason = "justified for the round-trip test"
        p = tmp_path / ".lint-baseline.json"
        base.write(str(p))
        loaded = Baseline.load(str(p))
        assert [e.fingerprint for e in loaded.entries] == [
            e.fingerprint for e in base.entries
        ]
        assert loaded.apply(found).new == []

    def test_placeholder_reason_rejected(self, tmp_path):
        base = Baseline.from_findings(findings_for("x = 0.5\n"))
        assert base.entries[0].reason == PLACEHOLDER_REASON
        p = tmp_path / ".lint-baseline.json"
        base.write(str(p))
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(str(p))

    def test_empty_reason_rejected(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "D3", "path": GF, "snippet": "x = 0.5", "reason": "  ",
            }],
        }))
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(str(p))

    def test_missing_field_rejected(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "D3", "path": GF, "reason": "r"}],
        }))
        with pytest.raises(ValueError, match="missing fields"):
            Baseline.load(str(p))

    def test_unsupported_version_rejected(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="unsupported"):
            Baseline.load(str(p))

    def test_from_findings_preserves_prior_reasons(self):
        found = findings_for("x = 0.5\n")
        prior = Baseline([BaselineEntry(
            rule="D3", path=GF, snippet="x = 0.5", reason="kept reason",
        )])
        regenerated = Baseline.from_findings(found, prior)
        assert regenerated.entries[0].reason == "kept reason"


class TestDiscovery:
    def test_find_default_baseline_walks_up(self, tmp_path):
        (tmp_path / ".lint-baseline.json").write_text("{}")
        nested = tmp_path / "src" / "repro"
        nested.mkdir(parents=True)
        assert find_default_baseline([str(nested)]) == str(
            tmp_path / ".lint-baseline.json"
        )

    def test_find_default_baseline_none(self, tmp_path):
        nested = tmp_path / "deep" / "er"
        nested.mkdir(parents=True)
        # no baseline anywhere above tmp_path (tmpdirs live outside the repo)
        found = find_default_baseline([str(nested)])
        assert found is None or not found.startswith(str(tmp_path))
