"""CLI exit-code contract, output formats, and the committed-tree self-check.

The six seeded violation fixtures under ``fixtures/violations/repro/``
pin the acceptance criterion: ``repro lint`` must exit non-zero on each
of them, one per rule D1-D6.
"""

import json
import os

import pytest

from repro.lint.cli import main

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
VIOLATIONS = os.path.join(HERE, "fixtures", "violations", "repro")

SEEDED = {
    "D1": os.path.join(VIOLATIONS, "core", "d1_set_iteration.py"),
    "D2": os.path.join(VIOLATIONS, "core", "d2_unseeded_random.py"),
    "D3": os.path.join(VIOLATIONS, "gf", "d3_float_division.py"),
    "D4": os.path.join(VIOLATIONS, "kvstore", "d4_unguarded_obs.py"),
    "D5": os.path.join(VIOLATIONS, "analysis", "d5_mutable_default.py"),
    "D6": os.path.join(VIOLATIONS, "core", "d6_swallowed_quorum.py"),
}


class TestSeededViolations:
    @pytest.mark.parametrize("rule", sorted(SEEDED))
    def test_each_seeded_fixture_fails(self, rule, capsys):
        code = main(["--no-baseline", SEEDED[rule]])
        out = capsys.readouterr().out
        assert code == 1
        assert rule in out and "FAIL" in out

    def test_whole_fixture_tree_reports_every_rule(self, capsys):
        code = main(["--no-baseline", "--format", "json", VIOLATIONS])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert set(data["counts"]) >= set(SEEDED)


class TestSelfCheck:
    def test_committed_tree_is_clean(self, capsys):
        """Acceptance criterion: the shipped source lints clean against
        the committed baseline (exit 0, no new findings, no stale)."""
        code = main([
            "--baseline", os.path.join(REPO, ".lint-baseline.json"),
            os.path.join(REPO, "src", "repro"),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 new finding(s)" in out and "0 stale" in out

    def test_committed_baseline_entries_all_justified(self):
        with open(os.path.join(REPO, ".lint-baseline.json")) as fh:
            data = json.load(fh)
        assert data["entries"], "baseline unexpectedly empty"
        for entry in data["entries"]:
            assert len(entry["reason"].strip()) > 10, entry


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        p = tmp_path / "clean.py"
        p.write_text("x = 1\n")
        assert main(["--no-baseline", str(p)]) == 0

    def test_unknown_rule_id_is_usage_error(self, capsys):
        assert main(["--select", "D99", SEEDED["D1"]]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main(["--no-baseline", str(tmp_path / "nope")]) == 2

    def test_unjustified_baseline_is_usage_error(self, tmp_path, capsys):
        b = tmp_path / "b.json"
        b.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "D1", "path": "repro/core/x.py",
                "snippet": "s", "reason": "TODO: justify this exception",
            }],
        }))
        code = main(["--baseline", str(b), SEEDED["D1"]])
        assert code == 2
        assert "justification" in capsys.readouterr().err

    def test_stale_baseline_entry_fails(self, tmp_path, capsys):
        p = tmp_path / "clean.py"
        p.write_text("x = 1\n")
        b = tmp_path / "b.json"
        b.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "D1", "path": "clean.py",
                "snippet": "gone()", "reason": "covered a removed loop",
            }],
        }))
        code = main(["--baseline", str(b), str(p)])
        out = capsys.readouterr().out
        assert code == 1
        assert "stale" in out

    def test_select_and_ignore_filter_rules(self, capsys):
        assert main(["--no-baseline", "--select", "D3", SEEDED["D1"]]) == 0
        capsys.readouterr()
        assert main(["--no-baseline", "--ignore", "D1", SEEDED["D1"]]) == 0


class TestFormatsAndTools:
    def test_json_schema_shape(self, capsys):
        code = main(["--no-baseline", "--format", "json", SEEDED["D3"]])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == 1 and data["ok"] is False
        assert data["counts"]["D3"]["new"] >= 1
        (finding,) = [f for f in data["new"] if f["rule"] == "D3"]
        assert finding["path"].startswith("repro/gf/")
        assert set(data["rules"]) >= {"D1", "D2", "D3", "D4", "D5", "D6",
                              "F1", "F2", "F3", "F4"}

    def test_markdown_format(self, capsys):
        code = main(["--no-baseline", "--format", "md", SEEDED["D3"]])
        assert code == 1
        out = capsys.readouterr().out
        assert out.startswith("# Determinism lint report")
        assert "| D3 |" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("D1", "D2", "D3", "D4", "D5", "D6"):
            assert rule in out

    def test_write_baseline_then_justify_then_clean(self, tmp_path, capsys):
        src = tmp_path / "repro" / "gf"
        src.mkdir(parents=True)
        f = src / "mod.py"
        f.write_text("x = 0.5\n")
        b = tmp_path / "b.json"
        assert main(["--baseline", str(b), "--write-baseline", str(f)]) == 0
        capsys.readouterr()
        # placeholder reasons must block the very next run
        assert main(["--baseline", str(b), str(f)]) == 2
        capsys.readouterr()
        data = json.loads(b.read_text())
        for e in data["entries"]:
            e["reason"] = "intentional float for this test"
        b.write_text(json.dumps(data))
        assert main(["--baseline", str(b), str(f)]) == 0

    def test_lint_report_tool(self, tmp_path, capsys):
        import subprocess
        import sys

        json_path = tmp_path / "lint.json"
        code = main(["--no-baseline", "--format", "json", VIOLATIONS])
        assert code == 1
        json_path.write_text(capsys.readouterr().out)
        out_md = tmp_path / "report.md"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        proc = subprocess.run(
            [sys.executable, os.path.join(REPO, "tools", "lint_report.py"),
             str(json_path), "-o", str(out_md)],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        text = out_md.read_text()
        assert "# Determinism lint report" in text
        assert "D1" in text
