"""Seeded D3 violation: float round-trip in field arithmetic."""


def half_code(code: int) -> int:
    return int(code / 2)  # true division loses exactness above 2**53
