"""Seeded D2 violation: implicit global RNG in protocol code."""

import random


def arbitrate(n: int) -> int:
    return random.randrange(n)  # unseeded draw: replay diverges
