"""Seeded D1 violation: unordered set walk in a deterministic zone."""


def schedule(modules: set[int]) -> list[int]:
    order = []
    for m in modules:  # arbitrary hash order -> nondeterministic schedule
        order.append(m)
    return order
