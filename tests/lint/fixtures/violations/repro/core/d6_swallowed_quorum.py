"""Seeded D6 violation: a lost quorum absorbed into a default answer."""

from repro.faults.report import QuorumLostError


def read_or_zero(store: object, key: int) -> int:
    try:
        return store.read(key)
    except QuorumLostError:
        pass
    return 0
