"""Seeded D5 violation: mutable default argument aliases across calls."""


def collect(x: int, acc: list = []) -> list:
    acc.append(x)
    return acc
