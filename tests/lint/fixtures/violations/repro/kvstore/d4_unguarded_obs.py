"""Seeded D4 violation: trace emission outside the enabled() guard."""

import repro.obs as _obs


def touch(key: str) -> None:
    _obs.tracer().event("kv.touch", key=key)  # pays tracer cost always
