"""F4 positive, shared surface: both roots reach this float division."""


def mix(v):
    return v / 3  # F4: float result on the dual-engine surface
