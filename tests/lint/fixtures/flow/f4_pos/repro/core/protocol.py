"""F4 positive, vector root (path matches the default parity root)."""

from repro.core.common import mix


def _run_phase(vals):
    return mix(vals)
