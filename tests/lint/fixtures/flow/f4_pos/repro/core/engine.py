"""F4 positive, scalar root (path matches the default parity root)."""

from repro.core.common import mix


def run_phase_scalar(vals):
    return [mix(v) for v in vals]
