"""F2 positive, source side: legal unseeded draw in a workload zone."""

import random


def draw_latency():
    return random.random()
