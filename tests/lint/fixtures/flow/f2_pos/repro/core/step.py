"""F2 positive, sink side: a deterministic-zone caller launders the
randomness through the call edge."""

from repro.workloads.draws import draw_latency


def advance(state):
    return state + draw_latency()
