"""Seeded F1 violation: guard tested before an await, acted on after.

The classic stop() TOCTOU -- ``self._task`` is proven non-None, the
coroutine suspends, and the stale proof is then used for a write.
"""


class Driver:
    def __init__(self):
        self._task = None
        self._closed = False

    async def stop(self):
        if self._task is None:
            return
        self._closed = True
        await self._task
        self._task = None  # F1: no re-validation across the suspension
