"""F3 negative boundaries: every escape path is handled (directly or
through the exception hierarchy), mapped, or declared."""

from repro.kvstore.quorum import QuorumLostError, read_quorum


def serve_get(n):
    """Read one value, mapping loss to the sentinel."""
    try:
        return read_quorum(n)
    except QuorumLostError:
        return -1  # the STATUS_LOST mapping


def serve_count(n):
    """Catches the signal's declared ancestor (RuntimeError)."""
    try:
        return read_quorum(n)
    except RuntimeError:
        return 0


def serve_scan(n):
    """Raw read.

    Raises QuorumLostError when the shard is down; callers own the
    retry policy.
    """
    return read_quorum(n)


def _probe(n):
    # private helpers are not boundaries
    return read_quorum(n)
