"""F3 negative, raise side: identical raiser to the positive tree."""


class QuorumLostError(RuntimeError):
    """A shard variable lost its copy majority."""


def read_quorum(n):
    if n <= 0:
        raise QuorumLostError("no quorum")
    return n
