"""F1 negative: the claim-local + re-validate pattern F1 must accept."""


class Driver:
    def __init__(self):
        self._task = None
        self._closed = False

    async def stop(self):
        task = self._task
        if task is None:
            return
        self._closed = True
        await task
        if self._task is not task:
            return  # someone else finished the teardown
        self._task = None

    async def write_before_await_is_atomic(self):
        if self._task is None:
            self._task = object()
        await noop()


async def noop():
    return None
