"""F3 positive, raise side: a tracked loss signal with one raise site."""


class QuorumLostError(RuntimeError):
    """A shard variable lost its copy majority."""


def read_quorum(n):
    if n <= 0:
        raise QuorumLostError("no quorum")
    return n
