"""F3 positive, boundary side: a public service function leaks the
loss signal -- unhandled, unmapped, undeclared."""

from repro.kvstore.quorum import read_quorum


def serve_get(n):
    """Read one value from the quorum."""
    return read_quorum(n)
