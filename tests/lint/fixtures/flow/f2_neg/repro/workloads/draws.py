"""F2 negative: the same draw, never reachable from a deterministic
zone -- workload code calling workload code is D2-legal and F2-clean."""

import random


def draw_latency():
    return random.random()
