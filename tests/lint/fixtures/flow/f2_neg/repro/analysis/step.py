"""F2 negative caller: analysis code is outside every deterministic
zone, so the taint never crosses into protocol state."""

from repro.workloads.draws import draw_latency


def summarize(state):
    return state + draw_latency()
