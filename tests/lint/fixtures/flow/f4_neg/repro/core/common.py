"""F4 negative, shared surface: integer-exact where both roots reach;
the float math lives on a single-root branch, which is out of scope."""


def mix(v):
    return (v * 7 + 3) // 2


def scalar_only(v):
    return v / 3  # only run_phase_scalar reaches this: not flagged
