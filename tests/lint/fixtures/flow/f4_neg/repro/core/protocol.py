"""F4 negative, vector root: reaches only the exact-integer helper."""

from repro.core.common import mix


def _run_phase(vals):
    return mix(vals)
