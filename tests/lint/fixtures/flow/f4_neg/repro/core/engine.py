"""F4 negative, scalar root: shared surface is exact-integer; the
float helper is reachable from this root only."""

from repro.core.common import mix, scalar_only


def run_phase_scalar(vals):
    return [mix(v) + scalar_only(v) for v in vals]
