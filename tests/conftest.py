"""Shared fixtures and Hypothesis profiles.

Graph/field construction builds lookup tables; sharing instances across
tests keeps the suite fast without coupling tests (all objects are
effectively immutable after construction).

Hypothesis is configured centrally here (individual tests only override
``max_examples``-style knobs): the ``ci`` profile is derandomized so CI
failures reproduce exactly, ``dev`` keeps random exploration for local
runs.  Both drop the wall-clock deadline -- first-call JIT/table-build
costs make per-example timing meaningless in this codebase.  Select
explicitly with ``HYPOTHESIS_PROFILE=dev``; CI is auto-detected.
"""

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.core.graph import MemoryGraph
from repro.core.scheme import PPScheme

settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(
    os.environ.get(
        "HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "dev"
    )
)


@pytest.fixture(scope="session")
def graph_2_3() -> MemoryGraph:
    """Smallest paper instance: q=2, n=3 (N=63, M=84); enumerable."""
    return MemoryGraph(2, 3)


@pytest.fixture(scope="session")
def graph_2_5() -> MemoryGraph:
    """Mid-size instance: q=2, n=5 (N=1023, M=5456); enumerable."""
    return MemoryGraph(2, 5)


@pytest.fixture(scope="session")
def graph_4_3() -> MemoryGraph:
    """Cross-q instance: q=4, n=3 (N=1365, M=4368, 5 copies)."""
    return MemoryGraph(4, 3)


@pytest.fixture(scope="session")
def graph_2_6() -> MemoryGraph:
    """Composite-n instance for tight sets: q=2, n=6."""
    return MemoryGraph(2, 6)


@pytest.fixture(scope="session")
def scheme_2_3() -> PPScheme:
    """Scheme facade over the smallest instance."""
    return PPScheme(q=2, n=3)


@pytest.fixture(scope="session")
def scheme_2_5() -> PPScheme:
    """Scheme facade over the mid-size instance."""
    return PPScheme(q=2, n=5)


@pytest.fixture(scope="session")
def scheme_4_3() -> PPScheme:
    """Scheme facade with enumerated addressing (q=4)."""
    return PPScheme(q=4, n=3)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(12345)
