"""Tests for the group-theory utilities, and definition-level
re-validation of the subgroup structure through them."""

import pytest

from repro.gf.gf2m import GF2m
from repro.gf.subfield import FieldEmbedding
from repro.pgl.group_utils import (
    centralizes,
    conjugate,
    element_order,
    generate_subgroup,
    is_subgroup,
    left_cosets,
)
from repro.pgl.matrix import enumerate_pgl2, pgl2_identity, pgl2_order
from repro.pgl.subgroups import SubgroupH0, SubgroupHn1


@pytest.fixture(scope="module")
def F8():
    return GF2m.get(3)


class TestElementOrder:
    def test_identity(self, F8):
        assert element_order(F8, pgl2_identity()) == 1

    def test_involution(self, F8):
        # (0,1;1,0) swaps coordinates: order 2
        assert element_order(F8, (0, 1, 1, 0)) == 2

    def test_orders_divide_group_order(self, F8):
        order = pgl2_order(8)  # 504
        for m in list(enumerate_pgl2(F8))[::17]:
            assert order % element_order(F8, m) == 0


class TestGenerateSubgroup:
    def test_trivial(self, F8):
        assert generate_subgroup(F8, []) == {pgl2_identity()}

    def test_cyclic(self, F8):
        m = (0, 1, 1, 0)
        sub = generate_subgroup(F8, [m])
        assert sub == {pgl2_identity(), m}

    def test_whole_group_from_two_generators(self, F8):
        # the affine map x -> gamma*x + 1 and inversion x -> 1/x
        # generate all of PGL2(8) (q even: PSL2 = PGL2, order 504)
        a = (2, 1, 0, 1)
        b = (0, 1, 1, 0)
        g = generate_subgroup(F8, [a, b], cap=1000)
        assert len(g) == 504

    def test_subfield_generators_stay_in_h0(self, F8):
        # generators with GF(2) entries can only reach PGL2(2)
        g = generate_subgroup(F8, [(1, 1, 0, 1), (0, 1, 1, 0)])
        assert len(g) == 6

    def test_h0_from_generators(self, F8):
        emb = FieldEmbedding(GF2m.get(1), F8)
        H0 = SubgroupH0(emb)
        gen = generate_subgroup(F8, [(1, 1, 0, 1), (0, 1, 1, 0)])
        # over GF(2) those two generate all of PGL2(2)
        assert gen == set(H0.elements())


class TestIsSubgroup:
    def test_h0_is_subgroup(self, F8):
        emb = FieldEmbedding(GF2m.get(1), F8)
        assert is_subgroup(F8, set(SubgroupH0(emb).elements()))

    def test_hn1_is_subgroup(self, F8):
        emb = FieldEmbedding(GF2m.get(1), F8)
        assert is_subgroup(F8, set(SubgroupHn1(emb).elements()))

    def test_random_subset_is_not(self, F8):
        some = set(list(enumerate_pgl2(F8))[:5])
        assert not is_subgroup(F8, some)

    def test_missing_identity(self, F8):
        assert not is_subgroup(F8, {(0, 1, 1, 0)})


class TestLeftCosets:
    def test_partition_counts(self, F8):
        emb = FieldEmbedding(GF2m.get(1), F8)
        H0 = set(SubgroupH0(emb).elements())
        cosets = left_cosets(F8, H0, enumerate_pgl2(F8))
        assert len(cosets) == 504 // 6 == 84
        assert all(len(c) == 6 for c in cosets)

    def test_agrees_with_variable_canonicalization(self, F8):
        from repro.pgl.cosets import VariableCosets

        emb = FieldEmbedding(GF2m.get(1), F8)
        H0obj = SubgroupH0(emb)
        vars_ = VariableCosets(F8, H0obj)
        cosets = left_cosets(F8, set(H0obj.elements()), enumerate_pgl2(F8))
        for coset in cosets[:20]:
            keys = {vars_.key(m) for m in coset}
            assert len(keys) == 1

    def test_rejects_non_union(self, F8):
        emb = FieldEmbedding(GF2m.get(1), F8)
        H0 = set(SubgroupH0(emb).elements())
        with pytest.raises(ValueError):
            left_cosets(F8, H0, list(enumerate_pgl2(F8))[:10])


class TestConjugation:
    def test_conjugate_preserves_order(self, F8):
        g = (3, 1, 1, 0)
        h = (0, 1, 1, 0)
        assert element_order(F8, conjugate(F8, g, h)) == element_order(F8, h)

    def test_identity_centralizes_everything(self, F8):
        some = set(list(enumerate_pgl2(F8))[:20])
        assert centralizes(F8, pgl2_identity(), some)

    def test_center_is_trivial(self, F8):
        # PGL2 has trivial center: no non-identity element centralizes all
        allg = list(enumerate_pgl2(F8))
        sample = set(allg[::7])
        bad = [
            m for m in allg[1:50]
            if m != pgl2_identity() and centralizes(F8, m, sample)
        ]
        assert bad == []
