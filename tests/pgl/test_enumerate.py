"""Tests for exhaustive coset-space enumeration (ground truth builders)."""

import pytest

from repro.gf.gf2m import GF2m
from repro.gf.subfield import FieldEmbedding
from repro.pgl.cosets import ModuleCosets, VariableCosets
from repro.pgl.enumerate import (
    build_explicit_edges,
    enumerate_module_cosets,
    enumerate_variable_cosets,
)
from repro.pgl.subgroups import SubgroupH0, SubgroupHn1


@pytest.fixture(scope="module")
def ctx():
    Fq, F = GF2m.get(1), GF2m.get(3)
    emb = FieldEmbedding(Fq, F)
    H0 = SubgroupH0(emb)
    return {
        "F": F,
        "H0": H0,
        "Hn1": SubgroupHn1(emb),
        "mods": ModuleCosets(F, emb),
        "vars": VariableCosets(F, H0),
    }


class TestEnumerateVariables:
    def test_count_and_distinct(self, ctx):
        out = enumerate_variable_cosets(ctx["F"], ctx["vars"])
        assert len(out) == 84
        assert len(set(out)) == 84

    def test_all_canonical(self, ctx):
        out = enumerate_variable_cosets(ctx["F"], ctx["vars"])
        for m in out:
            assert ctx["vars"].canon(m) == m


class TestEnumerateModules:
    def test_count_and_round_trip(self, ctx):
        out = enumerate_module_cosets(ctx["F"], ctx["mods"])
        assert len(out) == 63
        for j, m in enumerate(out):
            assert ctx["mods"].index_of(m) == j


class TestExplicitEdges:
    def test_edge_count(self, ctx):
        edges = build_explicit_edges(
            ctx["F"], ctx["H0"], ctx["Hn1"], ctx["vars"], ctx["mods"]
        )
        # |E| = M * (q+1) = N * q^{n-1}
        assert len(edges) == 84 * 3 == 63 * 4

    def test_degrees(self, ctx):
        from collections import Counter

        edges = build_explicit_edges(
            ctx["F"], ctx["H0"], ctx["Hn1"], ctx["vars"], ctx["mods"]
        )
        vdeg = Counter(v for v, _ in edges)
        udeg = Counter(u for _, u in edges)
        assert set(vdeg.values()) == {3}
        assert set(udeg.values()) == {4}
