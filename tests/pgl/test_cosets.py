"""Tests for module/variable coset canonicalization -- the closed forms
against brute force."""

import numpy as np
import pytest

from repro.gf.gf2m import GF2m
from repro.gf.subfield import FieldEmbedding
from repro.pgl.cosets import ModuleCosets, VariableCosets
from repro.pgl.matrix import enumerate_pgl2, pgl2_mul
from repro.pgl.subgroups import SubgroupH0, SubgroupHn1


@pytest.fixture(scope="module")
def ctx():
    Fq, F = GF2m.get(1), GF2m.get(3)
    emb = FieldEmbedding(Fq, F)
    return {
        "F": F,
        "emb": emb,
        "H0": SubgroupH0(emb),
        "Hn1": SubgroupHn1(emb),
        "mods": ModuleCosets(F, emb),
        "vars": VariableCosets(F, SubgroupH0(emb)),
    }


class TestModuleCosets:
    def test_counts(self, ctx):
        assert ctx["mods"].N == 63 and ctx["mods"].rho == 7

    def test_rep_round_trip(self, ctx):
        mods = ctx["mods"]
        for j in range(mods.N):
            assert mods.index_of(mods.rep_of(j)) == j

    def test_rep_out_of_range(self, ctx):
        with pytest.raises(ValueError):
            ctx["mods"].rep_of(63)
        with pytest.raises(ValueError):
            ctx["mods"].rep_of(-1)

    def test_constant_on_cosets(self, ctx):
        F, mods, Hn1 = ctx["F"], ctx["mods"], ctx["Hn1"]
        for g in list(enumerate_pgl2(F))[::5]:
            j = mods.index_of(g)
            for h in Hn1.elements():
                assert mods.index_of(pgl2_mul(F, g, h)) == j

    def test_partition(self, ctx):
        from collections import Counter

        F, mods, Hn1 = ctx["F"], ctx["mods"], ctx["Hn1"]
        counts = Counter(mods.index_of(g) for g in enumerate_pgl2(F))
        assert len(counts) == mods.N
        assert set(counts.values()) == {Hn1.order}

    def test_singular_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx["mods"].index_of((1, 1, 1, 1))
        with pytest.raises(ValueError):
            ctx["mods"].index_of((0, 1, 0, 1))

    def test_canon_is_rep(self, ctx):
        F, mods = ctx["F"], ctx["mods"]
        for g in list(enumerate_pgl2(F))[::17]:
            c = mods.canon(g)
            assert mods.index_of(c) == mods.index_of(g)
            assert c == mods.rep_of(mods.index_of(g))

    def test_vindex_matches_scalar(self, ctx):
        F, mods = ctx["F"], ctx["mods"]
        mats = list(enumerate_pgl2(F))
        arr = np.array(mats, dtype=np.int64)
        got = mods.vindex((arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]))
        want = [mods.index_of(m) for m in mats]
        assert got.tolist() == want

    def test_vindex_singular_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx["mods"].vindex(tuple(np.array([v]) for v in (1, 1, 1, 1)))

    def test_q4_partition(self):
        from collections import Counter

        Fq, F = GF2m.get(2), GF2m.get(6)
        emb = FieldEmbedding(Fq, F)
        mods = ModuleCosets(F, emb)
        Hn1 = SubgroupHn1(emb)
        counts = Counter(mods.index_of(g) for g in enumerate_pgl2(F))
        assert len(counts) == mods.N == 1365
        assert set(counts.values()) == {Hn1.order}


class TestVariableCosets:
    def test_M(self, ctx):
        assert ctx["vars"].M == 84

    def test_canon_constant_on_cosets(self, ctx):
        F, vars_, H0 = ctx["F"], ctx["vars"], ctx["H0"]
        for g in list(enumerate_pgl2(F))[::7]:
            c = vars_.canon(g)
            for h in H0.elements():
                assert vars_.canon(pgl2_mul(F, g, h)) == c

    def test_partition(self, ctx):
        from collections import Counter

        F, vars_, H0 = ctx["F"], ctx["vars"], ctx["H0"]
        counts = Counter(vars_.key(g) for g in enumerate_pgl2(F))
        assert len(counts) == 84
        assert set(counts.values()) == {H0.order}

    def test_key_unkey_round_trip(self, ctx):
        F, vars_ = ctx["F"], ctx["vars"]
        for g in list(enumerate_pgl2(F))[::11]:
            k = vars_.key(g)
            assert vars_.key(vars_.unkey(k)) == k

    def test_same_coset(self, ctx):
        F, vars_, H0 = ctx["F"], ctx["vars"], ctx["H0"]
        g = (2, 3, 1, 1)
        h = H0.elements()[3]
        assert vars_.same_coset(g, pgl2_mul(F, g, h))
        assert not vars_.same_coset(g, (4, 3, 1, 1)) or vars_.canon(g) == vars_.canon((4, 3, 1, 1))

    def test_vkey_batch(self, ctx):
        vars_ = ctx["vars"]
        mats = [(2, 3, 1, 1), (1, 0, 0, 1), (5, 1, 1, 0)]
        got = vars_.vkey_batch(mats)
        assert got.tolist() == [vars_.key(m) for m in mats]
