"""Tests for PGL2 matrix arithmetic and canonicalization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gf.gf2m import GF2m
from repro.pgl.matrix import (
    enumerate_pgl2,
    pgl2_canon,
    pgl2_det,
    pgl2_identity,
    pgl2_inv,
    pgl2_mul,
    pgl2_order,
    vcanon,
    vmul,
)


@pytest.fixture(scope="module")
def F8():
    return GF2m.get(3)


def nonsingular(F, seed=0, count=100):
    rng = np.random.default_rng(seed)
    out = []
    while len(out) < count:
        a, b, c, d = (int(x) for x in rng.integers(0, F.order, 4))
        if F.add(F.mul(a, d), F.mul(b, c)) != 0:
            out.append((a, b, c, d))
    return out


class TestCanon:
    def test_identity(self, F8):
        assert pgl2_canon(F8, (1, 0, 0, 1)) == pgl2_identity()

    def test_scalar_multiples_collapse(self, F8):
        m = (3, 5, 1, 1)
        for s in range(2, 8):
            scaled = tuple(F8.mul(s, x) for x in m)
            assert pgl2_canon(F8, scaled) == pgl2_canon(F8, m)

    def test_d_zero_shape(self, F8):
        m = pgl2_canon(F8, (3, 5, 4, 0))
        assert m[2] == 1 and m[3] == 0

    def test_d_nonzero_shape(self, F8):
        m = pgl2_canon(F8, (3, 5, 4, 2))
        assert m[3] == 1

    def test_singular_raises(self, F8):
        with pytest.raises(ValueError):
            pgl2_canon(F8, (1, 1, 1, 1))  # det = 0 in char 2
        with pytest.raises(ValueError):
            pgl2_canon(F8, (0, 0, 0, 0))

    def test_idempotent(self, F8):
        for m in nonsingular(F8, seed=1):
            c = pgl2_canon(F8, m)
            assert pgl2_canon(F8, c) == c


class TestGroupOps:
    def test_identity_law(self, F8):
        e = pgl2_identity()
        for m in nonsingular(F8, seed=2, count=30):
            cm = pgl2_canon(F8, m)
            assert pgl2_mul(F8, e, cm) == cm
            assert pgl2_mul(F8, cm, e) == cm

    def test_inverse_law(self, F8):
        for m in nonsingular(F8, seed=3, count=30):
            assert pgl2_mul(F8, m, pgl2_inv(F8, m)) == pgl2_identity()
            assert pgl2_mul(F8, pgl2_inv(F8, m), m) == pgl2_identity()

    def test_associativity(self, F8):
        ms = nonsingular(F8, seed=4, count=15)
        for i in range(0, 15, 3):
            a, b, c = ms[i], ms[i + 1], ms[i + 2]
            assert pgl2_mul(F8, pgl2_mul(F8, a, b), c) == pgl2_mul(
                F8, a, pgl2_mul(F8, b, c)
            )

    def test_det_multiplicative_up_to_scalar(self, F8):
        # canon rescales, so compare dets of raw product vs product of dets
        a, b = (3, 5, 1, 1), (2, 1, 0, 1)
        raw = (
            F8.add(F8.mul(a[0], b[0]), F8.mul(a[1], b[2])),
            F8.add(F8.mul(a[0], b[1]), F8.mul(a[1], b[3])),
            F8.add(F8.mul(a[2], b[0]), F8.mul(a[3], b[2])),
            F8.add(F8.mul(a[2], b[1]), F8.mul(a[3], b[3])),
        )
        assert pgl2_det(F8, raw) == F8.mul(pgl2_det(F8, a), pgl2_det(F8, b))


class TestEnumeration:
    @pytest.mark.parametrize("m,expected", [(1, 6), (2, 60), (3, 504)])
    def test_order_formula(self, m, expected):
        F = GF2m.get(m)
        mats = list(enumerate_pgl2(F))
        assert len(mats) == pgl2_order(F.order) == expected

    def test_all_canonical_distinct_nonsingular(self, F8):
        mats = list(enumerate_pgl2(F8))
        assert len(set(mats)) == len(mats)
        for m in mats:
            assert pgl2_det(F8, m) != 0
            assert pgl2_canon(F8, m) == m

    def test_closed_under_product(self):
        F4 = GF2m.get(2)
        mats = set(enumerate_pgl2(F4))
        sample = sorted(mats)[::7]
        for a in sample:
            for b in sample:
                assert pgl2_mul(F4, a, b) in mats


class TestVectorized:
    def test_vmul_matches_scalar(self, F8):
        ms = nonsingular(F8, seed=5, count=64)
        arr = np.array(ms, dtype=np.int64)
        a = (arr[:32, 0], arr[:32, 1], arr[:32, 2], arr[:32, 3])
        b = (arr[32:, 0], arr[32:, 1], arr[32:, 2], arr[32:, 3])
        prod = vmul(F8, a, b)
        canon = vcanon(F8, prod)
        for i in range(32):
            expect = pgl2_mul(F8, ms[i], ms[32 + i])
            assert tuple(int(x[i]) for x in canon) == expect

    def test_vcanon_matches_scalar(self, F8):
        ms = nonsingular(F8, seed=6, count=200)
        arr = np.array(ms, dtype=np.int64)
        canon = vcanon(F8, (arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]))
        for i, m in enumerate(ms):
            assert tuple(int(x[i]) for x in canon) == pgl2_canon(F8, m)

    def test_vcanon_singular_raises(self, F8):
        with pytest.raises(ValueError):
            vcanon(F8, tuple(np.array([v]) for v in (1, 1, 1, 1)))

    def test_vmul_broadcast_constant(self, F8):
        ms = nonsingular(F8, seed=7, count=10)
        arr = np.array(ms, dtype=np.int64)
        h = (2, 1, 1, 0)
        prod = vcanon(
            F8,
            vmul(
                F8,
                (arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]),
                tuple(np.int64(x) for x in h),
            ),
        )
        for i, m in enumerate(ms):
            assert tuple(int(x[i]) for x in prod) == pgl2_mul(F8, m, h)


class TestPropertyBased:
    @settings(max_examples=100)
    @given(st.tuples(*[st.integers(0, 7)] * 4), st.tuples(*[st.integers(0, 7)] * 4))
    def test_product_nonsingular(self, m1, m2):
        F = GF2m.get(3)
        if pgl2_det(F, m1) == 0 or pgl2_det(F, m2) == 0:
            return
        prod = pgl2_mul(F, m1, m2)
        assert pgl2_det(F, prod) != 0

    @settings(max_examples=100)
    @given(st.tuples(*[st.integers(0, 7)] * 4))
    def test_double_inverse(self, m):
        F = GF2m.get(3)
        if pgl2_det(F, m) == 0:
            return
        assert pgl2_inv(F, pgl2_inv(F, m)) == pgl2_canon(F, m)
