"""Tests for the subgroups H0 and H_{n-1}."""

import pytest

from repro.gf.gf2m import GF2m
from repro.gf.subfield import FieldEmbedding
from repro.pgl.matrix import pgl2_det, pgl2_inv, pgl2_mul
from repro.pgl.subgroups import SubgroupH0, SubgroupHn1


@pytest.fixture(scope="module")
def ctx():
    Fq, F = GF2m.get(1), GF2m.get(3)
    emb = FieldEmbedding(Fq, F)
    return F, SubgroupH0(emb), SubgroupHn1(emb)


@pytest.fixture(scope="module")
def ctx4():
    Fq, F = GF2m.get(2), GF2m.get(6)
    emb = FieldEmbedding(Fq, F)
    return F, SubgroupH0(emb), SubgroupHn1(emb)


class TestH0:
    def test_order_q2(self, ctx):
        _, H0, _ = ctx
        assert H0.order == 6 and len(H0.elements()) == 6

    def test_order_q4(self, ctx4):
        _, H0, _ = ctx4
        assert H0.order == 60 and len(H0.elements()) == 60

    def test_contains_identity(self, ctx):
        _, H0, _ = ctx
        assert H0.contains((1, 0, 0, 1))

    def test_closed_under_product_and_inverse(self, ctx):
        F, H0, _ = ctx
        els = H0.elements()
        for a in els:
            assert H0.contains(pgl2_inv(F, a))
            for b in els:
                assert H0.contains(pgl2_mul(F, a, b))

    def test_rejects_non_subfield_matrix(self, ctx):
        _, H0, _ = ctx
        assert not H0.contains((2, 0, 0, 1))  # entry 2 = gamma not in GF(2)

    def test_elements_nonsingular(self, ctx):
        F, H0, _ = ctx
        for m in H0.elements():
            assert pgl2_det(F, m) != 0


class TestHn1:
    def test_order(self, ctx):
        _, _, Hn1 = ctx
        assert Hn1.order == 1 * 8  # (q-1) * q^n
        assert len(Hn1.elements()) == 8

    def test_order_q4(self, ctx4):
        _, _, Hn1 = ctx4
        assert Hn1.order == 3 * 64

    def test_shape(self, ctx):
        _, _, Hn1 = ctx
        for a, b, c, d in Hn1.elements():
            assert c == 0 and d == 1 and a != 0

    def test_contains(self, ctx):
        _, _, Hn1 = ctx
        for m in Hn1.elements():
            assert Hn1.contains(m)
        assert not Hn1.contains((1, 0, 1, 1))
        assert not Hn1.contains((2, 0, 0, 1))  # a = gamma not in F_q^*

    def test_closed_under_product_and_inverse(self, ctx4):
        F, _, Hn1 = ctx4
        els = Hn1.elements()[::13]
        for a in els:
            assert Hn1.contains(pgl2_inv(F, a))
            for b in els:
                assert Hn1.contains(pgl2_mul(F, a, b))


class TestIntersection:
    def test_h0_cap_hn1(self, ctx):
        # Lemma 4: H0 cap H_{n-1} = {(a, b; 0, 1): a in F_q^*, b in F_q}
        F, H0, Hn1 = ctx
        inter = [m for m in H0.elements() if Hn1.contains(m)]
        q = H0.q
        assert len(inter) == (q - 1) * q
        for a, b, c, d in inter:
            assert c == 0 and d == 1

    def test_h0_cap_hn1_q4(self, ctx4):
        F, H0, Hn1 = ctx4
        inter = [m for m in H0.elements() if Hn1.contains(m)]
        q = H0.q
        assert len(inter) == (q - 1) * q
