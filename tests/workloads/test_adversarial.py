"""Tests for adversarial workload constructions."""

import numpy as np
import pytest

from repro.core.graph import MemoryGraph
from repro.core.protocol import run_access_protocol
from repro.schemes.mehlhorn_vishkin import MehlhornVishkinScheme
from repro.schemes.pp_adapter import PPAdapter
from repro.schemes.single_copy import SingleCopyScheme
from repro.workloads.adversarial import (
    concentrated_set_for,
    phase_align,
    pp_module_neighborhood_set,
    pp_tight_request_set,
    theorem7_bound,
    tight_set_module_ids,
)


class TestNeighborhoodSet:
    def test_distinct_and_congesting(self, scheme_2_5):
        idx = pp_module_neighborhood_set(scheme_2_5, 16, seed_modules=[0])
        assert np.unique(idx).size == 16
        mods = scheme_2_5.module_ids_for(idx)
        # all 16 variables have one copy in module 0
        assert (mods == 0).any(axis=1).all()

    def test_insufficient_seeds(self, scheme_2_5):
        with pytest.raises(ValueError):
            pp_module_neighborhood_set(scheme_2_5, 17, seed_modules=[0])

    def test_auto_seeds(self, scheme_2_5):
        idx = pp_module_neighborhood_set(scheme_2_5, 40)
        assert np.unique(idx).size == 40


class TestTightRequestSets:
    def test_n9_d3(self):
        from repro.core.scheme import PPScheme

        s = PPScheme(2, 9)
        idx = pp_tight_request_set(s, 3, translates=2, seed=0)
        assert np.unique(idx).size == idx.size
        assert idx.size >= 84  # translates may overlap but not collapse

    def test_module_ids_shape(self, graph_2_6):
        mods = tight_set_module_ids(graph_2_6, 3)
        assert mods.shape == (84, 3)
        assert np.unique(mods).size == 63

    def test_tight_series_phi_grows_like_cube_root(self):
        # the headline worst-case behaviour: Phi ~ |S|^{1/3} on the
        # subgroup-tight family
        from repro.analysis.fitting import fit_power_law

        sizes, phis = [], []
        for n, d in [(4, 2), (6, 3), (8, 4)]:
            g = MemoryGraph(2, n)
            mods = tight_set_module_ids(g, d)
            res = run_access_protocol(mods, g.N, g.majority, n_phases=1)
            sizes.append(mods.shape[0])
            phis.append(res.max_phase_iterations)
        alpha, _ = fit_power_law(sizes, phis)
        assert 0.2 < alpha < 0.5


class TestPhaseAlign:
    def test_alignment(self):
        hot = np.array([100, 101, 102])
        fill = np.arange(20)
        out = phase_align(hot, fill, copies=3, phase=1)
        assert out.size == 9
        assert out[1::3].tolist() == [100, 101, 102]

    def test_disjointness_enforced(self):
        with pytest.raises(ValueError):
            phase_align(np.array([1]), np.array([1, 2]), copies=3)

    def test_fill_too_small(self):
        with pytest.raises(ValueError):
            phase_align(np.array([10, 11]), np.array([1, 2, 3]), copies=3)


class TestConcentratedSets:
    def test_single_copy(self):
        sc = SingleCopyScheme(64, 10000, hashed=True, seed=0)
        idx, b = concentrated_set_for(sc, 20)
        assert b == 1
        assert np.unique(sc.placement(idx)).size == 1

    def test_mv(self):
        mv = MehlhornVishkinScheme(1023, 5456, c=2)
        idx, b = concentrated_set_for(mv, 12)
        assert idx.size == 12
        mods = np.unique(mv.placement(idx))
        assert mods.size <= b

    def test_pp(self):
        pp = PPAdapter(2, 5)
        idx, b = concentrated_set_for(pp, 30)
        mods = np.unique(pp.placement(idx))
        assert mods.size == b

    def test_lower_bound_respected(self):
        # measured adversarial time >= count * quorum / |B| >= Thm-7 shape
        sc = SingleCopyScheme(64, 10000, hashed=True, seed=0)
        idx, b = concentrated_set_for(sc, 25)
        res = sc.access(idx, op="count")
        assert res.total_iterations >= idx.size * sc.read_quorum / b

    def test_unknown_scheme_type(self):
        with pytest.raises(TypeError):
            concentrated_set_for(object(), 5)


class TestTheorem7Bound:
    def test_values(self):
        assert theorem7_bound(10**6, 10**3, 3) == pytest.approx(10.0)
        assert theorem7_bound(10**6, 10**3, 1) == pytest.approx(1000.0)
