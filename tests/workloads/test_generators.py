"""Tests for benign workload generators."""

import numpy as np
import pytest

from repro.workloads.generators import (
    hotspot_blocks,
    phase_shuffled,
    random_distinct,
    strided,
)


class TestRandomDistinct:
    def test_distinct_and_in_range(self):
        idx = random_distinct(1000, 300, seed=0)
        assert np.unique(idx).size == 300
        assert idx.min() >= 0 and idx.max() < 1000

    def test_seeded(self):
        assert np.array_equal(random_distinct(500, 100, 7), random_distinct(500, 100, 7))

    def test_full_draw(self):
        idx = random_distinct(64, 64, seed=1)
        assert sorted(idx.tolist()) == list(range(64))

    def test_too_many(self):
        with pytest.raises(ValueError):
            random_distinct(10, 11)


class TestStrided:
    def test_basic(self):
        assert strided(100, 5, stride=3, offset=2).tolist() == [2, 5, 8, 11, 14]

    def test_wrap(self):
        idx = strided(10, 5, stride=3)
        assert idx.tolist() == [0, 3, 6, 9, 2]

    def test_self_collision_raises(self):
        with pytest.raises(ValueError):
            strided(10, 6, stride=5)  # 0,5,0,... duplicates

    def test_too_many(self):
        with pytest.raises(ValueError):
            strided(4, 5)


class TestHotspot:
    def test_within_blocks(self):
        idx = hotspot_blocks(10000, 100, block=64, n_blocks=4, seed=0)
        assert np.unique(idx).size == 100

    def test_pool_too_small(self):
        with pytest.raises(ValueError):
            hotspot_blocks(10000, 100, block=8, n_blocks=2)


class TestPhaseShuffle:
    def test_same_set(self):
        idx = random_distinct(1000, 50, seed=2)
        sh = phase_shuffled(idx, seed=3)
        assert sorted(sh.tolist()) == sorted(idx.tolist())
        assert not np.array_equal(sh, idx)
