"""Tests for trace-driven workloads."""

import numpy as np
import pytest

from repro.schemes.pp_adapter import PPAdapter
from repro.workloads.traces import (
    TraceReplay,
    locality_trace,
    replay_trace,
    zipfian_batch,
)


class TestZipfian:
    def test_range(self, rng):
        b = zipfian_batch(5456, 2000, 0.9, rng)
        assert b.min() >= 0 and b.max() < 5456

    def test_uniform_case_spreads(self, rng):
        b = zipfian_batch(10_000, 5000, 0.0, rng)
        assert np.unique(b).size > 3500  # few duplicates when uniform

    def test_skew_concentrates(self, rng):
        uniform = zipfian_batch(10_000, 5000, 0.0, rng)
        hot = zipfian_batch(10_000, 5000, 1.2, np.random.default_rng(1))
        assert np.unique(hot).size < np.unique(uniform).size

    def test_monotone_in_skew(self):
        distinct = []
        for skew in (0.0, 0.5, 0.9, 1.5):
            b = zipfian_batch(5456, 4000, skew, np.random.default_rng(7))
            distinct.append(np.unique(b).size)
        assert distinct == sorted(distinct, reverse=True)

    def test_bad_skew(self, rng):
        with pytest.raises(ValueError):
            zipfian_batch(100, 10, -0.1, rng)


class TestLocalityTrace:
    def test_shape(self, rng):
        tr = locality_trace(5456, 10, 64, 256, 0.1, rng)
        assert len(tr) == 10
        assert all(b.size == 64 for b in tr)

    def test_zero_churn_stays_in_set(self, rng):
        tr = locality_trace(5456, 5, 100, 128, 0.0, rng)
        universe = set(np.concatenate(tr).tolist())
        assert len(universe) <= 128

    def test_full_churn_moves(self, rng):
        tr = locality_trace(100_000, 8, 32, 64, 1.0, rng)
        first = set(tr[0].tolist())
        last = set(tr[-1].tolist())
        assert len(first & last) <= 4  # working sets disjoint w.h.p.

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            locality_trace(100, 2, 10, 200, 0.1, rng)
        with pytest.raises(ValueError):
            locality_trace(100, 2, 10, 50, 1.5, rng)


class TestReplay:
    def test_replay_counts(self, rng):
        pp = PPAdapter(2, 5)
        tr = locality_trace(pp.M, 6, 128, 512, 0.2, rng)
        rep = replay_trace(pp, tr)
        assert isinstance(rep, TraceReplay)
        assert rep.batches == 6
        assert rep.raw_requests == 6 * 128
        assert rep.distinct_requests <= rep.raw_requests
        assert 0 < rep.combining_ratio <= 1
        assert len(rep.per_batch_iterations) == 6
        assert rep.total_iterations == sum(rep.per_batch_iterations)
        assert rep.mean_iterations > 0

    def test_skew_reduces_distinct_work(self):
        pp = PPAdapter(2, 5)
        rng1, rng2 = np.random.default_rng(3), np.random.default_rng(3)
        flat = [zipfian_batch(pp.M, 512, 0.0, rng1) for _ in range(4)]
        hot = [zipfian_batch(pp.M, 512, 1.5, rng2) for _ in range(4)]
        rf, rh = replay_trace(pp, flat), replay_trace(pp, hot)
        assert rh.distinct_requests < rf.distinct_requests
