"""Tests for MPC statistics accumulation."""

from repro.mpc.stats import MPCStats


class TestMPCStats:
    def test_record(self):
        s = MPCStats()
        s.record_step(5, 3, 2)
        s.record_step(2, 2, 1)
        assert s.steps == 2 and s.requests == 7 and s.served == 5
        assert s.max_congestion == 2

    def test_history_only_when_enabled(self):
        s = MPCStats()
        s.record_step(1, 1, 1)
        assert s.served_per_step == []
        h = MPCStats(keep_history=True)
        h.record_step(1, 1, 1)
        h.record_step(4, 2, 3)
        assert h.served_per_step == [1, 2]

    def test_merge(self):
        a = MPCStats(keep_history=True)
        a.record_step(3, 2, 2)
        b = MPCStats(keep_history=True)
        b.record_step(5, 4, 3)
        a.merge(b)
        assert a.steps == 2 and a.requests == 8 and a.served == 6
        assert a.max_congestion == 3
        assert a.served_per_step == [2, 4]
