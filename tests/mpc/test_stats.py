"""Tests for MPC statistics accumulation."""

from repro.mpc.stats import MPCStats


class TestMPCStats:
    def test_record(self):
        s = MPCStats()
        s.record_step(5, 3, 2)
        s.record_step(2, 2, 1)
        assert s.steps == 2 and s.requests == 7 and s.served == 5
        assert s.max_congestion == 2

    def test_history_only_when_enabled(self):
        s = MPCStats()
        s.record_step(1, 1, 1)
        assert s.served_per_step == []
        h = MPCStats(keep_history=True)
        h.record_step(1, 1, 1)
        h.record_step(4, 2, 3)
        assert h.served_per_step == [1, 2]

    def test_merge(self):
        a = MPCStats(keep_history=True)
        a.record_step(3, 2, 2)
        b = MPCStats(keep_history=True)
        b.record_step(5, 4, 3)
        a.merge(b)
        assert a.steps == 2 and a.requests == 8 and a.served == 6
        assert a.max_congestion == 3
        assert a.served_per_step == [2, 4]

    def test_merge_history_survives_when_only_other_kept_it(self):
        # Regression: merge used to drop other's history (and stop
        # recording it) whenever self.keep_history was False.
        a = MPCStats()
        a.record_step(3, 2, 2)
        b = MPCStats(keep_history=True)
        b.record_step(5, 4, 3)
        b.record_step(1, 1, 1)
        a.merge(b)
        assert a.served_per_step == [4, 1]
        assert a.keep_history is True
        a.record_step(2, 2, 1)  # and keeps recording from here on
        assert a.served_per_step == [4, 1, 2]

    def test_merge_history_survives_when_only_self_kept_it(self):
        a = MPCStats(keep_history=True)
        a.record_step(3, 2, 2)
        b = MPCStats()
        b.record_step(5, 4, 3)
        a.merge(b)
        assert a.served_per_step == [2]
        assert a.keep_history is True
        assert a.steps == 2 and a.served == 6

    def test_merge_no_history_on_either_side(self):
        a, b = MPCStats(), MPCStats()
        a.record_step(1, 1, 1)
        b.record_step(2, 2, 2)
        a.merge(b)
        assert a.served_per_step == [] and a.keep_history is False


class TestCongestionDistribution:
    def test_summary_quantiles(self):
        s = MPCStats()
        for c in [1, 1, 1, 1, 1, 1, 1, 1, 1, 8]:
            s.record_step(c, c, c)
        summ = s.congestion_summary()
        assert summ["p50"] == 1
        assert summ["p95"] == 8
        assert summ["max"] == 8

    def test_empty_summary(self):
        s = MPCStats()
        summ = s.congestion_summary()
        assert summ["p50"] is None and summ["p95"] is None
        assert summ["max"] == 0

    def test_merge_pools_distributions(self):
        a, b = MPCStats(), MPCStats()
        for _ in range(10):
            a.record_step(1, 1, 1)
        for _ in range(10):
            b.record_step(5, 5, 5)
        a.merge(b)
        summ = a.congestion_summary()
        assert summ["max"] == 5
        assert summ["p95"] == 5
        assert b.congestion_summary()["p50"] == 5  # other left untouched

    def test_snapshot_shape(self):
        s = MPCStats()
        s.record_step(4, 2, 3)
        snap = s.snapshot()
        assert snap["steps"] == 1 and snap["requests"] == 4
        assert snap["served"] == 2
        assert snap["congestion"]["max"] == 3
