"""Regression: arbitration winner order and the equal-stamp value
tie-break are pinned deterministic.

The conformance checker (:mod:`repro.conformance.checker`) assumes that
among copies carrying the *same* timestamp the protocol's read returns
the largest value -- the ``(stamp << 32) | value`` packing order -- and
that arbiter winner selection is reproducible run to run.  These tests
pin both so a refactor that silently changes either (e.g. an unstable
sort, an unseeded RNG) fails here rather than as a flaky fuzz run.
"""

import numpy as np

from repro.mpc.arbitration import (
    LowestIdArbiter,
    RandomArbiter,
    RotatingArbiter,
    make_arbiter,
)
from repro.schemes.pp_adapter import PPAdapter

_MODS = np.array([5, 3, 5, 3, 7, 5], dtype=np.int64)


class TestLowestIdWinners:
    def test_exact_winner_order_pinned(self):
        # one winner per module, lowest request index first, winners
        # reported in module order: module 3 -> req 1, 5 -> 0, 7 -> 4
        winners = LowestIdArbiter()(_MODS)
        assert winners.tolist() == [1, 0, 4]

    def test_repeat_calls_identical(self):
        arb = LowestIdArbiter()
        a = arb(_MODS)
        b = arb(_MODS)
        assert np.array_equal(a, b)


class TestRandomWinners:
    def test_same_seed_same_winners(self):
        a = RandomArbiter(seed=7)
        b = RandomArbiter(seed=7)
        for _ in range(5):
            assert np.array_equal(a(_MODS), b(_MODS))

    def test_one_winner_per_module(self):
        winners = RandomArbiter(seed=0)(_MODS)
        assert sorted(_MODS[winners].tolist()) == [3, 5, 7]

    def test_equal_priority_impossible(self):
        # the priority draw is a permutation: ties between simultaneous
        # requests cannot arise, so lexsort order is total
        arb = RandomArbiter(seed=1)
        prio = arb.rng.permutation(_MODS.shape[0])
        assert np.unique(prio).size == _MODS.shape[0]


class TestRotatingWinners:
    def test_rotation_pinned(self):
        arb = RotatingArbiter()
        both = np.array([4, 4], dtype=np.int64)
        assert arb(both).tolist() == [0]  # offset 0: req 0 first
        assert arb(both).tolist() == [1]  # offset 1: req 1 first
        assert arb(both).tolist() == [0]  # wraps

    def test_factory_round_trip(self):
        assert isinstance(make_arbiter("rotating"), RotatingArbiter)


class TestEqualStampValueTieBreak:
    """Same-round write-write conflicts surface as equal-stamp copies
    with different values; the read must pick the largest value."""

    def setup_method(self):
        self.sch = PPAdapter(2, 3)
        self.idx = np.array([11], dtype=np.int64)
        self.modules = self.sch.placement(self.idx)
        self.slots = self.sch.slots(self.idx, self.modules)

    def _store_with_copies(self, values, stamp):
        store = self.sch.make_store()
        store.write(
            self.modules, self.slots,
            np.asarray(values, dtype=np.int64).reshape(1, -1),
            stamp,
        )
        return store

    def test_largest_value_wins_at_equal_stamp(self):
        store = self._store_with_copies([10, 30, 20], stamp=5)
        res = self.sch.read(self.idx, store=store, time=6)
        assert int(res.values[0]) == 30

    def test_winner_independent_of_copy_position(self):
        for values in ([30, 10, 20], [10, 20, 30], [20, 30, 10]):
            store = self._store_with_copies(values, stamp=5)
            res = self.sch.read(self.idx, store=store, time=6)
            assert int(res.values[0]) == 30

    def test_fresher_stamp_beats_larger_value(self):
        store = self._store_with_copies([10, 10, 10], stamp=5)
        # one copy fresher but smaller: freshness dominates the packing
        store.write(self.modules[:, :1], self.slots[:, :1],
                    np.array([[3]], dtype=np.int64), 6)
        res = self.sch.read(self.idx, store=store, time=7)
        assert int(res.values[0]) == 3

    def test_deterministic_across_policies_and_runs(self):
        expected = None
        for policy in ("lowest", "random", "rotating"):
            for _ in range(3):
                store = self._store_with_copies([7, 9, 8], stamp=2)
                res = self.sch.read(
                    self.idx, store=store, time=3, arbitration=policy, seed=0
                )
                got = int(res.values[0])
                expected = got if expected is None else expected
                assert got == expected == 9


class TestBatchDeterminism:
    def test_same_batch_same_result(self):
        sch = PPAdapter(2, 3)
        idx = sch.random_request_set(32, seed=4)
        runs = []
        for _ in range(2):
            store = sch.make_store()
            sch.write(idx, values=idx * 3, store=store, time=1)
            res = sch.read(idx, store=store, time=2)
            runs.append(
                (res.values.tolist(), [p.iterations for p in res.phases])
            )
        assert runs[0] == runs[1]

    def test_seeded_random_policy_reproducible(self):
        sch = PPAdapter(2, 3)
        idx = sch.random_request_set(32, seed=5)
        runs = []
        for _ in range(2):
            store = sch.make_store()
            sch.write(idx, values=idx, store=store, time=1,
                      arbitration="random", seed=9)
            res = sch.read(idx, store=store, time=2,
                           arbitration="random", seed=9)
            runs.append(
                (res.values.tolist(), [p.iterations for p in res.phases])
            )
        assert runs[0] == runs[1]
