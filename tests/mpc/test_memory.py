"""Tests for the timestamped copy store."""

import numpy as np
import pytest

from repro.mpc.memory import SharedCopyStore


class TestSharedCopyStore:
    def test_initial_state(self):
        st = SharedCopyStore(4, 3)
        vals, stamps = st.read(np.array([0, 1]), np.array([0, 2]))
        assert vals.tolist() == [0, 0]
        assert stamps.tolist() == [-1, -1]

    def test_write_read_round_trip(self):
        st = SharedCopyStore(4, 3)
        st.write(np.array([1, 2]), np.array([0, 1]), np.array([10, 20]), 5)
        vals, stamps = st.read(np.array([1, 2]), np.array([0, 1]))
        assert vals.tolist() == [10, 20]
        assert stamps.tolist() == [5, 5]

    def test_per_element_time(self):
        st = SharedCopyStore(4, 3)
        st.write(np.array([0, 0]), np.array([0, 1]), np.array([1, 2]), np.array([7, 9]))
        _, stamps = st.read(np.array([0, 0]), np.array([0, 1]))
        assert stamps.tolist() == [7, 9]

    def test_overwrite(self):
        st = SharedCopyStore(2, 1)
        st.write(np.array([0]), np.array([0]), np.array([1]), 1)
        st.write(np.array([0]), np.array([0]), np.array([2]), 2)
        vals, stamps = st.read(np.array([0]), np.array([0]))
        assert vals.tolist() == [2] and stamps.tolist() == [2]

    def test_2d_indexing(self):
        st = SharedCopyStore(8, 4)
        mods = np.array([[0, 1], [2, 3]])
        slots = np.array([[0, 1], [2, 3]])
        st.write(mods, slots, np.array([[1, 2], [3, 4]]), 1)
        vals, _ = st.read(mods, slots)
        assert vals.tolist() == [[1, 2], [3, 4]]

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            SharedCopyStore(0, 3)
        with pytest.raises(ValueError):
            SharedCopyStore(3, 0)

    def test_footprint(self):
        st = SharedCopyStore(10, 10)
        assert st.footprint_bytes() == 2 * 10 * 10 * 8
