"""Tests for fault schedules and the availability simulation."""

import numpy as np
import pytest

from repro.core.scheme import PPScheme
from repro.mpc.faults import FaultSchedule, simulate_availability


class TestFaultSchedule:
    def test_no_failures(self):
        fs = FaultSchedule(100, 0.0)
        for _ in range(5):
            assert fs.step().size == 0

    def test_all_fail_instantly(self):
        fs = FaultSchedule(50, 1.0)
        assert fs.step().size == 50

    def test_permanent_failures_accumulate(self):
        fs = FaultSchedule(1000, 0.05, repair_lag=0, seed=1)
        sizes = [fs.step().size for _ in range(20)]
        assert sizes == sorted(sizes)  # monotone without repair
        assert sizes[-1] > sizes[0]

    def test_repair_caps_failures(self):
        fs = FaultSchedule(1000, 0.05, repair_lag=3, seed=2)
        sizes = [fs.step().size for _ in range(40)]
        # steady state ~ rate * lag * N, far below the permanent case
        assert max(sizes[10:]) < 400

    def test_repaired_modules_return(self):
        fs = FaultSchedule(10, 1.0, repair_lag=1, seed=3)
        first = set(fs.step().tolist())
        assert len(first) == 10
        second = fs.step()
        # everything failed at t=1 is repaired by t=2 (lag 1), though new
        # failures happen; the *same* down set cannot persist
        assert fs.clock == 2
        _ = second

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule(10, 1.5)
        with pytest.raises(ValueError):
            FaultSchedule(10, 0.1, repair_lag=-1)


class TestAvailabilitySimulation:
    def test_healthy_run(self):
        s = PPScheme(2, 5)
        idx = s.random_request_set(300, seed=0)
        fs = FaultSchedule(s.N, 0.0)
        tr = simulate_availability(s, idx, fs, steps=4)
        assert tr.reads_correct
        assert tr.worst_unavailable == 0

    def test_failures_with_repair_stay_available_mostly(self):
        s = PPScheme(2, 5)
        idx = s.random_request_set(500, seed=1)
        fs = FaultSchedule(s.N, 0.01, repair_lag=2, seed=4)
        tr = simulate_availability(s, idx, fs, steps=10)
        assert tr.reads_correct  # survivors always exact
        # ~1% module failure, repairing: unavailability stays tiny
        assert tr.worst_unavailable < 50

    def test_catastrophic_rate_loses_variables_not_correctness(self):
        s = PPScheme(2, 3)
        idx = s.random_request_set(60, seed=2)
        fs = FaultSchedule(s.N, 0.5, repair_lag=0, seed=5)
        tr = simulate_availability(s, idx, fs, steps=5)
        assert tr.reads_correct
        assert tr.unavailable_per_step[-1] > 0  # eventually variables die
