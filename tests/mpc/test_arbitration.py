"""Tests for arbitration policies in isolation."""

import numpy as np
import pytest

from repro.mpc.arbitration import (
    LowestIdArbiter,
    RandomArbiter,
    RotatingArbiter,
    make_arbiter,
)


def check_one_winner_per_module(arbiter, module_ids):
    winners = arbiter(np.asarray(module_ids, dtype=np.int64))
    won = np.asarray(module_ids)[winners]
    assert np.unique(won).size == won.size
    assert set(won.tolist()) == set(module_ids)
    return winners


class TestLowestId:
    def test_first_wins(self):
        w = LowestIdArbiter()(np.array([7, 7, 7]))
        assert w.tolist() == [0]

    def test_contract_random_inputs(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            mods = rng.integers(0, 10, size=rng.integers(1, 50))
            check_one_winner_per_module(LowestIdArbiter(), mods)

    def test_deterministic(self):
        mods = np.array([3, 1, 3, 2, 1])
        a = LowestIdArbiter()
        assert a(mods).tolist() == a(mods).tolist()


class TestRandom:
    def test_contract(self):
        rng = np.random.default_rng(1)
        arb = RandomArbiter(seed=9)
        for _ in range(20):
            mods = rng.integers(0, 8, size=30)
            check_one_winner_per_module(arb, mods)

    def test_seed_reproducible(self):
        mods = np.array([5, 5, 5, 5, 5])
        seq1 = [RandomArbiter(seed=3)(mods).tolist() for _ in range(3)]
        seq2 = [RandomArbiter(seed=3)(mods).tolist() for _ in range(3)]
        # fresh arbiters with equal seeds replay the same choices
        assert seq1[0] == seq2[0]

    def test_spreads_winners(self):
        mods = np.array([0] * 10)
        arb = RandomArbiter(seed=0)
        winners = {int(arb(mods)[0]) for _ in range(50)}
        assert len(winners) > 3


class TestRotating:
    def test_contract(self):
        arb = RotatingArbiter()
        rng = np.random.default_rng(2)
        for _ in range(20):
            mods = rng.integers(0, 5, size=20)
            check_one_winner_per_module(arb, mods)

    def test_rotation_visits_everyone(self):
        arb = RotatingArbiter()
        mods = np.array([0, 0, 0])
        winners = [int(arb(mods)[0]) for _ in range(9)]
        assert set(winners) == {0, 1, 2}

    def test_empty(self):
        assert RotatingArbiter()(np.array([], dtype=np.int64)).size == 0


class TestFactory:
    @pytest.mark.parametrize("name", ["lowest", "random", "rotating"])
    def test_known_policies(self, name):
        arb = make_arbiter(name)
        check_one_winner_per_module(arb, np.array([1, 1, 2]))

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_arbiter("quantum")
