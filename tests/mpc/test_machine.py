"""Tests for the MPC machine and its one-access-per-module contract."""

import numpy as np
import pytest

from repro.mpc.machine import MPC


class TestStep:
    def test_all_distinct_served_at_once(self):
        mpc = MPC(10)
        winners = mpc.step(np.array([0, 3, 7]))
        assert sorted(winners.tolist()) == [0, 1, 2]
        assert mpc.stats.steps == 1 and mpc.stats.served == 3

    def test_conflict_one_per_module(self):
        mpc = MPC(10)
        winners = mpc.step(np.array([4, 4, 4, 4]))
        assert winners.tolist() == [0]  # lowest-id policy
        assert mpc.stats.max_congestion == 4

    def test_mixed(self):
        mpc = MPC(10)
        winners = mpc.step(np.array([1, 2, 1, 3, 2]))
        assert sorted(np.array([1, 2, 1, 3, 2])[winners].tolist()) == [1, 2, 3]

    def test_empty_step_advances_time(self):
        mpc = MPC(10)
        out = mpc.step(np.array([], dtype=np.int64))
        assert out.size == 0 and mpc.stats.steps == 1

    def test_invalid_module_raises(self):
        mpc = MPC(10)
        with pytest.raises(ValueError):
            mpc.step(np.array([10]))
        with pytest.raises(ValueError):
            mpc.step(np.array([-1]))

    def test_bad_module_count(self):
        with pytest.raises(ValueError):
            MPC(0)

    def test_serialization_time(self):
        # k requests to one module need exactly k steps
        mpc = MPC(5)
        pending = list(range(8))
        reqs = np.zeros(8, dtype=np.int64)
        while pending:
            winners = mpc.step(reqs[: len(pending)])
            assert winners.size == 1
            pending.pop()
        assert mpc.stats.steps == 8

    def test_reset(self):
        mpc = MPC(5)
        mpc.step(np.array([1]))
        mpc.reset()
        assert mpc.stats.steps == 0

    def test_reset_preserves_arbiter_object(self):
        from repro.mpc.arbitration import RotatingArbiter

        arb = RotatingArbiter()
        mpc = MPC(5, arbitration=arb)
        mpc.step(np.array([0, 0]))
        mpc.reset()
        assert mpc.arbiter is arb  # same policy object, with its state

    def test_reset_preserves_keep_history(self):
        mpc = MPC(5, history=True)
        mpc.step(np.array([0, 1]))
        mpc.reset()
        assert mpc.stats.keep_history is True
        assert mpc.stats.served_per_step == []
        mpc.step(np.array([2]))
        assert mpc.stats.served_per_step == [1]


class TestPolicies:
    def test_random_policy_valid(self):
        mpc = MPC(10, arbitration="random", seed=42)
        reqs = np.array([1, 1, 1, 2, 2, 3])
        winners = mpc.step(reqs)
        assert sorted(reqs[winners].tolist()) == [1, 2, 3]

    def test_rotating_policy_fair(self):
        mpc = MPC(10, arbitration="rotating")
        # same 3 requesters to one module: winners should rotate
        seen = set()
        for _ in range(6):
            winners = mpc.step(np.array([0, 0, 0]))
            seen.add(int(winners[0]))
        assert len(seen) >= 2  # not persistently favouring one index

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            MPC(10, arbitration="coin-flip")

    def test_custom_arbiter_object(self):
        from repro.mpc.arbitration import LowestIdArbiter

        mpc = MPC(10, arbitration=LowestIdArbiter())
        winners = mpc.step(np.array([5, 5]))
        assert winners.tolist() == [0]


class TestHistory:
    def test_served_per_step_recorded(self):
        mpc = MPC(10, history=True)
        mpc.step(np.array([0, 1]))
        mpc.step(np.array([0, 0]))
        assert mpc.stats.served_per_step == [2, 1]
