"""Conformance and watchdog parity on the scalar engine.

The fuzz/canary machinery is engine-agnostic: the same seeded workload
must conform on both protocol engines, the q/2+1 stale-majority attack
must be pinned to the exact same (proc, round, var) set, and the
streaming watchdog must stay green.  This is what lets the scalar
oracle certify the vectorized production path end to end.
"""

import pytest

from repro.conformance.differential import (
    FuzzResult,
    run_fuzz,
    stale_majority_canary,
)
from repro.conformance.streaming import run_watchdog_canary, stream_fuzz
from repro.core.engine import ENGINES


class TestFuzzParity:
    def test_scalar_engine_conforms(self):
        result = run_fuzz(seed=0, total_ops=250, engine="scalar")
        assert result.ok
        assert result.engine == "scalar"
        assert len(result.rows) == 6
        for row in result.rows:
            assert row.ok and row.oracle_mismatches == 0

    def test_engines_agree_row_for_row(self):
        vec, sca = (
            run_fuzz(seed=4, total_ops=200, engine=e) for e in ENGINES
        )
        assert vec.engine == "vector" and sca.engine == "scalar"
        for rv, rs in zip(vec.rows, sca.rows):
            assert rv.scheme == rs.scheme
            assert rv.ops == rs.ops
            assert rv.ok == rs.ok
            assert rv.report.reads_checked == rs.report.reads_checked
            assert rv.report.writes_seen == rs.report.writes_seen

    def test_engine_round_trips_through_report(self):
        result = run_fuzz(seed=1, total_ops=80, engine="scalar")
        back = FuzzResult.from_dict(result.to_dict())
        assert back.engine == "scalar"
        # legacy records (no engine key) default to the vector engine
        d = result.to_dict()
        del d["engine"]
        assert FuzzResult.from_dict(d).engine == "vector"


class TestAttackParity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_stale_majority_pinned_exactly(self, engine):
        canary = stale_majority_canary(seed=0, engine=engine)
        assert canary.silent_wrong_reads > 0
        assert canary.detected
        flagged = {
            (v.proc, v.round, int(v.var))
            for v in canary.report.violations
        }
        assert set(canary.expected) <= flagged

    def test_attack_identity_matches_across_engines(self):
        vec, sca = (
            stale_majority_canary(seed=2, engine=e) for e in ENGINES
        )
        assert vec.expected == sca.expected
        assert vec.silent_wrong_reads == sca.silent_wrong_reads
        flags = [
            {(v.proc, v.round, int(v.var)) for v in c.report.violations}
            for c in (vec, sca)
        ]
        assert flags[0] == flags[1]


class TestWatchdogParity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_online_canary_green(self, engine):
        result = run_watchdog_canary(seed=0, engine=engine)
        assert result.detected_online
        assert result.control_clean
        assert result.ok

    def test_stream_fuzz_scalar_engine(self):
        result = stream_fuzz(
            scheme="pp2", total_ops=300, seed=0, window=8,
            engine="scalar",
        )
        assert result.report.ok
        assert result.events > 0 and result.rounds > 0
