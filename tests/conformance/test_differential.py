"""Differential fuzzing harness: six schemes vs the serial dict oracle,
sensitivity to planted bugs, the stale-majority canary, and a Hypothesis
stateful machine driving scheme + recorder + checker together."""

import numpy as np
from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro import obs
from repro.conformance.checker import ConsistencyChecker
from repro.conformance.differential import (
    FuzzResult,
    conformance_schemes,
    fuzz_scheme,
    render_markdown,
    run_fuzz,
    stale_majority_canary,
    write_report,
)
from repro.conformance.recorder import TraceRecorder
from repro.schemes.pp_adapter import PPAdapter
from repro.schemes.single_copy import SingleCopyScheme
from repro.workloads.generators import op_batches


class TestSchemeSet:
    def test_six_implementations(self):
        schemes = conformance_schemes()
        assert len(schemes) == 6
        assert len({(s.name, s.N, s.M) for s in schemes}) == 6

    def test_covers_both_pp_instances(self):
        qs = {s.scheme.q for s in conformance_schemes()
              if isinstance(s, PPAdapter)}
        assert qs == {2, 4}


class TestRunFuzz:
    def test_all_schemes_conform(self):
        result = run_fuzz(seed=0, total_ops=250)
        assert result.ok
        assert len(result.rows) == 6
        for row in result.rows:
            assert row.ok
            assert row.ops >= 250
            assert row.report.reads_checked > 0
            assert row.report.writes_seen > 0

    def test_workload_uses_common_domain(self):
        result = run_fuzz(seed=0, total_ops=100)
        assert result.M == min(s.M for s in conformance_schemes())

    def test_traces_written(self, tmp_path):
        run_fuzz(
            seed=1, total_ops=60,
            schemes=[SingleCopyScheme(16, 64)],
            trace_dir=str(tmp_path),
        )
        files = list(tmp_path.glob("trace_*.jsonl"))
        assert len(files) == 1 and files[0].stat().st_size > 0

    def test_dict_round_trip(self, tmp_path):
        result = run_fuzz(seed=2, total_ops=80,
                          schemes=[SingleCopyScheme(16, 64)])
        back = FuzzResult.from_dict(result.to_dict())
        assert back.ok == result.ok
        assert [r.scheme for r in back.rows] == [r.scheme for r in result.rows]
        md_path, json_path = write_report(result, str(tmp_path))
        assert "PASS" in open(md_path).read()
        assert json_path.endswith(".json")

    def test_render_lists_every_scheme(self):
        result = run_fuzz(seed=0, total_ops=60)
        text = render_markdown(result)
        for row in result.rows:
            assert row.scheme in text
        assert "**Overall: PASS**" in text


class _AliasingScheme(SingleCopyScheme):
    """Planted bug: variables 2k and 2k+1 share one physical cell, so
    writes to one silently clobber the other."""

    name = "aliasing-bug"

    def placement(self, indices):
        return super().placement(np.asarray(indices, dtype=np.int64) // 2 * 2)

    def slots(self, indices, modules):
        return super().slots(
            np.asarray(indices, dtype=np.int64) // 2 * 2, modules
        )


class TestSensitivity:
    def test_planted_aliasing_bug_caught(self):
        plan = op_batches(64, 300, seed=3)
        row = fuzz_scheme(_AliasingScheme(16, 64), plan)
        assert not row.ok
        assert row.oracle_mismatches > 0
        assert not row.report.ok

    def test_failing_scheme_renders_violations(self):
        result = run_fuzz(seed=3, total_ops=300,
                          schemes=[_AliasingScheme(16, 64)])
        text = render_markdown(result)
        assert "FAIL" in text and "## Violations: aliasing-bug" in text


class TestStaleMajorityCanary:
    def test_checker_catches_silent_majority_corruption(self):
        canary = stale_majority_canary(seed=0)
        assert canary.silent_wrong_reads > 0
        assert canary.detected
        # every silently-wrong read is flagged at its exact identity
        flagged = {(v.proc, v.round, int(v.var))
                   for v in canary.report.violations}
        for where in canary.expected:
            assert where in flagged
        assert all(v.kind == "stale-read" for v in canary.report.violations)

    def test_canary_identifies_round_three_reads(self):
        canary = stale_majority_canary(seed=1)
        assert canary.expected
        assert all(r == 3 for (_, r, _) in canary.expected)


class ConformanceMachine(RuleBasedStateMachine):
    """Random interleaved batches on the q=2 scheme, mirrored in a dict;
    on teardown the recorded trace must satisfy the checker."""

    def __init__(self):
        super().__init__()
        self.sch = PPAdapter(2, 3)
        self.store = self.sch.make_store()
        self.model: dict[int, int] = {}
        self.t = 0
        self.rec = TraceRecorder()
        self.prev = obs.set_tracer(self.rec)

    @rule(seed=st.integers(0, 2**16), size=st.integers(1, 12),
          salt=st.integers(0, 2**16))
    def write_batch(self, seed, size, salt):
        self.t += 1
        idx = self.sch.random_request_set(size, seed=seed)
        vals = (idx * 31 + salt) % (1 << 20)
        self.sch.write(idx, values=vals, store=self.store, time=self.t)
        for v, x in zip(idx, vals):
            self.model[int(v)] = int(x)

    @rule(seed=st.integers(0, 2**16), size=st.integers(1, 12))
    def read_batch(self, seed, size):
        self.t += 1
        idx = self.sch.random_request_set(size, seed=seed)
        res = self.sch.read(idx, store=self.store, time=self.t)
        want = [self.model.get(int(v), -1) for v in idx]
        assert list(res.values) == want

    def teardown(self):
        obs.set_tracer(self.prev if self.prev.enabled else None)
        report = ConsistencyChecker().check_mem_ops(self.rec.mem_ops())
        assert report.ok, report.render()


ConformanceMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=20
)

TestConformanceStateful = ConformanceMachine.TestCase
