"""Tests for the streaming checker, the watchdog, and the online canary.

The contract under test: the incremental windowed checker must agree
with the whole-trace batch checker on every verdict (same violations,
pinned to the same (processor, round, variable)) while holding state
bounded by the window, not the trace length -- and the watchdog built on
it must flag the q/2+1 stale-majority attack while the run is still
going.
"""

import pytest

from repro import obs
from repro.conformance.checker import ConsistencyChecker
from repro.conformance.recorder import KvOp, MemOp, record
from repro.conformance.streaming import (
    SCHEME_KEYS,
    StreamingChecker,
    Watchdog,
    run_watchdog_canary,
    scheme_by_key,
    stream_fuzz,
)
from repro.faults.attacks import build_stale_majority, payload_values
from repro.obs.stream import EventBus
from repro.workloads.generators import op_batches


@pytest.fixture(autouse=True)
def clean_bus():
    obs.set_bus(None)
    yield
    obs.set_bus(None)


def mem(op, var, value, round_, proc=0, lost=False, seq=0):
    return MemOp(
        op=op, var=var, value=value, round=round_, proc=proc, phase=0,
        lost=lost, seq=seq,
    )


def violation_keys(report):
    return sorted(
        (v.kind, v.proc, v.round, int(v.var)) for v in report.violations
    )


class TestStreamingChecker:
    def test_window_validated(self):
        with pytest.raises(ValueError, match="window"):
            StreamingChecker(window=0)

    def test_clean_sequence(self):
        sc = StreamingChecker(window=2)
        sc.feed_mem(mem("write", 7, 1, 1, seq=1))
        sc.feed_mem(mem("read", 7, 1, 2, seq=2))
        rep = sc.finish()
        assert rep.ok
        assert sc.retired_through == sc.high == 2

    def test_stale_read_flagged_when_round_closes(self):
        hits = []
        sc = StreamingChecker(window=2, on_violation=hits.append)
        sc.feed_mem(mem("write", 7, 1, 1, seq=1))
        sc.feed_mem(mem("write", 7, 2, 2, seq=2))
        sc.feed_mem(mem("read", 7, 1, 3, proc=4, seq=3))  # stale answer
        assert not hits  # round 3 still open
        sc.feed_mem(mem("write", 9, 5, 6, seq=4))  # advances past 3+window
        assert len(hits) == 1
        v = hits[0]
        assert (v.kind, v.proc, v.round, int(v.var)) == ("stale-read", 4, 3, 7)

    def test_out_of_order_within_window_is_resorted(self):
        # reads of a round arriving before its writes must still check
        # against that round's writes (arbitration order, not arrival)
        sc = StreamingChecker(window=4)
        sc.feed_mem(mem("read", 3, 8, 2, seq=5))
        sc.feed_mem(mem("write", 3, 8, 2, seq=4))
        sc.feed_mem(mem("write", 3, 7, 1, seq=1))
        assert sc.finish().ok

    def test_late_arrival_counted_not_checked(self):
        sc = StreamingChecker(window=1)
        sc.feed_mem(mem("write", 1, 1, 1, seq=1))
        sc.feed_mem(mem("write", 1, 2, 5, seq=2))  # closes rounds <= 4
        assert sc.retired_through == 4
        sc.feed_mem(mem("read", 1, 999, 2, seq=3))  # round 2 already closed
        assert sc.late_dropped == 1
        assert sc.finish().ok

    def test_kv_stream(self):
        sc = StreamingChecker(window=2)
        sc.feed_kv(KvOp(op="put", key="a", value=1, round=1, seq=1))
        sc.feed_kv(KvOp(op="get", key="a", value=2, round=2, seq=2))
        rep = sc.finish()
        assert not rep.ok
        assert rep.violations[0].kind == "kv-stale-get"

    def test_feed_event_routes_and_ignores_others(self):
        sc = StreamingChecker()
        sc.feed_event(
            {"name": "mem.op", "op": "write", "var": 1, "value": 2,
             "round": 1, "proc": 0, "phase": 0, "lost": False, "seq": 1}
        )
        sc.feed_event({"name": "protocol.health", "round": 1})
        assert sc.events_fed == 1
        assert sc.finish().ok

    def test_state_retired_behind_window(self):
        # 500 rewrites of one variable: past-value history older than
        # the window must be retired, so peak state stays near the
        # window size, not the write count
        sc = StreamingChecker(window=4)
        for t in range(1, 500):
            sc.feed_mem(mem("write", 1, t, t, seq=t))
        assert sc.peak_state < 4 * sc.window
        assert sc.finish().ok

    def test_verdict_independent_of_window(self):
        ops = [
            mem("write", 1, 10, 1, seq=1),
            mem("write", 1, 20, 2, seq=2),
            mem("read", 1, 10, 30, proc=2, seq=3),  # stale, far later
        ]
        for w in (1, 4, 64):
            sc = StreamingChecker(window=w)
            for o in ops:
                sc.feed_mem(o)
            rep = sc.finish()
            assert not rep.ok, f"window={w} missed the violation"
            v = rep.violations[0]
            assert (v.proc, v.round, int(v.var)) == (2, 30, 1)
        # naming precision: inside the window the old value is *named*
        # stale; far outside it the divergence degrades to phantom-read
        wide = StreamingChecker(window=64)
        narrow = StreamingChecker(window=1)
        for o in ops:
            wide.feed_mem(o)
            narrow.feed_mem(o)
        assert wide.finish().violations[0].kind == "stale-read"
        assert narrow.finish().violations[0].kind == "phantom-read"


def replay_recorded(scheme, total_ops, seed, max_batch=32):
    """One seeded workload -> (recorded trace ops, scheme)."""
    plan = op_batches(
        scheme.M, total_ops, seed=seed, max_batch=min(max_batch, scheme.M)
    )
    store = scheme.make_store()
    with record() as rec:
        for t, (kind, idx) in enumerate(plan, start=1):
            if kind == "write":
                scheme.write(
                    idx, values=payload_values(t, idx), store=store, time=t
                )
            else:
                scheme.read(idx, store=store, time=t)
    return rec.mem_ops()


class TestBatchParity:
    """The streaming checker's acceptance bar: identical violation sets
    (kind, proc, round, var) to the batch checker on the same trace."""

    @pytest.mark.parametrize("key", SCHEME_KEYS)
    def test_parity_on_clean_fuzz(self, key):
        scheme = scheme_by_key(key)
        ops = replay_recorded(scheme, 2000, seed=11)
        assert len(ops) >= 2000
        batch = ConsistencyChecker().check_mem_ops(ops)
        sc = StreamingChecker(window=8)
        for o in ops:
            sc.feed_mem(o)
        stream = sc.finish()
        assert violation_keys(stream) == violation_keys(batch)
        assert stream.ok and batch.ok
        assert sc.peak_state < len(ops)

    def test_parity_on_violating_trace(self):
        # the stale-majority attack trace: both checkers must flag the
        # exact same (kind, proc, round, var) set -- and it is non-empty
        attack = build_stale_majority(seed=0)
        with record() as rec:
            attack.seed_history()
            attack.go_stale()
            res = attack.read(time=3)
            for t in range(4, 10):
                attack.write_tail(time=t, values=payload_values(t, attack.idx))
        expected, silent_wrong = attack.victim_verdict(res, time=3)
        assert silent_wrong > 0
        ops = rec.mem_ops()
        batch = ConsistencyChecker().check_mem_ops(ops)
        sc = StreamingChecker(window=8)
        for o in ops:
            sc.feed_mem(o)
        stream = sc.finish()
        keys = violation_keys(stream)
        assert keys == violation_keys(batch)
        assert {("stale-read", p, r, v) for p, r, v in expected} <= set(keys)

    def test_parity_shuffled_arrival_within_rounds(self):
        # bus arrival order within a round is arbitrary; parity must
        # survive a deterministic scramble
        scheme = scheme_by_key("pp2")
        ops = replay_recorded(scheme, 600, seed=5)
        batch = ConsistencyChecker().check_mem_ops(ops)
        scrambled = sorted(ops, key=lambda o: (o.round, (o.seq * 7919) % 104729))
        sc = StreamingChecker(window=8)
        for o in scrambled:
            sc.feed_mem(o)
        assert violation_keys(sc.finish()) == violation_keys(batch)


class TestBoundedMemory:
    def test_million_ops_bounded_state(self):
        # >= 10^6 synthetic ops: peak retained state must stay under a
        # fixed window budget, orders of magnitude below the op count
        n_vars = 256
        window = 8
        sc = StreamingChecker(window=window)
        seq = 0
        total = 1_000_000
        rounds = total // n_vars
        current = [0] * n_vars
        for t in range(1, rounds + 1):
            write_round = t % 2 == 1
            for v in range(n_vars):
                seq += 1
                if write_round:
                    current[v] = t * n_vars + v
                    sc.feed_mem(mem("write", v, current[v], t, proc=v, seq=seq))
                else:
                    sc.feed_mem(mem("read", v, current[v], t, proc=v, seq=seq))
        assert sc.events_fed == rounds * n_vars
        assert sc.events_fed >= 1_000_000 - n_vars
        rep = sc.finish()
        assert rep.ok
        # budget: open-window buffer + ~2 windows of per-var past state
        budget = n_vars * 2 * window
        assert sc.peak_state <= budget, (
            f"peak state {sc.peak_state} busts the window budget {budget}"
        )


class TestWatchdog:
    def test_watchdog_flags_protocol_violation_via_bus(self):
        attack = build_stale_majority(seed=1)
        bus = EventBus()
        dog = Watchdog(bus, window=4)
        prev = obs.set_bus(bus)
        try:
            attack.seed_history()
            attack.go_stale()
            res = attack.read(time=3)
            for t in range(4, 10):
                attack.write_tail(time=t, values=payload_values(t, attack.idx))
                dog.poll()
        finally:
            obs.set_bus(prev)
        dog.finish()
        expected, silent_wrong = attack.victim_verdict(res, time=3)
        assert silent_wrong > 0
        assert dog.violations_seen >= silent_wrong
        assert not dog.ok
        snap = dog.registry.snapshot()
        assert snap["watch.violations"]["value"] == dog.violations_seen
        assert snap["watch.batches"]["value"] > 0

    def test_bounded_queue_drops_are_visible(self):
        bus = EventBus()
        dog = Watchdog(bus, queue_capacity=4)
        for i in range(10):
            bus.publish("mem.op", {
                "op": "write", "var": i, "value": 1, "round": 1,
                "proc": 0, "phase": 0, "lost": False,
            })
        dog.poll()
        assert dog.subscription.dropped == 6
        snap = dog.registry.snapshot()
        assert snap["watch.events_dropped"]["value"] == 6

    def test_detach_stops_delivery(self):
        bus = EventBus()
        dog = Watchdog(bus)
        dog.detach()
        bus.publish("protocol.health", {"round": 1})
        assert dog.poll() == 0
        assert bus.n_subscriptions == 0

    def test_snapshot_reflects_health(self):
        bus = EventBus()
        dog = Watchdog(bus)
        bus.publish("protocol.health", {
            "op": "write", "round": 6, "requests": 12, "lost": 1,
            "degraded": 2, "quorum_margin": 0, "iterations": 3,
            "load_skew": 100,
        })
        dog.poll()
        snap = dog.snapshot()
        assert snap.round == 6
        assert snap.requests == 12
        assert snap.lost == 1 and snap.degraded == 2
        assert snap.min_quorum_margin == 0
        assert dog.snapshots == [snap]
        assert snap.to_dict()["round"] == 6


class TestOnlineCanary:
    def test_attack_detected_mid_run_and_control_clean(self):
        result = run_watchdog_canary(seed=0, window=8)
        assert result.silent_wrong_reads > 0
        # flagged while the run was still issuing batches
        assert result.detected_at_round is not None
        assert result.detected_at_round < result.last_round
        # pinned to the exact (processor, round, variable) set
        assert set(result.expected) <= result.flagged
        assert result.detected_online
        # <= q/2 control: zero violations, visibly degraded
        assert result.control_violations == 0
        assert result.control_degraded > 0
        assert result.control_clean
        assert result.ok
        d = result.to_dict()
        assert d["ok"] and d["schema"] == 1
        assert d["detected_at_round"] == result.detected_at_round

    def test_restores_previous_bus(self):
        sentinel = EventBus()
        obs.set_bus(sentinel)
        run_watchdog_canary(seed=0)
        assert obs.bus() is sentinel


class TestStreamFuzz:
    def test_clean_run_and_memory_bound(self):
        seen = []
        result = stream_fuzz(
            scheme="pp2", total_ops=1200, seed=2, window=8,
            snapshot_every=25, on_snapshot=seen.append,
        )
        assert result.ok
        assert result.events >= 1200
        assert result.events_dropped == 0
        assert result.peak_state < result.events
        assert result.snapshots and seen
        assert "watch.batches" in result.metrics
        d = result.to_dict()
        assert d["ok"] and d["schema"] == 1

    def test_leaves_no_bus_installed(self):
        stream_fuzz(scheme="pp2", total_ops=200, seed=0)
        assert obs.bus() is None
        assert not obs.enabled()

    def test_scheme_keys_cover_conformance_set(self):
        from repro.cli import _WATCH_SCHEMES
        from repro.conformance.differential import conformance_schemes

        assert tuple(_WATCH_SCHEMES) == SCHEME_KEYS
        assert len(SCHEME_KEYS) == len(conformance_schemes())
        for key in SCHEME_KEYS:
            assert scheme_by_key(key).M > 0

    def test_unknown_scheme_key_raises(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            scheme_by_key("nope")
