"""`repro conform fuzz|check|report`: exit codes, artifacts, rendering."""

import json

from repro.cli import main
from repro.conformance.differential import REPORT_BASENAME
from repro.conformance.recorder import record
from repro.schemes.pp_adapter import PPAdapter


def _small_fuzz_args(tmp_path, *extra):
    return [
        "conform", "fuzz", "--seed", "0", "--ops", "60",
        "--out", str(tmp_path), *extra,
    ]


class TestConformFuzz:
    def test_green_run_exits_zero(self, capsys, tmp_path):
        assert main(_small_fuzz_args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "**Overall: PASS**" in out
        assert "Stale-majority canary: DETECTED" in out

    def test_writes_report_pair(self, tmp_path):
        main(_small_fuzz_args(tmp_path))
        md = tmp_path / (REPORT_BASENAME + ".md")
        js = tmp_path / (REPORT_BASENAME + ".json")
        assert md.exists() and js.exists()
        data = json.loads(js.read_text())
        assert data["ok"] and len(data["rows"]) == 6

    def test_no_canary_flag(self, capsys, tmp_path):
        assert main(_small_fuzz_args(tmp_path, "--no-canary")) == 0
        assert "canary" not in capsys.readouterr().out

    def test_trace_dir_artifacts(self, tmp_path):
        traces = tmp_path / "traces"
        main(_small_fuzz_args(tmp_path, "--trace-dir", str(traces)))
        assert len(list(traces.glob("trace_*.jsonl"))) == 6

    def test_skip_writing_with_dash(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # guard against writing to the default dir
        assert main(["conform", "fuzz", "--seed", "0", "--ops", "40",
                     "--out", "-"]) == 0
        assert not (tmp_path / "benchmarks").exists()


class TestConformCheck:
    def _write_trace(self, tmp_path, corrupt=False):
        sch = PPAdapter(2, 3)
        idx = sch.random_request_set(8, seed=0)
        store = sch.make_store()
        with record() as rec:
            sch.write(idx, values=idx * 3, store=store, time=1)
            sch.read(idx, store=store, time=2)
        if corrupt:
            for e in rec.events:
                if e.get("name") == "mem.op" and e["op"] == "read":
                    e["value"] += 1  # silently wrong read
                    break
        path = str(tmp_path / ("bad.jsonl" if corrupt else "good.jsonl"))
        rec.write_jsonl(path)
        return path

    def test_clean_trace_passes(self, capsys, tmp_path):
        path = self._write_trace(tmp_path)
        assert main(["conform", "check", path]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_corrupt_trace_fails(self, capsys, tmp_path):
        path = self._write_trace(tmp_path, corrupt=True)
        assert main(["conform", "check", path]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "inconsistent" in captured.err

    def test_multiple_traces_one_bad(self, tmp_path):
        good = self._write_trace(tmp_path)
        bad = self._write_trace(tmp_path, corrupt=True)
        assert main(["conform", "check", good, bad]) == 1

    def test_missing_file_is_error(self, tmp_path):
        assert main(["conform", "check", str(tmp_path / "nope.jsonl")]) == 2


class TestConformReport:
    def test_round_trip(self, capsys, tmp_path):
        main(_small_fuzz_args(tmp_path))
        capsys.readouterr()
        assert main(["conform", "report", "--dir", str(tmp_path)]) == 0
        assert "**Overall: PASS**" in capsys.readouterr().out

    def test_failing_stored_report_exits_nonzero(self, capsys, tmp_path):
        main(_small_fuzz_args(tmp_path))
        js = tmp_path / (REPORT_BASENAME + ".json")
        data = json.loads(js.read_text())
        data["rows"][0]["oracle_mismatches"] = 3
        js.write_text(json.dumps(data))
        assert main(["conform", "report", "--dir", str(tmp_path)]) == 1

    def test_missing_report_is_error(self, tmp_path):
        assert main(["conform", "report", "--dir", str(tmp_path)]) == 2
