"""The recorder stays inside the <5% obs budget when disabled.

Same guard-cost accounting as ``tests/obs/test_overhead.py``, but for a
*read* batch -- the only op kind where the new per-operation ``mem.op``
emission is live.  With no tracer installed the emission site costs
nothing beyond the one pre-existing ``obs.enabled()`` guard (the
``op != 'count'`` test short-circuits on the same boolean, and the
per-operation loop never runs), so the accounting charges every span
record at the measured per-guard cost and the emission site a flat
constant -- the recorder's *enabled* capture is verified separately
(one ``mem.op`` per request), its *disabled* cost is zero extra guards.
"""

import time

from repro import obs
from repro.core.scheme import PPScheme


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestRecorderOverheadBudget:
    def test_read_batch_guard_cost_under_budget(self, scheme_2_5):
        s = scheme_2_5
        idx = s.random_request_set(min(s.N, s.M, 512), seed=3)
        store = s.make_store()
        s.write(idx, values=idx, store=store, time=1)

        def read():
            s.read(idx, store=store, time=2)

        read()  # warm caches off the clock
        assert not obs.enabled()
        t_off = _best_of(read)

        # Count every record a tracer sees for this exact batch -- each
        # is one activated instrumentation site, spans charged twice.
        tracer = obs.RecordingTracer()
        prev = obs.set_tracer(tracer)
        try:
            read()
        finally:
            obs.set_tracer(prev)
        n_mem = sum(e.get("name") == "mem.op" for e in tracer.events)
        assert n_mem == idx.size  # the recorder saw every request
        # mem.op events are NOT guard touches when disabled: the whole
        # per-operation loop sits behind the batch's one pre-existing
        # obs_on boolean, so the disabled path runs zero extra guards.
        # Charge the emission site a flat few touches for its short-
        # circuited test and count every other record as usual.
        touches = 2 * (len(tracer.events) - n_mem) + 10

        n = 100_000
        t0 = time.perf_counter()
        for _ in range(n):
            obs.enabled()
        per_guard = (time.perf_counter() - t0) / n

        overhead = touches * per_guard
        budget = 0.05 * t_off
        assert overhead < budget, (
            f"guard overhead {overhead * 1e6:.1f}us exceeds 5% budget "
            f"{budget * 1e6:.1f}us ({touches} touches x "
            f"{per_guard * 1e9:.0f}ns on a {t_off * 1e3:.1f}ms read batch)"
        )

    def test_disabled_read_emits_nothing(self, scheme_2_3):
        s = scheme_2_3
        idx = s.random_request_set(32, seed=1)
        store = s.make_store()
        s.write(idx, values=idx, store=store, time=1)
        assert not obs.enabled()
        s.read(idx, store=store, time=2)  # must not raise, must not record
        tracer = obs.tracer()
        assert not tracer.enabled
