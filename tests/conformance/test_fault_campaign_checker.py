"""The checker inside the E13 fault campaign (ISSUE satellite).

Below the paper's q/2 threshold the majority protocol masks every fault,
so a recorded run under tolerated attacks must produce a violation-free
trace; just past it (q/2 + 1 stale copies, fresh remnant unreachable)
the protocol returns wrong values *silently* -- and the checker, not the
protocol, is what flags them.  This closes the loop on E13: the campaign
shows the threshold exists, the checker proves it is observable from
traces alone.
"""

import numpy as np
import pytest

from repro.conformance.checker import ConsistencyChecker
from repro.conformance.differential import stale_majority_canary
from repro.conformance.recorder import record
from repro.faults.models import (
    FaultContext,
    StaleCopies,
    TargetedAttack,
    disjoint_victims,
)
from repro.schemes.pp_adapter import PPAdapter


@pytest.fixture(scope="module")
def setup():
    sch = PPAdapter(2, 3)
    idx = sch.random_request_set(48, seed=0)
    modules = sch.placement(idx)
    slots = sch.slots(idx, modules)
    ctx = FaultContext(sch.N, modules, sch.read_quorum, slots=slots)
    victims = disjoint_victims(modules, 4)
    return sch, idx, modules, slots, ctx, victims


def _propagate(store, modules, slots, values, time):
    store.write(
        modules, slots, np.broadcast_to(values[:, None], modules.shape), time
    )


class TestBelowThreshold:
    def test_killed_copies_within_tolerance_zero_violations(self, setup):
        sch, idx, modules, slots, ctx, victims = setup
        vals = (idx * 7 + 3) % (1 << 20)
        store = sch.make_store()
        retry = 64 * (idx.size + ctx.copies)
        with record() as rec:
            sch.write(idx, values=vals, store=store, time=1)
            plan = TargetedAttack(
                copies_per_victim=ctx.tolerance, victims=victims
            ).plan(ctx, 1.0, seed=0)
            res = sch.read(
                idx, store=store, time=2, retry_limit=retry,
                **plan.access_kwargs(),
            )
        assert res.unsatisfiable is None
        report = ConsistencyChecker().check_mem_ops(rec.mem_ops())
        assert report.ok, report.render()
        assert report.reads_checked == idx.size

    def test_stale_copies_within_tolerance_zero_violations(self, setup):
        sch, idx, modules, slots, ctx, victims = setup
        old_vals = (idx * 5 + 1) % (1 << 20)
        vals = (idx * 7 + 3) % (1 << 20)
        store = sch.make_store()
        with record() as rec:
            sch.write(idx, values=old_vals, store=store, time=1)
            sch.write(idx, values=vals, store=store, time=2)
            _propagate(store, modules, slots, old_vals, 1)
            _propagate(store, modules, slots, vals, 2)
            plan = StaleCopies(
                copies_per_victim=ctx.tolerance, victims=victims
            ).plan(ctx, 1.0, seed=0)
            StaleCopies.apply(plan, store, ctx, old_vals, 1)
            res = sch.read(idx, store=store, time=3)
        # a fresh majority still exists: the protocol masks the rollback
        assert np.array_equal(res.values, vals)
        report = ConsistencyChecker().check_mem_ops(rec.mem_ops())
        assert report.ok, report.render()


class TestPastThreshold:
    def test_silent_majority_corruption_flagged(self):
        canary = stale_majority_canary(seed=0)
        # the protocol itself reported nothing: the reads came back
        # wrong without being marked lost
        assert canary.silent_wrong_reads > 0
        # ... and the checker flags exactly those reads, by identity
        assert canary.detected
        assert canary.report.n_violations == canary.silent_wrong_reads

    def test_total_kill_is_reported_not_silent(self, setup):
        # killing q/2 + 1 copies makes the quorum unreachable: the
        # protocol *reports* the loss, so the checker has nothing to
        # flag -- the trace is honest about the failure
        sch, idx, modules, slots, ctx, victims = setup
        vals = (idx * 7 + 3) % (1 << 20)
        store = sch.make_store()
        retry = 64 * (idx.size + ctx.copies)
        with record() as rec:
            sch.write(idx, values=vals, store=store, time=1)
            plan = TargetedAttack(
                copies_per_victim=ctx.tolerance + 1, victims=victims
            ).plan(ctx, 1.0, seed=0)
            res = sch.read(
                idx, store=store, time=2, retry_limit=retry,
                **plan.access_kwargs(),
            )
        assert res.unsatisfiable is not None
        assert set(victims) <= set(int(v) for v in res.unsatisfiable)
        report = ConsistencyChecker().check_mem_ops(rec.mem_ops())
        assert report.ok, report.render()
        assert report.lost_exempt >= victims.size
