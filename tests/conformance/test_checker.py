"""ConsistencyChecker: serial-memory-per-variable semantics on synthetic
operation sequences (every violation class, arbitration, taint, limits)."""

import pytest

from repro.conformance.checker import (
    ConsistencyChecker,
    Violation,
    ViolationReport,
)
from repro.conformance.recorder import KvOp, MemOp

_SEQ = iter(range(10_000_000))


def mem(op, var, value, round, proc=0, lost=False):
    return MemOp(
        op=op, var=var, value=value, round=round, proc=proc, phase=0,
        lost=lost, seq=next(_SEQ),
    )


def kv(op, key, value, round):
    return KvOp(op=op, key=key, value=value, round=round, seq=next(_SEQ))


def check(ops, **kw):
    return ConsistencyChecker(**kw).check_mem_ops(ops)


class TestCleanTraces:
    def test_empty_trace_ok(self):
        rep = check([])
        assert rep.ok and rep.n_violations == 0

    def test_write_then_read(self):
        rep = check([mem("write", 1, 5, 1), mem("read", 1, 5, 2)])
        assert rep.ok
        assert rep.reads_checked == 1 and rep.writes_seen == 1

    def test_unwritten_read_returns_minus_one(self):
        assert check([mem("read", 7, -1, 1)]).ok

    def test_overwrite_visible(self):
        rep = check([
            mem("write", 1, 5, 1),
            mem("write", 1, 9, 2),
            mem("read", 1, 9, 3),
        ])
        assert rep.ok

    def test_read_sorted_after_same_round_write(self):
        # a read carrying the round's new value is consistent: writes
        # become visible at their timestamp
        ops = [mem("read", 1, 5, 1), mem("write", 1, 5, 1)]
        assert check(ops).ok

    def test_unsorted_input_is_sorted_by_round(self):
        ops = [
            mem("read", 1, 9, 3),
            mem("write", 1, 9, 2),
            mem("write", 1, 5, 1),
        ]
        assert check(ops).ok


class TestViolationClasses:
    def test_stale_read_flagged_with_identity(self):
        rep = check([
            mem("write", 4, 10, 1),
            mem("write", 4, 20, 2),
            mem("read", 4, 10, 3, proc=7),
        ])
        assert not rep.ok
        v = rep.violations[0]
        assert v.kind == "stale-read"
        assert (v.proc, v.round, v.var) == (7, 3, "4")
        assert v.expected == 20 and v.observed == 10
        assert "processor 7" in v.describe()

    def test_phantom_read_never_written(self):
        rep = check([mem("read", 2, 42, 1)])
        assert rep.violations[0].kind == "phantom-read"

    def test_phantom_read_unknown_value(self):
        rep = check([mem("write", 2, 5, 1), mem("read", 2, 999, 2)])
        assert rep.violations[0].kind == "phantom-read"

    def test_dropped_read(self):
        rep = check([mem("write", 2, 5, 1), mem("read", 2, -1, 2)])
        assert rep.violations[0].kind == "dropped-read"


class TestArbitration:
    def test_same_round_larger_value_wins(self):
        # the protocol packs (stamp << 32) | value and takes the max, so
        # of two same-round writes the larger value is the winner
        ops = [mem("write", 1, 5, 1), mem("write", 1, 9, 1)]
        assert check(ops + [mem("read", 1, 9, 2)]).ok
        rep = check(ops + [mem("read", 1, 5, 2)])
        assert rep.violations[0].kind == "stale-read"

    def test_same_round_order_of_emission_irrelevant(self):
        ops = [mem("write", 1, 9, 1), mem("write", 1, 5, 1)]
        assert check(ops + [mem("read", 1, 9, 2)]).ok


class TestLostOperations:
    def test_lost_read_exempt(self):
        rep = check([
            mem("write", 1, 5, 1),
            mem("read", 1, -1, 2, lost=True),
        ])
        assert rep.ok and rep.lost_exempt == 1
        assert rep.reads_checked == 0

    def test_lost_write_taints_both_values(self):
        base = [mem("write", 1, 5, 1), mem("write", 1, 9, 2, lost=True)]
        old = check(base + [mem("read", 1, 5, 3)])
        new = check(base + [mem("read", 1, 9, 3)])
        assert old.ok and old.tainted_accepted == 0  # old value is expected
        assert new.ok and new.tainted_accepted == 1

    def test_lost_write_third_value_still_flagged(self):
        rep = check([
            mem("write", 1, 5, 1),
            mem("write", 1, 9, 2, lost=True),
            mem("read", 1, 77, 3),
        ])
        assert not rep.ok

    def test_lost_first_write_taints_empty(self):
        rep = check([
            mem("write", 1, 9, 1, lost=True),
            mem("read", 1, -1, 2),
        ])
        assert rep.ok

    def test_successful_write_clears_taint(self):
        rep = check([
            mem("write", 1, 5, 1),
            mem("write", 1, 9, 2, lost=True),
            mem("write", 1, 30, 3),
            mem("read", 1, 9, 4),
        ])
        assert not rep.ok
        assert rep.violations[0].kind == "stale-read"


class TestKvSemantics:
    def test_dict_model(self):
        rep = ConsistencyChecker().check_kv_ops([
            kv("put", "a", 1, 1),
            kv("get", "a", 1, 2),
            kv("get", "b", -1, 2),
            kv("delete", "a", 0, 3),
            kv("get", "a", -1, 4),
        ])
        assert rep.ok and rep.kv_checked == 5

    def test_wrong_get_flagged(self):
        rep = ConsistencyChecker().check_kv_ops([
            kv("put", "a", 1, 1),
            kv("put", "a", 2, 2),
            kv("get", "a", 1, 3),
        ])
        assert rep.violations[0].kind == "kv-stale-get"
        assert rep.violations[0].var == "a"

    def test_phantom_get_flagged(self):
        rep = ConsistencyChecker().check_kv_ops([kv("get", "z", 3, 1)])
        assert rep.violations[0].kind == "kv-phantom-get"


class TestCheckEvents:
    def test_merges_both_disciplines(self):
        events = [
            {"name": "mem.op", "op": "write", "var": 1, "value": 5,
             "round": 1, "proc": 0, "phase": 0, "lost": False, "seq": 0},
            {"name": "mem.op", "op": "read", "var": 1, "value": 4,
             "round": 2, "proc": 0, "phase": 0, "lost": False, "seq": 1},
            {"name": "kv.op", "op": "get", "key": "a", "value": 3,
             "round": 1, "seq": 2},
            {"name": "protocol.access", "type": "span", "seq": 3},
        ]
        rep = ConsistencyChecker().check_events(events)
        assert rep.n_violations == 2
        kinds = {v.kind for v in rep.violations}
        assert kinds == {"phantom-read", "kv-phantom-get"}


class TestReportMachinery:
    def test_truncation_cap(self):
        ops = [mem("read", i, 42, 1, proc=i) for i in range(10)]
        rep = check(ops, max_violations=3)
        assert len(rep.violations) == 3
        assert rep.truncated == 7
        assert rep.n_violations == 10 and not rep.ok

    def test_cap_validated(self):
        with pytest.raises(ValueError):
            ConsistencyChecker(max_violations=0)

    def test_dict_round_trip(self):
        rep = check([mem("write", 1, 5, 1), mem("read", 1, 3, 2)])
        back = ViolationReport.from_dict(rep.to_dict())
        assert back.violations == rep.violations
        assert back.ok == rep.ok
        assert back.reads_checked == rep.reads_checked

    def test_render_pass_and_fail(self):
        assert "PASS" in check([mem("write", 1, 5, 1)]).render()
        text = check([mem("read", 1, 5, 1)]).render()
        assert "FAIL" in text and "phantom-read" in text

    def test_render_mentions_truncation(self):
        ops = [mem("read", i, 42, 1) for i in range(5)]
        assert "more" in check(ops, max_violations=2).render()

    def test_merge_accumulates(self):
        a = check([mem("read", 1, 5, 1)])
        b = check([mem("write", 2, 5, 1), mem("read", 2, 5, 2)])
        merged = a.merge(b)
        assert merged is a
        assert merged.n_violations == 1
        assert merged.reads_checked == 2 and merged.writes_seen == 1

    def test_violation_is_hashable(self):
        v = Violation("stale-read", "1", 2, 3, 4, 5)
        assert v in {v}
