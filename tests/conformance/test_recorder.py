"""TraceRecorder: per-operation mem.op / kv.op capture and round trips."""

import numpy as np
import pytest

from repro import obs
from repro.conformance.recorder import (
    KV_EVENT,
    MEM_EVENT,
    TraceRecorder,
    load_kv_ops,
    load_mem_ops,
    record,
)
from repro.kvstore.store import ParallelKVStore
from repro.schemes.pp_adapter import PPAdapter

_SCH = PPAdapter(2, 3)


class TestMemOpCapture:
    def test_one_event_per_request(self):
        idx = _SCH.random_request_set(16, seed=0)
        store = _SCH.make_store()
        with record() as rec:
            _SCH.write(idx, values=idx * 3, store=store, time=1)
            _SCH.read(idx, store=store, time=2)
        assert rec.n_mem_ops() == 2 * idx.size
        writes = [o for o in rec.mem_ops() if o.op == "write"]
        reads = [o for o in rec.mem_ops() if o.op == "read"]
        assert len(writes) == len(reads) == idx.size

    def test_fields_match_batch(self):
        idx = _SCH.random_request_set(8, seed=1)
        store = _SCH.make_store()
        with record() as rec:
            _SCH.write(idx, values=idx + 100, store=store, time=5)
        ops = rec.mem_ops()
        assert [o.var for o in ops] == [int(v) for v in idx]
        assert [o.value for o in ops] == [int(v) + 100 for v in idx]
        assert all(o.round == 5 for o in ops)
        assert [o.proc for o in ops] == list(range(idx.size))
        assert not any(o.lost for o in ops)

    def test_read_values_recorded(self):
        idx = _SCH.random_request_set(8, seed=2)
        store = _SCH.make_store()
        _SCH.write(idx, values=idx * 7, store=store, time=1)
        with record() as rec:
            res = _SCH.read(idx, store=store, time=2)
        got = [o.value for o in rec.mem_ops()]
        assert got == [int(v) for v in res.values]

    def test_where_identity(self):
        idx = np.array([3, 9], dtype=np.int64)
        store = _SCH.make_store()
        with record() as rec:
            _SCH.write(idx, values=idx, store=store, time=1)
        assert rec.mem_ops()[1].where == (1, 1, 9)

    def test_core_scheme_also_emits(self, scheme_2_3):
        idx = scheme_2_3.random_request_set(12, seed=3)
        store = scheme_2_3.make_store()
        with record() as rec:
            scheme_2_3.write(idx, values=idx, store=store, time=1)
        assert rec.n_mem_ops() == idx.size
        assert {o.var for o in rec.mem_ops()} == {int(v) for v in idx}

    def test_count_op_emits_nothing(self):
        idx = _SCH.random_request_set(8, seed=4)
        with record() as rec:
            _SCH.access(idx, op="count")
        assert rec.n_mem_ops() == 0

    def test_var_ids_shape_validated(self):
        from repro.core.protocol import run_access_protocol

        idx = _SCH.random_request_set(4, seed=0)
        modules = _SCH.placement(idx)
        with record():
            with pytest.raises(ValueError, match="var_ids"):
                run_access_protocol(
                    modules, _SCH.N, 2, op="write",
                    slots=_SCH.slots(idx, modules),
                    store=_SCH.make_store(),
                    values=np.ones(4, dtype=np.int64), time=1,
                    var_ids=np.arange(3),
                )


class TestInstallRestore:
    def test_disabled_outside_block(self):
        assert not obs.enabled()
        with record() as rec:
            assert obs.enabled()
            assert obs.tracer() is rec
        assert not obs.enabled()

    def test_restores_previous_tracer(self):
        outer = TraceRecorder()
        prev = obs.set_tracer(outer)
        try:
            with record():
                pass
            assert obs.tracer() is outer
        finally:
            obs.set_tracer(prev if prev.enabled else None)

    def test_plain_recording_tracer_captures_mem_ops(self):
        idx = _SCH.random_request_set(4, seed=5)
        store = _SCH.make_store()
        tracer = obs.RecordingTracer()
        prev = obs.set_tracer(tracer)
        try:
            _SCH.write(idx, values=idx, store=store, time=1)
        finally:
            obs.set_tracer(prev if prev.enabled else None)
        assert sum(e["name"] == MEM_EVENT for e in tracer.events) == idx.size


class TestKvCapture:
    def test_kv_ops_recorded(self):
        kv = ParallelKVStore(PPAdapter(2, 3))
        with record() as rec:
            kv.batch_put(["a", "b"], np.array([1, 2]))
            kv.batch_get(["a", "missing"])
            kv.batch_delete(["b"])
        ops = rec.kv_ops()
        assert [o.op for o in ops] == ["put", "put", "get", "get", "delete"]
        by_key = {(o.op, o.key): o.value for o in ops}
        assert by_key[("get", "a")] == 1
        assert by_key[("get", "missing")] == -1

    def test_rounds_increase(self):
        kv = ParallelKVStore(PPAdapter(2, 3))
        with record() as rec:
            kv.batch_put(["x"], np.array([9]))
            kv.batch_get(["x"])
        ops = rec.kv_ops()
        assert ops[1].round > ops[0].round


class TestJsonlRoundTrip:
    def test_mem_and_kv_survive_disk(self, tmp_path):
        idx = _SCH.random_request_set(6, seed=6)
        store = _SCH.make_store()
        kv = ParallelKVStore(PPAdapter(2, 3))
        with record() as rec:
            _SCH.write(idx, values=idx, store=store, time=1)
            _SCH.read(idx, store=store, time=2)
            kv.batch_put(["k"], np.array([7]))
        path = str(tmp_path / "trace.jsonl")
        rec.write_jsonl(path)
        assert load_mem_ops(path) == rec.mem_ops()
        assert load_kv_ops(path) == rec.kv_ops()

    def test_interleaves_with_protocol_spans(self, tmp_path):
        idx = _SCH.random_request_set(4, seed=7)
        store = _SCH.make_store()
        with record() as rec:
            _SCH.write(idx, values=idx, store=store, time=1)
        names = {e["name"] for e in rec.events}
        assert MEM_EVENT in names
        assert "protocol.access" in names

    def test_repr_mentions_counts(self):
        rec = TraceRecorder()
        assert "0 mem ops" in repr(rec)
        assert KV_EVENT  # exported constant
