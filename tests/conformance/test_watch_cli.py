"""`repro watch fuzz|attack` and tools/watch_report.py: exit codes,
artifacts, budget enforcement, report rendering."""

import gzip
import json
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.cli import main

TOOLS = Path(__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(TOOLS))


@pytest.fixture(autouse=True)
def clean_bus():
    obs.set_bus(None)
    yield
    obs.set_bus(None)


def _read_fuzz(tmp_path):
    """The fuzz record is gzip-compressed (snapshot stream dominates)."""
    with gzip.open(tmp_path / "watch_fuzz.json.gz", "rt") as fh:
        return json.load(fh)


def _fuzz_args(tmp_path, *extra):
    return [
        "watch", "fuzz", "--seed", "0", "--ops", "300",
        "--out", str(tmp_path), *extra,
    ]


class TestWatchFuzzCli:
    def test_green_run_exits_zero_and_writes_json(self, capsys, tmp_path):
        assert main(_fuzz_args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "watchdog: clean" in out
        data = _read_fuzz(tmp_path)
        assert data["ok"]
        assert data["events"] >= 300
        assert data["events_dropped"] == 0
        assert data["peak_rss_mb"] > 0
        assert "watch.batches" in data["metrics"]
        assert data["snapshots_total"] >= len(data["snapshots"])
        assert not (tmp_path / "watch_fuzz.json").exists()  # gz only

    def test_state_budget_breach_fails(self, capsys, tmp_path):
        assert main(_fuzz_args(tmp_path, "--state-budget", "1")) == 1
        err = capsys.readouterr().err
        assert "state budget busted" in err
        data = _read_fuzz(tmp_path)
        assert not data["ok"]

    def test_rss_budget_breach_fails(self, capsys, tmp_path):
        assert main(_fuzz_args(tmp_path, "--rss-budget-mb", "1")) == 1
        assert "RSS budget busted" in capsys.readouterr().err

    def test_generous_budgets_pass(self, tmp_path):
        assert main(_fuzz_args(
            tmp_path, "--state-budget", "100000", "--rss-budget-mb", "4096",
        )) == 0

    def test_scheme_selection(self, tmp_path):
        assert main(_fuzz_args(tmp_path, "--scheme", "grid")) == 0
        data = _read_fuzz(tmp_path)
        assert data["scheme"] == "grid"

    def test_skip_writing_with_dash(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["watch", "fuzz", "--seed", "0", "--ops", "100",
                     "--out", "-"]) == 0
        assert not (tmp_path / "benchmarks").exists()

    def test_snapshots_printed(self, capsys, tmp_path):
        assert main(_fuzz_args(tmp_path, "--snapshot-every", "3")) == 0
        assert "lag" in capsys.readouterr().out


class TestWatchAttackCli:
    def test_attack_detected_and_control_clean(self, capsys, tmp_path):
        assert main(["watch", "attack", "--seed", "0",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "DETECTED ONLINE" in out
        assert "control: clean" in out
        data = json.loads((tmp_path / "watch_attack.json").read_text())
        assert data["ok"] and data["detected_online"] and data["control_clean"]
        assert data["detected_at_round"] < data["last_round"]

    def test_skip_writing_with_dash(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["watch", "attack", "--seed", "0", "--out", "-"]) == 0
        assert not (tmp_path / "benchmarks").exists()


class TestWatchReportTool:
    def _run_both(self, tmp_path):
        main(_fuzz_args(tmp_path))
        main(["watch", "attack", "--seed", "0", "--out", str(tmp_path)])

    def test_renders_report_markdown(self, capsys, tmp_path):
        self._run_both(tmp_path)
        import watch_report

        assert watch_report.main(["--dir", str(tmp_path)]) == 0
        md = (tmp_path / "watchdog_report.md").read_text()
        assert "# Live watchdog report" in md
        assert "Streaming fuzz under the watchdog" in md
        assert "Online stale-majority canary" in md
        assert "DETECTED ONLINE" in md
        assert "`watch.batches`" in md

    def test_fuzz_only(self, tmp_path):
        main(_fuzz_args(tmp_path))
        import watch_report

        assert watch_report.main(["--dir", str(tmp_path)]) == 0
        md = (tmp_path / "watchdog_report.md").read_text()
        assert "canary" not in md.lower() or "Online" not in md

    def test_missing_inputs_exit_2(self, tmp_path):
        import watch_report

        assert watch_report.main(["--dir", str(tmp_path)]) == 2

    def test_failed_run_exits_nonzero(self, tmp_path):
        main(_fuzz_args(tmp_path, "--state-budget", "1"))
        import watch_report

        assert watch_report.main(["--dir", str(tmp_path)]) == 1
        assert "BUSTED" in (tmp_path / "watchdog_report.md").read_text()

    def test_sample_rows_caps_and_keeps_last(self):
        import watch_report

        rows = list(range(100))
        picked = watch_report.sample_rows(rows, limit=20)
        assert len(picked) <= 20
        assert picked[0] == 0 and picked[-1] == 99
        assert watch_report.sample_rows([1, 2], limit=20) == [1, 2]
