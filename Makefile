# Convenience targets for the reproduction repo.

PYTHON ?= python3

.PHONY: install test bench examples docs perf perf-check coverage faults conform watch explain lint lint-flow typecheck serve soak all clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done
	@echo "all examples ran clean"

docs:
	$(PYTHON) tools/gen_api_docs.py

perf:
	$(PYTHON) -m repro perf record
	$(PYTHON) -m repro perf report

perf-check:
	$(PYTHON) -m repro perf check

coverage:
	$(PYTHON) tools/coverage_gate.py --fail-under 96.4 \
		--min-package repro/faults=90 --min-package repro/gf=90 \
		--min-package repro/conformance=90 --min-package repro/lint=90 \
		--min-package repro/lint/flow=90 --min-package repro/network=95 \
		--report

lint:
	$(PYTHON) -m repro lint --format json > /tmp/repro-lint.json \
		|| ($(PYTHON) tools/lint_report.py /tmp/repro-lint.json; exit 1)
	$(PYTHON) tools/lint_report.py /tmp/repro-lint.json \
		-o benchmarks/results/lint_report.md

# Interprocedural tier only (F1-F4) -- fast feedback plus the
# call-graph/module-dependency artifact
lint-flow:
	$(PYTHON) -m repro lint --tier flow \
		--graph-out benchmarks/results/call_graph.json

typecheck:
	$(PYTHON) tools/typecheck.py

faults:
	$(PYTHON) -m repro faults campaign --qs 2 4 8

conform:
	$(PYTHON) -m repro conform fuzz --seed 0 --ops 2000

watch:
	$(PYTHON) -m repro watch fuzz --seed 0 --ops 1000000 \
		--state-budget 200000 --rss-budget-mb 512
	$(PYTHON) -m repro watch attack --seed 0
	$(PYTHON) tools/watch_report.py

explain:
	$(PYTHON) -m repro explain --check

serve:
	$(PYTHON) -m repro serve --clients 200 --ops-per-client 4 --seed 0

soak:
	$(PYTHON) -m repro load --clients 100000 --ops-per-client 2 \
		--keyspace 4096 --mix zipf --shards 4 \
		--round-capacity 8192 --max-pending 32768 --oracle
	$(PYTHON) -m repro load --clients 20000 --ops-per-client 4 \
		--keyspace 2048 --mix hotkey --fault stale \
		--get-fraction 0.6 --delete-fraction 0 \
		--round-capacity 4096 --max-pending 16384

record:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

all: test bench examples docs
