#!/usr/bin/env python3
"""PRAM simulation: run shared-memory algorithms on the distributed machine.

The paper exists so that PRAM programs can run on machines with N
separate memory modules.  This example executes three classic PRAM
algorithms -- parallel prefix sums, Wyllie list ranking, and a max
reduction -- through the full stack (addressing -> majority protocol ->
MPC), once per memory organization, and reports the real simulated cost
of each program under each scheme.

Run:  python examples/pram_simulation.py
"""

import numpy as np

from repro.analysis.report import Table
from repro.pram import PRAM, list_ranking, parallel_max, prefix_sums
from repro.schemes import (
    MehlhornVishkinScheme,
    PPAdapter,
    SingleCopyScheme,
    UpfalWigdersonScheme,
)


def build_schemes():
    N, M = 1023, 5456
    return [
        PPAdapter(q=2, n=5),
        UpfalWigdersonScheme(N, M, c=2, seed=11),
        MehlhornVishkinScheme(N, M, c=3),
        SingleCopyScheme(N, M, hashed=True, seed=11),
    ]


def random_linked_list(n: int, rng: np.random.Generator):
    perm = rng.permutation(n)
    succ = np.empty(n, dtype=np.int64)
    for i in range(n - 1):
        succ[perm[i]] = perm[i + 1]
    succ[perm[-1]] = perm[-1]
    expect = np.empty(n, dtype=np.int64)
    for i in range(n):
        expect[perm[i]] = n - 1 - i
    return succ, expect


def main() -> None:
    rng = np.random.default_rng(2026)
    n = 256
    data = rng.integers(0, 10_000, n)
    succ, expect_ranks = random_linked_list(n, rng)

    table = Table(
        ["scheme", "program", "PRAM steps", "MPC iterations", "modeled MPC steps"],
        title=f"PRAM programs over n={n} elements, N=1023 modules",
    )
    for scheme in build_schemes():
        # prefix sums
        pram = PRAM(scheme)
        got = prefix_sums(pram, data)
        assert (got == np.cumsum(data)).all()
        c = pram.cost_summary()
        table.add_row([scheme.name, "prefix-sums", c["pram_steps"],
                       c["mpc_iterations"], c["modeled_mpc_steps"]])

        # list ranking
        pram = PRAM(scheme)
        ranks = list_ranking(pram, succ, base=1024)
        assert (ranks == expect_ranks).all()
        c = pram.cost_summary()
        table.add_row([scheme.name, "list-ranking", c["pram_steps"],
                       c["mpc_iterations"], c["modeled_mpc_steps"]])

        # max reduction
        pram = PRAM(scheme)
        assert parallel_max(pram, data) == int(data.max())
        c = pram.cost_summary()
        table.add_row([scheme.name, "max-reduce", c["pram_steps"],
                       c["mpc_iterations"], c["modeled_mpc_steps"]])

    table.print()
    print()
    print(
        "Same answers everywhere -- the schemes differ only in how much MPC\n"
        "time each synchronous PRAM step costs.  On benign traffic all are\n"
        "close; the adversarial gaps are shown by examples/replicated_storage.py\n"
        "and the benchmark suite."
    )


if __name__ == "__main__":
    main()
