#!/usr/bin/env python3
"""Bounded-degree networks: what the complete-graph model hides.

The MPC assumes every processor can talk to every module in one step.
Section 1 of the paper defers the "request routing problem" to
bounded-degree implementations; this example runs the same access batch
on the ideal MPC, on a hypercube, and on a 2-D torus, and shows where
the abstraction's constant goes.

Run:  python examples/bounded_degree_network.py
"""

import numpy as np

from repro import PPScheme
from repro.analysis.report import Table
from repro.core.protocol import run_access_protocol
from repro.network import HypercubeTopology, TorusTopology, run_protocol_on_network


def main() -> None:
    s = PPScheme(q=2, n=5)
    idx = s.random_request_set(768, seed=3)
    mods = s.module_ids_for(idx)

    ideal = run_access_protocol(mods, s.N, s.majority, n_phases=1)
    hyper = HypercubeTopology.at_least(s.N)
    torus = TorusTopology.at_least(s.N)
    rh = run_protocol_on_network(mods, s.N, s.majority, hyper)
    rt = run_protocol_on_network(mods, s.N, s.majority, torus)

    t = Table(
        ["machine", "degree", "diameter", "iterations", "time (rounds)",
         "overhead vs MPC"],
        title=f"one access batch (768 requests, N = {s.N})",
    )
    t.add_row(["ideal MPC (paper's model)", s.N, 1,
               ideal.max_phase_iterations, ideal.max_phase_iterations, 1.0])
    t.add_row([f"hypercube ({hyper.n_nodes} nodes)", hyper.degree,
               hyper.diameter(), rh.mpc_iterations, rh.network_rounds,
               round(rh.overhead_factor, 1)])
    t.add_row([f"torus ({torus.n_nodes} nodes)", torus.degree,
               torus.diameter(), rt.mpc_iterations, rt.network_rounds,
               round(rt.overhead_factor, 1)])
    t.print()

    print()
    print("The protocol's iteration structure is identical everywhere --")
    print("the memory organization neither knows nor cares about the wires.")
    print("A hypercube pays ~2 log N rounds per iteration (request + grant),")
    print("a degree-4 torus pays its sqrt(N) diameter.  That multiplicative")
    print("factor is exactly the 'request routing problem' the paper's")
    print("Section 1 sets aside, and why its theorems count module cycles.")
    print()
    per = rh.per_iteration_rounds
    print(f"hypercube per-iteration rounds: {per}")
    print(f"log2(N) = {np.log2(s.N):.1f}; request legs averaged "
          f"{rh.request_rounds / rh.mpc_iterations:.1f} rounds, responses "
          f"{rh.response_rounds / rh.mpc_iterations:.1f}.")


if __name__ == "__main__":
    main()
