#!/usr/bin/env python3
"""Replicated parallel storage: worst cases, write costs, and why majority.

The paper's scheme descends from Thomas's majority-consensus replication
for databases [Tho79] via Upfal-Wigderson.  This example plays the
scenarios that motivated that lineage, on the simulated MPC:

1. hot-spot reads -- a single-copy store serializes; replicated
   majority stores disperse;
2. write bursts -- Mehlhorn-Vishkin's update-all-copies rule collapses
   under a crafted write set, the majority rule does not (the paper's
   central improvement over [MV84]);
3. stale copies -- after a write that touched only a majority, a
   minority of copies is stale, yet every subsequent read returns the
   fresh value because quorums intersect.

Run:  python examples/replicated_storage.py
"""

import numpy as np

from repro.analysis.report import Table
from repro.schemes import (
    MehlhornVishkinScheme,
    PPAdapter,
    SingleCopyScheme,
)
from repro.workloads import concentrated_set_for


def main() -> None:
    N, M = 1023, 5456
    pp = PPAdapter(q=2, n=5)
    mv = MehlhornVishkinScheme(N, M, c=3)
    sc = SingleCopyScheme(N, M, hashed=True, seed=1)

    # ------------------------------------------------------ hot-spot reads
    table = Table(
        ["scheme", "workload", "op", "MPC iterations"],
        title="Hot-spot reads: requests aimed at one scheme's weak point",
    )
    hot_size = min(16, sc.max_module_load())
    adv_sc, _ = concentrated_set_for(sc, hot_size)
    table.add_row(["single-copy", "same-module vars", "read",
                   sc.access(adv_sc, op="count").total_iterations])
    # the same 16 *indices* on the PP scheme are nothing special:
    table.add_row(["pietracaprina-preparata", "same 16 indices", "read",
                   pp.access(adv_sc[adv_sc < pp.M], op="count").total_iterations])

    # ------------------------------------------------------- write bursts
    adv_mv = mv.adversarial_write_set(16)
    table.add_row(["mehlhorn-vishkin", "copy-0-collision set", "write",
                   mv.access(adv_mv, op="count", count_as="write").total_iterations])
    table.add_row(["mehlhorn-vishkin", "copy-0-collision set", "read",
                   mv.access(adv_mv, op="count", count_as="read").total_iterations])
    table.add_row(["pietracaprina-preparata", "same 16 indices", "write",
                   pp.access(adv_mv[adv_mv < pp.M], op="count").total_iterations])
    table.print()
    print()
    print(
        "MV reads are cheap (any one copy) but its writes serialize on the\n"
        "shared module because ALL c copies must be refreshed; the majority\n"
        "rule pays the same modest price for reads and writes.\n"
    )

    # ------------------------------------------------- staleness / quorums
    store = pp.make_store()
    idx = pp.random_request_set(512, seed=3)
    pp.write(idx, values=np.full(512, 1), store=store, time=1)
    pp.write(idx, values=np.full(512, 2), store=store, time=2)

    # inspect the physical cells: some copies still hold the old value
    mods = pp.placement(idx)
    slots = pp.slots(idx, mods)
    cell_vals, cell_stamps = store.read(mods, slots)
    stale = int((cell_stamps < 2).sum())
    print(
        f"after the second write: {stale} of {cell_vals.size} physical copies "
        f"are stale (stamp < 2), at most {mods.shape[1] - pp.write_quorum} per variable"
    )
    per_var_fresh = (cell_stamps == 2).sum(axis=1)
    assert (per_var_fresh >= pp.write_quorum).all()

    res = pp.read(idx, store=store, time=3)
    assert (res.values == 2).all()
    print(
        "yet every read returns the fresh value: any read majority "
        "intersects the write majority and timestamps break the tie."
    )


if __name__ == "__main__":
    main()
