#!/usr/bin/env python3
"""Fault tolerance: surviving module failures with majority quorums.

The paper's majority discipline descends from Thomas's fault-tolerant
replicated databases [Tho79]; this example kills memory modules at
runtime and watches the scheme keep serving exact data.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro import PPScheme
from repro.analysis.report import Table


def main() -> None:
    s = PPScheme(q=2, n=5)
    idx = s.random_request_set(2000, seed=0)
    store = s.make_store()
    s.write(idx, values=idx * 3 % (1 << 20), store=store, time=1)
    expected = idx * 3 % (1 << 20)
    rng = np.random.default_rng(42)

    t = Table(
        ["failed modules", "variables unavailable", "survivors correct",
         "read Phi"],
        title=f"killing modules out of N = {s.N} (3 copies, quorum 2)",
    )
    for nf in (0, 16, 64, 256, 511):
        failed = rng.choice(s.N, nf, replace=False)
        res = s.read(idx, store=store, time=2 + nf, failed_modules=failed,
                     allow_partial=True)
        bad = res.unsatisfiable if res.unsatisfiable is not None else np.array([], dtype=np.int64)
        survivors = np.setdiff1d(np.arange(len(idx)), bad)
        ok = bool((res.values[survivors] == expected[survivors]).all())
        t.add_row([nf, bad.size, ok, res.max_phase_iterations])
        assert ok
    t.print()
    print()
    print(
        "A variable only becomes unavailable when 2 of its 3 copies die;\n"
        "Theorem 2 guarantees different variables share at most one module,\n"
        "so failures cannot cascade.  Every surviving variable returns its\n"
        "exact last-written value -- even with half the machine gone."
    )

    # degraded writes also work: a write completed during the outage is
    # visible after recovery
    failed = rng.choice(s.N, 100, replace=False)
    sub = idx[:500]
    s.write(sub, values=np.full(500, 777), store=store, time=1000,
            failed_modules=failed, allow_partial=True)
    res = s.read(sub, store=store, time=1001)  # full recovery
    fresh = int((res.values == 777).sum())
    print(
        f"\ndegraded write during a 100-module outage: {fresh}/500 variables "
        f"updated (only copies reaching a live quorum); after recovery all "
        f"of those read fresh."
    )


if __name__ == "__main__":
    main()
