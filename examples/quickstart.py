#!/usr/bin/env python3
"""Quickstart: build the scheme, place data, run parallel accesses.

Walks through the whole public API in a couple of minutes:

1. construct the Pietracaprina-Preparata organization for (q=2, n=5)
   -- 1023 modules, 5456 variables, 3 copies each;
2. inspect where a variable physically lives (Section 4 addressing);
3. run a full parallel write + read batch through the Section-3
   majority protocol on the simulated MPC and look at the cost;
4. compare a benign and an adversarial workload.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PPScheme
from repro.core.bounds import phi_bound


def main() -> None:
    scheme = PPScheme(q=2, n=5)
    print("scheme:", scheme)
    print("structure:", scheme.describe())
    print()

    # --- where does variable 4242 live? ------------------------------------
    var = 4242
    print(f"physical copies of variable {var} (module, slot):", scheme.locate(var))
    mats = scheme.addressing.unrank(var)
    print(f"its coset-representative matrix A_{var} =", mats)
    print()

    # --- a parallel batch: 1000 processors, 1000 distinct variables --------
    idx = scheme.random_request_set(1000, seed=7)
    store = scheme.make_store()

    w = scheme.write(idx, values=idx * 2, store=store, time=1)
    print(
        f"WRITE  1000 vars: {len(w.phases)} phases, "
        f"iterations/phase = {w.iterations_per_phase}, "
        f"modeled MPC steps = {w.modeled_steps(scheme.N)}"
    )

    r = scheme.read(idx, store=store, time=2)
    assert (r.values == idx * 2).all(), "read-your-writes violated?!"
    print(
        f"READ   1000 vars: iterations/phase = {r.iterations_per_phase}, "
        f"all values correct"
    )
    print(
        f"Theorem-6 worst-case shape for N' = 1000: "
        f"Phi <= O(N'^(1/3) log* N') ~ {phi_bound(1000, 2):.1f} per phase"
    )
    print()

    # --- stress: every variable of a few full module neighbourhoods --------
    from repro.workloads import pp_module_neighborhood_set

    hot = pp_module_neighborhood_set(scheme, 64)
    res = scheme.access(hot, op="count")
    print(
        f"adversarial neighbourhood workload (64 vars): "
        f"Phi = {res.max_phase_iterations} "
        f"(the redundant copies disperse the hot spot -- that is Theorem 2 at work)"
    )

    # --- and what a single-copy memory would have done ---------------------
    # (shown with M = 64N so one module actually holds 64 variables; with
    # only M ~ N^1.25 even the single-copy worst case is capped at ~M/N)
    from repro.schemes import SingleCopyScheme

    sc = SingleCopyScheme(scheme.N, 64 * scheme.N, hashed=True, seed=0)
    adv = sc.adversarial_request_set(64)
    res_sc = sc.access(adv, op="count")
    print(
        f"single-copy memory (M = 64N), 64-request hot spot: "
        f"{res_sc.total_iterations} serial MPC steps (no redundancy, no escape)"
    )


if __name__ == "__main__":
    main()
