#!/usr/bin/env python3
"""Parallel database: a replicated key-value store on the MPC.

The paper's introduction names parallel databases alongside PRAMs as
the home of the granularity problem, and its majority quorums come from
replicated-database concurrency control [Tho79].  This example runs a
key-value workload where the hash-table slots ARE shared variables of
the memory organization: every batch of puts/gets is a burst of
parallel majority accesses paying real simulated machine time.

Run:  python examples/parallel_database.py
"""

import numpy as np

from repro.analysis.report import Table
from repro.kvstore import ParallelKVStore
from repro.schemes import PPAdapter, SingleCopyScheme, UpfalWigdersonScheme


def run_workload(store: ParallelKVStore, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    users = [f"user:{i}" for i in range(800)]
    store.batch_put(users, rng.integers(0, 1 << 20, 800))

    # read-heavy phase
    for _ in range(3):
        sample = [users[i] for i in rng.choice(800, 400, replace=False)]
        got = store.batch_get(sample)
        assert (got >= 0).all()

    # update a hot subset
    hot = users[:100]
    store.batch_put(hot, rng.integers(0, 1 << 20, 100))

    # deletes and re-inserts
    store.batch_delete(users[700:])
    missing = store.batch_get(users[700:750])
    assert (missing == -1).all()
    store.batch_put(users[700:750], rng.integers(0, 1 << 20, 50))
    return store.cost_summary()


def main() -> None:
    t = Table(
        ["backing scheme", "copies", "entries", "protocol rounds",
         "MPC iterations"],
        title="identical KV workload (800 users, reads/updates/deletes)",
    )
    for scheme in (
        PPAdapter(q=2, n=5),
        UpfalWigdersonScheme(1023, 5456, c=2, seed=9),
        SingleCopyScheme(1023, 5456, hashed=True, seed=9),
    ):
        store = ParallelKVStore(scheme, seed=7)
        c = run_workload(store, seed=11)
        t.add_row([scheme.name, scheme.copies_per_variable, c["size"],
                   c["protocol_rounds"], c["mpc_iterations"]])
    t.print()

    print()
    print("Same database semantics on all three backings; the majority")
    print("schemes additionally keep every entry readable through module")
    print("failures (see examples/fault_tolerance.py), which the")
    print("single-copy backing cannot do at any speed.")


if __name__ == "__main__":
    main()
