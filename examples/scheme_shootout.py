#!/usr/bin/env python3
"""Scheme shootout: all four memory organizations under identical traffic.

Sweeps request-set sizes and workload types (uniform random, strided,
hot-spot blocks, each scheme's own adversary) over single-copy hashing,
Mehlhorn-Vishkin, Upfal-Wigderson, and the paper's scheme, all storing
the same M variables in the same N modules of the same simulated MPC.

This is the executable version of the paper's introduction: reads the
table bottom-up and you see exactly why constant-redundancy majority
over a constructive expander is the interesting corner of the design
space.

Run:  python examples/scheme_shootout.py
"""

import numpy as np

from repro.analysis.report import Table
from repro.schemes import (
    MehlhornVishkinScheme,
    PPAdapter,
    SingleCopyScheme,
    UpfalWigdersonScheme,
)
from repro.workloads import concentrated_set_for
from repro.workloads.generators import hotspot_blocks, random_distinct, strided


def main() -> None:
    N, M = 1023, 5456
    schemes = [
        SingleCopyScheme(N, M, hashed=True, seed=5),
        MehlhornVishkinScheme(N, M, c=3),
        UpfalWigdersonScheme(N, M, c=2, seed=5),
        PPAdapter(q=2, n=5),
    ]

    table = Table(
        ["scheme", "r", "workload", "read iters", "write iters"],
        title=f"All schemes, N={N} modules, M={M} variables, 512 requests",
    )
    size = 512
    workloads = {
        "uniform": random_distinct(M, size, seed=1),
        "strided(17)": strided(M, size, stride=17),
        "hotspot": hotspot_blocks(M, size, block=256, n_blocks=3, seed=1),
    }
    for sch in schemes:
        for name, idx in workloads.items():
            r_read = sch.access(idx, op="count", count_as="read")
            r_write = sch.access(idx, op="count", count_as="write")
            table.add_row([sch.name, sch.copies_per_variable, name,
                           r_read.total_iterations, r_write.total_iterations])
        # per-scheme adversary, sized to what the scheme's structure admits
        adv_size = 16
        if isinstance(sch, SingleCopyScheme):
            adv_size = min(adv_size, sch.max_module_load())
        adv, b = concentrated_set_for(sch, adv_size)
        r_read = sch.access(adv, op="count", count_as="read")
        r_write = sch.access(adv, op="count", count_as="write")
        table.add_row([sch.name, sch.copies_per_variable,
                       f"own-adversary(|B|={b})",
                       r_read.total_iterations, r_write.total_iterations])
    table.print()

    print()
    print("Reading guide:")
    print(" * single-copy: fine on uniform traffic, collapses on its adversary;")
    print(" * mehlhorn-vishkin: reads always cheap, writes blow up (all-copies rule);")
    print(" * upfal-wigderson: balanced, but the placement is an unverifiable")
    print("   random graph with no compact addressing;")
    print(" * pietracaprina-preparata: the same balanced behaviour from an")
    print("   explicit algebraic construction with O(log N) addressing --")
    print("   the paper's contribution.")


if __name__ == "__main__":
    main()
