"""E11 -- the write/read asymmetry: majority vs all-copies updates.

Paper claim (Section 1): [MV84]'s scheme pays O(cN) for writes because
every copy must be refreshed, while the majority discipline (inherited
from [Tho79]/[UW87], kept by this paper) makes writes as cheap as
reads.

Regenerated here: write-burst size sweep on the MV copy-collision sets
vs the same variables under the PP and UW majority schemes; the MV
column grows linearly, the majority columns stay flat.
"""

import numpy as np

from _util import once, save_tables, scalar, timed
from repro.analysis.fitting import fit_power_law
from repro.analysis.report import Table
from repro.schemes import (
    MehlhornVishkinScheme,
    PPAdapter,
    UpfalWigdersonScheme,
)


def run_experiment():
    N, M = 1023, 5456
    mv = MehlhornVishkinScheme(N, M, c=3)
    pp = PPAdapter(2, 5)
    uw = UpfalWigdersonScheme(N, M, c=2, seed=3)

    t = Table(
        ["burst size", "MV write iters", "MV read iters",
         "PP write iters", "UW write iters"],
        title="E11 / write bursts on MV's collision sets (same variables everywhere)",
    )
    sizes = (2, 4, 8, 16)
    mv_iters, pp_iters = [], []
    for k in sizes:
        adv = mv.adversarial_write_set(k)
        mv_w = mv.access(adv, op="count", count_as="write").total_iterations
        mv_r = mv.access(adv, op="count", count_as="read").total_iterations
        same = adv[adv < pp.M]
        pp_w = pp.access(same, op="count", count_as="write").total_iterations
        uw_w = uw.access(same, op="count", count_as="write").total_iterations
        t.add_row([k, mv_w, mv_r, pp_w, uw_w])
        mv_iters.append(mv_w)
        pp_iters.append(pp_w)
    alpha_mv, _ = fit_power_law(sizes, mv_iters)
    alpha_pp, _ = fit_power_law(sizes, [max(1, x) for x in pp_iters])

    save_tables(
        "e11_write_cost",
        [t],
        notes=f"MV write cost grows ~burst^{alpha_mv:.2f} (linear "
        f"serialization on the shared module); the majority schemes stay "
        f"near-flat (~burst^{alpha_pp:.2f}).  This is the paper's core "
        f"argument for adopting the majority discipline.",
    )
    return alpha_mv, alpha_pp


def test_e11_write_asymmetry(benchmark):
    alpha_mv, alpha_pp = once(benchmark, run_experiment,
                              name="e11.experiment")
    scalar("e11.alpha_mv_writes", alpha_mv)
    scalar("e11.alpha_pp_writes", alpha_pp)
    assert alpha_mv > 0.8  # near-linear collapse
    assert alpha_pp < 0.5  # majority stays flat-ish


def test_e11_write_throughput_pp(benchmark, scheme_2_5):
    idx = scheme_2_5.random_request_set(512, seed=9)
    store = scheme_2_5.make_store()

    def do():
        scheme_2_5.write(idx, values=idx, store=store, time=1)

    timed(benchmark, "kernels.pp_write_512_n5", do)
