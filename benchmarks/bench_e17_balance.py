"""E17 (extension) -- storage balance: Fact 1's hidden practical win.

Fact 1 says every module stores exactly ``q^{n-1}`` copies: the PGL2
placement is *perfectly* balanced by construction, so module capacity
can be provisioned exactly.  A random placement (UW) is only balanced
in expectation -- its fullest module overshoots the mean by the classic
balls-in-bins factor, and hashing single copies is worse.

Regenerated here: the storage-load distribution (max/mean/stddev) of
each scheme carrying all M variables, and the induced worst-module
access congestion on full random request loads.
"""

import numpy as np

from _util import once, save_tables, scalar
from repro.analysis.report import Table
from repro.schemes import PPAdapter, SingleCopyScheme, UpfalWigdersonScheme


def run_experiment():
    N, M = 1023, 5456
    t = Table(
        ["scheme", "copies stored", "mean/module", "max/module",
         "stddev", "max/mean"],
        title="E17 / storage balance with all M variables placed",
    )
    results = {}
    for sch in (
        PPAdapter(2, 5),
        UpfalWigdersonScheme(N, M, c=2, seed=2),
        SingleCopyScheme(N, M, hashed=True, seed=2),
    ):
        pl = sch.placement(np.arange(M, dtype=np.int64))
        loads = np.bincount(pl.ravel(), minlength=sch.N)
        t.add_row([sch.name, int(loads.sum()), round(float(loads.mean()), 2),
                   int(loads.max()), round(float(loads.std()), 2),
                   round(float(loads.max() / loads.mean()), 2)])
        results[sch.name] = (float(loads.std()), float(loads.max() / loads.mean()))
    save_tables(
        "e17_balance",
        [t],
        notes="The PGL2 placement has stddev exactly 0 -- every module "
        "holds exactly q^{n-1} = 16 copies, as Fact 1 computes.  The "
        "random placement pays the balls-in-bins overshoot; single-copy "
        "hashing is the most ragged.  Perfect balance means exact "
        "capacity provisioning, one more 'practical' in the title.",
    )
    return results


def test_e17_balance(benchmark):
    results = once(benchmark, run_experiment, name="e17.experiment")
    pp_std, pp_ratio = results["pietracaprina-preparata"]
    scalar("e17.pp_load_stddev", pp_std)
    scalar("e17.uw_load_stddev", results["upfal-wigderson"][0])
    assert pp_std == 0.0 and pp_ratio == 1.0
    assert results["upfal-wigderson"][0] > 0
