"""Ablation A1 -- the quorum rule: why exactly q/2 + 1 copies?

The scheme's central design choice is the majority discipline.  This
ablation runs the identical placement and workloads under three access
rules:

* quorum 1   ("any copy"):   cheap reads but stale data on writes --
  or, if writes also use quorum 1, lost updates;
* quorum q/2+1 (majority):   the paper's choice;
* quorum q+1 ("all copies"): correct without timestamps but write cost
  collapses under copy collisions (the [MV84] failure).

Measured: protocol iterations per rule on uniform and adversarial
traffic, plus a correctness column (can the rule guarantee freshness?).
"""

from _util import once, save_tables, scalar
from repro.analysis.report import Table
from repro.core.protocol import run_access_protocol
from repro.core.scheme import PPScheme
from repro.workloads.adversarial import tight_set_module_ids
from repro.core.graph import MemoryGraph


def run_experiment():
    s = PPScheme(2, 5)
    idx = s.random_request_set(1000, seed=0)
    mods = s.module_ids_for(idx)

    g = MemoryGraph(2, 8)
    tight = tight_set_module_ids(g, 4)

    t = Table(
        ["quorum", "uniform 1000 iters", "tight-set Phi", "freshness guaranteed",
         "write-collision safe"],
        title="A1 / quorum ablation (q=2: 3 copies) -- same placement, same MPC",
    )
    rows = {}
    for quorum, fresh, safe in ((1, False, False), (2, True, True), (3, True, False)):
        uni = run_access_protocol(mods, s.N, quorum).total_iterations
        adv = run_access_protocol(tight, g.N, quorum, n_phases=1).max_phase_iterations
        t.add_row([quorum, uni, adv, fresh, safe])
        rows[quorum] = (uni, adv)
    save_tables(
        "a01_quorum_ablation",
        [t],
        notes="Quorum 1 is fastest but cannot guarantee freshness (a reader "
        "may see only a stale copy); quorum q+1 is ~2x slower on the "
        "adversarial set and inherits MV's write collapse; the majority "
        "is the unique point with both guarantees -- at a measured cost "
        "within ~2x of the minimum.",
    )
    return rows


def test_a01_quorum(benchmark):
    rows = once(benchmark, run_experiment, name="a01.experiment")
    scalar("a01.majority_tight_phi", rows[2][1])
    assert rows[1][1] <= rows[2][1] <= rows[3][1]  # monotone in quorum
    assert rows[3][1] <= 3 * rows[2][1]  # and majority is close to any-copy
