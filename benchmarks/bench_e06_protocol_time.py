"""E6 -- Theorems 6 and 1: protocol time.

Paper claims: Phi in O(N^{1/3} log* N) iterations per phase for N
requests, and total time O((N')^{1/3} log* N' + log N) for N' <= N
requests (q constant).

Regenerated here:
  (a) Phi vs N at full load, random workloads, q=2, n = 3..9;
  (b) Phi vs N' sweep below N (the (N')^{1/3} term) on n=7;
  (c) the worst-case series: Phi vs |S| on the tight-set family with a
      fitted exponent (the paper's N^{1/3} shape);
  (d) modeled total steps including the O(log N) addressing term.
"""

import numpy as np

from _util import once, recorder, save_tables, scalar, timed
from repro.analysis.fitting import fit_power_law
from repro.analysis.report import Table
from repro.core.bounds import phi_bound
from repro.core.graph import MemoryGraph
from repro.core.protocol import run_access_protocol
from repro.core.scheme import PPScheme
from repro.workloads.adversarial import tight_set_module_ids


def run_experiment():
    # (a) full random load across n
    t1 = Table(
        ["n", "N", "N'", "Phi", "bound shape N^(1/3) log* N", "total iters",
         "modeled steps"],
        title="E6a / Theorem 6 -- full-load random workloads (q=2)",
    )
    for n in (3, 5, 7, 9, 11):
        s = PPScheme(2, n)
        # n = 11: N = 4.2M, M = 1.4G -- cap the batch at one million
        n_req = min(s.N, s.M, 1_000_000)
        idx = s.random_request_set(n_req, seed=0)
        res = s.access(idx, op="count")
        t1.add_row([n, s.N, n_req, res.max_phase_iterations,
                    round(phi_bound(s.N, 2), 1), res.total_iterations,
                    res.modeled_steps(s.N)])
        assert res.max_phase_iterations <= 4 * phi_bound(s.N, 2)

    # (b) N' sweep below N (n = 7)
    s7 = PPScheme(2, 7)
    t2 = Table(
        ["N'", "Phi", "bound shape", "modeled steps", "log2 N term"],
        title="E6b / Theorem 1 -- partial loads N' <= N (q=2, n=7, N=16383)",
    )
    for n_prime in (16, 64, 256, 1024, 4096, 16383):
        idx = s7.random_request_set(n_prime, seed=1)
        res = s7.access(idx, op="count")
        t2.add_row([n_prime, res.max_phase_iterations,
                    round(phi_bound(n_prime, 2), 1),
                    res.modeled_steps(s7.N), 14])

    # (c) adversarial tight-set series (single phase = worst clustering)
    t3 = Table(
        ["n", "d", "|S| (=R_0)", "Phi measured", "|S|^(1/3)", "bound shape"],
        title="E6c -- worst-case series: tight sets, all in one phase",
    )
    sizes, phis = [], []
    for n, d in [(4, 2), (6, 3), (8, 4), (10, 5), (12, 6)]:
        g = MemoryGraph(2, n)
        mods = tight_set_module_ids(g, d)
        res = run_access_protocol(mods, g.N, g.majority, n_phases=1)
        S = mods.shape[0]
        t3.add_row([n, d, S, res.max_phase_iterations, round(S ** (1 / 3), 1),
                    round(phi_bound(S, 2), 1)])
        sizes.append(S)
        phis.append(res.max_phase_iterations)
        assert res.max_phase_iterations <= 4 * phi_bound(S, 2)
    alpha, _ = fit_power_law(sizes, phis)

    save_tables(
        "e06_protocol_time",
        [t1, t2, t3],
        notes=f"Fitted worst-case exponent: Phi ~ |S|^{alpha:.3f} (paper: 1/3 "
        f"up to log*).  Random loads sit far below the bound -- the "
        f"N^{{1/3}} behaviour is adversarial, exactly as the analysis "
        f"predicts.  All measurements respect the Theorem-6 shape with "
        f"constant <= 4.",
    )
    return alpha


def test_e06_theorem6_shape(benchmark):
    alpha = once(benchmark, run_experiment, name="e06.experiment")
    scalar("e06.alpha_worst_case", alpha)
    assert 0.2 < alpha < 0.45


def test_e06_full_load_n7_speed(benchmark, scheme_2_7):
    idx = scheme_2_7.random_request_set(scheme_2_7.N, seed=3)
    mods = scheme_2_7.module_ids_for(idx)
    timed(
        benchmark, "kernels.protocol_full_n7",
        lambda: run_access_protocol(mods, scheme_2_7.N, scheme_2_7.majority),
    )


def test_e06_engine_speedup(benchmark):
    """Vector vs scalar engine on the E6a full load (q=2, n=9).

    Both engines run the identical protocol (the differential suite
    pins the outputs op-for-op); the recorded ratio is the headline
    payoff of the batch engine on this experiment's workload.  Metrics
    collection is paused around the measurement: obs emission is
    engine-independent and budgeted by its own test, and its per-step
    cost would otherwise mask the kernel-time difference.
    """
    from repro import obs

    s9 = PPScheme(2, 9)
    idx = s9.random_request_set(s9.N, seed=3)
    mods = s9.module_ids_for(idx)
    obs.disable_metrics()
    try:
        vec = timed(
            benchmark, "e06.protocol_full_n9_vector",
            lambda: run_access_protocol(
                mods, s9.N, s9.majority, engine="vector"
            ),
        )
        # the benchmark fixture is single-use; the scalar leg goes
        # straight through the session recorder (same clock + summary)
        sca = recorder().measure(
            "e06.protocol_full_n9_scalar",
            lambda: run_access_protocol(
                mods, s9.N, s9.majority, engine="scalar"
            ),
            repeats=3,
        )
    finally:
        obs.enable_metrics()
    speedup = sca["median"] / vec["median"]
    scalar("e06.engine_speedup", speedup)
    assert speedup >= 5.0
