"""E2 -- Theorem 2: any two variables share at most one module.

Paper claim: for distinct cosets A H0 != B H0,
|Gamma(A H0) ∩ Gamma(B H0)| <= 1.

Regenerated here: exhaustive over all pairs at (2,3), all pairs of a
large sample at (2,5)/(4,3)/(2,7), with the observed maximum and the
fraction of pairs that do share a module.
"""

import numpy as np

from _util import once, save_tables, scalar, timed
from repro.analysis.report import Table
from repro.core.graph import MemoryGraph


def max_pair_intersection(rows: np.ndarray) -> tuple[int, float]:
    n = rows.shape[0]
    worst = 0
    sharing = 0
    sets = [set(r.tolist()) for r in rows]
    for i in range(n):
        for j in range(i):
            inter = len(sets[i] & sets[j])
            worst = max(worst, inter)
            sharing += inter > 0
    return worst, sharing / (n * (n - 1) / 2)


def run_experiment():
    t = Table(
        ["q", "n", "pairs tested", "max |Gamma(u)∩Gamma(v)|", "paper bound",
         "share-fraction"],
        title="E2 / Theorem 2 -- pairwise module intersection of variables",
    )
    worsts = []
    rng = np.random.default_rng(0)
    for q, n, sample in [(2, 3, None), (2, 5, 300), (4, 3, 150), (2, 7, 300)]:
        g = MemoryGraph(q, n)
        if sample is None:
            mats = g.all_variable_matrices()
            arr = np.array(mats, dtype=np.int64)
            rows = g.vgamma_variables((arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]))
        else:
            mats = g.random_variable_matrices(sample, rng)
            rows = g.vgamma_variables(mats)
        worst, frac = max_pair_intersection(rows)
        pairs = rows.shape[0] * (rows.shape[0] - 1) // 2
        t.add_row([q, n, pairs, worst, 1, round(frac, 4)])
        worsts.append(worst)
    save_tables(
        "e02_pair_intersection",
        [t],
        notes="Theorem 2 holds with no exception; overlapping pairs exist "
        "(the graph is connected) but never in two modules.",
    )
    return max(worsts)


def test_e02_theorem2(benchmark):
    worst = once(benchmark, run_experiment, name="e02.experiment")
    scalar("e02.max_pair_intersection", worst)
    assert worst <= 1


def test_e02_vgamma_kernel_speed(benchmark, scheme_2_7):
    idx = scheme_2_7.random_request_set(8192, seed=0)
    mats = scheme_2_7.addressing.vunrank(idx)
    timed(benchmark, "kernels.vgamma_8192_n7",
          lambda: scheme_2_7.graph.vgamma_variables(mats))
