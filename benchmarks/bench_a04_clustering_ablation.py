"""Ablation A4 -- the cluster/phase structure.

Section 3 partitions processors into clusters of q+1 and runs q+1
phases, each phase dedicating a full cluster to one variable (one
processor per copy).  The alternative -- every processor chases all
q+1 copies of its own variable at once (1 phase, all variables live) --
saturates modules with more concurrent traffic.

Measured: iterations and total module cycles for phases in {q+1, 1} on
uniform and adversarial traffic.
"""

from _util import once, save_tables, scalar
from repro.analysis.report import Table
from repro.core.graph import MemoryGraph
from repro.core.protocol import run_access_protocol
from repro.core.scheme import PPScheme
from repro.workloads.adversarial import tight_set_module_ids


def run_experiment():
    t = Table(
        ["workload", "phases", "Phi (max/phase)", "total iterations",
         "total module-cycles"],
        title="A4 / clustering ablation -- q+1 phases vs single phase",
    )
    s = PPScheme(2, 7)
    idx = s.random_request_set(s.N, seed=4)
    mods = s.module_ids_for(idx)
    g = MemoryGraph(2, 10)
    tight = tight_set_module_ids(g, 5)
    out = {}
    for name, m, N in (("uniform full load (n=7)", mods, s.N),
                       ("tight set (n=10)", tight, g.N)):
        for phases in (3, 1):
            res = run_access_protocol(m, N, 2, n_phases=phases)
            t.add_row([name, phases, res.max_phase_iterations,
                       res.total_iterations, res.mpc_stats.steps])
            out[(name, phases)] = res.total_iterations
    save_tables(
        "a04_clustering_ablation",
        [t],
        notes="Phased execution needs more iterations in total on easy "
        "traffic (it serializes thirds of the batch) but caps the "
        "concurrent live set, which is what the Theorem-6 recurrence "
        "analysis needs; on the adversarial set the single-phase run is "
        "the harder instance, which is why the worst-case experiments "
        "grant the adversary that choice.",
    )
    return out


def test_a04_clustering(benchmark):
    out = once(benchmark, run_experiment, name="a04.experiment")
    scalar("a04.phased_total_iters_uniform",
           out[("uniform full load (n=7)", 3)])
    assert all(v > 0 for v in out.values())
