"""E12 -- memory-semantics soundness under the majority discipline.

Paper dependency (from [UW87]/[Tho79]): because any two majorities of
the q+1 copies intersect and copies carry timestamps, every read
returns the latest written value even though writes deliberately leave
a minority of copies stale.

Regenerated here: long randomized read/write histories through the full
stack, checked against a flat reference memory, across parameters and
arbitration policies; plus the staleness census after each batch.
"""

import numpy as np

from _util import once, save_tables, scalar, timed
from repro.analysis.report import Table
from repro.core.scheme import PPScheme


def run_history(s: PPScheme, batches: int, seed: int, arbitration: str):
    rng = np.random.default_rng(seed)
    store = s.make_store()
    reference = {}
    violations = 0
    reads = writes = 0
    max_stale_frac = 0.0
    for t in range(1, batches + 1):
        count = int(rng.integers(1, min(500, s.M // 2)))
        idx = np.sort(rng.choice(s.M, count, replace=False)).astype(np.int64)
        if rng.random() < 0.5:
            vals = rng.integers(0, 1 << 30, count)
            s.write(idx, values=vals, store=store, time=t, arbitration=arbitration)
            for i, v in zip(idx, vals):
                reference[int(i)] = int(v)
            writes += count
            mods, slots = s.placement_for(idx)
            _, stamps = store.read(mods, slots)
            stale = float((stamps < t).mean())
            max_stale_frac = max(max_stale_frac, stale)
        else:
            res = s.read(idx, store=store, time=t, arbitration=arbitration)
            for i, v in zip(idx, res.values):
                if int(v) != reference.get(int(i), -1):
                    violations += 1
            reads += count
    return violations, reads, writes, max_stale_frac


def run_experiment():
    t = Table(
        ["q", "n", "arbitration", "batches", "reads", "writes",
         "max stale copy fraction", "violations"],
        title="E12 / majority semantics -- randomized histories vs reference memory",
    )
    total_violations = 0
    configs = [
        (2, 5, "lowest", 20, 0),
        (2, 5, "random", 20, 1),
        (2, 5, "rotating", 20, 2),
        (2, 3, "lowest", 30, 3),
        (4, 3, "lowest", 10, 4),
    ]
    for q, n, arb, batches, seed in configs:
        s = PPScheme(q, n)
        v, r, w, stale = run_history(s, batches, seed, arb)
        t.add_row([q, n, arb, batches, r, w, round(stale, 3), v])
        total_violations += v
    save_tables(
        "e12_semantics",
        [t],
        notes="Zero violations across every configuration although up to a "
        "third of physical copies are stale after a write -- quorum "
        "intersection plus timestamps is doing exactly what [Tho79] "
        "promised.",
    )
    return total_violations


def test_e12_semantics(benchmark):
    violations = once(benchmark, run_experiment, name="e12.experiment")
    scalar("e12.semantics_violations", violations)
    assert violations == 0


def test_e12_read_throughput(benchmark, scheme_2_5):
    idx = scheme_2_5.random_request_set(512, seed=4)
    store = scheme_2_5.make_store()
    scheme_2_5.write(idx, values=idx, store=store, time=1)
    timed(benchmark, "kernels.pp_read_512_n5",
          lambda: scheme_2_5.read(idx, store=store, time=2))
