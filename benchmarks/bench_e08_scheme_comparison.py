"""E8 -- the introduction's positioning: PP vs [MV84] vs [UW87] vs hashing.

Paper claims (Section 1): single-copy organizations have Theta(N)
worst cases; [MV84] reads cost O(c N^{1-1/c}) but writes cost O(cN);
[UW87] fixes the asymmetry via majorities on a random graph; this paper
achieves the same balanced worst case constructively.

Regenerated here: all four schemes under identical traffic on the same
MPC -- request-size sweeps of uniform/strided/hotspot workloads plus
each scheme's own adversary, reads and writes separately.
"""

import numpy as np

from _util import once, recorder, save_tables, scalar, timed
from repro.analysis.report import Table
from repro.schemes import (
    MehlhornVishkinScheme,
    PPAdapter,
    SingleCopyScheme,
    UpfalWigdersonScheme,
)
from repro.workloads.generators import hotspot_blocks, random_distinct, strided


def run_experiment():
    N, M = 1023, 5456
    schemes = [
        SingleCopyScheme(N, M, hashed=True, seed=5),
        MehlhornVishkinScheme(N, M, c=3),
        UpfalWigdersonScheme(N, M, c=2, seed=5),
        PPAdapter(q=2, n=5),
    ]
    t = Table(
        ["scheme", "workload", "N'", "read iters", "write iters"],
        title="E8 / scheme comparison -- identical traffic, identical MPC (N=1023)",
    )
    rows = {}
    for sch in schemes:
        for n_prime in (128, 512, 2048):
            if n_prime > M:
                continue
            idx = random_distinct(M, n_prime, seed=n_prime)
            rr = sch.access(idx, op="count", count_as="read").total_iterations
            ww = sch.access(idx, op="count", count_as="write").total_iterations
            t.add_row([sch.name, "uniform", n_prime, rr, ww])
            rows[(sch.name, "uniform", n_prime)] = (rr, ww)
        for name, idx in (
            ("strided(29)", strided(M, 512, stride=29)),
            ("hotspot", hotspot_blocks(M, 512, block=256, n_blocks=3, seed=2)),
        ):
            rr = sch.access(idx, op="count", count_as="read").total_iterations
            ww = sch.access(idx, op="count", count_as="write").total_iterations
            t.add_row([sch.name, name, 512, rr, ww])
        rows[sch.name] = True

    # targeted worst cases, the qualitative ordering the paper describes
    t2 = Table(
        ["scheme", "adversarial workload", "op", "iterations", "verdict"],
        title="E8b -- each scheme against its worst case (who wins and why)",
    )
    sc = schemes[0]
    adv = sc.adversarial_request_set(sc.max_module_load())
    it_sc = sc.access(adv, op="count").total_iterations
    t2.add_row(["single-copy", f"{len(adv)} same-module vars", "read", it_sc,
                "collapses: Theta(N') serialization"])
    mv = schemes[1]
    advw = mv.adversarial_write_set(16)
    it_mv_w = mv.access(advw, op="count", count_as="write").total_iterations
    it_mv_r = mv.access(advw, op="count", count_as="read").total_iterations
    t2.add_row(["mehlhorn-vishkin", "copy-0 collision burst", "write", it_mv_w,
                "collapses: all-copies rule"])
    t2.add_row(["mehlhorn-vishkin", "copy-0 collision burst", "read", it_mv_r,
                "fine: any-one-copy rule"])
    pp = schemes[3]
    same = advw[advw < pp.M]
    it_pp_w = pp.access(same, op="count", count_as="write").total_iterations
    t2.add_row(["pietracaprina-preparata", "same variables", "write", it_pp_w,
                "fine: majority disperses"])
    verdict = it_sc >= len(adv) and it_mv_w >= 16 and it_pp_w < it_mv_w

    save_tables(
        "e08_scheme_comparison",
        [t, t2],
        notes="The qualitative shape of the paper's Section 1 holds: the "
        "constant-redundancy majority schemes (UW, PP) are the only ones "
        "without a collapsing corner; PP gets there with an explicit "
        "construction.",
    )
    return verdict


def test_e08_comparison(benchmark):
    verdict = once(benchmark, run_experiment, name="e08.experiment")
    scalar("e08.ordering_holds", verdict)
    assert verdict


def test_e08_pp_access_speed(benchmark, scheme_2_5):
    idx = scheme_2_5.random_request_set(1024, seed=0)
    timed(benchmark, "kernels.pp_access_1024_n5",
          lambda: scheme_2_5.access(idx, op="count"))


def test_e08_engine_speedup(benchmark):
    """Vector vs scalar engine under E8-style traffic at scale: all
    four schemes on one N=16383 machine, one congested 65536-request
    batch each, protocol phase only (placement is precomputed -- the
    addressing cost is engine-independent and would dilute the ratio).
    Metrics collection is paused around the measurement; obs emission
    is engine-independent and budgeted by its own test.
    """
    from repro import obs
    from repro.core.protocol import run_access_protocol

    N, M = 16383, 87381
    schemes = [
        SingleCopyScheme(N, M, hashed=True, seed=5),
        MehlhornVishkinScheme(N, M, c=3),
        UpfalWigdersonScheme(N, M, c=2, seed=5),
        PPAdapter(q=2, n=7),
    ]
    idx = random_distinct(M, 65536, seed=7)
    jobs = []
    for sch in schemes:
        i = idx[idx < sch.M]
        jobs.append((sch.placement(i), sch.N, sch.quorum_for("read")))

    def sweep(engine):
        for mods, n_mod, quorum in jobs:
            run_access_protocol(mods, n_mod, quorum, engine=engine)

    obs.disable_metrics()
    try:
        vec = timed(
            benchmark, "e08.four_schemes_65536_vector",
            lambda: sweep("vector"),
        )
        # single-use benchmark fixture: scalar leg via the recorder
        sca = recorder().measure(
            "e08.four_schemes_65536_scalar",
            lambda: sweep("scalar"),
            repeats=3,
        )
    finally:
        obs.enable_metrics()
    speedup = sca["median"] / vec["median"]
    scalar("e08.engine_speedup", speedup)
    assert speedup >= 5.0
