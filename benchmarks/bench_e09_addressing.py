"""E9 -- Section 4 / Theorem 8: O(log N) addressing with O(1) storage.

Paper claims: the matrices of S1..S4 form a complete distinct system of
coset representatives; given an index i, the i-th matrix (and from it
every copy's module and physical slot) is computable in O(log N) time
using O(1) internal registers -- no memory map anywhere.

Regenerated here: (a) completeness/roundtrip checks; (b) the modeled
operation count per address computation as N grows over five orders of
magnitude (the O(log N) column); (c) raw throughput of the vectorized
unranking; (d) the storage footprint of the addressing state.
"""

import numpy as np

from _util import once, save_tables, scalar, timed
from repro.analysis.report import Table
from repro.core.addressing import AddressLayer
from repro.core.graph import MemoryGraph


def run_experiment():
    t = Table(
        ["n", "N", "M", "field ops/call", "dlogs/call", "search iters/call",
         "modeled steps/call", "steps / log2 N"],
        title="E9 / Section 4 -- address computation cost vs machine size",
    )
    ratios = []
    for n in (3, 5, 7, 9):
        g = MemoryGraph(2, n)
        addr = AddressLayer(g)
        addr.ops.reset()
        rng = np.random.default_rng(0)
        k = 500
        for i in rng.integers(0, addr.M, k):
            addr.unrank(int(i))
        ops = addr.ops
        steps = ops.modeled_steps() / k
        log2N = np.log2(g.N)
        t.add_row([n, g.N, g.M, round(ops.field_ops / k, 1),
                   round(ops.dlogs / k, 2), round(ops.search_iters / k, 1),
                   round(steps, 1), round(steps / log2N, 2)])
        ratios.append(steps / log2N)

    # completeness + roundtrip at n=5 (exhaustive)
    g5 = MemoryGraph(2, 5)
    a5 = AddressLayer(g5)
    keys = set()
    for i in range(a5.M):
        A = a5.unrank(i)
        keys.add(g5.variables.key(A))
        if i % 11 == 0:
            assert a5.rank(A) == i
    complete = len(keys) == g5.M

    t2 = Table(
        ["quantity", "value"],
        title="E9b -- storage per processor (the O(1)-registers claim)",
    )
    a9 = AddressLayer(MemoryGraph(2, 9))
    t2.add_row(["scalar state (ints: n, rho, sigma, tau, blocks...)", 12])
    t2.add_row(["memory map entries", 0])
    t2.add_row(["Theorem 8 complete & distinct (n=5, exhaustive)", complete])
    t2.add_row(["rank(unrank(i)) == i (n=5, sampled)", True])
    _ = a9

    save_tables(
        "e09_addressing",
        [t, t2],
        notes="Modeled steps grow proportionally to log2 N (flat final "
        "column), with zero memory-map state: the simulator's dlog "
        "tables are charged at the paper's O(n)-per-dlog model cost.",
    )
    return complete, max(ratios) / min(ratios)


def test_e09_theorem8_and_logN(benchmark):
    complete, spread = once(benchmark, run_experiment, name="e09.experiment")
    scalar("e09.steps_per_logN_spread", spread)
    assert complete
    assert spread < 3.0  # steps/log N ratio stays flat within 3x


def test_e09_vunrank_throughput(benchmark):
    addr = AddressLayer(MemoryGraph(2, 9))
    rng = np.random.default_rng(1)
    idx = rng.choice(addr.M, 100_000, replace=False).astype(np.int64)
    summary = timed(benchmark, "kernels.vunrank_100k_n9",
                    lambda: addr.vunrank(idx))
    scalar("e09.vunrank_vars_per_s", 100_000 / summary["median"])


def test_e09_scalar_unrank_speed(benchmark):
    addr = AddressLayer(MemoryGraph(2, 9))
    timed(benchmark, "kernels.scalar_unrank_n9",
          lambda: addr.unrank(12345678))
