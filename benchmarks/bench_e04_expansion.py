"""E4 -- Theorems 4/5: expansion |Gamma(S)| >= |S|^{2/3} q / 2^{1/3}.

Paper claims: (a) the bound holds for every S; (b) for n composite
there exist sets attaining Theta(|S|^{2/3} q) (the remark after
Theorem 4, witnessed by embedded PGL2(q^d) subgeometries).

Regenerated here: random-set profiles (min/mean over trials), greedy
adversarial sets, and the tight-set series with its fitted exponent.
"""

import numpy as np

from _util import once, save_tables, scalar, timed
from repro.analysis.fitting import fit_power_law
from repro.analysis.report import Table
from repro.core.bounds import expansion_lower_bound
from repro.core.expansion import (
    gamma_size,
    greedy_contracting_set,
    sampled_expansion_profile,
    subgroup_tight_set,
)
from repro.core.graph import MemoryGraph


def run_experiment():
    rng = np.random.default_rng(1)
    # --- random and greedy sets on (2,5) --------------------------------
    g5 = MemoryGraph(2, 5)
    t1 = Table(
        ["|S|", "bound", "random min", "random mean", "greedy", "min/bound"],
        title="E4a / Theorem 4 -- expansion of random vs greedy-adversarial sets (q=2, n=5)",
    )
    min_ratio = np.inf
    for row in sampled_expansion_profile(g5, [8, 32, 128, 512, 2048], rng, trials=4):
        greedy = gamma_size(g5, greedy_contracting_set(g5, min(row["size"], 64)))
        t1.add_row(
            [row["size"], round(row["bound"], 1), row["min"],
             round(row["mean"], 1), greedy if row["size"] <= 64 else None,
             round(row["min_over_bound"], 3)]
        )
        min_ratio = min(min_ratio, row["min_over_bound"])

    # --- tight series across composite n --------------------------------
    t2 = Table(
        ["n", "d", "|S|", "|Gamma(S)|", "bound", "Gamma/bound",
         "Gamma/(|S|^(2/3) q)"],
        title="E4b / Theorem 4 tightness -- embedded PGL2(q^d) witnesses",
    )
    sizes, gammas = [], []
    for n, d in [(4, 2), (6, 3), (8, 4), (10, 5)]:
        g = MemoryGraph(2, n)
        S = subgroup_tight_set(g, d)
        gam = gamma_size(g, S)
        bound = expansion_lower_bound(len(S), 2)
        t2.add_row([n, d, len(S), gam, round(bound, 1), round(gam / bound, 2),
                    round(gam / (len(S) ** (2 / 3) * 2), 3)])
        sizes.append(len(S))
        gammas.append(gam)
    alpha, _ = fit_power_law(sizes, gammas)
    save_tables(
        "e04_expansion",
        [t1, t2],
        notes=f"Fitted exponent of the tight series: |Gamma(S)| ~ |S|^{alpha:.3f} "
        f"(paper: 2/3).  The bound is never violated (min ratio "
        f"{min_ratio:.2f}); random sets expand near-linearly, the algebraic "
        f"witnesses pin the 2/3 exponent.",
    )
    return min_ratio, alpha


def test_e04_theorem4(benchmark):
    min_ratio, alpha = once(benchmark, run_experiment, name="e04.experiment")
    scalar("e04.min_expansion_ratio", min_ratio)
    scalar("e04.alpha_tight_series", alpha)
    assert min_ratio >= 1.0  # the lower bound holds everywhere
    assert 0.55 < alpha < 0.8  # the witnesses scale like the 2/3 power


def test_e04_gamma_of_set_speed(benchmark):
    g = MemoryGraph(2, 7)
    rng = np.random.default_rng(2)
    mats = g.random_variable_matrices(4096, rng)

    def measure():
        return np.unique(g.vgamma_variables(mats)).size

    timed(benchmark, "kernels.gamma_of_set_4096_n7", measure)
