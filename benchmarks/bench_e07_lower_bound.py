"""E7 -- Theorem 7: the Omega((M/N)^{1/r}) lower bound.

Paper claim: ANY memory organization storing M variables with exactly r
copies each in N modules admits a request set of N variables needing
Omega((M/N)^{1/r}) time; with q=2 (r=3) and this paper's M, that is
N^{1/6 - o(1)} -- so the achieved O(N^{1/3} log* N) is within a square.

Regenerated here: for each scheme, the constructive concentrated set
(all copies inside a module set B), the implied bound |S| * quorum / |B|,
and the measured protocol time on that set -- plus the (M/N)^{1/r}
reference column.  Also the paper's comparison against the weaker
average-redundancy bound of [UW87].
"""

import numpy as np

from _util import once, save_tables, scalar
from repro.analysis.report import Table
from repro.core.bounds import lower_bound_average_r, lower_bound_exact_r
from repro.schemes import (
    MehlhornVishkinScheme,
    PPAdapter,
    SingleCopyScheme,
    UpfalWigdersonScheme,
)
from repro.workloads.adversarial import concentrated_set_for


def run_experiment():
    N, M = 1023, 5456
    t = Table(
        ["scheme", "r", "(M/N)^(1/r)", "|S|", "|B|", "implied floor",
         "measured time", "floor respected"],
        title="E7 / Theorem 7 -- concentrated-set adversaries vs the lower bound",
    )
    ok = True
    schemes = [
        SingleCopyScheme(N, M, hashed=True, seed=0),
        MehlhornVishkinScheme(N, M, c=3),
        UpfalWigdersonScheme(N, M, c=2, seed=0),
        PPAdapter(2, 5),
    ]
    for sch in schemes:
        r = sch.copies_per_variable
        count = 16
        if isinstance(sch, SingleCopyScheme):
            count = min(count, sch.max_module_load())
        idx, b = concentrated_set_for(sch, count)
        res = sch.access(idx, op="count", count_as="write")
        floor = len(idx) * sch.write_quorum / b
        measured = res.total_iterations
        respected = measured >= np.floor(floor)
        ok &= bool(respected)
        t.add_row([sch.name, r, round(lower_bound_exact_r(M, N, r), 2),
                   len(idx), b, round(floor, 1), measured, respected])

    t2 = Table(
        ["r", "exact-copy bound (Thm 7)", "average-copy bound [UW87]"],
        title="E7b -- Theorem 7 strengthens the [UW87] bound (M=5456, N=1023)",
    )
    for r in (1, 2, 3, 5):
        t2.add_row([r, round(lower_bound_exact_r(M, N, r), 2),
                    round(lower_bound_average_r(M, N, r), 2)])

    save_tables(
        "e07_lower_bound",
        [t, t2],
        notes="Every scheme's measured adversarial time respects the "
        "concentration floor |S|*quorum/|B|.  Structured schemes "
        "(single-copy, MV) admit small B and big floors; the random and "
        "PGL2 placements only admit large B -- their expansion is the "
        "defence, and Theorem 7 caps how good any r-copy defence can be.",
    )
    return ok


def test_e07_lower_bound(benchmark):
    ok = once(benchmark, run_experiment, name="e07.experiment")
    scalar("e07.floor_respected", ok)
    assert ok
