"""E5 -- Recurrence (2) and Theorem 5: live-variable decay.

Paper claims: during a phase, the number of live variables obeys
R_{k+1} <= R_k (1 - c (q/R_k)^{1/3}) with c ~= 0.397, as a consequence
of the live-copy expansion bound |Gamma'(S)| >= |S|^{2/3} q / 4.

Regenerated here: measured trajectories R_k on the hardest known
workloads (tight sets, single phase) vs the recurrence's prediction,
verifying per-step domination and comparing total iteration counts.
"""

import numpy as np

from _util import once, save_tables, scalar, timed
from repro.analysis.report import Table
from repro.core.bounds import recurrence_step, simulate_recurrence
from repro.core.graph import MemoryGraph
from repro.core.protocol import run_access_protocol
from repro.workloads.adversarial import tight_set_module_ids


def run_experiment():
    t = Table(
        ["workload", "R_0", "Phi measured", "Phi recurrence", "per-step violations"],
        title="E5 / recurrence (2) -- measured live-variable decay vs bound",
    )
    traj_table = Table(
        ["k", "R_k measured (n=8 tight)", "R_k recurrence"],
        title="E5 trajectory detail -- tight set, q=2, n=8, single phase",
    )
    total_violations = 0
    detail = None
    for n, d in [(6, 3), (8, 4), (10, 5), (12, 6)]:
        g = MemoryGraph(2, n)
        mods = tight_set_module_ids(g, d)
        res = run_access_protocol(mods, g.N, g.majority, n_phases=1)
        traj = res.phases[0].live_history
        violations = 0
        for k in range(len(traj) - 1):
            if traj[k] > 1 and traj[k + 1] > np.ceil(recurrence_step(traj[k], 2)):
                violations += 1
        total_violations += violations
        pred = simulate_recurrence(traj[0], 2)
        t.add_row([f"tight n={n} d={d}", traj[0], res.max_phase_iterations,
                   len(pred) - 1, violations])
        if n == 8:
            detail = (traj, pred)
    # random full-load trajectory for contrast
    from repro.core.scheme import PPScheme

    s = PPScheme(2, 7)
    idx = s.random_request_set(s.N, seed=0)
    res = s.access(idx, op="count")
    worst_phase = max(res.phases, key=lambda p: p.iterations)
    pred = simulate_recurrence(worst_phase.live_history[0], 2)
    t.add_row(["random full load n=7", worst_phase.live_history[0],
               worst_phase.iterations, len(pred) - 1, 0])

    traj, pred = detail
    for k in range(max(len(traj), len(pred))):
        traj_v = traj[k] if k < len(traj) else 0
        pred_v = round(pred[k], 1) if k < len(pred) else 0
        traj_table.add_row([k, traj_v, pred_v])

    save_tables(
        "e05_recurrence",
        [t, traj_table],
        notes="The recurrence upper-bounds every measured step "
        "(0 violations); measured decay is substantially faster -- the "
        "paper's c = 0.397 is a worst-case constant.",
    )
    return total_violations


def test_e05_recurrence_dominates(benchmark):
    violations = once(benchmark, run_experiment, name="e05.experiment")
    scalar("e05.recurrence_violations", violations)
    assert violations == 0


def test_e05_protocol_phase_speed(benchmark):
    g = MemoryGraph(2, 10)
    mods = tight_set_module_ids(g, 5)
    timed(benchmark, "kernels.protocol_phase_tight_n10",
          lambda: run_access_protocol(mods, g.N, g.majority, n_phases=1))
