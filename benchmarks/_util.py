"""Shared helpers for the experiment benchmarks.

Every bench regenerates one experiment of DESIGN.md's index, prints its
table(s), and persists them under ``benchmarks/results/`` so
EXPERIMENTS.md can be assembled from the exact program output.  A bench
that ran with metrics collection on (:mod:`repro.obs`) may pass the
registry to :func:`save_tables` to persist the snapshot alongside the
result tables.
"""

from __future__ import annotations

import json
import os

from repro.analysis.report import Table
from repro.obs.metrics import MetricsRegistry

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_tables(
    name: str,
    tables: list[Table],
    notes: str = "",
    metrics: MetricsRegistry | dict | None = None,
) -> str:
    """Render, print, and persist the experiment's tables; returns the
    rendered text.

    When ``metrics`` is given (a registry or a snapshot dict), its JSON
    snapshot is written next to the table as ``{name}.metrics.json``.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    chunks = [t.render() for t in tables]
    if notes:
        chunks.append(notes.strip())
    text = "\n\n".join(chunks) + "\n"
    path = os.path.join(RESULTS_DIR, f"{name}.md")
    with open(path, "w") as fh:
        fh.write(text)
    if metrics is not None:
        snap = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
        with open(os.path.join(RESULTS_DIR, f"{name}.metrics.json"), "w") as fh:
            json.dump(snap, fh, indent=2, default=str)
            fh.write("\n")
    print()
    print(text)
    return text


def once(benchmark, fn):
    """Run an experiment function exactly once under pytest-benchmark
    (the experiments measure algorithmic quantities, not wall time; one
    round keeps ``--benchmark-only`` sweeps fast)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
