"""Shared helpers for the experiment benchmarks.

Every bench regenerates one experiment of DESIGN.md's index, prints its
table(s), and persists them under ``benchmarks/results/`` so
EXPERIMENTS.md can be assembled from the exact program output.  The
timing path of every bench also routes through the session-wide
:class:`repro.obs.perf.BenchRecorder` (via :func:`once` / :func:`timed`
/ :func:`scalar`), which ``conftest.py`` flushes to a ``BENCH_*.json``
run record at the repo root when the session ends -- that file is the
input to ``repro perf report`` / ``repro perf check``.

A bench that ran with metrics collection on (:mod:`repro.obs`) may pass
the registry to :func:`save_tables` to persist the snapshot alongside
the result tables; :func:`load_metrics` reads it back (the files are
schema-versioned so stale snapshots fail loudly instead of silently).
"""

from __future__ import annotations

import json
import os
import time

from repro.analysis.report import Table
from repro.obs.metrics import MetricsRegistry
from repro.obs.perf import BenchRecorder

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Version of the ``{name}.metrics.json`` envelope written by
#: :func:`save_tables` and checked by :func:`load_metrics`.
METRICS_SCHEMA = 1

_RECORDER = BenchRecorder(source="pytest-benchmarks")


def recorder() -> BenchRecorder:
    """The benchmark session's shared recorder (flushed by conftest)."""
    return _RECORDER


def scalar(name: str, value) -> None:
    """Record a headline scalar (fitted exponent, Phi, throughput) into
    the session's ``BENCH_*.json`` run record."""
    _RECORDER.scalar(name, value)


def once(benchmark, fn, name: str | None = None):
    """Run an experiment function exactly once under pytest-benchmark
    (the experiments measure algorithmic quantities, not wall time; one
    round keeps ``--benchmark-only`` sweeps fast).  When ``name`` is
    given, the single run's wall time is folded into the session
    recorder as a one-sample timed section."""
    t0 = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
    if name is not None:
        _RECORDER.observe(name, time.perf_counter() - t0)
    return result


def timed(benchmark, name: str, fn, warmup: int = 1, repeats: int = 5) -> dict:
    """Measure a hot-path kernel through the session recorder (monotonic
    clock, warmup + repeat-k, median/MAD) and register one round with
    pytest-benchmark for its own table; returns the section summary."""
    summary = _RECORDER.measure(name, fn, warmup=warmup, repeats=repeats)
    benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
    return summary


def save_tables(
    name: str,
    tables: list[Table],
    notes: str = "",
    metrics: MetricsRegistry | dict | None = None,
) -> str:
    """Render, print, and persist the experiment's tables; returns the
    rendered text.

    When ``metrics`` is given (a registry or a snapshot dict), its JSON
    snapshot is written next to the table as ``{name}.metrics.json``,
    wrapped in a schema-versioned envelope that :func:`load_metrics`
    checks on the way back in.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    chunks = [t.render() for t in tables]
    if notes:
        chunks.append(notes.strip())
    text = "\n\n".join(chunks) + "\n"
    path = os.path.join(RESULTS_DIR, f"{name}.md")
    with open(path, "w") as fh:
        fh.write(text)
    if metrics is not None:
        snap = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
        payload = {"schema": METRICS_SCHEMA, "name": name, "metrics": snap}
        with open(os.path.join(RESULTS_DIR, f"{name}.metrics.json"), "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
            fh.write("\n")
    print()
    print(text)
    return text


def load_metrics(name: str) -> dict:
    """Read back the metrics snapshot :func:`save_tables` persisted for
    ``name``; raises ``FileNotFoundError`` when the experiment never
    dumped one and ``ValueError`` on a schema mismatch."""
    path = os.path.join(RESULTS_DIR, f"{name}.metrics.json")
    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "schema" not in payload:
        raise ValueError(f"{path}: unversioned metrics snapshot")
    if payload["schema"] != METRICS_SCHEMA:
        raise ValueError(
            f"{path}: metrics schema {payload['schema']!r}, "
            f"expected {METRICS_SCHEMA}"
        )
    if not isinstance(payload.get("metrics"), dict):
        raise ValueError(f"{path}: missing metrics payload")
    return payload["metrics"]
