"""E15 (extension) -- the cost of the complete-graph abstraction.

The paper's model charges one unit per protocol iteration because
processors and modules are fully connected.  Section 1 defers the
"request routing problem" to bounded-degree implementations; this
experiment builds that half and measures what an iteration actually
costs on a hypercube (degree log N) and a torus (degree 4):

* hypercube overhead should track Theta(log N) (diameter-bound greedy
  routing with light congestion on random traffic);
* torus overhead should track Theta(sqrt N);
* the protocol's iteration *structure* is unchanged -- only the price
  per iteration moves, confirming the paper's separation of concerns.
"""

import numpy as np

from _util import once, save_tables, scalar, timed
from repro.analysis.fitting import fit_power_law
from repro.analysis.report import Table
from repro.core.scheme import PPScheme
from repro.network import HypercubeTopology, TorusTopology, run_protocol_on_network


def run_experiment():
    t = Table(
        ["n", "N", "requests", "MPC iters", "hypercube rounds",
         "overhead", "log2 N", "overhead/log2 N"],
        title="E15a / protocol over a hypercube vs the ideal MPC",
    )
    Ns, overheads = [], []
    for n in (3, 5, 7):
        s = PPScheme(2, n)
        count = min(s.N, s.M, 2048)
        idx = s.random_request_set(count, seed=0)
        mods = s.module_ids_for(idx)
        topo = HypercubeTopology.at_least(s.N)
        res = run_protocol_on_network(mods, s.N, s.majority, topo)
        log2n = float(np.log2(s.N))
        ov = res.network_rounds / res.mpc_iterations
        t.add_row([n, s.N, count, res.mpc_iterations, res.network_rounds,
                   round(ov, 1), round(log2n, 1), round(ov / log2n, 2)])
        Ns.append(s.N)
        overheads.append(ov)
    # log-growth: fitted power-law exponent of overhead vs N should be small
    alpha_h, _ = fit_power_law(Ns, overheads)

    s5 = PPScheme(2, 5)
    idx = s5.random_request_set(512, seed=1)
    mods = s5.module_ids_for(idx)
    t2 = Table(
        ["topology", "degree", "diameter", "network rounds", "overhead"],
        title="E15b / topology comparison at N = 1023, 512 requests",
    )
    for topo in (HypercubeTopology.at_least(s5.N), TorusTopology.at_least(s5.N)):
        res = run_protocol_on_network(mods, s5.N, 2, topo)
        t2.add_row([type(topo).__name__, topo.degree, topo.diameter(),
                    res.network_rounds,
                    round(res.overhead_factor, 1)])

    save_tables(
        "e15_network_routing",
        [t, t2],
        notes=f"Hypercube overhead grows like N^{alpha_h:.2f} (i.e. "
        f"polylogarithmically -- the overhead/log2N column is flat), the "
        f"degree-4 torus pays its sqrt(N) diameter.  Iteration counts are "
        f"identical to the ideal MPC: the memory-organization problem and "
        f"the routing problem compose exactly as the paper's Section 1 "
        f"separates them.",
    )
    return alpha_h


def test_e15_network(benchmark):
    alpha = once(benchmark, run_experiment, name="e15.experiment")
    scalar("e15.alpha_hypercube_overhead", alpha)
    assert alpha < 0.35  # far below linear: log-like growth


def test_e15_routing_speed(benchmark):
    topo = HypercubeTopology(10)
    rng = np.random.default_rng(0)
    src = rng.integers(0, 1024, 3000)
    dst = rng.integers(0, 1024, 3000)
    from repro.network import route_packets

    timed(benchmark, "kernels.route_packets_3000_h10",
          lambda: route_packets(topo, src, dst))
