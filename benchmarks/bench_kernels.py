"""Microbenchmarks of the computational kernels.

Not an experiment -- a performance suite over the hot paths that make
the repo's quarter-million-request simulations feasible: field
arithmetic, the coset-index kernel, unranking, slot computation, and
the protocol's arbitration step.  Every kernel routes through
``_util.timed`` so the session's ``BENCH_*.json`` run record carries a
median/MAD summary per kernel -- the series ``repro perf check`` gates.
"""

import numpy as np

from _util import scalar, timed
from repro.core.graph import MemoryGraph
from repro.core.scheme import PPScheme
from repro.gf.gf2m import GF2m
from repro.mpc.arbitration import LowestIdArbiter


def test_kernel_gf_vmul(benchmark):
    F = GF2m.get(18)
    rng = np.random.default_rng(0)
    a = rng.integers(0, F.order, 1_000_000)
    b = rng.integers(0, F.order, 1_000_000)
    summary = timed(benchmark, "kernels.gf_vmul_1m", lambda: F.vmul(a, b))
    scalar("kernels.gf_vmul_mops", 1.0 / summary["median"])


def test_kernel_gf_vinv(benchmark):
    F = GF2m.get(18)
    rng = np.random.default_rng(1)
    a = rng.integers(1, F.order, 1_000_000)
    timed(benchmark, "kernels.gf_vinv_1m", lambda: F.vinv(a))


def test_kernel_module_vindex(benchmark):
    g = MemoryGraph(2, 9)
    mats = g.group_element_arrays()
    sub = tuple(x[:500_000] for x in mats)
    timed(benchmark, "kernels.module_vindex_500k_n9",
          lambda: g.modules.vindex(sub))


def test_kernel_vkeys(benchmark):
    g = MemoryGraph(2, 7)
    mats = g.group_element_arrays()
    sub = tuple(x[:100_000] for x in mats)
    timed(benchmark, "kernels.vkeys_100k_n7", lambda: g.vkeys(sub))


def test_kernel_vgamma(benchmark):
    s = PPScheme(2, 9)
    idx = s.random_request_set(200_000, seed=0)
    mats = s.addressing.vunrank(idx)
    timed(benchmark, "kernels.vgamma_200k_n9",
          lambda: s.graph.vgamma_variables(mats))


def test_kernel_vslots(benchmark):
    s = PPScheme(2, 7)
    idx = s.random_request_set(16_383, seed=1)
    mats = s.addressing.vunrank(idx)
    mods = s.graph.vgamma_variables(mats)
    timed(benchmark, "kernels.vslots_full_n7",
          lambda: s._vslots(mats, mods))


def test_kernel_arbitration(benchmark):
    rng = np.random.default_rng(2)
    mods = rng.integers(0, 262_143, 500_000)
    arb = LowestIdArbiter()
    timed(benchmark, "kernels.arbitration_500k", lambda: arb(mods))


def test_kernel_vrank(benchmark):
    s = PPScheme(2, 9)
    idx = s.random_request_set(100_000, seed=3)
    mats = s.addressing.vunrank(idx)
    timed(benchmark, "kernels.vrank_100k_n9",
          lambda: s.addressing.vrank(mats))
