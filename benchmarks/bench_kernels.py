"""Microbenchmarks of the computational kernels.

Not an experiment -- a performance suite over the hot paths that make
the repo's quarter-million-request simulations feasible: field
arithmetic, the coset-index kernel, unranking, slot computation, and
the protocol's arbitration step.
"""

import numpy as np

from repro.core.graph import MemoryGraph
from repro.core.scheme import PPScheme
from repro.gf.gf2m import GF2m
from repro.mpc.arbitration import LowestIdArbiter


def test_kernel_gf_vmul(benchmark):
    F = GF2m.get(18)
    rng = np.random.default_rng(0)
    a = rng.integers(0, F.order, 1_000_000)
    b = rng.integers(0, F.order, 1_000_000)
    benchmark(lambda: F.vmul(a, b))


def test_kernel_gf_vinv(benchmark):
    F = GF2m.get(18)
    rng = np.random.default_rng(1)
    a = rng.integers(1, F.order, 1_000_000)
    benchmark(lambda: F.vinv(a))


def test_kernel_module_vindex(benchmark):
    g = MemoryGraph(2, 9)
    mats = g.group_element_arrays()
    sub = tuple(x[:500_000] for x in mats)
    benchmark(lambda: g.modules.vindex(sub))


def test_kernel_vkeys(benchmark):
    g = MemoryGraph(2, 7)
    mats = g.group_element_arrays()
    sub = tuple(x[:100_000] for x in mats)
    benchmark(lambda: g.vkeys(sub))


def test_kernel_vgamma(benchmark):
    s = PPScheme(2, 9)
    idx = s.random_request_set(200_000, seed=0)
    mats = s.addressing.vunrank(idx)
    benchmark(lambda: s.graph.vgamma_variables(mats))


def test_kernel_vslots(benchmark):
    s = PPScheme(2, 7)
    idx = s.random_request_set(16_383, seed=1)
    mats = s.addressing.vunrank(idx)
    mods = s.graph.vgamma_variables(mats)
    benchmark(lambda: s._vslots(mats, mods))


def test_kernel_arbitration(benchmark):
    rng = np.random.default_rng(2)
    mods = rng.integers(0, 262_143, 500_000)
    arb = LowestIdArbiter()
    benchmark(lambda: arb(mods))


def test_kernel_vrank(benchmark):
    s = PPScheme(2, 9)
    idx = s.random_request_set(100_000, seed=3)
    mats = s.addressing.vunrank(idx)
    benchmark(lambda: s.addressing.vrank(mats))
