"""Benchmark-suite configuration: make `benchmarks` importable as a
package-less directory, share slow graph fixtures, and flush the
session's :class:`repro.obs.perf.BenchRecorder` to a ``BENCH_*.json``
run record at the repo root when the session ends (metrics collection
is on for the whole session so the record carries the obs snapshot)."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro import obs  # noqa: E402
from repro.core.scheme import PPScheme  # noqa: E402

import _util  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="session")
def scheme_2_5():
    return PPScheme(2, 5)


@pytest.fixture(scope="session")
def scheme_2_7():
    return PPScheme(2, 7)


def pytest_sessionstart(session):
    obs.enable_metrics()
    obs.metrics().reset()


def pytest_sessionfinish(session, exitstatus):
    obs.disable_metrics()
    rec = _util.recorder()
    if rec.empty:
        return
    rec.attach_metrics(obs.metrics())
    out_dir = os.environ.get("REPRO_BENCH_DIR", REPO_ROOT)
    path = rec.write(out_dir)
    print(f"\n[repro.obs.perf] run record -> {path}")
