"""Benchmark-suite configuration: make `benchmarks` importable as a
package-less directory and share slow graph fixtures."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.core.scheme import PPScheme  # noqa: E402


@pytest.fixture(scope="session")
def scheme_2_5():
    return PPScheme(2, 5)


@pytest.fixture(scope="session")
def scheme_2_7():
    return PPScheme(2, 7)
