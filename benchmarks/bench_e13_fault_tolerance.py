"""E13 (extension) -- availability under module failures.

Not an explicit claim of the paper, but a direct corollary of the
majority discipline it adopts from [Tho79]: with q+1 copies and quorum
q/2+1, a variable stays fully available while at most q/2 of its
modules are down.  Because Theorem 2 spreads any two variables'
copies across almost-disjoint module sets, availability under random
failures should track the binomial prediction
P[>= q/2+1 of q+1 copies failed] with failure rate f = |F|/N.

Measured: surviving-variable fraction and read correctness on the
survivors, as the number of failed modules sweeps 0 -> N/2.
"""

import numpy as np
from scipy.stats import binom

from _util import once, save_tables, scalar
from repro.analysis.report import Table
from repro.core.scheme import PPScheme


def run_experiment():
    s = PPScheme(2, 5)
    idx = s.random_request_set(2000, seed=0)
    store = s.make_store()
    s.write(idx, values=idx, store=store, time=1)
    rng = np.random.default_rng(1)

    t = Table(
        ["failed modules", "failure rate f", "unavailable measured",
         "binomial prediction", "survivor reads correct"],
        title="E13 / fault tolerance -- availability vs failed modules (q=2, n=5)",
    )
    gaps = []
    for nf in (0, 8, 32, 128, 256, 512):
        failed = rng.choice(s.N, nf, replace=False) if nf else np.array([], dtype=np.int64)
        res = s.read(idx, store=store, time=2 + nf, failed_modules=failed,
                     allow_partial=True)
        bad = 0 if res.unsatisfiable is None else res.unsatisfiable.size
        f = nf / s.N
        # a variable dies when >= 2 of its 3 copies are in failed modules
        pred = float(binom.sf(1, 3, f)) if nf else 0.0
        survivors = np.setdiff1d(np.arange(len(idx)),
                                 res.unsatisfiable if bad else np.array([]))
        correct = bool((res.values[survivors] == idx[survivors]).all())
        t.add_row([nf, round(f, 3), round(bad / len(idx), 4), round(pred, 4),
                   correct])
        gaps.append(abs(bad / len(idx) - pred))
        assert correct
    # dynamic lifecycle: failures arrive and repair over a long run
    from repro.mpc.faults import FaultSchedule, simulate_availability

    t2 = Table(
        ["failure rate/step", "repair lag", "steps", "peak failed modules",
         "peak unavailable vars", "all survivor reads exact"],
        title="E13b / dynamic failure + repair lifecycle (q=2, n=5, 1500 vars)",
    )
    idx2 = s.random_request_set(1500, seed=9)
    for rate, lag in ((0.002, 3), (0.01, 3), (0.01, 10)):
        fs = FaultSchedule(s.N, rate, repair_lag=lag, seed=2)
        tr = simulate_availability(s, idx2, fs, steps=12)
        t2.add_row([rate, lag, tr.steps, max(tr.failed_per_step),
                    tr.worst_unavailable, tr.reads_correct])
        assert tr.reads_correct

    # adversarial sharpness: the q/2 threshold ladders of the campaign
    # engine -- exact-k copy kills and stale rollbacks on disjoint victims
    from repro.faults.campaign import threshold_experiment

    t3 = Table(
        ["q", "attack", "k", "victims", "lost", "wrong", "predicted"],
        title="E13c / q/2 threshold ladders (exact-k adversarial attacks)",
    )
    violations: list[str] = []
    for q in (2, 4, 8):
        for r in threshold_experiment(
            q, n_victims=8, n_requests=300, seed=0, violations=violations
        ):
            t3.add_row([r.q, r.attack, r.k, r.n_victims, r.lost_victims,
                        r.wrong_victims, "break" if r.expect_break else "hold"])
            assert r.ok, f"threshold not sharp: {r}"
    assert not violations, violations

    save_tables(
        "e13_fault_tolerance",
        [t, t2, t3],
        notes="Unavailability tracks the independent-failure binomial to "
        "within sampling noise (Theorem 2 keeps copy sets nearly "
        "disjoint), and every still-available variable reads its exact "
        "last-written value even at 50% module loss.  Under churn with "
        "repair, peak unavailability stays near zero at realistic rates.  "
        "The adversarial ladders pin the majority threshold exactly: "
        "zero damage while <= q/2 copies of a variable are killed or "
        "stale, and guaranteed loss (kills) or silent staleness (stale "
        "majority) at q/2 + 1.",
    )
    return max(gaps)


def test_e13_fault_tolerance(benchmark):
    gap = once(benchmark, run_experiment, name="e13.experiment")
    scalar("e13.max_binomial_gap", gap)
    assert gap < 0.05
