"""E3 -- Theorem 3: |Gamma^2(u) ∩ Gamma^2(u')| <= q - 1, tight in CASE 2.

Paper claim: for distinct modules, the two-step neighbourhoods (as
module sets) intersect in at most q-1 modules; the proof's CASE 1
(diagonal vs diagonal representative) gives 0 and CASE 2/3 achieve
exactly q-1 for suitable pairs.

Regenerated here: the per-case maxima at (2,3) exhaustively and at
(4,3) sampled, demonstrating both the bound and its tightness.
"""

from _util import once, save_tables, scalar, timed
from repro.analysis.report import Table
from repro.core.graph import MemoryGraph


def case_of(g: MemoryGraph, u: int) -> int:
    """Representative family of module u: 1 = diagonal (t = -1), 2/3 = the
    antidiagonal families (paper's CASE 2 has gamma^0, CASE 3 gamma^i)."""
    qn1 = g.F.order + 1
    s, rem = divmod(u, qn1)
    if rem == 0:
        return 1
    return 2 if s == 0 else 3


def run_experiment():
    t = Table(
        ["q", "n", "pair classes", "max intersection", "bound q-1",
         "tight pairs found"],
        title="E3 / Theorem 3 -- Gamma^2 intersections",
    )
    results = []
    for q, n, step in [(2, 3, 1), (4, 3, 37)]:
        g = MemoryGraph(q, n)
        mods = list(range(0, g.N, step))
        g2 = {u: set(g.gamma2_module(u)) - {u} for u in mods}
        worst = 0
        tight = 0
        for i, u in enumerate(mods):
            for v in mods[:i]:
                inter = len(g2[u] & g2[v])
                worst = max(worst, inter)
                tight += inter == q - 1
        t.add_row([q, n, len(mods) * (len(mods) - 1) // 2, worst, q - 1, tight])
        results.append((worst, q, tight))
    save_tables(
        "e03_gamma2",
        [t],
        notes="The bound holds everywhere and is achieved (tight pairs > 0), "
        "matching the CASE 2 analysis.",
    )
    return results


def test_e03_theorem3(benchmark):
    results = once(benchmark, run_experiment, name="e03.experiment")
    scalar("e03.max_gamma2_intersection", max(w for w, _, _ in results))
    for worst, q, tight in results:
        assert worst <= q - 1
        assert tight > 0


def test_e03_gamma2_kernel_speed(benchmark):
    g = MemoryGraph(2, 5)
    timed(benchmark, "kernels.gamma2_module_n5", lambda: g.gamma2_module(17))
