"""E1 -- Fact 1: structural parameters of G(V, U; E).

Paper claim: |V| = (q^n+1)q^n(q^n-1) / ((q+1)q(q-1)),
|U| = (q^n+1)(q^n-1)/(q-1), deg(V) = q+1, deg(U) = q^{n-1}; hence
N = Theta(q^{2n-1}) and M = Theta(N^{3/2 - 3/(4n-2)}).

Regenerated here: the closed forms against fully constructed graphs
(explicitly enumerated where feasible), plus the M-vs-N exponent column.
"""

import math

from _util import once, save_tables, scalar, timed
from repro.analysis.report import Table
from repro.core.bounds import fact1_counts
from repro.core.graph import MemoryGraph


def run_experiment():
    t = Table(
        ["q", "n", "N (formula)", "M (formula)", "deg V", "deg U",
         "N (built)", "M (built)", "exponent log_N M", "paper 1.5-3/(4n-2)"],
        title="E1 / Fact 1 -- structure of G",
    )
    checks = []
    for q, n, enumerate_fully in [
        (2, 3, True), (2, 5, True), (4, 3, True),
        (2, 7, False), (2, 9, False), (4, 5, False), (8, 3, False),
    ]:
        c = fact1_counts(q, n)
        g = MemoryGraph(q, n)
        built_M, built_N = g.M, g.N
        if enumerate_fully:
            # degrees verified from the definition, not the lemmas
            edges = g.explicit_edges()
            assert len(edges) == c["V"] * c["deg_V"] == c["U"] * c["deg_U"]
        assert (built_N, built_M) == (c["U"], c["V"])
        expo = math.log(g.M) / math.log(g.N)
        t.add_row([q, n, c["U"], c["V"], c["deg_V"], c["deg_U"],
                   built_N, built_M, round(expo, 4),
                   round(1.5 - 3 / (4 * n - 2), 4)])
        checks.append(abs(expo - (1.5 - 3 / (4 * n - 2))))
    save_tables(
        "e01_structure",
        [t],
        notes="Exact match on every instance; the measured exponent "
        "approaches the paper's 3/2 - 3/(4n-2) as n grows (low-order "
        "terms vanish).",
    )
    return max(checks)


def test_e01_structure(benchmark):
    worst_gap = once(benchmark, run_experiment, name="e01.experiment")
    scalar("e01.max_exponent_gap", worst_gap)
    assert worst_gap < 0.25  # finite-size effect only


def test_e01_graph_construction_speed(benchmark):
    timed(benchmark, "kernels.graph_build_n7", lambda: MemoryGraph(2, 7))
