"""E14 (extension) -- the M-vs-time tradeoff across the explicit schemes.

The paper's introduction frames a family: [PP93] handles
M = Theta(N^2) in O(sqrt N) and Theta(N^3) in O(N^{2/3}); this paper
handles M = Theta(N^{1.5 - o(1)}) in O(N^{1/3} log* N).  Theorem 7 puts
the floor at (M/N)^{1/r} for r-copy schemes.  More memory per module
=> slower worst case, with each construction a bounded factor above its
own floor.

Regenerated here: for the grid scheme (M = Theta(N^2)) and the PGL2
scheme (M = Theta(N^{1.5-o(1)})), the measured worst-case time on their
respective adversarial families, the fitted exponents, and each
scheme's Theorem-7 floor.
"""

import numpy as np

from _util import once, save_tables, scalar
from repro.analysis.fitting import fit_power_law
from repro.analysis.report import Table
from repro.core.bounds import lower_bound_exact_r
from repro.core.graph import MemoryGraph
from repro.core.protocol import run_access_protocol
from repro.schemes.grid import GridScheme
from repro.workloads.adversarial import tight_set_module_ids


def run_experiment():
    # --- grid scheme: block adversaries, time ~ sqrt(|S|) ----------------
    grid = GridScheme(1023)
    t1 = Table(
        ["|S|", "grid worst-case iters", "sqrt(|S|)"],
        title="E14a / grid scheme (M = Theta(N^2)) -- block adversaries",
    )
    gsizes, giters = [], []
    for k in (8, 16, 32, 64, 128):
        block = grid.adversarial_block(k)
        res = grid.access(block, op="count", collect_history=False)
        t1.add_row([k * k, res.total_iterations, round((k * k) ** 0.5, 1)])
        gsizes.append(k * k)
        giters.append(res.total_iterations)
    g_alpha, _ = fit_power_law(gsizes, giters)

    # --- PGL2 scheme: tight-set adversaries, time ~ |S|^(1/3) -------------
    t2 = Table(
        ["|S|", "PGL2 worst-case iters", "|S|^(1/3)"],
        title="E14b / PGL2 scheme (M = Theta(N^1.5-o(1))) -- tight-set adversaries",
    )
    psizes, piters = [], []
    for n, d in [(4, 2), (6, 3), (8, 4), (10, 5), (12, 6)]:
        g = MemoryGraph(2, n)
        mods = tight_set_module_ids(g, d)
        res = run_access_protocol(mods, g.N, g.majority, n_phases=1)
        S = mods.shape[0]
        t2.add_row([S, res.max_phase_iterations, round(S ** (1 / 3), 1)])
        psizes.append(S)
        piters.append(res.max_phase_iterations)
    p_alpha, _ = fit_power_law(psizes, piters)

    # --- the tradeoff summary --------------------------------------------
    pgl = MemoryGraph(2, 7)
    t3 = Table(
        ["scheme", "M", "M vs N", "measured worst exponent", "paper exponent",
         "Thm-7 floor (M/N)^(1/3)"],
        title="E14c / the M-vs-time tradeoff (r = 3 copies everywhere)",
    )
    t3.add_row(["pgl2 (this paper)", pgl.M, "N^1.36", round(p_alpha, 3), "1/3",
                round(lower_bound_exact_r(pgl.M, pgl.N, 3), 2)])
    t3.add_row(["grid [PP93-style]", grid.M, "N^2.0", round(g_alpha, 3), "1/2",
                round(lower_bound_exact_r(grid.M, grid.N, 3), 2)])
    save_tables(
        "e14_m_tradeoff",
        [t1, t2, t3],
        notes=f"Grid exponent {g_alpha:.2f} ~ 1/2, PGL2 exponent "
        f"{p_alpha:.2f} ~ 1/3: smaller M buys a polynomially faster worst "
        f"case, and each explicit construction sits a bounded power above "
        f"its Theorem-7 floor -- the tradeoff the two Pietracaprina-"
        f"Preparata papers map out.",
    )
    return g_alpha, p_alpha


def test_e14_tradeoff(benchmark):
    g_alpha, p_alpha = once(benchmark, run_experiment, name="e14.experiment")
    scalar("e14.alpha_grid", g_alpha)
    scalar("e14.alpha_pgl2", p_alpha)
    assert 0.38 < g_alpha < 0.62
    assert 0.2 < p_alpha < 0.45
    assert g_alpha > p_alpha + 0.08  # the gap is real
