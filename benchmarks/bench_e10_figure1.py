"""E10 -- Figure 1 analog: the coset-intersection configuration.

The paper's only figure illustrates the Theorem-2 proof: two variable
cosets A H0, B H0 and two module cosets C H_{n-1}, D H_{n-1} cannot
form a 4-cycle (each variable meeting both modules).

Regenerated here: (a) a census of the bipartite incidence structure at
(2,3) -- 4-cycle count (must be 0), path counts, degree spectrum;
(b) the girth-style statistics that make the figure's impossibility
quantitative.
"""

import numpy as np

from _util import once, save_tables, scalar
from repro.analysis.report import Table
from repro.core.graph import MemoryGraph


def run_experiment():
    g = MemoryGraph(2, 3)
    mats = g.all_variable_matrices()
    rows = [set(g.gamma_variable(A)) for A in mats]

    # 4-cycles: pairs of variables sharing >= 2 modules
    four_cycles = 0
    sharing_pairs = 0
    for i in range(len(rows)):
        for j in range(i):
            inter = len(rows[i] & rows[j])
            if inter >= 2:
                four_cycles += 1
            if inter == 1:
                sharing_pairs += 1

    # spectrum: how many (variable, variable) pairs per shared module count
    t = Table(
        ["quantity", "value", "paper"],
        title="E10 / Figure 1 -- incidence structure census (q=2, n=3)",
    )
    t.add_row(["variables |V|", len(mats), 84])
    t.add_row(["modules |U|", g.N, 63])
    t.add_row(["4-cycles (A,B,C,D as in Fig. 1)", four_cycles, 0])
    t.add_row(["variable pairs sharing exactly 1 module", sharing_pairs, "allowed"])
    t.add_row(["variable pairs sharing 0 modules",
               len(mats) * (len(mats) - 1) // 2 - sharing_pairs - four_cycles,
               "allowed"])

    # per-module co-residency: each module's q^{n-1} variables pairwise
    # share exactly that one module (Corollary 1's disjointness)
    cor1_ok = True
    for u in range(g.N):
        group = [g.variables.canon(m) for m in g.gamma_module(u)]
        outside = []
        for A in group:
            outside.extend(m for m in g.gamma_variable(A) if m != u)
        cor1_ok &= len(outside) == len(set(outside)) == g.q * len(group)
    t.add_row(["Corollary 1: outside-copies all distinct", cor1_ok, True])

    save_tables(
        "e10_figure1",
        [t],
        notes="The Figure-1 configuration (a 4-cycle) does not occur "
        "anywhere in the graph, and Corollary 1's disjointness -- the "
        "engine of the expansion proof -- holds at every module.",
    )
    return four_cycles, cor1_ok


def test_e10_figure1(benchmark):
    four_cycles, cor1_ok = once(benchmark, run_experiment,
                                name="e10.experiment")
    scalar("e10.four_cycles", four_cycles)
    assert four_cycles == 0
    assert cor1_ok
