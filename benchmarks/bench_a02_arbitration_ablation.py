"""Ablation A2 -- arbitration policy.

The paper's analysis is arbitration-oblivious: it only counts modules
serving requests.  This ablation verifies that obliviousness
empirically -- the measured Phi must be (nearly) the same whichever
pending request each module serves.
"""

import numpy as np

from _util import once, save_tables, scalar
from repro.analysis.report import Table
from repro.core.graph import MemoryGraph
from repro.core.protocol import run_access_protocol
from repro.core.scheme import PPScheme
from repro.workloads.adversarial import tight_set_module_ids


def run_experiment():
    t = Table(
        ["workload", "lowest-id", "random", "rotating", "spread"],
        title="A2 / arbitration ablation -- Phi under different module policies",
    )
    spreads = []
    s = PPScheme(2, 7)
    idx = s.random_request_set(8192, seed=1)
    mods = s.module_ids_for(idx)
    g = MemoryGraph(2, 10)
    tight = tight_set_module_ids(g, 5)
    for name, m, N, kwargs in (
        ("uniform 8192 (n=7)", mods, s.N, {}),
        ("tight set n=10 single-phase", tight, g.N, {"n_phases": 1}),
    ):
        vals = []
        for policy in ("lowest", "random", "rotating"):
            res = run_access_protocol(m, N, 2, arbitration=policy, seed=3, **kwargs)
            vals.append(res.max_phase_iterations)
        spread = max(vals) - min(vals)
        t.add_row([name, vals[0], vals[1], vals[2], spread])
        spreads.append(spread / max(vals))
    save_tables(
        "a02_arbitration_ablation",
        [t],
        notes="Phi moves by at most a few iterations across policies -- the "
        "analysis' policy-independence is real, so a hardware arbiter can "
        "be as dumb as it likes.",
    )
    return max(spreads)


def test_a02_arbitration(benchmark):
    spread = once(benchmark, run_experiment, name="a02.experiment")
    scalar("a02.max_phi_spread", spread)
    assert spread < 0.4
