"""Ablation A3 -- redundancy level: q = 2 (3 copies) vs q = 4 (5 copies).

The paper parameterizes redundancy by q; more copies buy expansion
(|Gamma(S)| >= |S|^{2/3} q grows with q) at the price of memory and of
more work per operation (majority q/2+1 grows too).  The footnote in
Section 4 singles out q = 2 as "one of the interesting cases for
practical PRAM simulations" [Mey92].

Measured: protocol cost, copies touched, and storage overhead for both
parameterizations on machines of comparable size.
"""

from _util import once, save_tables, scalar, timed
from repro.analysis.report import Table
from repro.core.scheme import PPScheme


def run_experiment():
    t = Table(
        ["q", "n", "N", "copies/var", "majority", "storage overhead",
         "N' = 1000 iters", "copies touched", "modeled steps"],
        title="A3 / redundancy ablation -- q=2 vs q=4 at N ~ 1000",
    )
    rows = {}
    for q, n in ((2, 5), (4, 3)):
        s = PPScheme(q, n)
        idx = s.random_request_set(1000, seed=2)
        res = s.access(idx, op="count")
        t.add_row([q, n, s.N, s.copies_per_variable, s.majority,
                   f"{s.copies_per_variable}x",
                   res.total_iterations, res.mpc_stats.served,
                   res.modeled_steps(s.N)])
        rows[q] = (res.total_iterations, res.mpc_stats.served)

    # q = 8: no enumerable addressing at this size (M = 266k needs the
    # full coset table) -- drive the protocol from sampled matrices.
    from repro.core.graph import MemoryGraph
    from repro.core.protocol import run_access_protocol
    import numpy as np

    g8 = MemoryGraph(8, 3)
    rng = np.random.default_rng(2)
    mats = g8.random_variable_matrices(1000, rng)
    mods = g8.vgamma_variables(mats)
    res8 = run_access_protocol(mods, g8.N, g8.majority)
    t.add_row([8, 3, g8.N, g8.copies_per_variable, g8.majority,
               f"{g8.copies_per_variable}x",
               res8.total_iterations, res8.mpc_stats.served, "-"])
    rows[8] = (res8.total_iterations, res8.mpc_stats.served)
    save_tables(
        "a03_redundancy_ablation",
        [t],
        notes="q=4 spends ~2x the copy traffic and 5/3 the storage for "
        "similar iteration counts at this scale -- consistent with the "
        "paper's (and [Mey92]'s) preference for q=2 in practice; the "
        "asymptotic payoff of larger q only shows against adversaries "
        "sized beyond these machines.",
    )
    return rows


def test_a03_redundancy(benchmark):
    rows = once(benchmark, run_experiment, name="a03.experiment")
    scalar("a03.copies_touched_q2", rows[2][1])
    scalar("a03.copies_touched_q4", rows[4][1])
    # copy traffic grows strictly with q for the same request count
    assert rows[2][1] < rows[4][1] < rows[8][1]


def test_a03_q4_access_speed(benchmark):
    s = PPScheme(4, 3)
    idx = s.random_request_set(1000, seed=3)
    timed(benchmark, "kernels.q4_access_1000",
          lambda: s.access(idx, op="count"))
