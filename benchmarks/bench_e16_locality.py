"""E16 (extension) -- realistic traffic: skew and temporal locality.

The paper's guarantees are worst-case over *distinct*-request batches;
actual parallel programs issue skewed, locality-heavy streams.  Two
questions the theory does not answer but a practitioner would ask:

1. does popularity skew hurt?  (No: duplicates combine before the
   protocol -- concurrency on one variable is free on a combining
   machine, and the remaining distinct set is easier.)
2. does locality hurt?  (Slightly helps if anything: a stable working
   set maps to a stable module set, and the deterministic placement has
   no cache to warm -- the protocol cost depends only on the set's
   expansion, Theorem 4.)

Regenerated here: iteration series across zipf skews and working-set
churn rates, for the PGL2 scheme and the baselines.
"""

import numpy as np

from _util import once, save_tables, scalar
from repro.analysis.report import Table
from repro.schemes import PPAdapter, SingleCopyScheme, UpfalWigdersonScheme
from repro.workloads.traces import locality_trace, replay_trace, zipfian_batch


def run_experiment():
    N, M = 1023, 5456
    schemes = [
        PPAdapter(2, 5),
        UpfalWigdersonScheme(N, M, c=2, seed=4),
        SingleCopyScheme(N, M, hashed=True, seed=4),
    ]
    t = Table(
        ["scheme", "zipf skew", "raw reqs", "distinct", "mean iters/batch"],
        title="E16a / popularity skew (8 batches x 512 raw requests)",
    )
    pp_rows = {}
    for sch in schemes:
        for skew in (0.0, 0.6, 0.9, 0.99):
            rng = np.random.default_rng(11)
            trace = [zipfian_batch(M, 512, skew, rng) for _ in range(8)]
            rep = replay_trace(sch, trace)
            t.add_row([sch.name, skew, rep.raw_requests, rep.distinct_requests,
                       round(rep.mean_iterations, 2)])
            if sch.name.startswith("pietracaprina"):
                pp_rows[skew] = rep.mean_iterations

    t2 = Table(
        ["scheme", "churn", "distinct/raw", "mean iters/batch"],
        title="E16b / temporal locality (working set 512, 8 batches x 384)",
    )
    for sch in schemes:
        for churn in (0.0, 0.25, 1.0):
            rng = np.random.default_rng(13)
            trace = locality_trace(M, 8, 384, 512, churn, rng)
            rep = replay_trace(sch, trace)
            t2.add_row([sch.name, churn, round(rep.combining_ratio, 3),
                        round(rep.mean_iterations, 2)])

    save_tables(
        "e16_locality",
        [t, t2],
        notes="Skew and locality never hurt: heavier skew means more "
        "combining and a smaller distinct set, so per-batch cost is flat "
        "or falls.  Deterministic placement has no warm-up to lose when "
        "the working set churns -- Theorem-4 expansion is the only thing "
        "the cost ever depended on.",
    )
    return pp_rows


def test_e16_locality(benchmark):
    rows = once(benchmark, run_experiment, name="e16.experiment")
    scalar("e16.pp_iters_zipf99", rows[0.99])
    # cost never grows with skew beyond noise
    assert rows[0.99] <= rows[0.0] + 1
