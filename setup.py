"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so
fully offline environments without the `wheel` package can still do
``python setup.py develop`` or ``pip install -e . --no-build-isolation``
via the legacy code path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
