#!/usr/bin/env python3
"""Render the live-watchdog run records into ``watchdog_report.md``.

Reads ``watch_fuzz.json`` (written by ``python -m repro watch fuzz``)
and, when present, ``watch_attack.json`` (``python -m repro watch
attack``) from a results directory and renders one markdown report:
the run summary with its memory-bound verdict, a sampled table of the
rolling health snapshots, the ``watch.*`` telemetry with p50/p95/p99
quantiles, and the online stale-majority canary verdict.

Run:  python tools/watch_report.py [--dir benchmarks/results]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

REPORT_BASENAME = "watchdog_report.md"
#: cap on snapshot rows rendered; long runs are subsampled evenly
MAX_SNAPSHOT_ROWS = 20


def sample_rows(rows: list, limit: int = MAX_SNAPSHOT_ROWS) -> list:
    """At most ``limit`` rows, evenly spaced, always keeping the last."""
    if len(rows) <= limit:
        return rows
    step = (len(rows) - 1) / (limit - 1)
    picks = sorted({round(i * step) for i in range(limit)} | {len(rows) - 1})
    return [rows[i] for i in picks[:limit]]


def fuzz_section(fuzz: dict) -> list[str]:
    """The streaming-fuzz run summary + snapshot table."""
    report = fuzz.get("report", {})
    n_viol = len(report.get("violations", []))
    verdict = "clean" if fuzz.get("ok") else "FAILED"
    lines = [
        "## Streaming fuzz under the watchdog",
        "",
        f"Scheme `{fuzz['scheme']}`, seed {fuzz['seed']}, "
        f">= {fuzz['total_ops']} operations over {fuzz['rounds']} rounds, "
        f"checker window {fuzz['window']} rounds.",
        "",
        f"- events consumed: **{fuzz['events']}** "
        f"(dropped: {fuzz['events_dropped']}, "
        f"late: {fuzz.get('late_dropped', 0)})",
        f"- violations: **{n_viol}**",
        f"- peak checker state: **{fuzz['peak_state']}** entries "
        f"(buffered peak {fuzz.get('peak_buffered', 0)})",
    ]
    budget = fuzz.get("state_budget")
    if budget is not None:
        lines.append(
            f"- state budget: {budget} entries -- "
            + ("held" if fuzz["peak_state"] <= budget else "**BUSTED**")
        )
    rss = fuzz.get("peak_rss_mb")
    if rss is not None:
        rss_budget = fuzz.get("rss_budget_mb")
        bound = (
            f" (budget {rss_budget} MiB -- "
            + ("held" if rss <= rss_budget else "**BUSTED**")
            + ")"
            if rss_budget is not None
            else ""
        )
        lines.append(f"- peak RSS: {rss} MiB{bound}")
    lines += ["", f"Verdict: **{verdict}**", ""]

    snaps = fuzz.get("snapshots", [])
    if snaps:
        lines += [
            f"### Health snapshots ({len(snaps)} taken, "
            f"{min(len(snaps), MAX_SNAPSHOT_ROWS)} shown)",
            "",
            "| round | batches | requests | lost | degraded | "
            "quorum margin | checker lag | state | violations |",
            "|-------|---------|----------|------|----------|"
            "---------------|-------------|-------|------------|",
        ]
        for s in sample_rows(snaps):
            lines.append(
                f"| {s['round']} | {s['batches']} | {s['requests']} | "
                f"{s['lost']} | {s['degraded']} | "
                f"{s['min_quorum_margin']} | {s['checker_lag']} | "
                f"{s['state_size']} | {s['violations']} |"
            )
        lines.append("")
    return lines


def metrics_section(metrics: dict) -> list[str]:
    """The ``watch.*`` registry snapshot as one table."""
    lines = [
        "## Live telemetry (`watch.*`)",
        "",
        "| metric | type | value / count | p50 | p95 | p99 | max |",
        "|--------|------|---------------|-----|-----|-----|-----|",
    ]
    for name in sorted(metrics):
        m = metrics[name]
        kind = m.get("type", "?")
        if kind in ("histogram", "timer"):
            sfx = "_seconds" if kind == "timer" else ""
            lines.append(
                f"| `{name}` | {kind} | {m.get('count', 0)} obs "
                f"| {m.get('p50' + sfx, '-')} | {m.get('p95' + sfx, '-')} "
                f"| {m.get('p99' + sfx, '-')} | {m.get('max', '-')} |"
            )
        else:
            lines.append(
                f"| `{name}` | {kind} | {m.get('value', '-')} "
                "| - | - | - | - |"
            )
    lines.append("")
    return lines


def attack_section(attack: dict) -> list[str]:
    """The online stale-majority canary verdict."""
    detected = attack.get("detected_online")
    lines = [
        "## Online stale-majority canary",
        "",
        "The q/2+1 rollback with the fresh remnant unreachable is the "
        "one fault the majority protocol cannot mask; the watchdog must "
        "flag it *while the run is still going*.",
        "",
        f"- silently-wrong reads injected: "
        f"**{attack.get('silent_wrong_reads', 0)}**",
        f"- detected at round **{attack.get('detected_at_round')}** of "
        f"{attack.get('last_round')} -- "
        + ("**DETECTED ONLINE**" if detected else "**MISSED**"),
        f"- <= q/2 control run: {attack.get('control_violations', 0)} "
        f"violation(s), {attack.get('control_degraded', 0)} degraded, "
        f"{attack.get('control_lost', 0)} lost -- "
        + ("clean" if attack.get("control_clean") else "**NOT CLEAN**"),
        "",
        f"Verdict: **{'ok' if attack.get('ok') else 'FAILED'}**",
        "",
    ]
    return lines


def render(fuzz: dict | None, attack: dict | None) -> str:
    lines = [
        "# Live watchdog report",
        "",
        "Online windowed conformance checking + health telemetry fed "
        "from the `repro.obs` event bus "
        "(`python -m repro watch fuzz | attack`).",
        "",
    ]
    if fuzz is not None:
        lines += fuzz_section(fuzz)
        if fuzz.get("metrics"):
            lines += metrics_section(fuzz["metrics"])
    if attack is not None:
        lines += attack_section(attack)
    if fuzz is None and attack is None:
        lines += ["No watch run records found.", ""]
    return "\n".join(lines)


def load_optional(path: Path) -> dict | None:
    """Load a run record, accepting a gzipped ``<name>.gz`` sibling
    (``repro watch fuzz`` compresses its snapshot-heavy record)."""
    gz = path.with_name(path.name + ".gz")
    if path.exists():
        with open(path) as fh:
            return json.load(fh)
    if gz.exists():
        import gzip

        with gzip.open(gz, "rt") as fh:
            return json.load(fh)
    return None


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--dir", default=os.path.join("benchmarks", "results"),
        help="directory holding watch_fuzz.json / watch_attack.json",
    )
    ap.add_argument(
        "--out", default=None,
        help=f"output path (default: <dir>/{REPORT_BASENAME})",
    )
    args = ap.parse_args(argv)

    d = Path(args.dir)
    fuzz = load_optional(d / "watch_fuzz.json")
    attack = load_optional(d / "watch_attack.json")
    if fuzz is None and attack is None:
        print(f"no watch_fuzz.json or watch_attack.json in {d}",
              file=sys.stderr)
        return 2
    md = render(fuzz, attack)
    out = Path(args.out) if args.out else d / REPORT_BASENAME
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(md)
    print(md)
    print(f"report -> {out}", file=sys.stderr)
    ok = all(r.get("ok") for r in (fuzz, attack) if r is not None)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
