#!/usr/bin/env python
"""Dependency-free line-coverage gate for the ``repro`` package.

The CI image carries no ``coverage``/``pytest-cov``, so this tool
measures line coverage with the stdlib alone: a ``sys.settrace`` hook
records executed lines of every frame whose code lives under
``src/repro`` while the test suite runs in-process, then an ``ast``
pass derives the executable-line universe per file (statement start
lines, minus docstrings and ``# pragma: no cover`` lines/blocks).

Usage::

    python tools/coverage_gate.py --fail-under 85 \
        --min-package repro/faults=90 [--report] [pytest args...]

Exit status: 0 when every threshold holds and the suite passed,
1 on a coverage shortfall, or the pytest exit code when tests failed.

The tracer must be installed before ``repro`` is imported so that
module-level lines (imports, constants, class bodies) are credited when
pytest first imports each module -- do not import repro at the top of
this file.

Caveats (accepted, the gate pins a measured baseline rather than an
absolute truth): multi-line statements are credited by their first
line; ``else:``/``finally:`` headers are not statements and are not
counted.  Timing-sensitive tests (``tests/obs/test_overhead.py``) are
excluded because tracing skews them, and the hypothesis deadline is
disabled for the same reason.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
import threading
import tokenize

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
PKG = os.path.join(SRC, "repro")

#: (filename -> set of executed line numbers), filled by the trace hook
_HITS: dict[str, set[int]] = {}


def _make_tracer():
    """A settrace hook that records line events only for repro frames."""

    def local_trace(frame, event, arg):
        if event == "line":
            _HITS[frame.f_code.co_filename].add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, arg):
        if event == "call":
            fn = frame.f_code.co_filename
            if fn.startswith(PKG):
                _HITS.setdefault(fn, set())
                return local_trace
        return None

    return global_trace


def _pragma_lines(path: str) -> set[int]:
    """Lines carrying a ``# pragma: no cover`` comment."""
    out: set[int] = set()
    with tokenize.open(path) as fh:
        try:
            for tok in tokenize.generate_tokens(fh.readline):
                if tok.type == tokenize.COMMENT and "pragma: no cover" in tok.string:
                    out.add(tok.start[0])
        except tokenize.TokenizeError:
            pass
    return out


def executable_lines(path: str) -> set[int]:
    """Statement start lines of ``path`` minus docstrings and pragmas.

    A pragma on a block header (``def``/``class``/``if`` ...) excludes
    the whole block, matching coverage.py's convention.
    """
    with open(path, "rb") as fh:
        tree = ast.parse(fh.read(), filename=path)
    pragmas = _pragma_lines(path)

    excluded: set[int] = set()
    lines: set[int] = set()

    def first_stmt_is_docstring(node) -> bool:
        body = getattr(node, "body", None)
        return bool(
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        )

    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            if first_stmt_is_docstring(node):
                doc = node.body[0]
                excluded.update(range(doc.lineno, doc.end_lineno + 1))
        if not isinstance(node, ast.stmt):
            continue
        header = node.lineno
        end = node.end_lineno or header
        if header in pragmas:
            # pragma on a block header excludes the entire block
            excluded.update(range(header, end + 1))
            continue
        lines.add(header)
    return {ln for ln in lines if ln not in excluded and ln not in pragmas}


def iter_source_files() -> list[str]:
    """Every .py file of the measured package, sorted."""
    found: list[str] = []
    for dirpath, _dirnames, filenames in os.walk(PKG):
        for name in sorted(filenames):
            if name.endswith(".py"):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


def measure(pytest_args: list[str]) -> int:
    """Run pytest in-process with the tracer installed; returns the
    pytest exit code (hits accumulate into ``_HITS``)."""
    # hypothesis deadlines measure wall time and the tracer slows every
    # repro frame; disable them before any test module loads
    from hypothesis import settings

    settings.register_profile("coverage-gate", deadline=None)
    settings.load_profile("coverage-gate")

    import pytest

    tracer = _make_tracer()
    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        return pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)


def report(
    fail_under: float | None,
    package_mins: dict[str, float],
    show_files: bool,
) -> int:
    """Aggregate hits vs executable lines; returns the gate exit code."""
    total_exec = 0
    total_hit = 0
    per_file: list[tuple[str, int, int]] = []
    for path in iter_source_files():
        exe = executable_lines(path)
        hits = _HITS.get(path, set())
        hit = len(exe & hits)
        per_file.append((path, hit, len(exe)))
        total_exec += len(exe)
        total_hit += hit

    def pct(hit: int, exe: int) -> float:
        return 100.0 * hit / exe if exe else 100.0

    if show_files:
        print(f"{'file':60s} {'lines':>6s} {'hit':>6s} {'cover':>7s}")
        for path, hit, exe in per_file:
            rel = os.path.relpath(path, SRC)
            print(f"{rel:60s} {exe:6d} {hit:6d} {pct(hit, exe):6.1f}%")
    print(
        f"TOTAL: {total_hit}/{total_exec} executable lines covered "
        f"({pct(total_hit, total_exec):.2f}%)"
    )

    code = 0
    if fail_under is not None and pct(total_hit, total_exec) < fail_under:
        print(
            f"FAIL: total coverage {pct(total_hit, total_exec):.2f}% "
            f"< --fail-under {fail_under:.2f}%"
        )
        code = 1
    for prefix, floor in package_mins.items():
        p_exec = p_hit = 0
        want = os.path.join(SRC, prefix.replace("/", os.sep))
        for path, hit, exe in per_file:
            if path.startswith(want):
                p_exec += exe
                p_hit += hit
        got = pct(p_hit, p_exec)
        marker = "ok" if got >= floor else "FAIL"
        print(
            f"package {prefix}: {p_hit}/{p_exec} ({got:.2f}%), "
            f"floor {floor:.2f}% -- {marker}"
        )
        if got < floor:
            code = 1
    return code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fail-under", type=float, default=None,
                        help="minimum total coverage percent")
    parser.add_argument(
        "--min-package", action="append", default=[],
        metavar="PATH=PCT",
        help="per-package floor, e.g. repro/faults=90 (repeatable)",
    )
    parser.add_argument("--report", action="store_true",
                        help="print the per-file coverage table")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra arguments passed to pytest")
    args = parser.parse_args(argv)

    package_mins: dict[str, float] = {}
    for spec in args.min_package:
        prefix, _, floor = spec.partition("=")
        package_mins[prefix] = float(floor)

    pytest_args = [
        "-q",
        "-p", "no:cacheprovider",
        "--ignore", os.path.join(ROOT, "tests", "obs", "test_overhead.py"),
        *args.pytest_args,
    ]
    if SRC not in sys.path:
        sys.path.insert(0, SRC)
    # subprocess-based tests (example scripts) need the path too
    existing = os.environ.get("PYTHONPATH", "")
    if SRC not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = (
            SRC + (os.pathsep + existing if existing else "")
        )
    test_code = measure(pytest_args)
    if test_code not in (0,):
        print(f"pytest exited {test_code}; coverage not gated")
        return int(test_code)
    return report(args.fail_under, package_mins, args.report)


if __name__ == "__main__":
    raise SystemExit(main())
