#!/usr/bin/env python
"""Strict-typing gate: annotation-coverage ratchet + optional mypy layer.

Two layers, so the gate is useful both in the dependency-free container
(stdlib only) and in CI (where mypy is pip-installed):

1. **Annotation coverage (always runs).**  An ``ast`` pass measures,
   per package, the share of *public* callables (functions and methods
   not starting with ``_``, plus ``__init__``) whose signatures are
   fully annotated -- every parameter except ``self``/``cls`` and the
   return type.  Floors live in ``tools/typecheck_ratchet.json``; the
   strict tier (``repro/gf``, ``repro/core``) is pinned at 100, the
   rest ratchet upward: measure, then run ``--update`` to raise floors
   to the new measurement (floors never go down automatically).

2. **mypy (runs when importable).**  Invokes ``mypy --config-file
   mypy.ini src/repro``; per-package strictness is configured there
   (strict tier: ``disallow_untyped_defs`` etc.).  Any error fails the
   gate.  When mypy is absent the layer reports SKIPPED and the gate
   rests on layer 1 -- CI installs mypy, so the full gate runs there.

Usage::

    python tools/typecheck.py [--report] [--update]

Exit status: 0 when every floor holds (and mypy, if present, is
clean); 1 on a shortfall; 2 on usage errors.
"""

from __future__ import annotations

import argparse
import ast
import json
import math
import os
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
PKG = os.path.join(SRC, "repro")
RATCHET_PATH = os.path.join(ROOT, "tools", "typecheck_ratchet.json")
MYPY_INI = os.path.join(ROOT, "mypy.ini")

#: packages that must stay at 100% public-API annotation coverage
STRICT_TIER = ("repro/gf", "repro/core")


def iter_source_files() -> list[str]:
    out: list[str] = []
    for dirpath, _dirnames, filenames in os.walk(PKG):
        for name in sorted(filenames):
            if name.endswith(".py"):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def package_of(path: str) -> str:
    """``repro/<subpackage>`` (or ``repro`` for top-level modules)."""
    rel = os.path.relpath(path, SRC).replace(os.sep, "/")
    parts = rel.split("/")
    return "/".join(parts[:2]) if len(parts) > 2 else parts[0]


def is_public_callable(node: ast.AST, class_ctx: bool) -> bool:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    name = node.name
    if name == "__init__":
        return class_ctx
    return not name.startswith("_")


def fully_annotated(fn: ast.FunctionDef | ast.AsyncFunctionDef,
                    class_ctx: bool) -> bool:
    args = fn.args
    params = list(args.posonlyargs) + list(args.args)
    if class_ctx and params and params[0].arg in ("self", "cls"):
        params = params[1:]
    params += list(args.kwonlyargs)
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            params.append(extra)
    if any(p.annotation is None for p in params):
        return False
    if fn.returns is None:
        # __init__ with annotated params counts: the return is self-evident
        return fn.name == "__init__"
    return True


def measure() -> tuple[dict[str, tuple[int, int]], list[str]]:
    """Per-package (annotated, public) counts + the unannotated list."""
    per_pkg: dict[str, tuple[int, int]] = {}
    missing: list[str] = []
    for path in iter_source_files():
        with open(path, "rb") as fh:
            tree = ast.parse(fh.read(), filename=path)
        pkg = package_of(path)
        hit, total = per_pkg.get(pkg, (0, 0))

        def visit(node: ast.AST, class_ctx: bool) -> None:
            nonlocal hit, total
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    visit(child, True)
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if is_public_callable(child, class_ctx):
                        total += 1
                        if fully_annotated(child, class_ctx):
                            hit += 1
                        else:
                            rel = os.path.relpath(path, SRC)
                            missing.append(
                                f"{rel}:{child.lineno}: {child.name}"
                            )
                    visit(child, False)
                else:
                    visit(child, class_ctx)

        visit(tree, False)
        per_pkg[pkg] = (hit, total)
    return per_pkg, missing


def pct(hit: int, total: int) -> float:
    return 100.0 * hit / total if total else 100.0


def floor_of(got: float) -> float:
    """Round DOWN to one decimal so a freshly seeded floor never exceeds
    the measurement it came from."""
    return math.floor(got * 10.0) / 10.0


def load_ratchet() -> dict[str, float]:
    with open(RATCHET_PATH, encoding="utf-8") as fh:
        data = json.load(fh)
    return {k: float(v) for k, v in data["annotation_floors"].items()}


def save_ratchet(floors: dict[str, float]) -> None:
    data = {
        "comment": (
            "Per-package public-API annotation-coverage floors (percent). "
            "The strict tier (repro/gf, repro/core) is pinned at 100; the "
            "rest only ratchet up -- run tools/typecheck.py --update after "
            "annotating to lock in progress."
        ),
        "annotation_floors": {
            k: floors[k] for k in sorted(floors)
        },
    }
    with open(RATCHET_PATH, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")


def run_mypy() -> tuple[str, int | None]:
    """Returns (status line, error count or None when skipped)."""
    try:
        import mypy  # noqa: F401
    except ImportError:
        return "mypy: SKIPPED (not installed; CI runs this layer)", None
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", MYPY_INI,
         os.path.join("src", "repro")],
        cwd=ROOT, capture_output=True, text=True,
    )
    errors = sum(
        1 for line in proc.stdout.splitlines() if ": error:" in line
    )
    tail = proc.stdout.strip().splitlines()[-1] if proc.stdout.strip() else ""
    return f"mypy: {tail or 'no output'}", (
        errors if proc.returncode else 0
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", action="store_true",
                        help="list every unannotated public callable")
    parser.add_argument("--update", action="store_true",
                        help="raise ratchet floors to current measurements")
    parser.add_argument("--no-mypy", action="store_true",
                        help="skip the mypy layer even if installed")
    args = parser.parse_args(argv)

    per_pkg, missing = measure()
    floors = load_ratchet()
    code = 0

    total_hit = sum(h for h, _ in per_pkg.values())
    total_all = sum(t for _, t in per_pkg.values())
    print(
        f"annotation coverage: {total_hit}/{total_all} public callables "
        f"fully annotated ({pct(total_hit, total_all):.1f}%)"
    )
    for pkg in sorted(per_pkg):
        hit, total = per_pkg[pkg]
        got = pct(hit, total)
        floor = floors.get(pkg)
        strict = pkg in STRICT_TIER
        if floor is None:
            floors[pkg] = 100.0 if strict else floor_of(got)
            floor = floors[pkg]
        verdict = "ok" if got >= floor else "FAIL"
        if got < floor:
            code = 1
        tier = "strict" if strict else "ratchet"
        print(
            f"  {pkg:22s} {hit:3d}/{total:3d} ({got:5.1f}%) "
            f"floor {floor:5.1f} [{tier}] -- {verdict}"
        )
    if args.report and missing:
        print("\nunannotated public callables:")
        for m in missing:
            print(f"  {m}")

    if args.update:
        for pkg, (hit, total) in per_pkg.items():
            got = floor_of(pct(hit, total))
            if pkg in STRICT_TIER:
                floors[pkg] = 100.0
            else:
                floors[pkg] = max(floors.get(pkg, 0.0), got)
        save_ratchet(floors)
        print(f"ratchet floors updated -> {RATCHET_PATH}")

    if not args.no_mypy:
        line, errors = run_mypy()
        print(line)
        if errors:
            code = 1
    return code


if __name__ == "__main__":
    raise SystemExit(main())
