#!/usr/bin/env python3
"""Diff two ``BENCH_*.json`` run records section by section.

``repro perf check`` gates the latest run against the rolling baseline;
this tool answers the narrower CI-artifact question "what changed
between exactly these two runs?" -- e.g. a downloaded baseline artifact
vs the record a PR build just produced.

Run:  python tools/bench_delta.py BASELINE.json CANDIDATE.json
      [--ratio 0.25]

Exit status: 0 when no section slowed down beyond ``--ratio``, 1
otherwise, 2 on unreadable inputs.
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.report import Table  # noqa: E402
from repro.obs.perf import load_record  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("baseline", help="reference BENCH_*.json")
    ap.add_argument("candidate", help="BENCH_*.json under test")
    ap.add_argument("--ratio", type=float, default=0.25,
                    help="relative slowdown tolerated before failing")
    args = ap.parse_args(argv)

    try:
        base = load_record(args.baseline)
        cand = load_record(args.candidate)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    bsec = base.get("sections", {})
    csec = cand.get("sections", {})
    t = Table(
        ["section", "baseline", "candidate", "delta", "verdict"],
        title=f"bench delta -- {base.get('created_utc')} -> "
        f"{cand.get('created_utc')}",
    )
    regressions = 0
    for name in sorted(set(bsec) | set(csec)):
        b = bsec.get(name, {}).get("median")
        c = csec.get(name, {}).get("median")
        ok_pair = (
            isinstance(b, (int, float)) and isinstance(c, (int, float))
            and math.isfinite(b) and math.isfinite(c) and b > 0 and c > 0
        )
        if not ok_pair:
            t.add_row([name, b, c, "-",
                       "baseline-only" if c is None else
                       "candidate-only" if b is None else "unusable"])
            continue
        delta = (c - b) / b
        slow = delta > args.ratio
        regressions += slow
        t.add_row([name, round(b, 6), round(c, 6), f"{delta:+.1%}",
                   "REGRESSION" if slow else "ok"])
    t.print()
    if regressions:
        print(f"\n{regressions} section(s) slower than {args.ratio:.0%}")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
