#!/usr/bin/env python3
"""Profile the protocol hot path (the 'measure before optimizing' tool).

Thin wrapper around :func:`repro.obs.profiling.profile_access`, which is
also exposed as ``python -m repro profile`` (no repo checkout needed).
Runs a full-load access at (q=2, n) under cProfile and prints the top
entries -- useful when touching the vectorized kernels (gf tables,
vindex, arbitration) to see where the time actually goes.

Run:  python tools/profile_protocol.py [n] [requests] [--sort KEY]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    p.add_argument("n", type=int, nargs="?", default=9,
                   help="extension degree (default 9)")
    p.add_argument("requests", type=int, nargs="?", default=100_000,
                   help="max distinct requests (default 100000)")
    p.add_argument("--sort", choices=["cumulative", "tottime"],
                   default="cumulative", help="pstats sort key")
    p.add_argument("--limit", type=int, default=15,
                   help="stats entries to print")
    p.add_argument("--engine", choices=["vector", "scalar"],
                   default="vector", help="protocol engine to profile")
    args = p.parse_args(argv)

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    try:
        from repro.obs.profiling import profile_access
    except ImportError as exc:
        print(f"error: cannot import repro ({exc}); install the package "
              "or run from a checkout", file=sys.stderr)
        return 1

    profile_access(n=args.n, count=args.requests, sort=args.sort,
                   limit=args.limit, engine=args.engine)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
