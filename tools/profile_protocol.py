#!/usr/bin/env python3
"""Profile the protocol hot path (the 'measure before optimizing' tool).

Runs a full-load access at (q=2, n=9) under cProfile and prints the top
cumulative-time entries -- useful when touching the vectorized kernels
(gf tables, vindex, arbitration) to see where the time actually goes.

Run:  python tools/profile_protocol.py [n] [requests]
"""

from __future__ import annotations

import cProfile
import pstats
import sys


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 9
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 100_000

    from repro.core.scheme import PPScheme

    scheme = PPScheme(2, n)
    count = min(count, scheme.N, scheme.M)
    idx = scheme.random_request_set(count, seed=0)

    prof = cProfile.Profile()
    prof.enable()
    res = scheme.access(idx, op="count")
    prof.disable()

    print(f"N = {scheme.N}, requests = {count}, Phi = {res.max_phase_iterations}")
    stats = pstats.Stats(prof)
    stats.sort_stats("cumulative").print_stats(15)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
