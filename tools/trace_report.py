#!/usr/bin/env python3
"""Summarize a JSONL trace into per-phase tables (the E06 view).

Reads a trace recorded with ``python -m repro access --trace-out FILE``
(or any :class:`repro.obs.trace.RecordingTracer` dump) and renders, for
every ``protocol.access`` span, the per-phase iteration table of
EXPERIMENTS.md E06: phase, variables, iterations, live-variable
trajectory endpoints, and wall time.  MPC step events are folded into a
served/congestion summary per access.

Run:  python tools/trace_report.py TRACE.jsonl
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.report import Table  # noqa: E402
from repro.obs.trace import read_jsonl  # noqa: E402


def group_accesses(events: list[dict]) -> list[dict]:
    """Attach phase spans and mpc.step events to their enclosing
    ``protocol.access`` span.

    Spans are emitted at close (children precede parents), so walk the
    stream collecting children until their access span arrives.
    """
    accesses = []
    pending_phases: list[dict] = []
    pending_steps: list[dict] = []
    for ev in events:
        if ev["name"] == "protocol.phase":
            pending_phases.append(ev)
        elif ev["name"] == "mpc.step":
            pending_steps.append(ev)
        elif ev["name"] == "protocol.access":
            accesses.append(
                {"access": ev, "phases": pending_phases,
                 "steps": pending_steps}
            )
            pending_phases = []
            pending_steps = []
    return accesses


def render_access(num: int, group: dict) -> list[Table]:
    """The per-phase table plus a one-line machine summary."""
    acc = group["access"]
    t = Table(
        ["phase", "variables", "iterations", "R_0", "R_final", "seconds"],
        title=(
            f"access #{num}: op={acc.get('op', '?')}, "
            f"requests={acc.get('requests', '?')}, q={acc.get('q', '?')}, "
            f"total iterations={acc.get('total_iterations', '?')}"
        ),
    )
    for ph in sorted(group["phases"], key=lambda e: e.get("phase", 0)):
        hist = ph.get("live_history") or []
        t.add_row([
            ph.get("phase"),
            ph.get("variables"),
            ph.get("iterations"),
            hist[0] if hist else "-",
            hist[-1] if hist else "-",
            round(ph.get("dur", 0.0), 6),
        ])
    steps = group["steps"]
    m = Table(
        ["MPC steps", "requests", "served", "max congestion"],
        title=f"access #{num}: machine summary",
    )
    m.add_row([
        len(steps),
        sum(e.get("requests", 0) for e in steps),
        sum(e.get("served", 0) for e in steps),
        max((e.get("congestion", 0) for e in steps), default=0),
    ])
    return [t, m]


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        description="render a repro JSONL trace as per-phase tables"
    )
    p.add_argument("trace", help="JSONL trace file (from access --trace-out)")
    args = p.parse_args(argv)
    try:
        events = read_jsonl(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc}",
              file=sys.stderr)
        return 2
    accesses = group_accesses(events)
    if not accesses:
        print(
            f"error: no protocol.access spans in {args.trace!r} "
            f"({len(events)} events)",
            file=sys.stderr,
        )
        return 2
    for i, group in enumerate(accesses):
        for t in render_access(i, group):
            t.print()
            print()
    other = [e["name"] for e in events
             if e["name"] not in ("protocol.access", "protocol.phase",
                                  "mpc.step")]
    if other:
        counts = {}
        for name in other:
            counts[name] = counts.get(name, 0) + 1
        summary = ", ".join(f"{k} x{v}" for k, v in sorted(counts.items()))
        print(f"other events: {summary}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
