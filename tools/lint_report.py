#!/usr/bin/env python
"""Summarize ``repro lint --format json`` output into a markdown report.

Part of the benchmarks/results house pipeline: CI (and ``make lint``)
captures the machine-readable findings once, and this tool renders the
human report from that JSON without re-running the engine --

    PYTHONPATH=src python -m repro lint --format json > /tmp/lint.json
    python tools/lint_report.py /tmp/lint.json \
        -o benchmarks/results/lint_report.md

With no positional argument the JSON is read from stdin; with no ``-o``
the markdown goes to stdout.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "json_path", nargs="?", default=None,
        help="lint JSON file (default: stdin)",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="markdown output path (default: stdout)",
    )
    args = parser.parse_args(argv)

    if args.json_path:
        with open(args.json_path, encoding="utf-8") as fh:
            data = json.load(fh)
    else:
        data = json.load(sys.stdin)

    from repro.lint.report import LintResult, render_markdown

    try:
        result = LintResult.from_dict(data)
    except (KeyError, ValueError) as exc:
        print(f"error: bad lint JSON: {exc}", file=sys.stderr)
        return 2

    md = render_markdown(result)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(md)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(md, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
