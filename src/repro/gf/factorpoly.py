"""Polynomial factorization over GF(p).

The full classical pipeline -- squarefree decomposition, distinct-degree
factorization, and equal-degree splitting (Cantor-Zassenhaus, with the
trace-map variant for characteristic 2) -- plus root extraction.  Used
by the test suite to validate minimal polynomials and subfield
structure independently of the table-based field code.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.gf.poly import Poly

__all__ = [
    "squarefree_decomposition",
    "distinct_degree_factorization",
    "equal_degree_factorization",
    "factor_poly",
    "poly_roots",
]


def _pth_root(f: Poly) -> Poly:
    """For ``f`` with only p-th power terms, the polynomial g with
    ``g^p == f`` (coefficientwise p-th root; identity map on GF(p))."""
    p = f.p
    coeffs = []
    for i in range(0, len(f.coeffs), p):
        coeffs.append(f.coeffs[i])
    return Poly(coeffs, p)


def squarefree_decomposition(f: Poly) -> list[tuple[Poly, int]]:
    """Yun-style squarefree decomposition of a monic polynomial.

    Returns ``[(g_i, e_i)]`` with ``f == prod g_i^{e_i}``, the ``g_i``
    squarefree, pairwise coprime, and non-constant.
    """
    if f.is_zero() or f.degree < 1:
        return []
    f = f.monic()
    p = f.p
    out: list[tuple[Poly, int]] = []

    def rec(f: Poly, mult: int) -> None:
        if f.degree < 1:
            return
        df = f.derivative()
        if df.is_zero():
            # f is a p-th power
            rec(_pth_root(f), mult * p)
            return
        c = f.gcd(df)
        w = f // c
        i = 1
        while w.degree >= 1:
            y = w.gcd(c)
            z = w // y
            if z.degree >= 1:
                out.append((z.monic(), i * mult))
            w = y
            c = c // y
            i += 1
        if c.degree >= 1:
            # c now holds exactly the factors whose multiplicity is a
            # multiple of p: take the coefficientwise p-th root first.
            rec(_pth_root(c), mult * p)

    rec(f, 1)
    # merge duplicates
    merged: dict[Poly, int] = {}
    for g, e in out:
        merged[g] = merged.get(g, 0) + e if g in merged else e
    return sorted(merged.items(), key=lambda t: (t[0].degree, t[0].coeffs))


def distinct_degree_factorization(f: Poly) -> list[tuple[Poly, int]]:
    """For squarefree monic ``f``: returns ``[(f_d, d)]`` where ``f_d``
    is the product of all irreducible factors of degree exactly ``d``."""
    p = f.p
    f = f.monic()
    out = []
    h = Poly.x(p)
    x = Poly.x(p)
    rest = f
    d = 0
    while rest.degree >= 2 * (d + 1):
        d += 1
        h = h.pow_mod(p, rest)
        g = rest.gcd(h - x)
        if g.degree >= 1:
            out.append((g, d))
            rest = rest // g
            h = h % rest
    if rest.degree >= 1:
        out.append((rest, rest.degree))
    return out


def equal_degree_factorization(
    f: Poly, d: int, rng: random.Random | None = None
) -> list[Poly]:
    """Split monic squarefree ``f`` whose irreducible factors all have
    degree ``d`` into those factors (Cantor-Zassenhaus).

    Characteristic 2 uses the trace map ``T(a) = a + a^2 + ... +
    a^{2^{d-1}}``; odd characteristic the exponent ``(p^d - 1)/2``.
    """
    if rng is None:
        rng = random.Random(0xC0FFEE)
    p = f.p
    f = f.monic()
    if f.degree == d:
        return [f]
    if f.degree % d != 0:
        raise ValueError(f"degree {f.degree} is not a multiple of {d}")

    def split(g: Poly) -> list[Poly]:
        if g.degree == d:
            return [g]
        while True:
            a = Poly([rng.randrange(p) for _ in range(g.degree)], p)
            if a.degree < 1:
                continue
            if p == 2:
                t = a
                acc = a
                for _ in range(d - 1):
                    acc = acc.pow_mod(2, g)
                    t = (t + acc) % g
                cand = g.gcd(t)
            else:
                e = (p**d - 1) // 2
                cand = g.gcd(a.pow_mod(e, g) - Poly.one(p))
            if 1 <= cand.degree < g.degree:
                return split(cand.monic()) + split((g // cand).monic())

    return split(f)


def factor_poly(f: Poly, rng: random.Random | None = None) -> Counter:
    """Full factorization of a non-constant polynomial over GF(p):
    Counter {irreducible monic factor: multiplicity} (leading
    coefficient is discarded -- factors are monic)."""
    if f.is_zero():
        raise ValueError("cannot factor the zero polynomial")
    out: Counter = Counter()
    for g, e in squarefree_decomposition(f):
        for prod, d in distinct_degree_factorization(g):
            for irr in equal_degree_factorization(prod, d, rng):
                out[irr] += e
    return out


def poly_roots(f: Poly) -> list[int]:
    """All roots of ``f`` in GF(p), with multiplicity, sorted.

    Reads the degree-1 factors: the factor ``x + c`` has root ``-c``.
    """


    roots: list[int] = []
    for g, e in factor_poly(f).items():
        if g.degree == 1:
            # monic: x + c  =>  root = -c mod p
            c = g.coeffs[0] if len(g.coeffs) > 1 else 0
            roots.extend([(-c) % f.p] * e)
    return sorted(roots)
