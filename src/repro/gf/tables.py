"""Precomputed primitive polynomials over GF(2).

``PRIMITIVE_POLY_GF2[m]`` is the bit mask (little-endian coefficient
packing, bit i = coefficient of x^i) of a primitive polynomial of degree
``m``.  These are the classic low-weight primitive polynomials (e.g.
x^4 + x + 1 for m=4); every entry is re-verified by the test suite via
:func:`repro.gf.irreducible.is_primitive`.

Having a fixed table makes field construction deterministic across runs,
which matters because variable/module indices (Section 4 of the paper)
depend on the chosen generator.
"""

PRIMITIVE_POLY_GF2: dict[int, int] = {
    1: 0b11,                      # x + 1
    2: 0b111,                     # x^2 + x + 1
    3: 0b1011,                    # x^3 + x + 1
    4: 0b10011,                   # x^4 + x + 1
    5: 0b100101,                  # x^5 + x^2 + 1
    6: 0b1000011,                 # x^6 + x + 1
    7: 0b10000011,                # x^7 + x + 1
    8: 0b100011101,               # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b1000010001,              # x^9 + x^4 + 1
    10: 0b10000001001,            # x^10 + x^3 + 1
    11: 0b100000000101,           # x^11 + x^2 + 1
    12: 0b1000001010011,          # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,         # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011,        # x^14 + x^10 + x^6 + x + 1
    15: 0b1000000000000011,       # x^15 + x + 1
    16: 0b10001000000001011,      # x^16 + x^12 + x^3 + x + 1
    17: 0b100000000000001001,     # x^17 + x^3 + 1
    18: 0b1000000000010000001,    # x^18 + x^7 + 1
    19: 0b10000000000000100111,   # x^19 + x^5 + x^2 + x + 1
    20: 0b100000000000000001001,  # x^20 + x^3 + 1
    21: 0b1000000000000000000101,   # x^21 + x^2 + 1
    22: 0b10000000000000000000011,  # x^22 + x + 1
    23: 0b100000000000000000100001, # x^23 + x^5 + 1
    24: 0b1000000000000000010000111,# x^24 + x^7 + x^2 + x + 1
}
