"""Modular integer arithmetic helpers.

Small, dependency-free number-theory routines used across the ``gf``
package: extended gcd, modular inverse, deterministic Miller-Rabin
primality for 64-bit-ish integers, and an iterated-log helper that the
protocol analysis (Theorem 6, ``log* N``) also reuses.
"""

from __future__ import annotations

import math

__all__ = [
    "egcd",
    "modinv",
    "is_prime",
    "log_star",
    "int_nth_root",
]


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        quot = old_r // r
        old_r, r = r, old_r - quot * r
        old_s, s = s, old_s - quot * s
        old_t, t = t, old_t - quot * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``m``.

    Raises :class:`ValueError` when ``gcd(a, m) != 1``.
    """
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m} (gcd={g})")
    return x % m


# Deterministic Miller-Rabin witnesses covering all n < 3.3 * 10^24
# (Sorenson & Webster); far beyond anything this repo factors.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test (exact for n < 3.3e24)."""
    if n < 2:
        return False
    for p in _MR_WITNESSES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def log_star(n: float, base: float = 2.0) -> int:
    """Iterated logarithm ``log* n``: how many times ``log`` must be applied
    before the value drops to <= 1.

    Used by the Theorem-6 bound ``Phi in O(N^{1/3} log* N)``.
    """
    if n <= 1:
        return 0
    count = 0
    x = float(n)
    while x > 1.0:
        x = math.log(x, base)
        count += 1
    return count


def int_nth_root(x: int, n: int) -> int:
    """Floor of the n-th root of a nonnegative integer, exact (no float error)."""
    if x < 0:
        raise ValueError("x must be nonnegative")
    if x == 0:
        return 0
    guess = int(round(x ** (1.0 / n)))
    # Newton-polish around the float estimate.
    while guess > 0 and guess**n > x:
        guess -= 1
    while (guess + 1) ** n <= x:
        guess += 1
    return guess
