"""Fast arithmetic in GF(2^m) -- the hot path of the whole reproduction.

Field elements are plain Python ints / numpy integers in ``[0, 2^m)``,
bit-packing the coefficients of the polynomial representation over GF(2)
(bit i = coefficient of x^i).  Addition is XOR.  Multiplication,
inversion, and discrete logs go through precomputed exponential /
logarithm tables with respect to the primitive element ``x`` (guaranteed
primitive because the modulus comes from a primitive-polynomial table).

Both scalar operations (``mul``, ``inv``, ...) and numpy-vectorized bulk
operations (``vmul``, ``vinv``, ...) are provided; the MPC protocol
simulator computes module indices for hundreds of thousands of requests
per round through the vectorized path.
"""

from __future__ import annotations

import numpy as np

from repro.gf.opcount import GFOpSink
from repro.gf.poly import Poly

__all__ = ["GF2m", "set_op_sink"]

_FIELD_CACHE: dict[tuple[int, int], "GF2m"] = {}

#: Optional ledger hook: when a sink is installed every field op tallies
#: itself (one per element for vector calls).  None means no accounting
#: and each op pays a single ``is not None`` test.
_OP_SINK: GFOpSink | None = None


def set_op_sink(sink: GFOpSink | None) -> GFOpSink | None:
    """Install (``GFOpSink``) or clear (``None``) the global field-op sink.

    Returns the previously installed sink so callers can restore it;
    the bound-accounting ledger is the intended (sole) installer.
    """
    global _OP_SINK
    prev = _OP_SINK
    _OP_SINK = sink
    return prev


class GF2m:
    """The finite field GF(2^m) with table-based arithmetic.

    Parameters
    ----------
    m:
        Extension degree over GF(2); tables take ``O(2^m)`` memory, so the
        practical envelope is ``m <= 24`` (the experiments use ``m <= 20``).
    modulus:
        Optional bit mask of a degree-``m`` irreducible polynomial.  By
        default a *primitive* polynomial from :mod:`repro.gf.tables` is
        used, making ``x`` (the integer 2) a generator of the
        multiplicative group.

    Notes
    -----
    Instances are cached by ``(m, modulus)`` via :meth:`get`, so repeated
    construction of the same field shares tables.
    """

    __slots__ = (
        "m",
        "order",
        "group_order",
        "modulus",
        "generator",
        "_exp",
        "_log",
    )

    def __init__(self, m: int, modulus: int | None = None):
        if m < 1:
            raise ValueError("extension degree m must be >= 1")
        if m > 26:
            raise ValueError(
                f"m={m} would need {2**m}-entry tables; out of supported range"
            )
        if modulus is None:
            from repro.gf.irreducible import find_primitive

            modulus = find_primitive(2, m).to_int()
        if modulus >> m != 1:
            raise ValueError(
                f"modulus 0x{modulus:x} is not a degree-{m} monic polynomial"
            )
        self.m = m
        self.order = 1 << m
        self.group_order = self.order - 1
        self.modulus = modulus
        self.generator = 1 if m == 1 else 2  # residue of x (1 generates GF(2)^*)
        self._build_tables()

    @classmethod
    def get(cls, m: int, modulus: int | None = None) -> "GF2m":
        """Cached field constructor: one table set per (m, modulus)."""
        if modulus is None:
            from repro.gf.irreducible import find_primitive

            modulus = find_primitive(2, m).to_int()
        key = (m, modulus)
        field = _FIELD_CACHE.get(key)
        if field is None:
            field = cls(m, modulus)
            _FIELD_CACHE[key] = field
        return field

    # -- table construction -------------------------------------------

    def _build_tables(self) -> None:
        size = self.group_order
        exp = np.empty(2 * size, dtype=np.int64)
        log = np.full(self.order, -1, dtype=np.int64)
        if self.m == 1:
            exp[:] = 1
            log[1] = 0
        else:
            acc = 1
            for i in range(size):
                exp[i] = acc
                log[acc] = i
                acc <<= 1
                if acc >> self.m:
                    acc ^= self.modulus
            if acc != 1 or np.any(log[1:] < 0):
                raise ValueError(
                    f"modulus 0x{self.modulus:x} is not primitive for m={self.m}"
                )
        exp[size : 2 * size] = exp[:size]
        self._exp = exp
        self._log = log

    # -- scalar ops ----------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Field addition (XOR in characteristic 2)."""
        if _OP_SINK is not None:
            _OP_SINK.add += 1
        return a ^ b

    sub = add  # characteristic 2: subtraction == addition

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via log/exp tables."""
        if _OP_SINK is not None:
            _OP_SINK.mul += 1
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError on 0."""
        if _OP_SINK is not None:
            _OP_SINK.mul += 1
        if a == 0:
            raise ZeroDivisionError("inverse of 0 in GF(2^m)")
        return int(self._exp[self.group_order - self._log[a]])

    def div(self, a: int, b: int) -> int:
        """Field division a / b."""
        if _OP_SINK is not None:
            _OP_SINK.mul += 1
        if b == 0:
            raise ZeroDivisionError("division by 0 in GF(2^m)")
        if a == 0:
            return 0
        return int(
            self._exp[self._log[a] - self._log[b] + self.group_order]
        )

    def pow(self, a: int, e: int) -> int:
        """``a**e`` with integer exponent (negative allowed for nonzero a)."""
        if _OP_SINK is not None:
            _OP_SINK.mul += 1
        if a == 0:
            if e == 0:
                return 1
            if e < 0:
                raise ZeroDivisionError("0 to a negative power")
            return 0
        la = int(self._log[a])
        return int(self._exp[(la * e) % self.group_order])

    def exp(self, e: int) -> int:
        """``generator**e`` (e taken mod the group order)."""
        if _OP_SINK is not None:
            _OP_SINK.exp += 1
        return int(self._exp[e % self.group_order])

    def log(self, a: int) -> int:
        """Discrete log base the generator; raises on 0."""
        if _OP_SINK is not None:
            _OP_SINK.dlog += 1
        if a == 0:
            raise ValueError("log of 0 is undefined")
        return int(self._log[a])

    def sqrt(self, a: int) -> int:
        """Square root (unique in characteristic 2): a^(2^(m-1))."""
        return self.pow(a, 1 << (self.m - 1))

    def frobenius(self, a: int, k: int = 1) -> int:
        """The Frobenius power ``a^(2^k)``."""
        return self.pow(a, 1 << k)

    def element_order(self, a: int) -> int:
        """Multiplicative order of a nonzero element."""
        if a == 0:
            raise ValueError("0 has no multiplicative order")
        from math import gcd

        return self.group_order // gcd(int(self._log[a]), self.group_order)

    def is_primitive_element(self, a: int) -> bool:
        """True iff ``a`` generates the multiplicative group."""
        return a != 0 and self.element_order(a) == self.group_order

    def minimal_polynomial(self, a: int) -> Poly:
        """Minimal polynomial of ``a`` over GF(2), as a :class:`Poly`.

        Computed as ``prod (x - a^(2^i))`` over the Frobenius orbit.
        """
        orbit = []
        x = a
        while x not in orbit:
            orbit.append(x)
            x = self.mul(x, x)
        # multiply out (x + r) for r in orbit, coefficients in GF(2^m)
        coeffs = [1]
        for r in orbit:
            new = [0] * (len(coeffs) + 1)
            for i, c in enumerate(coeffs):
                new[i + 1] ^= c
                new[i] ^= self.mul(c, r)
            coeffs = new
        if any(c not in (0, 1) for c in coeffs):
            raise ArithmeticError("minimal polynomial not over GF(2)")
        return Poly(coeffs, 2)

    # -- vectorized ops (numpy int64 arrays) ---------------------------

    def vadd(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise field addition of int arrays."""
        out = np.bitwise_xor(a, b)
        if _OP_SINK is not None:
            _OP_SINK.add += int(np.size(out))
        return out

    vsub = vadd

    def vmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise field multiplication (0-aware) of int arrays."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if _OP_SINK is not None:
            _OP_SINK.mul += int(max(a.size, b.size))
        la = self._log[a]
        lb = self._log[b]
        out = self._exp[np.where((la < 0) | (lb < 0), 0, la + lb)]
        return np.where((a == 0) | (b == 0), 0, out)

    def vinv(self, a: np.ndarray) -> np.ndarray:
        """Elementwise inverse; raises if any element is 0."""
        a = np.asarray(a, dtype=np.int64)
        if _OP_SINK is not None:
            _OP_SINK.mul += int(a.size)
        if np.any(a == 0):
            raise ZeroDivisionError("inverse of 0 in vectorized inv")
        return self._exp[self.group_order - self._log[a]]

    def vdiv(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise division a / b; raises if any b is 0."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if _OP_SINK is not None:
            _OP_SINK.mul += int(max(a.size, b.size))
        if np.any(b == 0):
            raise ZeroDivisionError("division by 0 in vectorized div")
        la = self._log[a]
        out = self._exp[np.where(la < 0, 0, la - self._log[b] + self.group_order)]
        return np.where(a == 0, 0, out)

    def vpow(self, a: np.ndarray, e: int) -> np.ndarray:
        """Elementwise ``a**e`` for a fixed integer exponent e >= 0."""
        a = np.asarray(a, dtype=np.int64)
        if _OP_SINK is not None:
            _OP_SINK.mul += int(a.size)
        if e == 0:
            return np.ones_like(a)
        la = self._log[a]
        out = self._exp[np.where(la < 0, 0, (la * e) % self.group_order)]
        return np.where(a == 0, 0, out)

    def vpowv(self, a: np.ndarray, e: np.ndarray) -> np.ndarray:
        """Elementwise ``a**e`` with *per-element* integer exponents.

        Broadcasts ``a`` against ``e``; negative exponents are allowed
        for nonzero bases (raises ZeroDivisionError on ``0**negative``,
        matching scalar :meth:`pow`).
        """
        a = np.asarray(a, dtype=np.int64)
        e = np.asarray(e, dtype=np.int64)
        a, e = np.broadcast_arrays(a, e)
        if _OP_SINK is not None:
            _OP_SINK.mul += int(a.size)
        zero = a == 0
        if np.any(zero & (e < 0)):
            raise ZeroDivisionError("0 to a negative power in vectorized pow")
        la = self._log[a]
        out = self._exp[np.where(la < 0, 0, (la * e) % self.group_order)]
        out = np.where(zero, 0, out)
        return np.where(zero & (e == 0), 1, out)

    def vsqrt(self, a: np.ndarray) -> np.ndarray:
        """Elementwise square root (unique in char 2): ``a^(2^(m-1))``."""
        return self.vpow(a, 1 << (self.m - 1))

    def vfrobenius(self, a: np.ndarray, k: int = 1) -> np.ndarray:
        """Elementwise Frobenius power ``a^(2^k)``."""
        return self.vpow(a, 1 << k)

    def vlog(self, a: np.ndarray) -> np.ndarray:
        """Elementwise discrete log; raises if any element is 0."""
        a = np.asarray(a, dtype=np.int64)
        if _OP_SINK is not None:
            _OP_SINK.dlog += int(a.size)
        la = self._log[a]
        if np.any(la < 0):
            raise ValueError("log of 0 in vectorized log")
        return la.copy()

    def vexp(self, e: np.ndarray) -> np.ndarray:
        """Elementwise ``generator**e`` for an int array of exponents."""
        e = np.asarray(e, dtype=np.int64)
        if _OP_SINK is not None:
            _OP_SINK.exp += int(e.size)
        return self._exp[np.mod(e, self.group_order)]

    # -- iteration / misc ----------------------------------------------

    def elements(self) -> np.ndarray:
        """All field elements as an int64 array ``[0, 1, ..., 2^m - 1]``."""
        return np.arange(self.order, dtype=np.int64)

    def nonzero_elements(self) -> np.ndarray:
        """All nonzero elements in generator-power order: ``g^0, g^1, ...``."""
        return self._exp[: self.group_order].copy()

    def random_elements(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform random field elements (including 0)."""
        return rng.integers(0, self.order, size=size, dtype=np.int64)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GF2m)
            and self.m == other.m
            and self.modulus == other.modulus
        )

    def __hash__(self) -> int:
        return hash(("GF2m", self.m, self.modulus))

    def __repr__(self) -> str:
        return f"GF2m(m={self.m}, modulus=0x{self.modulus:x})"
