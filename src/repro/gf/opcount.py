"""Field-operation counting sink for the bound-accounting ledger.

Theorem 8 prices on-the-fly addressing in *field operations* --
``O(log N)`` of them per address, with a discrete log counted as ``n``
steps in the paper's cost model.  To check that envelope against
reality the ledger needs the actual operation counts, so
:class:`GFOpSink` is a bag of four integer tallies that
:mod:`repro.gf.gf2m` increments when (and only when) a sink is
installed via :func:`repro.gf.gf2m.set_op_sink`.

The sink is deliberately decoupled from :mod:`repro.obs`: field code
stays import-light, and the ledger owns install/uninstall, so with no
ledger active every operation pays exactly one ``is not None`` test.
Vectorized calls count one operation per array element -- the paper's
cost model charges per element, not per numpy dispatch.
"""

from __future__ import annotations

__all__ = ["GFOpSink"]


class GFOpSink:
    """Integer tallies of GF(2^m) operations, by paper cost class.

    ``add``
        XOR additions (``add``/``vadd``; subtraction is the same op).
    ``mul``
        Table multiplications: ``mul``/``inv``/``div``/``pow`` and
        their vector forms all cost one table walk each.
    ``dlog``
        Discrete logs (``log``/``vlog``) -- the expensive primitive;
        the addressing cost model charges each one ``n`` steps.
    ``exp``
        Generator exponentials (``exp``/``vexp``).
    """

    __slots__ = ("add", "mul", "dlog", "exp")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every tally."""
        self.add = 0
        self.mul = 0
        self.dlog = 0
        self.exp = 0

    def total(self) -> int:
        """All field operations, unweighted."""
        return self.add + self.mul + self.dlog + self.exp

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot (for ledger snapshots and reports)."""
        return {
            "add": int(self.add),
            "mul": int(self.mul),
            "dlog": int(self.dlog),
            "exp": int(self.exp),
        }

    def merge(self, other: "GFOpSink") -> None:
        """Accumulate another sink's tallies into this one."""
        self.add += other.add
        self.mul += other.mul
        self.dlog += other.dlog
        self.exp += other.exp

    def __repr__(self) -> str:
        return (
            f"GFOpSink(add={self.add}, mul={self.mul}, "
            f"dlog={self.dlog}, exp={self.exp})"
        )
