"""Generic reference implementation of GF(p^m).

Slower than :class:`repro.gf.gf2m.GF2m` (polynomial arithmetic instead
of table lookups) but valid for any prime characteristic and any modulus,
irreducible or primitive.  Used by the test suite to cross-validate the
fast field and by components that only touch a handful of elements.

Elements are packed as integers whose base-``p`` digits are the
polynomial coefficients (for ``p = 2`` this coincides exactly with the
GF2m bit packing, so the two implementations are directly comparable).
"""

from __future__ import annotations

from repro.gf.poly import Poly

__all__ = ["GFpm"]


class GFpm:
    """The field GF(p^m) = GF(p)[x]/(modulus), reference implementation."""

    def __init__(self, p: int, m: int, modulus: Poly | None = None):
        from repro.gf.modular import is_prime

        if not is_prime(p):
            raise ValueError(f"characteristic {p} is not prime")
        if m < 1:
            raise ValueError("extension degree m must be >= 1")
        if modulus is None:
            from repro.gf.irreducible import find_primitive

            modulus = find_primitive(p, m)
        if modulus.p != p or modulus.degree != m or not modulus.is_monic():
            raise ValueError("modulus must be monic of degree m over GF(p)")
        from repro.gf.irreducible import is_irreducible

        if not is_irreducible(modulus):
            raise ValueError(f"modulus {modulus!r} is reducible")
        self.p = p
        self.m = m
        self.order = p**m
        self.group_order = self.order - 1
        self.modulus = modulus

    # -- int <-> Poly packing -------------------------------------------

    def _decode(self, a: int) -> Poly:
        if not 0 <= a < self.order:
            raise ValueError(f"element {a} out of range [0, {self.order})")
        return Poly.from_int(a, self.p)

    def _encode(self, f: Poly) -> int:
        return (f % self.modulus).to_int()

    # -- arithmetic ------------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Field addition."""
        return self._encode(self._decode(a) + self._decode(b))

    def sub(self, a: int, b: int) -> int:
        """Field subtraction."""
        return self._encode(self._decode(a) - self._decode(b))

    def neg(self, a: int) -> int:
        """Additive inverse."""
        return self._encode(-self._decode(a))

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        return self._encode(self._decode(a) * self._decode(b))

    def inv(self, a: int) -> int:
        """Multiplicative inverse via Fermat (a^(p^m - 2))."""
        if a == 0:
            raise ZeroDivisionError("inverse of 0 in GF(p^m)")
        return self.pow(a, self.group_order - 1)

    def div(self, a: int, b: int) -> int:
        """Field division a / b."""
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        """``a**e`` for integer e (negative allowed for nonzero a)."""
        if e < 0:
            return self.pow(self.inv(a), -e)
        if a == 0:
            return 1 if e == 0 else 0
        return self._encode(self._decode(a).pow_mod(e, self.modulus))

    def element_order(self, a: int) -> int:
        """Multiplicative order of a nonzero element."""
        if a == 0:
            raise ValueError("0 has no multiplicative order")
        from repro.gf.factor import factorize

        order = self.group_order
        for prime, exp in factorize(order).items():
            for _ in range(exp):
                if self.pow(a, order // prime) == 1:
                    order //= prime
                else:
                    break
        return order

    def is_primitive_element(self, a: int) -> bool:
        """True iff ``a`` generates the multiplicative group."""
        return a != 0 and self.element_order(a) == self.group_order

    def find_generator(self) -> int:
        """Smallest (in int packing) generator of the multiplicative group."""
        for a in range(1, self.order):
            if self.is_primitive_element(a):
                return a
        raise ArithmeticError("no generator found")  # pragma: no cover

    def elements(self) -> range:
        """All elements as their integer packings."""
        return range(self.order)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GFpm)
            and (self.p, self.m, self.modulus) == (other.p, other.m, other.modulus)
        )

    def __hash__(self) -> int:
        return hash(("GFpm", self.p, self.m, self.modulus))

    def __repr__(self) -> str:
        return f"GFpm(p={self.p}, m={self.m}, modulus={self.modulus!r})"
