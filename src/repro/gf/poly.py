"""Dense univariate polynomials over the prime field GF(p).

Coefficients are stored little-endian (``coeffs[i]`` multiplies ``x^i``)
in a normalized tuple with no trailing zeros, so polynomials are hashable
and usable as dict keys.  This is the *reference* layer: it is used to
find and verify irreducible/primitive moduli and to cross-check the fast
bit-packed GF(2^m) implementation; the simulator hot paths never touch it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["Poly"]


def _trim(coeffs: Sequence[int]) -> tuple[int, ...]:
    i = len(coeffs)
    while i > 0 and coeffs[i - 1] == 0:
        i -= 1
    return tuple(coeffs[:i])


class Poly:
    """An immutable polynomial over GF(p).

    Supports ring arithmetic (+, -, *, divmod, %, pow), modular
    exponentiation, gcd, evaluation, and derivative -- everything the
    irreducibility and primitivity tests need.
    """

    __slots__ = ("p", "coeffs")

    def __init__(self, coeffs: Iterable[int], p: int):
        if p < 2:
            raise ValueError("characteristic p must be >= 2")
        self.p = p
        self.coeffs = _trim([c % p for c in coeffs])

    # -- constructors -------------------------------------------------

    @classmethod
    def zero(cls, p: int) -> "Poly":
        """The zero polynomial over GF(p)."""
        return cls((), p)

    @classmethod
    def one(cls, p: int) -> "Poly":
        """The constant polynomial 1 over GF(p)."""
        return cls((1,), p)

    @classmethod
    def x(cls, p: int) -> "Poly":
        """The monomial x over GF(p)."""
        return cls((0, 1), p)

    @classmethod
    def monomial(cls, deg: int, p: int, coeff: int = 1) -> "Poly":
        """``coeff * x^deg`` over GF(p)."""
        return cls((0,) * deg + (coeff,), p)

    @classmethod
    def from_int(cls, value: int, p: int) -> "Poly":
        """Decode an integer whose base-``p`` digits are the coefficients.

        This is the packing used throughout the repo to store field
        elements as plain ints (for p=2 it is the usual bit packing).
        """
        if value < 0:
            raise ValueError("value must be nonnegative")
        digits = []
        while value:
            value, d = divmod(value, p)
            digits.append(d)
        return cls(digits, p)

    def to_int(self) -> int:
        """Inverse of :meth:`from_int`: pack coefficients as base-p digits."""
        out = 0
        for c in reversed(self.coeffs):
            out = out * self.p + c
        return out

    # -- basic structure ----------------------------------------------

    @property
    def degree(self) -> int:
        """Degree of the polynomial; the zero polynomial has degree -1."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        """True iff this is the zero polynomial."""
        return not self.coeffs

    def is_monic(self) -> bool:
        """True iff the leading coefficient is 1 (zero poly is not monic)."""
        return bool(self.coeffs) and self.coeffs[-1] == 1

    def leading(self) -> int:
        """Leading coefficient (0 for the zero polynomial)."""
        return self.coeffs[-1] if self.coeffs else 0

    def monic(self) -> "Poly":
        """Scale to a monic polynomial (identity on the zero polynomial)."""
        if self.is_zero() or self.coeffs[-1] == 1:
            return self
        from repro.gf.modular import modinv

        inv = modinv(self.coeffs[-1], self.p)
        return Poly([c * inv for c in self.coeffs], self.p)

    # -- ring operations ----------------------------------------------

    def _check(self, other: "Poly") -> None:
        if self.p != other.p:
            raise ValueError(f"mixed characteristics {self.p} and {other.p}")

    def __add__(self, other: "Poly") -> "Poly":
        self._check(other)
        a, b = self.coeffs, other.coeffs
        if len(a) < len(b):
            a, b = b, a
        out = list(a)
        for i, c in enumerate(b):
            out[i] = (out[i] + c) % self.p
        return Poly(out, self.p)

    def __neg__(self) -> "Poly":
        return Poly([-c for c in self.coeffs], self.p)

    def __sub__(self, other: "Poly") -> "Poly":
        return self + (-other)

    def __mul__(self, other: "Poly") -> "Poly":
        self._check(other)
        if self.is_zero() or other.is_zero():
            return Poly.zero(self.p)
        out = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                out[i + j] = (out[i + j] + a * b) % self.p
        return Poly(out, self.p)

    def scale(self, k: int) -> "Poly":
        """Multiply every coefficient by the scalar ``k``."""
        return Poly([c * k for c in self.coeffs], self.p)

    def __divmod__(self, other: "Poly") -> tuple["Poly", "Poly"]:
        self._check(other)
        if other.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        from repro.gf.modular import modinv

        p = self.p
        rem = list(self.coeffs)
        dq = len(self.coeffs) - len(other.coeffs)
        if dq < 0:
            return Poly.zero(p), self
        quot = [0] * (dq + 1)
        inv_lead = modinv(other.coeffs[-1], p)
        for i in range(dq, -1, -1):
            coef = rem[i + other.degree] * inv_lead % p
            if coef:
                quot[i] = coef
                for j, b in enumerate(other.coeffs):
                    rem[i + j] = (rem[i + j] - coef * b) % p
        return Poly(quot, p), Poly(rem, p)

    def __floordiv__(self, other: "Poly") -> "Poly":
        return divmod(self, other)[0]

    def __mod__(self, other: "Poly") -> "Poly":
        return divmod(self, other)[1]

    def pow_mod(self, exp: int, modulus: "Poly") -> "Poly":
        """``self**exp mod modulus`` by square-and-multiply."""
        if exp < 0:
            raise ValueError("negative exponent")
        result = Poly.one(self.p)
        base = self % modulus
        while exp:
            if exp & 1:
                result = (result * base) % modulus
            base = (base * base) % modulus
            exp >>= 1
        return result

    def gcd(self, other: "Poly") -> "Poly":
        """Monic greatest common divisor."""
        a, b = self, other
        while not b.is_zero():
            a, b = b, a % b
        return a.monic() if not a.is_zero() else a

    # -- calculus / evaluation ----------------------------------------

    def derivative(self) -> "Poly":
        """Formal derivative."""
        return Poly(
            [(i * c) % self.p for i, c in enumerate(self.coeffs)][1:], self.p
        )

    def __call__(self, x: int) -> int:
        """Evaluate at a scalar in GF(p) (Horner)."""
        acc = 0
        for c in reversed(self.coeffs):
            acc = (acc * x + c) % self.p
        return acc

    # -- dunder plumbing ----------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Poly)
            and self.p == other.p
            and self.coeffs == other.coeffs
        )

    def __hash__(self) -> int:
        return hash((self.p, self.coeffs))

    def __repr__(self) -> str:
        if self.is_zero():
            return f"Poly(0; GF({self.p}))"
        terms = []
        for i, c in enumerate(self.coeffs):
            if c == 0:
                continue
            if i == 0:
                terms.append(str(c))
            elif i == 1:
                terms.append(f"{c if c != 1 else ''}x")
            else:
                terms.append(f"{c if c != 1 else ''}x^{i}")
        return f"Poly({' + '.join(terms)}; GF({self.p}))"
