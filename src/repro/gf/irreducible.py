"""Irreducibility and primitivity of polynomials over GF(p).

A degree-``m`` monic polynomial ``f`` over GF(p) defines GF(p^m) as
``GF(p)[x]/(f)``; ``f`` is *primitive* when the residue of ``x`` generates
the multiplicative group, which is what the paper's constructions assume
(a primitive element :math:`\\gamma` of :math:`\\mathbb{F}_{q^n}`, a
generator :math:`\\lambda` of :math:`\\mathbb{F}_{2^{2n}}^*`).
"""

from __future__ import annotations

from repro.gf.factor import prime_factors
from repro.gf.poly import Poly

__all__ = ["is_irreducible", "is_primitive", "find_irreducible", "find_primitive"]


def is_irreducible(f: Poly) -> bool:
    """Rabin's irreducibility test for a monic polynomial over GF(p).

    ``f`` of degree m is irreducible iff ``x^(p^m) == x (mod f)`` and, for
    every prime divisor ``d`` of ``m``, ``gcd(x^(p^(m/d)) - x, f) == 1``.
    """
    p, m = f.p, f.degree
    if m <= 0:
        return False
    if m == 1:
        return True
    if not f.is_monic():
        f = f.monic()
    if f.coeffs[0] == 0:  # divisible by x
        return False
    x = Poly.x(p)
    for d in prime_factors(m):
        h = x.pow_mod(p ** (m // d), f) - x
        if f.gcd(h).degree != 0:
            return False
    return x.pow_mod(p**m, f) == x % f


def is_primitive(f: Poly) -> bool:
    """True iff monic irreducible ``f`` has the residue of x as a generator
    of GF(p^m)^*, i.e. ord(x) = p^m - 1 in GF(p)[x]/(f).
    """
    if not is_irreducible(f):
        return False
    p, m = f.p, f.degree
    order = p**m - 1
    x = Poly.x(p)
    one = Poly.one(p)
    for r in prime_factors(order):
        if x.pow_mod(order // r, f) == one:
            return False
    return True


def _candidates(p: int, m: int):
    """Yield monic degree-m polynomials over GF(p) with nonzero constant
    term, sparsest (fewest middle terms) first for p=2."""
    if p == 2:
        # Trinomials and then general masks ordered by popcount.
        import itertools

        middle_positions = list(range(1, m))
        for k in range(0, m):
            for combo in itertools.combinations(middle_positions, k):
                coeffs = [0] * (m + 1)
                coeffs[0] = 1
                coeffs[m] = 1
                for pos in combo:
                    coeffs[pos] = 1
                yield Poly(coeffs, 2)
    else:
        total = p**m
        for mask in range(total):
            digits = []
            v = mask
            for _ in range(m):
                v, d = divmod(v, p)
                digits.append(d)
            if digits[0] == 0:
                continue
            yield Poly(digits + [1], p)


def find_irreducible(p: int, m: int) -> Poly:
    """Find some monic irreducible polynomial of degree ``m`` over GF(p)."""
    for f in _candidates(p, m):
        if is_irreducible(f):
            return f
    raise ArithmeticError(
        f"no irreducible polynomial of degree {m} over GF({p})"
    )  # pragma: no cover -- they always exist


def find_primitive(p: int, m: int) -> Poly:
    """Find some monic *primitive* polynomial of degree ``m`` over GF(p).

    For p=2 this first consults the precomputed table in
    :mod:`repro.gf.tables` so that field construction is deterministic and
    fast for every degree used by the experiments.
    """
    if p == 2:
        from repro.gf.tables import PRIMITIVE_POLY_GF2

        mask = PRIMITIVE_POLY_GF2.get(m)
        if mask is not None:
            return Poly.from_int(mask, 2)
    for f in _candidates(p, m):
        if is_primitive(f):
            return f
    raise ArithmeticError(
        f"no primitive polynomial of degree {m} over GF({p})"
    )  # pragma: no cover
