"""Finite-field arithmetic substrate.

The memory-organization scheme of Pietracaprina & Preparata is built on
algebra over :math:`\\mathbb{F}_{q^n}` with ``q`` a power of two, and its
Section-4 addressing layer additionally needs the quadratic extension
:math:`\\mathbb{F}_{2^{2n}}`.  This package provides:

* :mod:`repro.gf.modular` -- arithmetic mod small primes (gcd, inverse, CRT);
* :mod:`repro.gf.factor` -- integer factorization (trial division + Pollard
  rho), needed for primitivity testing;
* :mod:`repro.gf.poly` -- dense polynomial arithmetic over GF(p);
* :mod:`repro.gf.irreducible` -- irreducibility / primitivity tests and
  searches for monic polynomials over GF(p);
* :mod:`repro.gf.tables` -- precomputed primitive polynomials over GF(2);
* :mod:`repro.gf.gf2m` -- fast bit-packed GF(2^m) with exp/log tables and
  numpy-vectorized bulk operations (the hot path of the whole repo);
* :mod:`repro.gf.field` -- a generic, reference GF(p^m) implementation used
  to cross-validate the fast one;
* :mod:`repro.gf.subfield` -- subfield membership, Frobenius, field
  embeddings, and the (w, 1)-basis decomposition used by the paper's
  Section 4;
* :mod:`repro.gf.dlog` -- discrete logarithms (table lookup and BSGS).
"""

from repro.gf.gf2m import GF2m
from repro.gf.field import GFpm
from repro.gf.subfield import FieldEmbedding, frobenius_power, in_subfield
from repro.gf.poly import Poly
from repro.gf.irreducible import (
    is_irreducible,
    is_primitive,
    find_irreducible,
    find_primitive,
)
from repro.gf.factorpoly import factor_poly, poly_roots

__all__ = [
    "GF2m",
    "GFpm",
    "FieldEmbedding",
    "frobenius_power",
    "in_subfield",
    "Poly",
    "is_irreducible",
    "is_primitive",
    "find_irreducible",
    "find_primitive",
    "factor_poly",
    "poly_roots",
]
