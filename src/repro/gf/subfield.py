"""Subfield structure of GF(2^m): embeddings, Frobenius, basis decomposition.

The paper's Section 4 identifies each row ``(x, y)`` of a PGL2 matrix
over :math:`\\mathbb{F}_{2^n}` with the element ``x*w + y`` of the
quadratic extension :math:`\\mathbb{F}_{2^{2n}}`, where ``(w, 1)`` is a
basis of the extension over the base field and ``w`` generates
:math:`\\mathbb{F}_4^*`.  This module supplies the machinery:

* :class:`FieldEmbedding` -- an explicit field homomorphism
  GF(2^d) -> GF(2^m) for d | m, with full forward/backward lookup tables
  (the fields in play are small) and vectorized variants;
* :class:`BasisDecomposition` -- solve ``u = z*w + v`` with z, v in the
  subfield, via the Frobenius identity
  ``z = (u + u^{2^d}) / (w + w^{2^d})``;
* helpers :func:`frobenius_power` and :func:`in_subfield`.
"""

from __future__ import annotations

import numpy as np

from repro.gf.gf2m import GF2m

__all__ = [
    "frobenius_power",
    "in_subfield",
    "FieldEmbedding",
    "BasisDecomposition",
]


def frobenius_power(field: GF2m, a: int, d: int) -> int:
    """Compute ``a^(2^d)`` in ``field``."""
    return field.pow(a, 1 << d)


def in_subfield(field: GF2m, a: int, d: int) -> bool:
    """True iff ``a`` lies in the subfield GF(2^d) of ``field`` (d | m).

    Uses the characterization ``a^(2^d) == a``.
    """
    if field.m % d != 0:
        raise ValueError(f"GF(2^{d}) is not a subfield of GF(2^{field.m})")
    return frobenius_power(field, a, d) == a


class FieldEmbedding:
    """An explicit field homomorphism ``phi: K -> L`` for K = GF(2^d),
    L = GF(2^m), d | m.

    The image of K's generator is found as a root in L of K's modulus
    polynomial, searched among the subfield elements
    ``{0} ∪ {g^(i * (2^m - 1)/(2^d - 1))}``.  Because both fields are
    small (the repo's envelope is d <= 10, m <= 20), the embedding and its
    inverse are materialized as flat numpy lookup tables, giving O(1)
    scalar and fully vectorized bulk mapping.

    Attributes
    ----------
    K, L:
        The small and large field.
    table:
        int64 array of length ``K.order``; ``table[a]`` = phi(a).
    inverse_table:
        int64 array of length ``L.order``; ``inverse_table[b]`` is the
        preimage of ``b`` or -1 when b is outside the subfield.
    """

    def __init__(self, K: GF2m, L: GF2m):
        if L.m % K.m != 0:
            raise ValueError(
                f"GF(2^{K.m}) does not embed in GF(2^{L.m}) (degree must divide)"
            )
        self.K = K
        self.L = L
        root = self._find_root()
        self.gamma_image = root
        self._build_tables(root)

    def _find_root(self) -> int:
        """Find phi(gamma_K): a root in L of gamma_K's minimal polynomial."""
        K, L = self.K, self.L
        if K.m == L.m:
            # Possibly different moduli; still need an isomorphism.
            candidates = L.nonzero_elements()
        else:
            step = L.group_order // K.group_order
            candidates = L._exp[: L.group_order : 1][
                np.arange(0, L.group_order, step)
            ]
        minpoly = K.minimal_polynomial(K.generator)
        coeffs = minpoly.coeffs  # over GF(2)
        for cand in candidates:
            cand = int(cand)
            acc = 0
            power = 1
            for c in coeffs:
                if c:
                    acc ^= power
                power = L.mul(power, cand)
            if acc == 0:
                return cand
        raise ArithmeticError(
            "no root of the subfield modulus found (should be impossible)"
        )  # pragma: no cover

    def _build_tables(self, root: int) -> None:
        K, L = self.K, self.L
        # Images of the K-basis 1, gamma, gamma^2, ..., gamma^(d-1).
        basis_images = []
        acc = 1
        for _ in range(K.m):
            basis_images.append(acc)
            acc = L.mul(acc, root)
        table = np.zeros(K.order, dtype=np.int64)
        for a in range(K.order):
            img = 0
            bits = a
            i = 0
            while bits:
                if bits & 1:
                    img ^= basis_images[i]
                bits >>= 1
                i += 1
            table[a] = img
        inverse = np.full(L.order, -1, dtype=np.int64)
        inverse[table] = np.arange(K.order, dtype=np.int64)
        self.table = table
        self.inverse_table = inverse

    # -- scalar API ------------------------------------------------------

    def embed(self, a: int) -> int:
        """Map a K element into L."""
        return int(self.table[a])

    def project(self, b: int) -> int:
        """Map an L element lying in the subfield back to K.

        Raises :class:`ValueError` if ``b`` is not in the image of K.
        """
        val = int(self.inverse_table[b])
        if val < 0:
            raise ValueError(f"{b} is not in the embedded subfield")
        return val

    def contains(self, b: int) -> bool:
        """True iff the L element ``b`` lies in the embedded copy of K."""
        return bool(self.inverse_table[b] >= 0)

    # -- vectorized API ----------------------------------------------------

    def vembed(self, a: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`embed`."""
        return self.table[np.asarray(a, dtype=np.int64)]

    def vproject(self, b: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`project`; raises if any element is outside K."""
        out = self.inverse_table[np.asarray(b, dtype=np.int64)]
        if np.any(out < 0):
            raise ValueError("some elements are not in the embedded subfield")
        return out

    def vcontains(self, b: np.ndarray) -> np.ndarray:
        """Vectorized subfield membership mask."""
        return self.inverse_table[np.asarray(b, dtype=np.int64)] >= 0

    def __repr__(self) -> str:
        return f"FieldEmbedding(GF(2^{self.K.m}) -> GF(2^{self.L.m}))"


class BasisDecomposition:
    """Decompose elements of L over the basis ``(w, 1)`` of L over K.

    Requires ``[L : K] = 2`` and ``w`` outside the subfield, exactly the
    situation of the paper's Section 4 (L = F_{2^{2n}}, K = F_{2^n},
    ``w = lambda^rho`` a generator of F_4^*).  For ``u = z*w + v`` the
    coefficients are recovered with one Frobenius application:

        ``z = (u + u^{2^d}) / (w + w^{2^d})``,  ``v = u + z*w``

    and mapped back to K codes through the embedding's inverse table.
    """

    def __init__(self, embedding: FieldEmbedding, w: int):
        if embedding.L.m != 2 * embedding.K.m:
            raise ValueError("BasisDecomposition requires a quadratic extension")
        if embedding.contains(w):
            raise ValueError("w must lie outside the subfield to form a basis")
        self.embedding = embedding
        self.w = w
        L = embedding.L
        self._d = embedding.K.m
        self._denom_inv = L.inv(L.add(w, frobenius_power(L, w, self._d)))

    def split(self, u: int) -> tuple[int, int]:
        """Return ``(z, v)`` as K codes with ``u == embed(z)*w + embed(v)``."""
        L = self.embedding.L
        z_L = L.mul(L.add(u, frobenius_power(L, u, self._d)), self._denom_inv)
        v_L = L.add(u, L.mul(z_L, self.w))
        return self.embedding.project(z_L), self.embedding.project(v_L)

    def combine(self, z: int, v: int) -> int:
        """Inverse of :meth:`split`: build ``embed(z)*w + embed(v)`` in L."""
        L = self.embedding.L
        return L.add(L.mul(self.embedding.embed(z), self.w), self.embedding.embed(v))

    def vsplit(self, u: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`split`."""
        L = self.embedding.L
        u = np.asarray(u, dtype=np.int64)
        fro = L.vpow(u, 1 << self._d)
        z_L = L.vmul(L.vadd(u, fro), np.full_like(u, self._denom_inv))
        v_L = L.vadd(u, L.vmul(z_L, np.full_like(u, self.w)))
        return self.embedding.vproject(z_L), self.embedding.vproject(v_L)

    def vcombine(self, z: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`combine`."""
        L = self.embedding.L
        zi = self.embedding.vembed(z)
        vi = self.embedding.vembed(v)
        return L.vadd(L.vmul(zi, np.full_like(zi, self.w)), vi)

    def __repr__(self) -> str:
        return (
            f"BasisDecomposition(L=GF(2^{self.embedding.L.m}), "
            f"K=GF(2^{self.embedding.K.m}), w={self.w})"
        )
