"""Integer factorization (trial division + Pollard rho).

Primitivity of a field generator requires the factorization of
``p^m - 1``; for the parameter envelope of this repo (``2^{2n} - 1`` with
``n <= 16``) Pollard rho is instantaneous, but the implementation is fully
general for 64-bit inputs.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.gf.modular import is_prime

__all__ = ["factorize", "prime_factors", "divisors"]

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97,
)


def _pollard_rho(n: int) -> int:
    """Return a nontrivial factor of composite odd ``n`` (Brent's variant)."""
    if n % 2 == 0:
        return 2
    # Brent cycle detection with batched gcds; deterministic seed sweep.
    for c in range(1, 64):
        y, r, q = 2, 1, 1
        g = 1
        x = ys = y
        while g == 1:
            x = y
            for _ in range(r):
                y = (y * y + c) % n
            k = 0
            while k < r and g == 1:
                ys = y
                for _ in range(min(128, r - k)):
                    y = (y * y + c) % n
                    q = q * abs(x - y) % n
                g = math.gcd(q, n)
                k += 128
            r *= 2
        if g == n:
            # Backtrack one step at a time.
            g = 1
            while g == 1:
                ys = (ys * ys + c) % n
                g = math.gcd(abs(x - ys), n)
        if g != n:
            return g
    raise ArithmeticError(f"pollard rho failed on {n}")  # pragma: no cover


def factorize(n: int) -> Counter:
    """Full prime factorization of ``n >= 1`` as a Counter {prime: exponent}."""
    if n < 1:
        raise ValueError("n must be >= 1")
    out: Counter = Counter()
    for p in _SMALL_PRIMES:
        while n % p == 0:
            out[p] += 1
            n //= p
    stack = [n] if n > 1 else []
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if is_prime(m):
            out[m] += 1
            continue
        d = _pollard_rho(m)
        stack.append(d)
        stack.append(m // d)
    return out


def prime_factors(n: int) -> list[int]:
    """Sorted list of the distinct prime factors of ``n``."""
    return sorted(factorize(n))


def divisors(n: int) -> list[int]:
    """All positive divisors of ``n``, sorted ascending."""
    divs = [1]
    for p, e in factorize(n).items():
        divs = [d * p**k for d in divs for k in range(e + 1)]
    return sorted(divs)
