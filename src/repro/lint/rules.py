"""The determinism ruleset D1-D6.

Each rule encodes one invariant the conformance checker (PR 4) and the
fault campaigns (PR 3) silently rely on; see DESIGN.md for the mapping
back to the paper.  Rules are registered on import via
:func:`repro.lint.engine.register`; importing this module populates the
registry.

| id | name | invariant |
|----|------|-----------|
| D1 | set-iteration        | no order-sensitive iteration over sets in deterministic zones |
| D2 | unseeded-randomness  | no unseeded RNG / wall-clock calls outside workload+fault plan code |
| D3 | float-arithmetic     | no float literals / true division in field + coset algebra |
| D4 | unguarded-obs        | instrumentation emission must sit behind an ``enabled()`` guard |
| D5 | mutable-shared-state | no mutable default args / module-level mutable accumulators |
| D6 | exception-hygiene    | no broad/bare excepts in protocol paths; never swallow QuorumLostError |
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.config import (
    DETERMINISTIC_ZONES,
    ENGINE_ARITHMETIC_ZONES,
    FIELD_ARITHMETIC_ZONES,
    PROTOCOL_ZONES,
    RANDOMNESS_ALLOWED_ZONES,
)
from repro.lint.engine import FileContext, Finding, Rule, register

__all__ = [
    "SetIterationRule",
    "UnseededRandomnessRule",
    "FloatArithmeticRule",
    "UnguardedObservabilityRule",
    "MutableSharedStateRule",
    "ExceptionHygieneRule",
]


# ---------------------------------------------------------------------------
# shared helpers


def _call_name(node: ast.expr) -> str | None:
    """``foo`` for ``foo(...)``, ``a.b.c`` for ``a.b.c(...)``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _call_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _module_aliases(tree: ast.Module, module: str) -> set[str]:
    """Names under which ``module`` (dotted) is reachable in this file.

    ``import repro.obs as _obs`` -> {"_obs"}; ``from repro import obs``
    -> {"obs"}; ``import repro.obs`` -> {"repro.obs"}.
    """
    aliases: set[str] = set()
    parent, _, leaf = module.rpartition(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.name == module:
                    aliases.add(a.asname or a.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module == parent and parent:
                for a in node.names:
                    if a.name == leaf:
                        aliases.add(a.asname or a.name)
    return aliases


def _imported_names(tree: ast.Module, module: str) -> dict[str, str]:
    """``from module import x [as y]`` bindings: local name -> attr."""
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for a in node.names:
                out[a.asname or a.name] = a.name
    return out


def _is_attr_of(node: ast.expr, bases: set[str]) -> bool:
    """True for ``B.attr`` where the dotted prefix ``B`` is in bases."""
    return (
        isinstance(node, ast.Attribute)
        and _call_name(node.value) in bases
    )


# ---------------------------------------------------------------------------
# D1 -- set iteration


#: consuming these preserves determinism even over an unordered input
_ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all",
    "set", "frozenset",
})

#: these materialize the (arbitrary) iteration order into ordered data
_ORDER_SENSITIVE_CONSUMERS = frozenset({
    "list", "tuple", "iter", "enumerate", "reversed", "deque",
})

_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})


@register
class SetIterationRule(Rule):
    """D1: iterating a ``set`` materializes an arbitrary (hash-seed
    dependent) order.  In the deterministic zones every such loop or
    conversion must go through ``sorted(...)`` -- the PRAM conformance
    guarantee is bit-identical replay, and one unordered walk of a
    coset set is enough to reorder a whole protocol schedule."""

    id = "D1"
    name = "set-iteration"
    zones = DETERMINISTIC_ZONES
    rationale = (
        "set/frozenset iteration order is arbitrary; deterministic zones "
        "must sort before iterating"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag order-sensitive walks of locally set-typed values."""
        for scope in self._scopes(ctx.tree):
            known = self._set_typed_names(scope)
            yield from self._check_scope(ctx, scope, known)

    @staticmethod
    def _scopes(tree: ast.Module) -> list[ast.AST]:
        return [tree] + [
            n for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def _set_typed_names(self, scope: ast.AST) -> set[str]:
        """Names locally known to hold a set: assigned from a set
        expression or annotated ``set[...]`` / ``frozenset[...]``."""
        known: set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for a in (
                args.posonlyargs + args.args + args.kwonlyargs
            ):
                if a.annotation is not None and _annotation_is_set(a.annotation):
                    known.add(a.arg)
        # two passes so `a = {...}; b = a` resolves
        for _ in range(2):
            for node in self._scope_body_walk(scope):
                if isinstance(node, ast.Assign) and self._is_set_expr(
                    node.value, known
                ):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            known.add(tgt.id)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if _annotation_is_set(node.annotation) or (
                        node.value is not None
                        and self._is_set_expr(node.value, known)
                    ):
                        known.add(node.target.id)
        return known

    @staticmethod
    def _scope_body_walk(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested functions."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _is_set_expr(self, node: ast.expr, known: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in known
        if isinstance(node, ast.Call):
            fn = _call_name(node.func)
            if fn in ("set", "frozenset"):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
                and self._is_set_expr(node.func.value, known)
            ):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left, known) or self._is_set_expr(
                node.right, known
            )
        return False

    def _check_scope(
        self, ctx: FileContext, scope: ast.AST, known: set[str]
    ) -> Iterator[Finding]:
        for node in self._scope_body_walk(scope):
            if isinstance(node, ast.For) and self._is_set_expr(
                node.iter, known
            ):
                yield ctx.finding(
                    self, node,
                    "for-loop over a set; iterate sorted(...) instead",
                )
            elif isinstance(
                node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)
            ):
                # building a *set* from a set is order-insensitive, and
                # so is a generator consumed by sum/any/all/...; flag
                # the rest
                if isinstance(node, ast.GeneratorExp):
                    parent = ctx.parent(node)
                    if (
                        isinstance(parent, ast.Call)
                        and _call_name(parent.func)
                        in _ORDER_INSENSITIVE_CONSUMERS
                    ):
                        continue
                for gen in node.generators:
                    if self._is_set_expr(gen.iter, known):
                        yield ctx.finding(
                            self, node,
                            "comprehension over a set materializes an "
                            "arbitrary order; sort the iterable",
                        )
                        break
            elif isinstance(node, ast.Call):
                fn = _call_name(node.func)
                if (
                    fn in _ORDER_SENSITIVE_CONSUMERS
                    and node.args
                    and self._is_set_expr(node.args[0], known)
                ):
                    yield ctx.finding(
                        self, node,
                        f"{fn}() over a set materializes an arbitrary "
                        "order; sort first",
                    )


def _annotation_is_set(ann: ast.expr) -> bool:
    if isinstance(ann, ast.Subscript):
        return _annotation_is_set(ann.value)
    if isinstance(ann, ast.Name):
        return ann.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
    if isinstance(ann, ast.Attribute):
        return ann.attr in ("Set", "FrozenSet", "AbstractSet")
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        head = ann.value.split("[", 1)[0].strip()
        return head in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
    return False


# ---------------------------------------------------------------------------
# D2 -- unseeded randomness / wall clock


#: wall-clock reads; perf_counter/monotonic/process_time are duration
#: measurements and stay legal (they never feed simulation state)
_TIME_FNS = frozenset({"time", "time_ns", "localtime", "ctime", "monotonic_ns"})
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})
_ENTROPY_MODULES = ("secrets",)


@register
class UnseededRandomnessRule(Rule):
    """D2: every random draw must come from an explicitly seeded
    generator, and nothing may read the wall clock into simulation
    state.  ``repro/workloads`` and ``repro/faults`` construct
    randomized *plans* from caller-provided seeds, so function-level
    draws are legal there -- module-level entropy never is."""

    id = "D2"
    name = "unseeded-randomness"
    zones = ()  # everywhere; allowed zones relax to module-level-only
    rationale = (
        "identical request sequences must replay bit-identically; entropy "
        "enters only through explicit seeds"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag implicit-RNG and wall-clock calls per the zone policy."""
        relaxed = any(
            ctx.relpath == z or ctx.relpath.startswith(z + "/")
            for z in RANDOMNESS_ALLOWED_ZONES
        )
        maps = self.alias_maps(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            msg = self.classify_call(node, maps)
            if msg is None:
                continue
            if relaxed and ctx.enclosing_function(node) is not None:
                continue  # seeded-plan packages: function scope is fine
            yield ctx.finding(self, node, msg)

    @staticmethod
    def alias_maps(tree: ast.Module) -> dict:
        """Per-file import-alias maps the classifier resolves against.

        Built once per file; also consumed by the flow tier's F2 rule,
        which applies the same source classification interprocedurally.
        """
        np_aliases = _module_aliases(tree, "numpy")
        return {
            "random": _module_aliases(tree, "random"),
            "npr": _module_aliases(tree, "numpy.random") | {
                f"{a}.random" for a in np_aliases
            },
            "time": _module_aliases(tree, "time"),
            "datetime": _module_aliases(tree, "datetime"),
            "os": _module_aliases(tree, "os"),
            "uuid": _module_aliases(tree, "uuid"),
            "from": {
                **{k: ("random", v)
                   for k, v in _imported_names(tree, "random").items()},
                **{k: ("numpy.random", v)
                   for k, v in _imported_names(tree, "numpy.random").items()},
                **{k: ("time", v)
                   for k, v in _imported_names(tree, "time").items()},
                **{k: ("datetime", v)
                   for k, v in _imported_names(tree, "datetime").items()},
            },
        }

    def classify_call(self, node: ast.Call, maps: dict) -> str | None:
        """Classify one call against prebuilt :meth:`alias_maps`."""
        return self._classify(
            node, maps["random"], maps["npr"], maps["time"],
            maps["datetime"], maps["os"], maps["uuid"], maps["from"],
        )

    def _classify(
        self,
        node: ast.Call,
        random_aliases: set[str],
        npr_aliases: set[str],
        time_aliases: set[str],
        dt_mod_aliases: set[str],
        os_aliases: set[str],
        uuid_aliases: set[str],
        from_bindings: dict[str, tuple[str, str]],
    ) -> str | None:
        func = node.func
        name: str | None = None
        origin: str | None = None
        if isinstance(func, ast.Attribute):
            base = _call_name(func.value)
            if base in random_aliases:
                origin, name = "random", func.attr
            elif base in npr_aliases:
                origin, name = "numpy.random", func.attr
            elif base in time_aliases:
                origin, name = "time", func.attr
            elif base in os_aliases and func.attr == "urandom":
                return "os.urandom() is non-reproducible entropy"
            elif base in uuid_aliases and func.attr in ("uuid1", "uuid4"):
                return f"uuid.{func.attr}() is non-reproducible"
            elif base is not None and base.split(".")[0] in _ENTROPY_MODULES:
                return f"{base}.{func.attr}() is non-reproducible entropy"
            elif func.attr in _DATETIME_FNS:
                head = _call_name(func.value)
                if head and (
                    head in dt_mod_aliases
                    or head.split(".")[0] in dt_mod_aliases
                    or head in ("datetime", "date", "datetime.datetime")
                ):
                    origin, name = "datetime", func.attr
        elif isinstance(func, ast.Name) and func.id in from_bindings:
            origin, name = from_bindings[func.id]

        if origin is None or name is None:
            return None
        if origin == "random":
            if name in ("Random",) and node.args:
                return None  # explicitly seeded generator object
            return (
                f"random.{name}() draws from implicit global state; use an "
                "explicitly seeded random.Random(seed)"
            )
        if origin == "numpy.random":
            if name == "default_rng":
                if node.args or node.keywords:
                    return None
                return (
                    "default_rng() without a seed is nondeterministic; pass "
                    "an explicit seed"
                )
            if name == "Generator":
                return None  # wrapping an explicit BitGenerator
            return (
                f"numpy.random.{name}() uses the legacy global state; use a "
                "seeded default_rng(seed)"
            )
        if origin == "time":
            if name == "gmtime" and (node.args or node.keywords):
                return None  # formatting a supplied timestamp
            if name in _TIME_FNS or name == "gmtime":
                return (
                    f"time.{name}() reads the wall clock; timestamps must "
                    "come from the logical clock or caller input"
                )
            return None
        if origin == "datetime" and name in _DATETIME_FNS:
            return (
                f"datetime {name}() reads the wall clock; pass timestamps "
                "explicitly"
            )
        return None


# ---------------------------------------------------------------------------
# D3 -- float arithmetic in field code


@register
class FloatArithmeticRule(Rule):
    """D3: GF(2^m) codes and PGL2 coset indices are exact integers; one
    float round-trip (a true division, a float literal promotion)
    silently corrupts codes above 2^53 and breaks bit-identical
    addressing.  Integer contexts use ``//``, exact ``pow``, and
    bit ops."""

    id = "D3"
    name = "float-arithmetic"
    zones = FIELD_ARITHMETIC_ZONES + ENGINE_ARITHMETIC_ZONES
    rationale = (
        "field/coset arithmetic must stay in exact integers; floats lose "
        "exactness above 2^53"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag float literals, ``float()`` calls, and true division."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                yield ctx.finding(
                    self, node,
                    "true division returns float; use // for exact "
                    "integer arithmetic",
                )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Div
            ):
                yield ctx.finding(
                    self, node, "/= returns float; use //= instead",
                )
            elif isinstance(node, ast.Constant) and isinstance(
                node.value, (float, complex)
            ):
                yield ctx.finding(
                    self, node,
                    f"float literal {node.value!r} in exact-arithmetic zone",
                )
            elif isinstance(node, ast.Call) and _call_name(node.func) == "float":
                yield ctx.finding(
                    self, node,
                    "float() conversion in exact-arithmetic zone",
                )


# ---------------------------------------------------------------------------
# D4 -- unguarded observability emission


_EMITTING_ATTRS = frozenset(
    {"event", "counter", "gauge", "histogram", "timer", "publish"}
)

#: emission methods of the bound-accounting ledger (repro.obs.ledger);
#: only flagged on names bound from ``obs.ledger()``, so ordinary
#: ``.count(...)`` calls on lists/strings never match
_LEDGER_EMITTING_ATTRS = frozenset(
    {"count", "add_seconds", "note_addressing", "record_batch"}
)


@register
class UnguardedObservabilityRule(Rule):
    """D4: instrumentation emission (metrics increments, trace events)
    must sit behind the single :func:`repro.obs.enabled` switchboard
    guard, so the healthy hot path pays one boolean check and nothing
    else -- the <5% overhead budget of ``tests/obs/test_overhead.py``
    depends on it.  ``obs.span(...)`` guards itself and is exempt.

    Ledger emissions (``led.count`` / ``add_seconds`` /
    ``note_addressing`` / ``record_batch`` on a name bound from
    ``obs.ledger()``) follow the same contract; the idiomatic
    ``led = obs.ledger() if obs.enabled() else None`` + ``if led is not
    None:`` pattern counts as guarded, since a non-None ledger implies
    ``enabled()`` was True."""

    id = "D4"
    name = "unguarded-obs"
    zones = DETERMINISTIC_ZONES
    rationale = (
        "hot-path instrumentation must collapse to one enabled() check "
        "when observability is off"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag obs emissions with no reachable ``enabled()`` guard."""
        obs_aliases = _module_aliases(ctx.tree, "repro.obs")
        if not obs_aliases:
            return
        guard_names = self._guard_names(ctx.tree, obs_aliases)
        tracer_names = self._assigned_from(ctx.tree, obs_aliases, "tracer")
        metrics_names = self._assigned_from(ctx.tree, obs_aliases, "metrics")
        bus_names = self._assigned_from(ctx.tree, obs_aliases, "bus")
        ledger_names = self._assigned_from(ctx.tree, obs_aliases, "ledger")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._emission_target(
                node, obs_aliases, tracer_names, metrics_names, bus_names,
                ledger_names,
            )
            if target is None:
                continue
            # a name holding obs.ledger() is None unless enabled() held,
            # so 'if led is not None:' is as strong as the guard itself
            if self._guarded(ctx, node, guard_names | ledger_names):
                continue
            yield ctx.finding(
                self, node,
                f"{target} emission not guarded by obs.enabled(); wrap in "
                "'if obs.enabled():' (or early-return on tracer.enabled)",
            )

    @staticmethod
    def _assigned_from(
        tree: ast.Module, obs_aliases: set[str], attr: str
    ) -> set[str]:
        """Names bound from ``<obs>.tracer()`` / ``.metrics()`` /
        ``.bus()`` / ``.ledger()``, directly, through a conditional
        expression (``led = obs.ledger() if obs.enabled() else None``),
        through a walrus binding (``if (m := obs.metrics()):``), or onto
        an attribute chain (``self._led = obs.ledger()`` -> tracks
        ``self._led``).
        """
        out: set[str] = set()
        for node in ast.walk(tree):
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.NamedExpr):
                targets = [node.target]
                value = node.value
            else:
                continue
            values = [value]
            if isinstance(value, ast.IfExp):
                values = [value.body, value.orelse]
            for v in values:
                if (
                    isinstance(v, ast.Call)
                    and _is_attr_of(v.func, obs_aliases)
                    and v.func.attr == attr
                ):
                    for tgt in targets:
                        name = _call_name(tgt)
                        if name is not None:
                            out.add(name)
        return out

    @staticmethod
    def _guard_names(tree: ast.Module, obs_aliases: set[str]) -> set[str]:
        """Names bound from ``<obs>.enabled()``-style guard reads --
        plain names, walrus bindings, and attribute chains
        (``self._on = obs.enabled()`` tracks ``self._on``)."""
        out: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.NamedExpr):
                targets, value = [node.target], node.value
            else:
                continue
            if (
                isinstance(value, ast.Call)
                and _is_attr_of(value.func, obs_aliases)
                and "enabled" in value.func.attr
            ):
                for tgt in targets:
                    name = _call_name(tgt)
                    if name is not None:
                        out.add(name)
        return out

    def _emission_target(
        self,
        node: ast.Call,
        obs_aliases: set[str],
        tracer_names: set[str],
        metrics_names: set[str],
        bus_names: set[str],
        ledger_names: set[str],
    ) -> str | None:
        func = node.func
        if _is_attr_of(func, obs_aliases):
            if func.attr == "on_mpc_step":
                return "obs.on_mpc_step"
            if func.attr == "metrics":
                return "obs.metrics()"
            if func.attr == "publish":
                return "obs.publish"
            return None
        if isinstance(func, ast.Attribute) and func.attr in _EMITTING_ATTRS:
            base = func.value
            if isinstance(base, ast.NamedExpr):
                base = base.value  # (tr := obs.tracer()).event(...)
            # _obs.tracer().event(...) inline chain
            if (
                isinstance(base, ast.Call)
                and _is_attr_of(base.func, obs_aliases)
                and base.func.attr in ("tracer", "metrics", "bus")
            ):
                return f"obs.{base.func.attr}().{func.attr}"
            # tr.event(...) on a name (or self.attr chain) bound from
            # obs.tracer()/metrics()/bus()
            base_name = _call_name(base)
            if base_name is not None and base_name in (
                tracer_names | metrics_names | bus_names
            ):
                return f"{base_name}.{func.attr}"
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _LEDGER_EMITTING_ATTRS
        ):
            base = func.value
            if isinstance(base, ast.NamedExpr):
                base = base.value  # (led := obs.ledger()).count(...)
            # _obs.ledger().count(...) inline chain
            if (
                isinstance(base, ast.Call)
                and _is_attr_of(base.func, obs_aliases)
                and base.func.attr == "ledger"
            ):
                return f"obs.ledger().{func.attr}"
            # led.count(...) on a name (or self.attr chain) bound from
            # obs.ledger()
            base_name = _call_name(base)
            if base_name is not None and base_name in ledger_names:
                return f"{base_name}.{func.attr}"
        return None

    def _guarded(
        self, ctx: FileContext, node: ast.AST, guard_names: set[str]
    ) -> bool:
        # (a) enclosed in an if/while/ternary whose test mentions a guard
        for anc in ctx.ancestors(node):
            if isinstance(anc, (ast.If, ast.IfExp, ast.While)):
                if self._test_mentions_guard(anc.test, guard_names):
                    return True
        # (b) an earlier early-return guard in the same function:
        #     if not tr.enabled: return
        fn = ctx.enclosing_function(node)
        if fn is not None:
            line = getattr(node, "lineno", 0)
            for stmt in ast.walk(fn):
                if (
                    isinstance(stmt, ast.If)
                    and getattr(stmt, "lineno", 10**9) < line
                    and self._test_mentions_guard(stmt.test, guard_names)
                    and stmt.body
                    and isinstance(stmt.body[-1], (ast.Return, ast.Raise))
                ):
                    return True
        return False

    @staticmethod
    def _test_mentions_guard(test: ast.expr, guard_names: set[str]) -> bool:
        for sub in ast.walk(test):
            if isinstance(sub, ast.Attribute):
                if "enabled" in sub.attr:
                    return True
                if _call_name(sub) in guard_names:
                    return True
            if isinstance(sub, ast.Name) and (
                "enabled" in sub.id or sub.id in guard_names
            ):
                return True
        return False


# ---------------------------------------------------------------------------
# D5 -- mutable shared state


_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter",
    "OrderedDict",
})


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = _call_name(node.func)
        return fn is not None and fn.split(".")[-1] in _MUTABLE_CONSTRUCTORS
    return False


def _is_empty_container(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Set)) and not node.elts:
        return True
    if isinstance(node, ast.Dict) and not node.keys:
        return True
    if isinstance(node, ast.Call) and not node.args and not node.keywords:
        fn = _call_name(node.func)
        return fn is not None and fn.split(".")[-1] in _MUTABLE_CONSTRUCTORS
    return False


@register
class MutableSharedStateRule(Rule):
    """D5: mutable default arguments alias one object across calls, and
    module-level mutable accumulators couple runs through import order
    -- both leak state between what should be independent, replayable
    simulations.  Constant-styled (UPPER_CASE) module tables are exempt
    unless they start *empty*, which marks an accumulator, not a
    table."""

    id = "D5"
    name = "mutable-shared-state"
    zones = ()  # everywhere under the scanned tree
    rationale = (
        "shared mutable state couples batches/runs that the paper's model "
        "treats as independent"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag mutable defaults and module-level mutable bindings."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for default in list(args.defaults) + [
                    d for d in args.kw_defaults if d is not None
                ]:
                    if _is_mutable_literal(default):
                        yield ctx.finding(
                            self, default,
                            f"mutable default argument in {node.name}(); "
                            "use None and allocate inside",
                        )
        for stmt in ctx.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_literal(value):
                continue
            for tgt in targets:
                if not isinstance(tgt, ast.Name):
                    continue
                if tgt.id.startswith("__") and tgt.id.endswith("__"):
                    continue  # __all__ and friends: interpreter protocol
                constant_styled = tgt.id.lstrip("_").isupper()
                if constant_styled and not _is_empty_container(value):
                    continue  # immutable-by-convention lookup table
                yield ctx.finding(
                    self, stmt,
                    f"module-level mutable state {tgt.id!r}; pass state "
                    "explicitly or document+baseline a deliberate cache",
                )


# ---------------------------------------------------------------------------
# D6 -- exception hygiene


_BROAD = ("Exception", "BaseException")


@register
class ExceptionHygieneRule(Rule):
    """D6: a broad except on a protocol path can absorb
    :class:`~repro.faults.report.QuorumLostError` and convert a lost
    quorum into a silently-wrong answer -- the exact failure mode the
    q/2 threshold campaigns exist to rule out.  Swallowing
    ``QuorumLostError`` (handler body of ``pass``) is flagged
    everywhere."""

    id = "D6"
    name = "exception-hygiene"
    zones = ()  # swallow check is global; broad check scopes itself
    rationale = (
        "lost quorums must surface as errors, never be absorbed into a "
        "default value"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag bare/broad handlers and swallowed quorum losses."""
        in_protocol = any(
            ctx.relpath == z or ctx.relpath.startswith(z + "/")
            for z in PROTOCOL_ZONES
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._mentions_quorum(node.type) and self._swallows(node):
                yield ctx.finding(
                    self, node,
                    "QuorumLostError swallowed; degraded results must "
                    "propagate or be reported",
                )
                continue
            if not in_protocol:
                continue
            if node.type is None:
                yield ctx.finding(
                    self, node,
                    "bare except on a protocol path; catch specific "
                    "exceptions",
                )
            elif self._is_broad(node.type) and not self._reraises(node):
                yield ctx.finding(
                    self, node,
                    "broad except without re-raise on a protocol path; "
                    "catch specific exceptions or re-raise",
                )

    @staticmethod
    def _is_broad(type_node: ast.expr) -> bool:
        names = (
            [e for e in type_node.elts]
            if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        for n in names:
            nm = _call_name(n)
            if nm is not None and nm.split(".")[-1] in _BROAD:
                return True
        return False

    @staticmethod
    def _mentions_quorum(type_node: ast.expr | None) -> bool:
        if type_node is None:
            return False
        names = (
            [e for e in type_node.elts]
            if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        return any(
            (_call_name(n) or "").split(".")[-1] == "QuorumLostError"
            for n in names
        )

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        return all(
            isinstance(s, (ast.Pass, ast.Continue))
            or (isinstance(s, ast.Expr)
                and isinstance(s.value, ast.Constant))
            for s in handler.body
        )

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(s, ast.Raise) for s in ast.walk(handler))
