"""``repro lint`` -- the command-line surface of the rule engine.

Exit-code contract (relied on by CI and ``make lint``):

* ``0`` -- clean: no new findings, no stale baseline entries;
* ``1`` -- new findings (or stale entries, which must be deleted);
* ``2`` -- usage/configuration error (bad rule id, unreadable
  baseline, unjustified baseline entry).

``--tier`` selects the analysis depth: ``file`` runs the per-file
rules (D1-D6), ``flow`` runs the interprocedural rules (F1-F4) over a
whole-program model, ``all`` (the default) runs both.  Baseline
entries for rules outside the selected tier are ignored, not reported
stale, so partial runs keep the exit contract honest.

``--write-baseline`` regenerates the grandfather file from the current
findings, preserving reasons for fingerprints that already had one;
brand-new entries get a placeholder the loader *refuses*, so a freshly
written baseline fails until every entry is hand-justified.
"""

from __future__ import annotations

import argparse
import sys

from repro.lint import engine as _engine  # registers nothing by itself
from repro.lint import rules as _rules  # noqa: F401  (populates registry)
from repro.lint.baseline import Baseline, find_default_baseline
from repro.lint.config import LintConfig
from repro.lint.engine import Finding, LintEngine, all_rules
from repro.lint.flow import FlowEngine, all_flow_rules
from repro.lint.report import (
    LintResult,
    render_json,
    render_markdown,
    render_text,
)

__all__ = ["add_lint_arguments", "run_lint", "main"]

assert _engine  # imported for registry side-effect ordering


def add_lint_arguments(sp: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` options to an argparse (sub)parser."""
    sp.add_argument(
        "paths", nargs="*", default=["src/repro"], metavar="PATH",
        help="files/directories to scan (default: src/repro)",
    )
    sp.add_argument(
        "--format", choices=["text", "json", "md"], default="text",
        help="output format (json is the tools/lint_report.py input)",
    )
    sp.add_argument(
        "--tier", choices=["file", "flow", "all"], default="all",
        help="analysis tier: per-file rules (D*), interprocedural "
        "flow rules (F*), or both (default: all)",
    )
    sp.add_argument(
        "--graph-out", default=None, metavar="FILE",
        help="write the flow tier's call-graph/module-dependency JSON "
        "to FILE (requires --tier flow or all)",
    )
    sp.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    sp.add_argument(
        "--ignore", default=None, metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    sp.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file (default: nearest .lint-baseline.json above "
        "the first scanned path)",
    )
    sp.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline; report every finding as new",
    )
    sp.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the baseline from current findings and exit",
    )
    sp.add_argument(
        "--verbose", action="store_true",
        help="also list grandfathered findings in text output",
    )
    sp.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )


def _parse_ids(spec: str | None) -> frozenset[str] | None:
    if spec is None:
        return None
    return frozenset(s.strip().upper() for s in spec.split(",") if s.strip())


def _list_rules() -> str:
    lines = ["rule  tier  name                  zones                rationale"]
    for r in all_rules() + list(all_flow_rules()):
        zones = ",".join(z.removeprefix("repro/") for z in r.zones) or "(all)"
        tier = getattr(r, "tier", "file")
        lines.append(
            f"{r.id:5s} {tier:5s} {r.name:21s} {zones:20s} {r.rationale}"
        )
    return "\n".join(lines)


def _run_tiers(
    args: argparse.Namespace, config: LintConfig
) -> tuple[list[Finding], set[str]]:
    """Run the selected tier(s); returns findings + active rule ids."""
    findings: list[Finding] = []
    active: set[str] = {"E0"}
    if args.tier in ("file", "all"):
        eng = LintEngine(config)
        findings.extend(eng.run(args.paths))
        active.update(r.id for r in eng.active_rules())
    if args.tier in ("flow", "all"):
        feng = FlowEngine(config)
        flow_findings, project = feng.run_with_project(args.paths)
        findings.extend(flow_findings)
        active.update(r.id for r in feng.active_rules())
        if args.graph_out:
            project.write_graph(args.graph_out)
    if args.tier == "all":
        # both tiers parse every file, so E0 parse errors arrive twice
        seen: set[tuple] = set()
        deduped = []
        for f in findings:
            key = (f.rule, f.path, f.line, f.message)
            if key in seen:
                continue
            seen.add(key)
            deduped.append(f)
        findings = deduped
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, active


def run_lint(args: argparse.Namespace) -> int:
    """Execute one lint run from parsed arguments; returns exit code."""
    if args.list_rules:
        print(_list_rules())
        return 0

    select = _parse_ids(args.select)
    ignore = _parse_ids(args.ignore) or frozenset()
    known = {r.id for r in all_rules()} | {r.id for r in all_flow_rules()}
    for rid in (select or frozenset()) | ignore:
        if rid not in known:
            print(
                f"error: unknown rule {rid!r}; known: {sorted(known)}",
                file=sys.stderr,
            )
            return 2
    if args.graph_out and args.tier == "file":
        print(
            "error: --graph-out needs the flow tier (--tier flow or all)",
            file=sys.stderr,
        )
        return 2

    config = LintConfig(select=select, ignore=ignore)
    try:
        findings, active = _run_tiers(args, config)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = None if args.no_baseline else (
        args.baseline or find_default_baseline(args.paths)
    )

    if args.write_baseline:
        previous = None
        if baseline_path is not None:
            try:
                previous = Baseline.load(baseline_path)
            except (OSError, ValueError):
                previous = None  # regenerating an absent/broken file
        out_path = baseline_path or ".lint-baseline.json"
        regenerated = Baseline.from_findings(findings, previous)
        if previous is not None:
            # keep entries for rules this (possibly partial) run never
            # executed -- a --tier/--select write must not drop them
            regenerated.entries.extend(
                e for e in previous.entries if e.rule not in active
            )
        regenerated.write(out_path)
        print(
            f"baseline with {len(findings)} finding(s) -> {out_path}; "
            f"fill in every placeholder reason before committing",
            file=sys.stderr,
        )
        return 0

    baseline = Baseline()
    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    result = LintResult.from_partition(
        args.paths, baseline.apply(findings, active), baseline_path
    )
    if args.format == "json":
        print(render_json(result))
    elif args.format == "md":
        print(render_markdown(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism static analysis for the repro package",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
