"""``python -m repro.lint`` -- standalone entry to the lint CLI."""

from repro.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
