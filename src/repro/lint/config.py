"""Path-scoped configuration for the determinism lint engine.

The rules encode *where* an invariant holds as much as *what* it is:
float arithmetic is fine in ``repro/analysis`` (curve fitting) but a
correctness hazard in ``repro/gf`` field code; unseeded randomness is
the whole point of ``repro/workloads`` but forbidden in the protocol.
This module centralizes those zones so rules, tests, and docs agree.

Paths are compared as ``repro/<package>/...`` relative module paths --
:func:`module_relpath` derives that form from any on-disk location, so
fixture trees in test temp dirs scope exactly like the real package.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = [
    "DETERMINISTIC_ZONES",
    "RANDOMNESS_ALLOWED_ZONES",
    "FIELD_ARITHMETIC_ZONES",
    "ENGINE_ARITHMETIC_ZONES",
    "PROTOCOL_ZONES",
    "ASYNC_ATOMICITY_ZONES",
    "LOSS_BOUNDARY_ZONES",
    "LOSS_SIGNALS",
    "PARITY_ROOTS",
    "PARITY_EXEMPT_ZONES",
    "LintConfig",
    "module_relpath",
    "in_zone",
]

#: Packages whose outputs must be bit-identical across runs (D1, D4):
#: the PGL2(q^n) organization, field arithmetic, the MPC, the majority
#: protocol, every scheme the differential fuzzer cross-checks, and the
#: service layer (round admission and arbitration must replay exactly).
DETERMINISTIC_ZONES: tuple[str, ...] = (
    "repro/core",
    "repro/mpc",
    "repro/schemes",
    "repro/pgl",
    "repro/gf",
    "repro/kvstore",
    "repro/service",
)

#: Packages allowed to *construct* randomized plans (always from an
#: explicit seed -- D2 still flags module-level entropy there).
RANDOMNESS_ALLOWED_ZONES: tuple[str, ...] = (
    "repro/workloads",
    "repro/faults",
)

#: Exact integer arithmetic only (D3): GF(2^m) field code and the PGL2
#: coset algebra, where a float round-trip silently corrupts codes.
FIELD_ARITHMETIC_ZONES: tuple[str, ...] = (
    "repro/gf",
    "repro/pgl",
)

#: Integer-exact engine modules in core/ (D3 as well): the round-loop
#: executors work on int64 module ids, packed (stamp, value) words, and
#: iteration counters -- a float literal or true division there would
#: corrupt packed words above 2^53 exactly like in field code.  Scoped
#: to the engine files, not all of ``repro/core``: bounds/verification
#: legitimately use float math for the N^{1/3} envelope shapes.
ENGINE_ARITHMETIC_ZONES: tuple[str, ...] = (
    "repro/core/engine.py",
)

#: Protocol and storage paths where a swallowed exception can convert a
#: lost quorum into a silently-wrong answer (D6).
PROTOCOL_ZONES: tuple[str, ...] = (
    "repro/core",
    "repro/mpc",
    "repro/kvstore",
    "repro/schemes",
    "repro/service",
)


#: Packages whose async code mutates state other tasks also touch (F1):
#: the asyncio service front end and the streaming watchdog.  A guard
#: tested before an ``await`` proves nothing after it -- another task
#: may have run across the suspension point.
ASYNC_ATOMICITY_ZONES: tuple[str, ...] = (
    "repro/service",
    "repro/conformance",
)

#: Where a loss signal escaping unhandled reaches *users* (F3): the
#: service package is the outermost layer before client code, so every
#: public function there must handle QuorumLostError/RequestLost, map
#: it to STATUS_LOST, or declare it ("Raises QuorumLostError") in its
#: docstring.
LOSS_BOUNDARY_ZONES: tuple[str, ...] = (
    "repro/service",
)

#: The loss-signal typestate F3 tracks: the machine fact (a shard lost
#: its write/read quorum) and its client-visible mapping.
LOSS_SIGNALS: tuple[str, ...] = (
    "QuorumLostError",
    "RequestLost",
)

#: The two round-loop executors whose *shared* callee surface F4
#: audits: code reachable from both must stay exact-integer and
#: order-insensitive or the differential harness can diverge.
PARITY_ROOTS: tuple[str, ...] = (
    "repro/core/engine.py::run_phase_scalar",
    "repro/core/protocol.py::_run_phase",
)

#: Shared-surface modules F4 does not flag: the two executor files
#: themselves (their float use is perf timing, policed by the
#: differential harness op-for-op), and instrumentation sinks whose
#: float math never feeds simulation state.
PARITY_EXEMPT_ZONES: tuple[str, ...] = (
    "repro/core/engine.py",
    "repro/core/protocol.py",
    "repro/mpc/stats.py",
    "repro/obs",
)


def module_relpath(path: str) -> str:
    """Normalize ``path`` to the ``repro/...`` module-relative form.

    Finds the last ``repro`` segment of the path; a file outside any
    ``repro`` tree keeps its basename (only unscoped rules apply then).
    """
    parts = os.path.normpath(path).replace(os.sep, "/").split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return parts[-1]


def in_zone(relpath: str, zones: tuple[str, ...]) -> bool:
    """True iff ``relpath`` (from :func:`module_relpath`) is under any
    of the zone prefixes."""
    return any(
        relpath == z or relpath.startswith(z + "/") for z in zones
    )


@dataclass
class LintConfig:
    """Engine configuration: rule selection and baseline location.

    ``select`` limits the run to the listed rule ids (None = all);
    ``ignore`` drops rules after selection.  ``baseline_path`` is the
    committed grandfather file (None = no baseline applied).
    """

    select: frozenset[str] | None = None
    ignore: frozenset[str] = frozenset()
    baseline_path: str | None = None
    #: extra per-rule zone overrides: rule id -> tuple of path prefixes
    #: replacing the rule's built-in scope (used by tests)
    zone_overrides: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: engine-parity roots for F4 (qualified ``path::func`` names);
    #: None = the built-in :data:`PARITY_ROOTS`
    parity_roots: tuple[str, ...] | None = None

    def rule_enabled(self, rule_id: str) -> bool:
        """Apply ``select`` then ``ignore`` to one rule id."""
        if self.select is not None and rule_id not in self.select:
            return False
        return rule_id not in self.ignore

    def zones_for(self, rule_id: str, default: tuple[str, ...]) -> tuple[str, ...]:
        """The rule's zone scope, with any per-rule override applied."""
        return self.zone_overrides.get(rule_id, default)
