"""The committed findings baseline: grandfathered, justified, ratcheting.

The baseline is how intentional exceptions stay *visible*: every entry
carries a one-line ``reason`` (loading rejects entries without one), is
matched by content fingerprint ``(rule, path, stripped source line)``
rather than line number (so it survives unrelated edits), and ratchets
down -- an entry whose finding disappeared is reported as *stale* so it
can be deleted, and ``repro lint`` never adds entries silently
(``--write-baseline`` is an explicit act, and new entries get a
placeholder reason that the loader refuses until a human justifies it).
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field

from repro.lint.engine import Finding

__all__ = ["BaselineEntry", "Baseline", "BaselineResult", "find_default_baseline"]

#: filename looked up from the scanned tree's ancestors by default
BASELINE_NAME = ".lint-baseline.json"

#: reason the writer leaves on brand-new entries; the loader rejects it
PLACEHOLDER_REASON = "TODO: justify this exception"


@dataclass
class BaselineEntry:
    """One grandfathered finding with its justification."""

    rule: str
    path: str
    snippet: str
    reason: str
    count: int = 1

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Content identity matched against :attr:`Finding.fingerprint`."""
        return (self.rule, self.path, self.snippet)

    def to_dict(self) -> dict:
        """JSON form; ``count`` is omitted when 1."""
        d = {
            "rule": self.rule,
            "path": self.path,
            "snippet": self.snippet,
            "reason": self.reason,
        }
        if self.count != 1:
            d["count"] = self.count
        return d


@dataclass
class BaselineResult:
    """Partition of a run's findings against the baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)


class Baseline:
    """Load, apply, and write the grandfather file."""

    def __init__(self, entries: list[BaselineEntry] | None = None):
        self.entries = entries or []

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Parse a baseline file, rejecting unjustified entries."""
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        if not isinstance(data, dict) or data.get("version") != 1:
            raise ValueError(f"{path}: unsupported baseline format")
        entries: list[BaselineEntry] = []
        for i, raw in enumerate(data.get("entries", [])):
            missing = {"rule", "path", "snippet", "reason"} - set(raw)
            if missing:
                raise ValueError(
                    f"{path}: entry {i} missing fields {sorted(missing)}"
                )
            reason = str(raw["reason"]).strip()
            if not reason or reason == PLACEHOLDER_REASON:
                raise ValueError(
                    f"{path}: entry {i} ({raw['rule']} {raw['path']}) has no "
                    f"justification; every baseline entry needs a reason"
                )
            entries.append(BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                snippet=raw["snippet"],
                reason=reason,
                count=int(raw.get("count", 1)),
            ))
        return cls(entries)

    def apply(
        self,
        findings: list[Finding],
        active_rules: set[str] | None = None,
    ) -> BaselineResult:
        """Split findings into new vs grandfathered; unmatched entries
        are stale (the code improved -- delete them).

        ``active_rules`` names the rules this run actually executed;
        entries for rules that did *not* run (a ``--select`` subset, or
        a single ``--tier``) are left untouched instead of being
        misreported as stale.  None means every rule ran.
        """
        budget: Counter = Counter()
        for e in self.entries:
            budget[e.fingerprint] += e.count
        res = BaselineResult()
        used: Counter = Counter()
        for f in findings:
            fp = f.fingerprint
            if used[fp] < budget.get(fp, 0):
                used[fp] += 1
                res.baselined.append(f)
            else:
                res.new.append(f)
        for e in self.entries:
            if active_rules is not None and e.rule not in active_rules:
                continue
            if used.get(e.fingerprint, 0) < e.count:
                res.stale.append(e)
        return res

    @classmethod
    def from_findings(
        cls, findings: list[Finding], previous: "Baseline | None" = None
    ) -> "Baseline":
        """Build a baseline covering ``findings``, keeping reasons from
        ``previous`` where fingerprints still match; new entries get the
        placeholder reason (which the loader rejects until edited)."""
        reasons = {
            e.fingerprint: e.reason for e in (previous.entries if previous else [])
        }
        counts: Counter = Counter(f.fingerprint for f in findings)
        entries = [
            BaselineEntry(
                rule=rule,
                path=path,
                snippet=snippet,
                reason=reasons.get((rule, path, snippet), PLACEHOLDER_REASON),
                count=n,
            )
            for (rule, path, snippet), n in sorted(counts.items())
        ]
        return cls(entries)

    def write(self, path: str) -> None:
        """Serialize to ``path`` in the committed-file format."""
        data = {
            "version": 1,
            "comment": (
                "Grandfathered repro-lint findings. Every entry needs a "
                "one-line reason; delete entries the code no longer needs "
                "(stale entries fail `repro lint`). Regenerate with "
                "`python -m repro lint --write-baseline` and re-justify."
            ),
            "entries": [e.to_dict() for e in self.entries],
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=False)
            fh.write("\n")


def find_default_baseline(paths: list[str]) -> str | None:
    """Walk up from the first scanned path looking for the committed
    baseline file (like flake8 finds setup.cfg)."""
    if not paths:
        return None
    cur = os.path.abspath(paths[0])
    if os.path.isfile(cur):
        cur = os.path.dirname(cur)
    while True:
        cand = os.path.join(cur, BASELINE_NAME)
        if os.path.isfile(cand):
            return cand
        parent = os.path.dirname(cur)
        if parent == cur:
            return None
        cur = parent
