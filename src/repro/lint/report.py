"""Renderers for lint results: terminal text, machine JSON, markdown.

The JSON form (``repro lint --format json``) is the interchange schema
consumed by ``tools/lint_report.py`` and CI; it carries the full
new/baselined/stale partition plus per-rule counts so downstream
reports need no re-run.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field

from repro.lint.baseline import BaselineEntry, BaselineResult
from repro.lint.engine import Finding, all_rules

__all__ = [
    "LintResult",
    "rule_index",
    "render_text",
    "render_json",
    "render_markdown",
]


def rule_index() -> dict:
    """id -> rule object across both tiers (file D* + flow F*)."""
    from repro.lint.flow import all_flow_rules  # local: avoid cycle

    return {r.id: r for r in list(all_rules()) + list(all_flow_rules())}


def rule_family(rule_id: str) -> str:
    """Family letter of a rule id (``D3`` -> ``D``; ``E0`` -> ``E``)."""
    return rule_id[:1] if rule_id else "?"

#: schema version of the JSON interchange form
JSON_SCHEMA = 1


@dataclass
class LintResult:
    """One lint run: the findings partition plus run metadata."""

    paths: list[str]
    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)
    baseline_path: str | None = None

    @classmethod
    def from_partition(
        cls,
        paths: list[str],
        part: BaselineResult,
        baseline_path: str | None,
    ) -> "LintResult":
        """Wrap a :class:`BaselineResult` partition with run metadata."""
        return cls(
            paths=list(paths),
            new=part.new,
            baselined=part.baselined,
            stale=part.stale,
            baseline_path=baseline_path,
        )

    @property
    def ok(self) -> bool:
        """Clean run: no new findings and no stale baseline entries."""
        return not self.new and not self.stale

    def counts_by_rule(self) -> dict[str, dict[str, int]]:
        """Per-rule ``{"new": n, "baselined": m}`` tallies, id-sorted."""
        new = Counter(f.rule for f in self.new)
        old = Counter(f.rule for f in self.baselined)
        out: dict[str, dict[str, int]] = {}
        for rule in sorted(set(new) | set(old)):
            out[rule] = {"new": new.get(rule, 0), "baselined": old.get(rule, 0)}
        return out

    def counts_by_family(self) -> dict[str, dict[str, int]]:
        """Per-family (D/E/F) tallies with the number of distinct rules
        that fired, for the grouped report as the ruleset grows."""
        out: dict[str, dict[str, int]] = {}
        per_rule = self.counts_by_rule()
        for rule, c in per_rule.items():
            fam = out.setdefault(
                rule_family(rule), {"new": 0, "baselined": 0, "rules": 0}
            )
            fam["new"] += c["new"]
            fam["baselined"] += c["baselined"]
            fam["rules"] += 1
        return out

    def counts_by_tier(self) -> dict[str, dict[str, int]]:
        """Per-tier (file/flow) tallies; parse errors (E0) count as
        file-tier since both tiers share the parse."""
        index = rule_index()
        out: dict[str, dict[str, int]] = {}
        for kind, findings in (("new", self.new), ("baselined", self.baselined)):
            for f in findings:
                r = index.get(f.rule)
                tier = getattr(r, "tier", "file") if r is not None else "file"
                t = out.setdefault(tier, {"new": 0, "baselined": 0})
                t[kind] += 1
        return out

    def to_dict(self) -> dict:
        """The versioned JSON interchange form (``--format json``)."""
        return {
            "schema": JSON_SCHEMA,
            "paths": self.paths,
            "baseline": self.baseline_path,
            "ok": self.ok,
            "counts": self.counts_by_rule(),
            "families": self.counts_by_family(),
            "tiers": self.counts_by_tier(),
            "new": [f.to_dict() for f in self.new],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale": [e.to_dict() for e in self.stale],
            "rules": {
                r.id: {
                    "name": r.name,
                    "rationale": r.rationale,
                    "tier": getattr(r, "tier", "file"),
                }
                for r in rule_index().values()
            },
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LintResult":
        """Inverse of :meth:`to_dict`; rejects unknown schema versions."""
        if d.get("schema") != JSON_SCHEMA:
            raise ValueError(f"unsupported lint JSON schema {d.get('schema')!r}")
        return cls(
            paths=list(d.get("paths", [])),
            new=[Finding.from_dict(x) for x in d.get("new", [])],
            baselined=[Finding.from_dict(x) for x in d.get("baselined", [])],
            stale=[
                BaselineEntry(
                    rule=x["rule"], path=x["path"], snippet=x["snippet"],
                    reason=x["reason"], count=int(x.get("count", 1)),
                )
                for x in d.get("stale", [])
            ],
            baseline_path=d.get("baseline"),
        )


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Compiler-style one-line-per-finding output for terminals."""
    lines: list[str] = []
    for f in result.new:
        lines.append(f.describe())
    for e in result.stale:
        lines.append(
            f"{e.path}: stale baseline entry for {e.rule} "
            f"({e.snippet!r}) -- the finding is gone, delete the entry"
        )
    if verbose:
        for f in result.baselined:
            lines.append(f"baselined: {f.describe()}")
    n_new, n_base = len(result.new), len(result.baselined)
    lines.append(
        f"repro lint: {n_new} new finding(s), {n_base} baselined, "
        f"{len(result.stale)} stale baseline entr(ies) -- "
        + ("clean" if result.ok else "FAIL")
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Pretty-printed JSON interchange form of the run."""
    return json.dumps(result.to_dict(), indent=2)


def render_markdown(result: LintResult) -> str:
    """Report in the repo's benchmarks/results house style."""
    out: list[str] = ["# Determinism lint report", ""]
    out.append(
        f"Scanned: `{'`, `'.join(result.paths)}`  \n"
        f"Verdict: **{'clean' if result.ok else 'FAIL'}** "
        f"({len(result.new)} new, {len(result.baselined)} baselined, "
        f"{len(result.stale)} stale)"
    )
    out.append("")
    out.append("## Findings by family")
    out.append("")
    out.append("| family | rules hit | new | baselined |")
    out.append("|--------|----------:|----:|----------:|")
    fams = result.counts_by_family()
    for fam in sorted(fams):
        c = fams[fam]
        out.append(
            f"| {fam} | {c['rules']} | {c['new']} | {c['baselined']} |"
        )
    tiers = result.counts_by_tier()
    if tiers:
        out.append("")
        out.append(
            "Per tier: " + " · ".join(
                f"{tier}: {c['new']} new, {c['baselined']} baselined"
                for tier, c in sorted(tiers.items())
            )
        )
    out.append("")
    out.append("## Findings by rule")
    out.append("")
    out.append("| rule | tier | name | new | baselined |")
    out.append("|------|------|------|----:|----------:|")
    counts = result.counts_by_rule()
    index = rule_index()
    for rule in sorted(set(counts) | set(index)):
        c = counts.get(rule, {"new": 0, "baselined": 0})
        r = index.get(rule)
        name = r.name if r is not None else "?"
        tier = getattr(r, "tier", "file") if r is not None else "?"
        out.append(
            f"| {rule} | {tier} | {name} | {c['new']} | {c['baselined']} |"
        )
    if result.new:
        out.append("")
        out.append("## New findings")
        out.append("")
        out.append("| location | rule | message |")
        out.append("|----------|------|---------|")
        for f in result.new:
            out.append(
                f"| `{f.path}:{f.line}` | {f.rule} | {f.message} |"
            )
    if result.baselined:
        out.append("")
        out.append("## Grandfathered (baselined) findings")
        out.append("")
        out.append("| location | rule | snippet |")
        out.append("|----------|------|---------|")
        for f in result.baselined:
            snippet = f.snippet.replace("|", "\\|")
            out.append(f"| `{f.path}:{f.line}` | {f.rule} | `{snippet}` |")
    if result.stale:
        out.append("")
        out.append("## Stale baseline entries (delete these)")
        out.append("")
        for e in result.stale:
            out.append(f"- {e.rule} `{e.path}`: `{e.snippet}`")
    out.append("")
    return "\n".join(out)
