"""Determinism static analysis: the ``repro lint`` AST rule engine.

The paper's value proposition is *determinism*: the PGL2(q^n)
organization and the majority protocol promise bit-identical outcomes
for identical request sequences, and both the conformance checker
(:mod:`repro.conformance`) and the fault campaigns
(:mod:`repro.faults`) are sound only under that promise.  This package
turns the repo's implicit determinism invariants into machine-checked
rules that run on every PR -- a shift-left complement to the dynamic
checkers.

### Rules

| id | name | zones | invariant protected |
|----|------|-------|---------------------|
| D1 | ``set-iteration`` | core, mpc, schemes, pgl, gf, kvstore | set iteration order is arbitrary; deterministic zones sort before iterating (protocol schedules and coset enumerations must replay bit-identically) |
| D2 | ``unseeded-randomness`` | all (workloads/faults: module level only) | entropy enters only through explicit seeds; no wall-clock reads into simulation state |
| D3 | ``float-arithmetic`` | gf, pgl, core/engine.py | field/coset arithmetic and the batch-engine round loops stay in exact integers -- no float literals, ``float()``, or true division |
| D4 | ``unguarded-obs`` | core, mpc, schemes, pgl, gf, kvstore | instrumentation emission sits behind the single ``obs.enabled()`` guard (the <5% overhead budget) |
| D5 | ``mutable-shared-state`` | all | no mutable default args; no module-level mutable accumulators coupling independent runs |
| D6 | ``exception-hygiene`` | core, mpc, kvstore, schemes (+global swallow check) | no bare/broad excepts on protocol paths; ``QuorumLostError`` is never swallowed |

### Machinery

* :mod:`repro.lint.engine` -- :class:`~repro.lint.engine.Finding`,
  the :class:`~repro.lint.engine.Rule` plugin base + registry, and the
  file walker with ``# noqa: Dx`` suppression;
* :mod:`repro.lint.rules` -- the D1-D6 implementations;
* :mod:`repro.lint.config` -- the zone map (which invariant holds
  where) and run configuration;
* :mod:`repro.lint.baseline` -- the committed grandfather file
  (``.lint-baseline.json``): content-fingerprint matched, every entry
  requires a one-line justification, stale entries fail the run so the
  set only ratchets down;
* :mod:`repro.lint.report` -- text/JSON/markdown renderers
  (``tools/lint_report.py`` turns the JSON into
  ``benchmarks/results/lint_report.md``);
* :mod:`repro.lint.cli` -- ``repro lint`` (also ``python -m
  repro.lint``): exit 0 clean / 1 findings / 2 usage error.

The typing half of the gate lives in ``tools/typecheck.py``: a
stdlib annotation-coverage ratchet (strict tier: ``repro/gf`` and
``repro/core`` at 100% public-API annotation coverage) plus an
optional mypy layer (``mypy.ini``) that CI installs and runs.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.config import (
    DETERMINISTIC_ZONES,
    ENGINE_ARITHMETIC_ZONES,
    FIELD_ARITHMETIC_ZONES,
    PROTOCOL_ZONES,
    RANDOMNESS_ALLOWED_ZONES,
    LintConfig,
    module_relpath,
)
from repro.lint.engine import (
    Finding,
    LintEngine,
    Rule,
    all_rules,
    get_rule,
    lint_source,
)
from repro.lint import rules as _rules  # noqa: F401  (populates the registry)
from repro.lint.report import LintResult, render_markdown

__all__ = [
    "Finding",
    "Rule",
    "LintEngine",
    "LintConfig",
    "LintResult",
    "Baseline",
    "BaselineEntry",
    "all_rules",
    "get_rule",
    "lint_source",
    "module_relpath",
    "render_markdown",
    "DETERMINISTIC_ZONES",
    "RANDOMNESS_ALLOWED_ZONES",
    "FIELD_ARITHMETIC_ZONES",
    "ENGINE_ARITHMETIC_ZONES",
    "PROTOCOL_ZONES",
]

#: Emit docs/API.md with this module's full docstring -- it is the
#: static-analysis reference (rule table + machinery map).
__apidoc__ = "full"
