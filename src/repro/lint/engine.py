"""The AST rule engine: findings, the rule registry, and the file walker.

A :class:`Rule` is a small plugin: it declares an id (``D1``..), a
severity, the path zones it applies to, and a ``check`` method that
yields :class:`Finding` objects from one parsed file.  The
:class:`LintEngine` walks the target tree, parses each file once,
builds the shared per-file context (source lines, parent links,
``noqa`` suppressions), and dispatches every enabled rule whose zone
matches the file.

Suppression: a ``# noqa: D3`` comment on the flagged line silences
that rule there; bare ``# noqa`` silences all rules on the line.
Grandfathered findings live in the committed baseline instead
(:mod:`repro.lint.baseline`) so they stay visible and justified.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field as dc_field
from typing import Iterable, Iterator

from repro.lint.config import LintConfig, in_zone, module_relpath

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "LintEngine",
    "register",
    "all_rules",
    "get_rule",
    "lint_source",
    "iter_python_files",
]

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # module-relative (repro/...) path
    line: int
    col: int
    message: str
    snippet: str  # stripped source line, the baseline matching key
    severity: str = "error"

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-free identity used for baseline matching, so a
        grandfathered finding survives unrelated edits above it."""
        return (self.rule, self.path, self.snippet)

    def to_dict(self) -> dict:
        """JSON-serializable form (the ``--format json`` item shape)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Finding":
        """Inverse of :meth:`to_dict`."""
        return cls(**{k: d[k] for k in (
            "rule", "path", "line", "col", "message", "snippet", "severity"
        )})

    def describe(self) -> str:
        """Compiler-style ``path:line:col: RULE [severity] message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"[{self.severity}] {self.message}"
        )


class FileContext:
    """Everything the rules share about one parsed file."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.relpath = module_relpath(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.noqa: dict[int, frozenset[str] | None] = self._scan_noqa(source)

    @staticmethod
    def _scan_noqa(source: str) -> dict[int, frozenset[str] | None]:
        """Map line -> suppressed rule ids (None = all rules)."""
        out: dict[int, frozenset[str] | None] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                m = _NOQA_RE.search(tok.string)
                if not m:
                    continue
                codes = m.group("codes")
                if codes is None:
                    out[tok.start[0]] = None
                else:
                    ids = frozenset(
                        c.strip().upper() for c in codes.split(",") if c.strip()
                    )
                    prev = out.get(tok.start[0], frozenset())
                    out[tok.start[0]] = (
                        None if prev is None else prev | ids
                    )
        except tokenize.TokenizeError:  # pragma: no cover - parse ok'd already
            pass
        return out

    def suppressed(self, rule_id: str, line: int) -> bool:
        """True iff a ``noqa`` comment on ``line`` silences ``rule_id``."""
        if line not in self.noqa:
            return False
        codes = self.noqa[line]
        return codes is None or rule_id in codes

    def snippet_at(self, line: int) -> str:
        """Stripped source text of ``line`` (the baseline fingerprint key)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def parent(self, node: ast.AST) -> ast.AST | None:
        """Direct AST parent of ``node`` (None for the module root)."""
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """Innermost function def containing ``node``, if any."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
    ) -> Finding:
        """Build a :class:`Finding` for ``rule`` at ``node``'s location."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.id,
            path=self.relpath,
            line=line,
            col=col,
            message=message,
            snippet=self.snippet_at(line),
            severity=rule.severity,
        )


class Rule:
    """Base class for lint rules; subclasses self-register via
    :func:`register`."""

    id: str = ""
    name: str = ""
    severity: str = "error"
    #: path prefixes the rule applies to; () = every scanned file
    zones: tuple[str, ...] = ()
    #: one-line invariant statement for docs / ``--list-rules``
    rationale: str = ""

    def applies_to(self, relpath: str, config: LintConfig) -> bool:
        """True iff the rule's (possibly overridden) zones cover the file."""
        zones = config.zones_for(self.id, self.zones)
        return not zones or in_zone(relpath, zones)

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        """Yield every violation of this rule in one parsed file."""
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Registered rules in id order."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """The registered rule with the given id (ValueError if unknown)."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise ValueError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of .py files."""
    out: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        elif p.endswith(".py"):
            out.append(p)
        else:
            raise ValueError(f"not a Python file or directory: {p}")
    return sorted(dict.fromkeys(out))


@dataclass
class LintEngine:
    """Parse files once, dispatch every enabled + in-zone rule."""

    config: LintConfig = dc_field(default_factory=LintConfig)

    def active_rules(self) -> list[Rule]:
        """Registered rules surviving the select/ignore configuration."""
        return [r for r in all_rules() if self.config.rule_enabled(r.id)]

    def run(self, paths: Iterable[str]) -> list[Finding]:
        """Lint files/trees and return findings sorted by location."""
        findings: list[Finding] = []
        for path in iter_python_files(paths):
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
            findings.extend(self.run_source(source, path))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def run_source(self, source: str, path: str) -> list[Finding]:
        """Lint one in-memory source (``path`` scopes the zone rules)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [Finding(
                rule="E0",
                path=module_relpath(path),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
                snippet="",
            )]
        ctx = FileContext(path, source, tree)
        out: list[Finding] = []
        for rule in self.active_rules():
            if not rule.applies_to(ctx.relpath, self.config):
                continue
            for f in rule.check(ctx):
                if not ctx.suppressed(f.rule, f.line):
                    out.append(f)
        return out


def lint_source(
    source: str,
    path: str = "repro/core/_snippet.py",
    config: LintConfig | None = None,
) -> list[Finding]:
    """Convenience wrapper for tests: lint one source string as if it
    lived at ``path``."""
    eng = LintEngine(config or LintConfig())
    found = eng.run_source(source, path)
    found.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return found
