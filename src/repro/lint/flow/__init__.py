"""Interprocedural flow analysis: the lint suite's second tier.

Where the file tier (D1-D6) checks one parsed file at a time, this
package builds a whole-program model -- symbol table, call graph,
module-dependency graph -- once per run and checks invariants that only
exist *between* files: await-atomicity in the async service (F1),
determinism taint through call edges (F2), the QuorumLostError
typestate (F3), and the dual-engine parity surface (F4).

Entry point: :class:`FlowEngine` (``repro lint --tier flow``).
"""

from repro.lint.flow.engine import (
    FlowEngine,
    FlowRule,
    all_flow_rules,
    register_flow,
)
from repro.lint.flow.project import Project
from repro.lint.flow import rules as _rules  # noqa: F401  (populates registry)

__all__ = [
    "FlowEngine",
    "FlowRule",
    "Project",
    "all_flow_rules",
    "register_flow",
]
