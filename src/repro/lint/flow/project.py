"""The whole-program model behind the flow tier: symbols, calls, deps.

A :class:`Project` is built once per ``repro lint --tier flow`` run: it
parses every target file (reusing :class:`repro.lint.engine.FileContext`
so ``noqa`` scanning and parent links behave exactly like the file
tier), collects a qualified-name symbol table of every function, method
and class, resolves call sites into a call graph, and derives the
module-dependency graph from imports.

Qualified names are ``<relpath>::<Class>.<method>`` (or
``<relpath>::<function>``), e.g.
``repro/service/service.py::KVService.stop`` -- path-scoped so fixture
trees in test temp dirs resolve exactly like the real package.

Call resolution is best-effort static analysis, deliberately biased
toward *precision* (an unresolved call produces no edge, never a wrong
edge):

* plain names bind through ``from``-imports, module-level defs in the
  same file, and local classes (a class call edges to ``__init__``);
* ``alias.attr(...)`` binds through ``import``-aliases to the target
  module's functions and classes;
* ``self.m(...)`` binds to the enclosing class (then base classes);
* ``self.x.m(...)`` and ``local.m(...)`` bind through inferred types:
  ``self.x = ClassName(...)`` assignments, dataclass-field and
  parameter annotations, and ``local = ClassName(...)`` bindings;
* as a last resort a bare method name that is defined exactly once in
  the whole project binds to that definition (ambiguous names produce
  no edge).

Each call site also records the exception names of every enclosing
``try`` that covers it, which is what lets the F3 typestate rule mask
handled ``QuorumLostError`` paths without a real CFG.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Callable

from repro.lint.config import module_relpath
from repro.lint.engine import FileContext, Finding, iter_python_files

__all__ = ["CallSite", "RaiseSite", "FunctionInfo", "ClassInfo", "Project"]

#: schema version of the exported call-graph JSON (the CI artifact)
GRAPH_SCHEMA = 1


@dataclass
class CallSite:
    """One resolved-or-not call expression inside a function body."""

    node: ast.Call
    line: int
    #: qualified name of the callee when resolution succeeded
    callee: str | None
    #: textual form of the call target (``self.core.run_round``)
    text: str
    #: exception names handled by every enclosing ``try`` body
    handled: frozenset[str] = frozenset()


@dataclass
class RaiseSite:
    """One ``raise`` statement with its local handler coverage."""

    line: int
    #: bare class name of the raised exception ("" for re-raise)
    exc: str
    handled: frozenset[str] = frozenset()


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qname: str
    relpath: str
    name: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    docstring: str = ""
    calls: list[CallSite] = field(default_factory=list)
    raises: list[RaiseSite] = field(default_factory=list)

    @property
    def line(self) -> int:
        """Definition line of the function."""
        return self.node.lineno

    @property
    def is_public(self) -> bool:
        """Part of the package surface: no leading underscore anywhere
        (dunder methods other than ``__init__`` count as internal)."""
        if self.name == "__init__":
            return True
        return not self.name.startswith("_")


@dataclass
class ClassInfo:
    """One class definition: methods, bases, inferred attribute types."""

    qname: str
    relpath: str
    name: str
    node: ast.ClassDef
    #: method name -> function qname
    methods: dict[str, str] = field(default_factory=dict)
    #: bare base-class names as written (resolution is name-based)
    bases: list[str] = field(default_factory=list)
    #: attribute name -> class qname (from ``self.x = Cls(...)`` and
    #: annotations)
    attr_types: dict[str, str] = field(default_factory=dict)


def _dotted_module(relpath: str) -> str:
    """``repro/service/shards.py`` -> ``repro.service.shards``."""
    mod = relpath.removesuffix(".py").replace("/", ".")
    return mod.removesuffix(".__init__")


def _name_of(node: ast.expr) -> str | None:
    """Dotted textual form of a name/attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _name_of(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _annotation_class(ann: ast.expr | None) -> str | None:
    """Bare class name out of an annotation (``ServiceCore``,
    ``"ServiceCore"``, ``Optional[ServiceCore]`` -> ``ServiceCore``)."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        head = ann.value.split("[", 1)[0].strip()
        head = head.split("|", 1)[0].strip()
        return head.split(".")[-1] or None
    if isinstance(ann, ast.Name):
        return ann.id
    if isinstance(ann, ast.Attribute):
        return ann.attr
    if isinstance(ann, ast.Subscript):
        head = _annotation_class(ann.value)
        if head in ("Optional",):
            return _annotation_class(
                ann.slice if not isinstance(ann.slice, ast.Tuple) else None
            )
        return None
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        # ``ServiceCore | None`` -- take the non-None side
        left = _annotation_class(ann.left)
        if left not in (None, "None"):
            return left
        return _annotation_class(ann.right)
    return None


class Project:
    """Symbol table + call graph + module-dependency graph."""

    def __init__(self) -> None:
        self.files: dict[str, FileContext] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: dotted module -> relpath of its defining file
        self.module_files: dict[str, str] = {}
        #: relpath -> {alias -> dotted module} from ``import`` statements
        self.mod_aliases: dict[str, dict[str, str]] = {}
        #: relpath -> {name -> (dotted module, original name)}
        self.from_imports: dict[str, dict[str, tuple[str, str]]] = {}
        #: relpath -> set of relpaths it imports (module-dependency graph)
        self.module_deps: dict[str, set[str]] = {}
        #: bare method/function name -> qnames defining it
        self._by_name: dict[str, list[str]] = {}
        #: bare class name -> class qnames
        self._class_by_name: dict[str, list[str]] = {}
        #: reverse call graph: callee qname -> caller qnames
        self.callers: dict[str, set[str]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, paths: list[str]) -> tuple["Project", list[Finding]]:
        """Parse ``paths`` and build the full model.

        Returns the project plus E0 findings for files that do not
        parse (those files are excluded from the model).
        """
        proj = cls()
        errors: list[Finding] = []
        for path in iter_python_files(paths):
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as exc:
                errors.append(Finding(
                    rule="E0",
                    path=module_relpath(path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                    snippet="",
                ))
                continue
            ctx = FileContext(path, source, tree)
            proj.files[ctx.relpath] = ctx
        proj._index_symbols()
        proj._index_imports()
        proj._infer_attr_types()
        proj._resolve_calls()
        return proj, errors

    def _index_symbols(self) -> None:
        for relpath, ctx in self.files.items():
            self.module_files.setdefault(_dotted_module(relpath), relpath)
            for node in ctx.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add_function(relpath, node, cls_name=None)
                elif isinstance(node, ast.ClassDef):
                    self._add_class(relpath, node)

    def _add_class(self, relpath: str, node: ast.ClassDef) -> None:
        qname = f"{relpath}::{node.name}"
        info = ClassInfo(
            qname=qname,
            relpath=relpath,
            name=node.name,
            node=node,
            bases=[b for b in map(_name_of, node.bases) if b],
        )
        self.classes[qname] = info
        self._class_by_name.setdefault(node.name, []).append(qname)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fi = self._add_function(relpath, item, cls_name=node.name)
                info.methods[item.name] = fi.qname
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                ann = _annotation_class(item.annotation)
                if ann:
                    info.attr_types.setdefault(item.target.id, ann)

    def _add_function(
        self,
        relpath: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls_name: str | None,
    ) -> FunctionInfo:
        qual = f"{cls_name}.{node.name}" if cls_name else node.name
        info = FunctionInfo(
            qname=f"{relpath}::{qual}",
            relpath=relpath,
            name=node.name,
            cls=cls_name,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            docstring=ast.get_docstring(node) or "",
        )
        self.functions[info.qname] = info
        self._by_name.setdefault(node.name, []).append(info.qname)
        return info

    def _index_imports(self) -> None:
        for relpath, ctx in self.files.items():
            aliases: dict[str, str] = {}
            froms: dict[str, tuple[str, str]] = {}
            deps: set[str] = set()
            pkg_parts = relpath.split("/")[:-1]  # containing package
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Import):
                    for a in node.names:
                        aliases[a.asname or a.name] = a.name
                        self._dep(deps, a.name)
                elif isinstance(node, ast.ImportFrom):
                    mod = self._resolve_from(node, pkg_parts)
                    if mod is None:
                        continue
                    self._dep(deps, mod)
                    for a in node.names:
                        froms[a.asname or a.name] = (mod, a.name)
                        # ``from repro.service import shards`` imports a
                        # *module*: register it as an alias too
                        sub = f"{mod}.{a.name}"
                        if sub in self.module_files:
                            aliases[a.asname or a.name] = sub
                            self._dep(deps, sub)
            self.mod_aliases[relpath] = aliases
            self.from_imports[relpath] = froms
            self.module_deps[relpath] = deps

    @staticmethod
    def _resolve_from(
        node: ast.ImportFrom, pkg_parts: list[str]
    ) -> str | None:
        if node.level == 0:
            return node.module
        # relative import: walk up ``level-1`` packages from the file's
        # own package
        up = node.level - 1
        if up > len(pkg_parts):
            return None
        base = pkg_parts[: len(pkg_parts) - up]
        parts = base + (node.module.split(".") if node.module else [])
        return ".".join(parts) if parts else None

    def _dep(self, deps: set[str], module: str) -> None:
        relpath = self.module_files.get(module)
        if relpath is None:
            # a package import maps to its __init__
            relpath = self.module_files.get(f"{module}.__init__")
        if relpath is not None:
            deps.add(relpath)

    def _infer_attr_types(self) -> None:
        """Fill ``ClassInfo.attr_types`` from ``self.x = Cls(...)`` and
        ``self.x: Cls`` assignments in method bodies."""
        for cls_info in self.classes.values():
            for mname in cls_info.methods.values():
                fn = self.functions[mname]
                for node in ast.walk(fn.node):
                    attr: str | None = None
                    type_name: str | None = None
                    if isinstance(node, ast.Assign) and isinstance(
                        node.value, ast.Call
                    ):
                        type_name = self._class_name_of_call(
                            node.value, fn.relpath
                        )
                        for tgt in node.targets:
                            if (
                                isinstance(tgt, ast.Attribute)
                                and isinstance(tgt.value, ast.Name)
                                and tgt.value.id == "self"
                            ):
                                attr = tgt.attr
                    elif isinstance(node, ast.AnnAssign) and isinstance(
                        node.target, ast.Attribute
                    ):
                        tgt = node.target
                        if (
                            isinstance(tgt.value, ast.Name)
                            and tgt.value.id == "self"
                        ):
                            attr = tgt.attr
                            type_name = _annotation_class(node.annotation)
                    if attr and type_name:
                        resolved = self._lookup_class(type_name, fn.relpath)
                        if resolved:
                            cls_info.attr_types.setdefault(attr, resolved)
            # annotation-only names collected in _add_class still need
            # resolution to qnames
            for attr, tname in list(cls_info.attr_types.items()):
                if "::" not in tname:
                    resolved = self._lookup_class(tname, cls_info.relpath)
                    if resolved:
                        cls_info.attr_types[attr] = resolved
                    else:
                        del cls_info.attr_types[attr]

    def _class_name_of_call(
        self, call: ast.Call, relpath: str
    ) -> str | None:
        """``Cls`` for constructor-looking calls, resolution deferred."""
        name = _name_of(call.func)
        if name is None:
            return None
        leaf = name.split(".")[-1]
        return leaf if leaf[:1].isupper() else None

    def _lookup_class(self, name: str, relpath: str) -> str | None:
        """Resolve a bare class name seen in ``relpath`` to a qname."""
        local = f"{relpath}::{name}"
        if local in self.classes:
            return local
        binding = self.from_imports.get(relpath, {}).get(name)
        if binding is not None:
            mod, orig = binding
            target = self.module_files.get(mod)
            if target is not None and f"{target}::{orig}" in self.classes:
                return f"{target}::{orig}"
        cands = self._class_by_name.get(name, [])
        return cands[0] if len(cands) == 1 else None

    # -- call resolution ---------------------------------------------------

    def _resolve_calls(self) -> None:
        for fn in self.functions.values():
            local_types = self._local_types(fn)
            self._collect_sites(fn, fn.node.body, frozenset(), local_types)
        for fn in self.functions.values():
            for site in fn.calls:
                if site.callee is not None:
                    self.callers.setdefault(site.callee, set()).add(fn.qname)

    def _local_types(self, fn: FunctionInfo) -> dict[str, str]:
        """Parameter + local-variable class types inside ``fn``."""
        types: dict[str, str] = {}
        args = fn.node.args
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            ann = _annotation_class(a.annotation)
            if ann:
                resolved = self._lookup_class(ann, fn.relpath)
                if resolved:
                    types[a.arg] = resolved
        for node in ast.walk(fn.node):
            value: ast.expr | None = None
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                ann = _annotation_class(node.annotation)
                if ann:
                    resolved = self._lookup_class(ann, fn.relpath)
                    if resolved:
                        types[node.target.id] = resolved
                continue
            if not isinstance(value, ast.Call):
                continue
            cname = self._class_name_of_call(value, fn.relpath)
            if cname is None:
                continue
            resolved = self._lookup_class(cname, fn.relpath)
            if resolved is None:
                continue
            for tgt in targets:
                if isinstance(tgt, ast.Name):
                    types[tgt.id] = resolved
        return types

    def _collect_sites(
        self,
        fn: FunctionInfo,
        body: list[ast.stmt],
        handled: frozenset[str],
        local_types: dict[str, str],
    ) -> None:
        """Recursive statement walk carrying the active handler set.

        Nested function bodies (closures, inner coroutines) are
        attributed to the *enclosing* project function: they are not
        separate symbols, and a closure's calls execute as part of the
        function that defines and drives it.
        """
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                continue  # function-local classes: out of model
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_sites(fn, stmt.body, handled, local_types)
                continue
            if isinstance(stmt, ast.Try):
                names = frozenset(
                    n for h in stmt.handlers for n in _handler_names(h)
                )
                self._collect_sites(
                    fn, stmt.body, handled | names, local_types
                )
                for h in stmt.handlers:
                    self._collect_sites(fn, h.body, handled, local_types)
                self._collect_sites(fn, stmt.orelse, handled, local_types)
                self._collect_sites(fn, stmt.finalbody, handled, local_types)
                continue
            if isinstance(stmt, ast.Raise):
                exc = ""
                e = stmt.exc
                if isinstance(e, ast.Call):
                    exc = (_name_of(e.func) or "").split(".")[-1]
                elif e is not None:
                    exc = (_name_of(e) or "").split(".")[-1]
                fn.raises.append(
                    RaiseSite(line=stmt.lineno, exc=exc, handled=handled)
                )
            # this statement's own expressions: child statements are
            # skipped here and visited by the recursion below, so no
            # call is counted twice
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    continue
                for node in ast.walk(child):
                    if isinstance(node, ast.Call):
                        fn.calls.append(CallSite(
                            node=node,
                            line=node.lineno,
                            callee=self._resolve_call(
                                fn, node, local_types
                            ),
                            text=_name_of(node.func) or "<dynamic>",
                            handled=handled,
                        ))
            for attr in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, attr, None)
                if isinstance(sub, list) and sub and isinstance(
                    sub[0], ast.stmt
                ):
                    self._collect_sites(fn, sub, handled, local_types)

    def _resolve_call(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        local_types: dict[str, str],
    ) -> str | None:
        name = _name_of(call.func)
        if name is None:
            return None
        parts = name.split(".")
        relpath = fn.relpath

        if len(parts) == 1:
            return self._resolve_plain(relpath, parts[0])

        if parts[0] == "self" and fn.cls is not None:
            return self._resolve_self(fn, parts)

        # typed local / parameter receiver: ``core.run_round(...)``
        if parts[0] in local_types and len(parts) == 2:
            hit = self._method_of(local_types[parts[0]], parts[1])
            if hit:
                return hit

        # module alias prefix: ``shards.route(...)``, ``repro.obs.x(...)``
        hit = self._resolve_module_attr(relpath, parts)
        if hit:
            return hit

        # last resort: globally unique method name
        return self._unique_by_name(parts[-1])

    def _resolve_plain(self, relpath: str, name: str) -> str | None:
        local = f"{relpath}::{name}"
        if local in self.functions:
            return local
        if local in self.classes:
            return self.classes[local].methods.get("__init__")
        binding = self.from_imports.get(relpath, {}).get(name)
        if binding is not None:
            mod, orig = binding
            target = self.module_files.get(mod)
            if target is not None:
                tq = f"{target}::{orig}"
                if tq in self.functions:
                    return tq
                if tq in self.classes:
                    return self.classes[tq].methods.get("__init__")
        return None

    def _resolve_self(self, fn: FunctionInfo, parts: list[str]) -> str | None:
        cls = self.classes.get(f"{fn.relpath}::{fn.cls}")
        if cls is None:
            return None
        if len(parts) == 2:
            return self._method_of(cls.qname, parts[1])
        if len(parts) == 3:
            target = cls.attr_types.get(parts[1])
            if target is not None:
                return self._method_of(target, parts[2])
            return self._unique_by_name(parts[2])
        return None

    def _method_of(self, class_qname: str, method: str) -> str | None:
        """Method lookup through the (name-resolved) base-class chain."""
        seen: set[str] = set()
        stack = [class_qname]
        while stack:
            q = stack.pop()
            if q in seen:
                continue
            seen.add(q)
            info = self.classes.get(q)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            for base in info.bases:
                resolved = self._lookup_class(base, info.relpath)
                if resolved:
                    stack.append(resolved)
        return None

    def _resolve_module_attr(
        self, relpath: str, parts: list[str]
    ) -> str | None:
        aliases = self.mod_aliases.get(relpath, {})
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            mod = aliases.get(prefix)
            if mod is None:
                continue
            target = self.module_files.get(mod) or self.module_files.get(
                f"{mod}.__init__"
            )
            if target is None:
                return None
            rest = parts[cut:]
            if len(rest) == 1:
                tq = f"{target}::{rest[0]}"
                if tq in self.functions:
                    return tq
                if tq in self.classes:
                    return self.classes[tq].methods.get("__init__")
            elif len(rest) == 2:
                return self._method_of(f"{target}::{rest[0]}", rest[1])
            return None
        return None

    def _unique_by_name(self, name: str) -> str | None:
        if name.startswith("__"):
            return None  # dunder fallbacks are never meaningful
        cands = self._by_name.get(name, [])
        return cands[0] if len(cands) == 1 else None

    # -- queries -----------------------------------------------------------

    def call_edges(self, qname: str) -> set[str]:
        """Resolved callee qnames of one function."""
        fn = self.functions.get(qname)
        if fn is None:
            return set()
        return {s.callee for s in fn.calls if s.callee is not None}

    def reachable_from(self, roots: list[str]) -> set[str]:
        """Transitive closure of the call graph from ``roots``."""
        seen: set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            q = stack.pop()
            if q in seen:
                continue
            seen.add(q)
            stack.extend(self.call_edges(q) - seen)
        return seen

    def shortest_caller_chain(
        self, target: str, predicate: "Callable[[str], bool]"
    ) -> list[str] | None:
        """BFS over the *reverse* call graph from ``target`` to the
        nearest caller satisfying ``predicate``; returns the chain
        caller-first, or None."""
        from collections import deque

        prev: dict[str, str] = {}
        seen = {target}
        queue = deque([target])
        while queue:
            q = queue.popleft()
            if q != target and predicate(q):
                chain = [q]
                while chain[-1] != target:
                    chain.append(prev[chain[-1]])
                return chain
            # sorted so the witness chain (and thus the message) is
            # identical run to run
            for caller in sorted(self.callers.get(q, ())):
                if caller not in seen:
                    seen.add(caller)
                    prev[caller] = q
                    queue.append(caller)
        return None

    def exception_ancestors(self, name: str) -> set[str]:
        """Transitive base-class names of ``name`` per project defs."""
        out: set[str] = set()
        stack = [name]
        while stack:
            cur = stack.pop()
            for q in self._class_by_name.get(cur, []):
                for base in self.classes[q].bases:
                    leaf = base.split(".")[-1]
                    if leaf not in out:
                        out.add(leaf)
                        stack.append(leaf)
        return out

    def to_graph_dict(self) -> dict:
        """JSON form of the call + module graphs (the CI artifact)."""
        return {
            "schema": GRAPH_SCHEMA,
            "functions": [
                {
                    "qname": fn.qname,
                    "path": fn.relpath,
                    "line": fn.line,
                    "async": fn.is_async,
                    "calls": sorted(self.call_edges(fn.qname)),
                }
                for _, fn in sorted(self.functions.items())
            ],
            "modules": {
                relpath: sorted(deps)
                for relpath, deps in sorted(self.module_deps.items())
            },
        }

    def write_graph(self, path: str) -> None:
        """Write :meth:`to_graph_dict` to ``path`` as pretty JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_graph_dict(), fh, indent=2)
            fh.write("\n")


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    """Bare exception names one ``except`` clause covers."""
    t = handler.type
    if t is None:
        return {"BaseException"}
    nodes = t.elts if isinstance(t, ast.Tuple) else [t]
    return {
        (_name_of(n) or "").split(".")[-1]
        for n in nodes
        if _name_of(n) is not None
    }
