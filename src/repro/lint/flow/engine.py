"""The flow-tier dispatcher: project-scoped rules over one build.

A :class:`FlowRule` is the interprocedural sibling of
:class:`repro.lint.engine.Rule`: same id/severity/zones/rationale
surface (so ``--list-rules``, ``--select`` and the baseline treat both
tiers uniformly), but ``check_project`` sees the whole
:class:`~repro.lint.flow.project.Project` instead of one file.
Findings reuse the file tier's :class:`Finding` dataclass, so ``noqa``
suppression, fingerprint-based baselining, and every renderer compose
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Iterable, Iterator

from repro.lint.config import LintConfig
from repro.lint.engine import Finding, Rule
from repro.lint.flow.project import Project

__all__ = [
    "FlowRule",
    "FlowEngine",
    "register_flow",
    "all_flow_rules",
]


class FlowRule(Rule):
    """Base class for interprocedural rules (F1..)."""

    #: report tier tag ("file" rules inherit Rule's default)
    tier: str = "flow"

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Finding]:  # pragma: no cover - abstract
        """Yield every violation over the whole program model."""
        raise NotImplementedError

    def finding_at(
        self, project: Project, relpath: str, line: int, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored in one project file."""
        ctx = project.files.get(relpath)
        return Finding(
            rule=self.id,
            path=relpath,
            line=line,
            col=0,
            message=message,
            snippet=ctx.snippet_at(line) if ctx is not None else "",
            severity=self.severity,
        )


_FLOW_REGISTRY: dict[str, FlowRule] = {}


def register_flow(cls: type[FlowRule]) -> type[FlowRule]:
    """Class decorator adding a flow rule to the flow registry."""
    if not cls.id:
        raise ValueError(f"flow rule {cls.__name__} has no id")
    if cls.id in _FLOW_REGISTRY:
        raise ValueError(f"duplicate flow rule id {cls.id}")
    _FLOW_REGISTRY[cls.id] = cls()
    return cls


def all_flow_rules() -> list[FlowRule]:
    """Registered flow rules in id order."""
    return [_FLOW_REGISTRY[k] for k in sorted(_FLOW_REGISTRY)]


@dataclass
class FlowEngine:
    """Build the project model once, dispatch every enabled flow rule."""

    config: LintConfig = dc_field(default_factory=LintConfig)

    def active_rules(self) -> list[FlowRule]:
        """Flow rules surviving the select/ignore configuration."""
        return [
            r for r in all_flow_rules() if self.config.rule_enabled(r.id)
        ]

    def run(self, paths: Iterable[str]) -> list[Finding]:
        """Analyze files/trees and return findings sorted by location."""
        return self.run_with_project(paths)[0]

    def run_with_project(
        self, paths: Iterable[str]
    ) -> tuple[list[Finding], Project]:
        """Like :meth:`run`, also returning the built project (for the
        ``--graph-out`` CI artifact)."""
        project, findings = Project.build(list(paths))
        for rule in self.active_rules():
            for f in rule.check_project(project, self.config):
                ctx = project.files.get(f.path)
                if ctx is not None and ctx.suppressed(f.rule, f.line):
                    continue
                findings.append(f)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings, project
