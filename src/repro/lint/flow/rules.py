"""The interprocedural ruleset F1-F4.

Each rule audits an invariant no single file can witness:

| id | name | invariant |
|----|------|-----------|
| F1 | await-atomicity     | a guard tested before ``await`` must be re-validated before acting on it |
| F2 | determinism-taint   | nondeterminism sources must not flow through call edges into deterministic zones |
| F3 | loss-typestate      | every QuorumLostError/RequestLost path ends in a handler, the STATUS_LOST mapping, or a docstring declaration |
| F4 | engine-parity       | the surface shared by both round-loop executors stays exact-integer and order-stable |

Rules are registered on import via
:func:`repro.lint.flow.engine.register_flow`; importing this module
populates the flow registry.  See DESIGN.md §3a for the mapping back to
the paper's theorems.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.config import (
    ASYNC_ATOMICITY_ZONES,
    DETERMINISTIC_ZONES,
    ENGINE_ARITHMETIC_ZONES,
    LOSS_BOUNDARY_ZONES,
    LOSS_SIGNALS,
    PARITY_EXEMPT_ZONES,
    PARITY_ROOTS,
    LintConfig,
    in_zone,
)
from repro.lint.engine import Finding
from repro.lint.flow.engine import FlowRule, register_flow
from repro.lint.flow.project import FunctionInfo, Project
from repro.lint.rules import SetIterationRule, UnseededRandomnessRule

__all__ = [
    "AwaitAtomicityRule",
    "DeterminismTaintRule",
    "LossTypestateRule",
    "EngineParityRule",
]


def _self_attrs(expr: ast.expr) -> set[str]:
    """Attribute names read directly off ``self`` anywhere in ``expr``."""
    out: set[str] = set()
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            out.add(node.attr)
    return out


def _expr_suspends(expr: ast.expr) -> bool:
    """True when evaluating ``expr`` can suspend the coroutine."""
    return any(
        isinstance(n, (ast.Await, ast.Yield, ast.YieldFrom))
        for n in ast.walk(expr)
    )


# ---------------------------------------------------------------------------
# F1 -- await atomicity


@register_flow
class AwaitAtomicityRule(FlowRule):
    """F1: in async service code, a shared ``self`` attribute that was
    *guard-tested* before an ``await`` and is *written* after it without
    re-validation is a check-then-act race: any other task may run -- and
    mutate the object -- across the suspension point.  The asyncio
    analogue of a lock-set detector: the "lock" held between check and
    act is the scheduler slice, and every ``await`` releases it.

    Re-reading the attribute in a test between the await and the write
    (``if self._task is not task: return``) counts as re-validation and
    clears the hazard; writes that happen before any await are atomic
    with their guard and never flagged.
    """

    id = "F1"
    name = "await-atomicity"
    severity = "error"
    zones = ASYNC_ATOMICITY_ZONES
    rationale = (
        "a guard tested before an await proves nothing after it; "
        "re-validate shared state across suspension points"
    )

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag unrevalidated guard->await->write sequences."""
        zones = config.zones_for(self.id, self.zones)
        for qname in sorted(project.functions):
            fn = project.functions[qname]
            if not fn.is_async or not in_zone(fn.relpath, zones):
                continue
            events: list[tuple[str, str | None, int]] = []
            self._events(fn.node.body, events)
            yield from self._scan(project, fn, events)

    def _scan(
        self,
        project: Project,
        fn: FunctionInfo,
        events: list[tuple[str, str | None, int]],
    ) -> Iterator[Finding]:
        tested: dict[str, tuple[int, int]] = {}  # attr -> (idx, line)
        last_await: tuple[int, int] | None = None
        for idx, (kind, attr, line) in enumerate(events):
            if kind == "test" and attr is not None:
                tested[attr] = (idx, line)
            elif kind == "await":
                last_await = (idx, line)
            elif (
                kind == "write"
                and attr is not None
                and last_await is not None
                and attr in tested
                and tested[attr][0] < last_await[0]
            ):
                yield self.finding_at(
                    project, fn.relpath, line,
                    f"'self.{attr}' was guard-tested at line "
                    f"{tested[attr][1]} but {fn.name}() awaited at line "
                    f"{last_await[1]} before this write; re-validate "
                    f"'self.{attr}' after the await (another task may "
                    "have changed it across the suspension)",
                )

    def _events(
        self,
        body: list[ast.stmt],
        out: list[tuple[str, str | None, int]],
    ) -> None:
        """Linearize guard-test / await / shared-write events in source
        order (nested defs are their own coroutine scope and skipped)."""
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, (ast.If, ast.While)):
                self._expr_events(stmt.test, out, is_test=True)
                self._events(stmt.body, out)
                self._events(stmt.orelse, out)
            elif isinstance(stmt, ast.Assert):
                self._expr_events(stmt.test, out, is_test=True)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._expr_events(stmt.iter, out, is_test=False)
                if isinstance(stmt, ast.AsyncFor):
                    out.append(("await", None, stmt.lineno))
                self._events(stmt.body, out)
                self._events(stmt.orelse, out)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._expr_events(item.context_expr, out, is_test=False)
                if isinstance(stmt, ast.AsyncWith):
                    out.append(("await", None, stmt.lineno))
                self._events(stmt.body, out)
            elif isinstance(stmt, ast.Try):
                self._events(stmt.body, out)
                for h in stmt.handlers:
                    self._events(h.body, out)
                self._events(stmt.orelse, out)
                self._events(stmt.finalbody, out)
            else:
                # simple statement: expression events first (the value
                # is evaluated before the store), then writes
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self._expr_events(child, out, is_test=False)
                if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        stmt.targets
                        if isinstance(stmt, ast.Assign)
                        else [stmt.target]
                    )
                    for tgt in targets:
                        elts = (
                            tgt.elts
                            if isinstance(tgt, (ast.Tuple, ast.List))
                            else [tgt]
                        )
                        for t in elts:
                            if (
                                isinstance(t, ast.Attribute)
                                and isinstance(t.value, ast.Name)
                                and t.value.id == "self"
                            ):
                                out.append(("write", t.attr, stmt.lineno))

    @staticmethod
    def _expr_events(
        expr: ast.expr,
        out: list[tuple[str, str | None, int]],
        is_test: bool,
    ) -> None:
        if is_test:
            for attr in sorted(_self_attrs(expr)):
                out.append(("test", attr, expr.lineno))
        if _expr_suspends(expr):
            out.append(("await", None, expr.lineno))


# ---------------------------------------------------------------------------
# F2 -- interprocedural determinism taint


@register_flow
class DeterminismTaintRule(FlowRule):
    """F2: the interprocedural closure of D2.  A function that draws
    unseeded randomness or reads the wall clock is legal in the
    workload/fault packages (D2 relaxes function-scope draws there) --
    but only as long as nothing in a deterministic zone calls it.  This
    rule walks the call graph to close that laundering hole, and adds
    ``os.environ`` reads as a source D2 does not track: the process
    environment is external input, so a deterministic-zone read of it
    splits behaviour between hosts.

    Sources inside deterministic zones that D2 already flags per-file
    (unseeded draws, wall clock) are *not* duplicated here; F2 reports
    only what the file tier cannot see.
    """

    id = "F2"
    name = "determinism-taint"
    severity = "error"
    zones = DETERMINISTIC_ZONES
    rationale = (
        "randomness laundered through a helper call is still "
        "randomness; taint flows along call edges into the protocol"
    )

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag nondeterminism sources reachable from deterministic
        zones through the call graph."""
        det_zones = config.zones_for(self.id, self.zones)
        d2 = UnseededRandomnessRule()
        maps_cache: dict[str, dict] = {}
        for qname in sorted(project.functions):
            fn = project.functions[qname]
            ctx = project.files.get(fn.relpath)
            if ctx is None:
                continue
            maps = maps_cache.get(fn.relpath)
            if maps is None:
                maps = maps_cache[fn.relpath] = d2.alias_maps(ctx.tree)
            fn_in_det = in_zone(fn.relpath, det_zones)
            for line, desc, kind in self._sources(fn, maps, ctx):
                if kind == "rng" and fn_in_det:
                    continue  # the per-file D2 rule's jurisdiction
                if fn_in_det:
                    yield self.finding_at(
                        project, fn.relpath, line,
                        f"{desc} inside a deterministic zone; resolve it "
                        "once at a construction-time boundary and pass "
                        "the value in",
                    )
                    continue
                chain = project.shortest_caller_chain(
                    qname,
                    lambda q: in_zone(
                        project.functions[q].relpath, det_zones
                    ),
                )
                if chain is None:
                    continue  # never called from a deterministic zone
                yield self.finding_at(
                    project, fn.relpath, line,
                    f"{desc}, and {fn.name}() is reachable from the "
                    f"deterministic zone: {' -> '.join(chain)}; thread "
                    "an explicit seed/value through the call chain",
                )

    @staticmethod
    def _sources(
        fn: FunctionInfo, maps: dict, ctx
    ) -> list[tuple[int, str, str]]:
        """(line, description, kind) nondeterminism sources in ``fn``."""
        d2 = UnseededRandomnessRule()
        os_aliases: set[str] = maps["os"]
        environ_bases = {f"{a}.environ" for a in os_aliases} | {"environ"}
        getenv_names = {f"{a}.getenv" for a in os_aliases} | {"getenv"}
        out: list[tuple[int, str, str]] = []
        seen: set[int] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                msg = d2.classify_call(node, maps)
                if msg is not None and node.lineno not in seen:
                    seen.add(node.lineno)
                    out.append((node.lineno, msg, "rng"))
                    continue
                name = _dotted(node.func)
                if name in getenv_names or (
                    name is not None
                    and name.rpartition(".")[0] in environ_bases
                ):
                    if node.lineno not in seen:
                        seen.add(node.lineno)
                        out.append((
                            node.lineno,
                            "reads the process environment "
                            "(os.environ/getenv)",
                            "env",
                        ))
            elif isinstance(node, ast.Subscript):
                name = _dotted(node.value)
                if name in environ_bases and node.lineno not in seen:
                    seen.add(node.lineno)
                    out.append((
                        node.lineno,
                        "reads the process environment (os.environ)",
                        "env",
                    ))
        out.sort()
        return out


def _dotted(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


# ---------------------------------------------------------------------------
# F3 -- loss-signal typestate


@register_flow
class LossTypestateRule(FlowRule):
    """F3: the interprocedural closure of D6.  ``QuorumLostError`` is a
    machine fact (a shard lost its write/read majority); the service
    maps it to ``STATUS_LOST``/:class:`RequestLost` so clients see a
    *retriable* error, never a silent wrong answer.  This rule computes
    the transitive may-raise set of every function (masking call sites
    covered by a matching ``except``, including through the project's
    exception hierarchy) and requires each public service-boundary
    function either to handle the signal or to declare it ("Raises
    QuorumLostError") in its docstring.
    """

    id = "F3"
    name = "loss-typestate"
    severity = "error"
    zones = LOSS_BOUNDARY_ZONES
    rationale = (
        "every quorum-loss path must end in a handler, the STATUS_LOST "
        "mapping, or a documented raise -- never an accidental escape"
    )

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag undeclared loss-signal escapes at zone boundaries."""
        zones = config.zones_for(self.id, self.zones)
        tracked = set(LOSS_SIGNALS)
        escapes = self._escape_sets(project, tracked)
        for qname in sorted(project.functions):
            fn = project.functions[qname]
            if not in_zone(fn.relpath, zones) or not fn.is_public:
                continue
            if fn.cls is not None and fn.cls.startswith("_"):
                continue
            for exc in sorted(escapes.get(qname, {})):
                if exc in fn.docstring:
                    continue  # declared raiser: callers are on notice
                root, entry = escapes[qname][exc]
                via = f" (enters via {entry})" if entry else ""
                yield self.finding_at(
                    project, fn.relpath, fn.line,
                    f"{exc} can escape {fn.name}() unhandled and "
                    f"undeclared: {root}{via}; catch it, map it to "
                    f"STATUS_LOST, or declare 'Raises {exc}' in the "
                    "docstring",
                )

    @staticmethod
    def _covered(
        project: Project, exc: str, handled: frozenset[str]
    ) -> bool:
        if not handled:
            return False
        names = (
            {exc, "Exception", "BaseException"}
            | project.exception_ancestors(exc)
        )
        return bool(handled & names)

    def _escape_sets(
        self, project: Project, tracked: set[str]
    ) -> dict[str, dict[str, tuple[str, str]]]:
        """qname -> {exc -> (raise-site text, boundary entry text)}."""
        esc: dict[str, dict[str, tuple[str, str]]] = {
            q: {} for q in project.functions
        }
        for qname, fn in project.functions.items():
            for r in fn.raises:
                if r.exc in tracked and not self._covered(
                    project, r.exc, r.handled
                ):
                    esc[qname].setdefault(
                        r.exc, (f"raised at {fn.relpath}:{r.line}", "")
                    )
        changed = True
        while changed:
            changed = False
            for qname in sorted(project.functions):
                fn = project.functions[qname]
                for site in fn.calls:
                    if site.callee is None or site.callee == qname:
                        continue
                    for exc, (root, _entry) in esc.get(
                        site.callee, {}
                    ).items():
                        if exc in esc[qname]:
                            continue
                        if self._covered(project, exc, site.handled):
                            continue
                        esc[qname][exc] = (
                            root,
                            f"{site.text}() at {fn.relpath}:{site.line}",
                        )
                        changed = True
        return esc


# ---------------------------------------------------------------------------
# F4 -- engine-parity surface


@register_flow
class EngineParityRule(FlowRule):
    """F4: the scalar oracle and the vectorized executor are pinned
    op-for-op by the differential harness, which only holds if every
    function *both* engines reach stays exact-integer and
    order-insensitive.  Float arithmetic on that shared surface can
    round differently between a python scalar and a numpy array path;
    set iteration can reorder between runs.  The executor files
    themselves and instrumentation sinks (stats sketches, the obs
    layer) are exempt -- their float math never feeds simulation state.
    """

    id = "F4"
    name = "engine-parity"
    severity = "error"
    zones = ENGINE_ARITHMETIC_ZONES
    rationale = (
        "code shared by the scalar and vector engines must stay exact "
        "and order-stable or the executors can silently diverge"
    )

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag float/order-sensitive ops on the shared engine surface."""
        roots = config.parity_roots or PARITY_ROOTS
        present = [r for r in roots if r in project.functions]
        if len(present) < 2:
            return  # no dual-engine surface in this tree
        per_root = [project.reachable_from([r]) for r in present]
        shared = set.intersection(*per_root)
        exempt = ENGINE_ARITHMETIC_ZONES + PARITY_EXEMPT_ZONES
        root_names = " and ".join(
            r.rsplit("::", 1)[1] for r in present
        )
        d1_cache: dict[str, list[Finding]] = {}
        for qname in sorted(shared):
            fn = project.functions[qname]
            if in_zone(fn.relpath, exempt):
                continue
            for line, desc in self._dirty_ops(project, fn, d1_cache):
                yield self.finding_at(
                    project, fn.relpath, line,
                    f"{desc} in {fn.name}(), which both engine roots "
                    f"({root_names}) reach; keep the shared surface "
                    "exact-integer and order-stable, or exempt the "
                    "module explicitly",
                )

    @staticmethod
    def _dirty_ops(
        project: Project,
        fn: FunctionInfo,
        d1_cache: dict[str, list[Finding]],
    ) -> list[tuple[int, str]]:
        """Float arithmetic + order-sensitive iteration inside ``fn``."""
        out: list[tuple[int, str]] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                out.append((node.lineno, "true division (float result)"))
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Div
            ):
                out.append((node.lineno, "/= (float result)"))
            elif isinstance(node, ast.Constant) and isinstance(
                node.value, float
            ):
                out.append((node.lineno, f"float literal {node.value!r}"))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
            ):
                out.append((node.lineno, "float() conversion"))
        # order-sensitive set iteration: reuse the D1 detector on the
        # containing file, filtered to this function's span
        if fn.relpath not in d1_cache:
            ctx = project.files.get(fn.relpath)
            d1_cache[fn.relpath] = (
                list(SetIterationRule().check(ctx)) if ctx else []
            )
        end = getattr(fn.node, "end_lineno", fn.node.lineno) or fn.node.lineno
        for f in d1_cache[fn.relpath]:
            if fn.node.lineno <= f.line <= end:
                out.append((f.line, "order-sensitive set iteration"))
        return sorted(set(out))
