"""Exponent fitting: does a measured series grow like x^alpha?

The paper's claims are asymptotic shapes (N^{1/3}, |S|^{2/3}, (M/N)^{1/r});
the experiment harness fits log-log slopes to the measured series and
reports them next to the predicted exponents.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "fit_power_law",
    "fit_exponent_pairs",
    "fit_envelope_constant",
    "geometric_sizes",
]


def fit_power_law(
    xs: Sequence[float] | np.ndarray, ys: Sequence[float] | np.ndarray
) -> tuple[float, float]:
    """Least-squares fit of ``y = a * x^alpha``; returns ``(alpha, a)``.

    Zero/negative entries are rejected (they have no log), as are
    NaN/inf entries (``np.polyfit`` would silently return NaN
    coefficients instead of failing).
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.size < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    if not (np.all(np.isfinite(xs)) and np.all(np.isfinite(ys))):
        raise ValueError("power-law fit requires finite data")
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise ValueError("power-law fit requires positive data")
    lx, ly = np.log(xs), np.log(ys)
    alpha, loga = np.polyfit(lx, ly, 1)
    return float(alpha), float(math.exp(loga))


def fit_exponent_pairs(
    xs: Sequence[float] | np.ndarray, ys: Sequence[float] | np.ndarray
) -> list[float]:
    """Pairwise log-log slopes between consecutive points -- a quick look
    at whether the exponent has stabilized along the sweep."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    out = []
    for i in range(1, xs.size):
        out.append(float(math.log(ys[i] / ys[i - 1]) / math.log(xs[i] / xs[i - 1])))
    return out


def fit_envelope_constant(
    shapes: Sequence[float] | np.ndarray,
    measured: Sequence[float] | np.ndarray,
    slack: float = 1.25,
) -> float:
    """Fit the constant ``c`` of an envelope ``measured <= c * shape``.

    Given a calibration series of closed-form shape values (e.g.
    ``phi_bound(N')`` per sweep point) and the matching measured counts,
    the tightest admissible constant is the largest measured/shape
    ratio; ``slack`` (> 1) widens it so that an independent check run
    with a different seed does not trip the bound on ordinary
    run-to-run variation.  Theorem envelopes hide constants -- fitting
    them once per scheme is the only way to turn ``O(.)`` into a
    checkable number.

    A single calibration point is accepted (a constant needs one
    ratio); empty or non-finite series are rejected so a broken
    calibration sweep cannot silently fit ``c = NaN`` and vacuously
    pass every later check.
    """
    shapes = np.asarray(shapes, dtype=float)
    measured = np.asarray(measured, dtype=float)
    if shapes.shape != measured.shape or shapes.size == 0:
        raise ValueError("need >= 1 (shape, measured) pair of equal length")
    if not (np.all(np.isfinite(shapes)) and np.all(np.isfinite(measured))):
        raise ValueError("envelope fit requires finite data")
    if np.any(shapes <= 0) or np.any(measured < 0):
        raise ValueError("envelope fit requires positive shapes, measured >= 0")
    if slack < 1.0:
        raise ValueError("slack must be >= 1")
    return float(np.max(measured / shapes) * slack)


def geometric_sizes(lo: int, hi: int, points: int) -> list[int]:
    """``points`` roughly geometrically spaced distinct integers in
    [lo, hi] (inclusive), for sweep definitions."""
    if lo < 1 or hi < lo or points < 1:
        raise ValueError("need 1 <= lo <= hi and points >= 1")
    if points == 1:
        return [hi]
    ratio = (hi / lo) ** (1.0 / (points - 1))
    raw = [lo * ratio**i for i in range(points)]
    out: list[int] = []
    for v in raw:
        iv = max(lo, min(hi, int(round(v))))
        if not out or iv > out[-1]:
            out.append(iv)
    return out
