"""Exponent fitting: does a measured series grow like x^alpha?

The paper's claims are asymptotic shapes (N^{1/3}, |S|^{2/3}, (M/N)^{1/r});
the experiment harness fits log-log slopes to the measured series and
reports them next to the predicted exponents.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["fit_power_law", "fit_exponent_pairs", "geometric_sizes"]


def fit_power_law(xs, ys) -> tuple[float, float]:
    """Least-squares fit of ``y = a * x^alpha``; returns ``(alpha, a)``.

    Zero/negative entries are rejected (they have no log).
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.size < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise ValueError("power-law fit requires positive data")
    lx, ly = np.log(xs), np.log(ys)
    alpha, loga = np.polyfit(lx, ly, 1)
    return float(alpha), float(math.exp(loga))


def fit_exponent_pairs(xs, ys) -> list[float]:
    """Pairwise log-log slopes between consecutive points -- a quick look
    at whether the exponent has stabilized along the sweep."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    out = []
    for i in range(1, xs.size):
        out.append(float(math.log(ys[i] / ys[i - 1]) / math.log(xs[i] / xs[i - 1])))
    return out


def geometric_sizes(lo: int, hi: int, points: int) -> list[int]:
    """``points`` roughly geometrically spaced distinct integers in
    [lo, hi] (inclusive), for sweep definitions."""
    if lo < 1 or hi < lo or points < 1:
        raise ValueError("need 1 <= lo <= hi and points >= 1")
    if points == 1:
        return [hi]
    ratio = (hi / lo) ** (1.0 / (points - 1))
    raw = [lo * ratio**i for i in range(points)]
    out: list[int] = []
    for v in raw:
        iv = max(lo, min(hi, int(round(v))))
        if not out or iv > out[-1]:
            out.append(iv)
    return out
