"""Plain-text table rendering for experiment output.

Every bench prints its rows through :class:`Table` so EXPERIMENTS.md and
the console share one format (GitHub-flavoured markdown pipes).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["Table", "format_float", "ascii_histogram", "sparkline"]


def format_float(x: float | bool | None, digits: int = 3) -> str:
    """Compact numeric formatting: ints stay ints, floats get ``digits``
    significant decimals, None becomes '-'."""
    if x is None:
        return "-"
    if isinstance(x, bool):
        return str(x)
    if isinstance(x, int):
        return str(x)
    if isinstance(x, float):
        if x == int(x) and abs(x) < 1e15:
            return str(int(x))
        return f"{x:.{digits}g}"
    return str(x)


class Table:
    """A markdown table accumulated row by row.

    >>> t = Table(["N", "Phi"], title="demo")
    >>> t.add_row([63, 4])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    ### demo
    | N | Phi |
    |---|---|
    | 63 | 4 |
    """

    def __init__(self, columns: Sequence[str], title: str | None = None):
        self.columns = list(columns)
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable) -> None:
        """Append one row (values are formatted immediately)."""
        row = [format_float(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """The table as GitHub-flavoured markdown."""
        lines = []
        if self.title:
            lines.append(f"### {self.title}")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def print(self) -> None:
        """Render to stdout."""
        print(self.render())

    def to_csv(self) -> str:
        """The table as RFC-4180-ish CSV (commas/quotes escaped)."""

        def cell(s: str) -> str:
            if any(ch in s for ch in ',"\n'):
                return '"' + s.replace('"', '""') + '"'
            return s

        lines = [",".join(cell(c) for c in self.columns)]
        for row in self.rows:
            lines.append(",".join(cell(c) for c in row))
        return "\n".join(lines) + "\n"

    def save_csv(self, path: str) -> None:
        """Write :meth:`to_csv` output to a file."""
        with open(path, "w") as fh:
            fh.write(self.to_csv())


_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Iterable[float]) -> str:
    """A one-line unicode sparkline of a numeric series (empty-safe)."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span == 0:
        return _BLOCKS[4] * len(vals)
    out = []
    for v in vals:
        idx = 1 + int((v - lo) / span * (len(_BLOCKS) - 2))
        out.append(_BLOCKS[min(idx, len(_BLOCKS) - 1)])
    return "".join(out)


def ascii_histogram(
    values: Iterable[float], bins: int = 10, width: int = 40
) -> str:
    """A multi-line ASCII histogram of a numeric sample.

    Each row: ``[lo, hi) count  ####...``; bar lengths normalized to
    ``width`` characters.
    """
    import numpy as np

    vals = np.asarray(list(values), dtype=float)
    if vals.size == 0:
        return "(empty)"
    counts, edges = np.histogram(vals, bins=bins)
    peak = max(1, counts.max())
    lines = []
    for i, c in enumerate(counts):
        bar = "#" * max(0, round(width * c / peak))
        lines.append(
            f"[{format_float(float(edges[i]))}, "
            f"{format_float(float(edges[i + 1]))})  {c:>7}  {bar}"
        )
    return "\n".join(lines)
