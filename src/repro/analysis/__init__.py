"""Measurement analysis and report formatting for the experiment harness."""

from repro.analysis.fitting import fit_power_law, fit_exponent_pairs, geometric_sizes
from repro.analysis.report import Table, format_float

__all__ = [
    "fit_power_law",
    "fit_exponent_pairs",
    "geometric_sizes",
    "Table",
    "format_float",
]
