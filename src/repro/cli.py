"""Command-line interface: inspect schemes and run accesses from a shell.

Subcommands
-----------
``info``      structural parameters of a (q, n) instance;
``locate``    physical (module, slot) addresses of variables;
``access``    run a protocol batch over a generated workload and report
              the cost (``--trace-out FILE`` records a JSONL trace);
``sweep``     Phi vs N across n, the Theorem-6 series;
``expansion`` measure |Gamma(S)| vs the Theorem-4 bound;
``metrics``   run a batch with metrics collection on and print the JSON
              snapshot of the registry;
``profile``   cProfile the protocol hot path;
``perf``      the performance trajectory (:mod:`repro.obs.perf`):
              ``record`` runs the quick bench suite and writes a
              ``BENCH_*.json`` run record, ``report`` renders the trend
              dashboard, ``check`` gates on regressions vs the rolling
              baseline (non-zero exit when a hot path got slower);
``faults``    fault-injection campaigns (:mod:`repro.faults.campaign`):
              ``campaign`` sweeps the fault models and the q/2 threshold
              ladders and writes ``faults_campaign.{md,json}`` (non-zero
              exit on any semantic violation below the threshold),
              ``report`` re-renders a stored campaign;
``conform``   trace-based conformance (:mod:`repro.conformance`):
              ``fuzz`` replays one seeded workload through every scheme
              plus a serial dict oracle, checks every recorded trace,
              runs the stale-majority canary, and writes
              ``conformance_fuzz.{md,json}`` (non-zero exit on any
              violation or a blind canary), ``check`` runs the
              consistency checker over stored JSONL traces, ``report``
              re-renders a stored fuzz report;
``watch``     live watchdog (:mod:`repro.conformance.streaming`):
              ``fuzz`` runs a workload with the online windowed checker
              and health telemetry attached to the event bus, printing
              rolling snapshots and writing ``watch_fuzz.json``
              (non-zero exit on violations, dropped events, or a busted
              ``--state-budget`` / ``--rss-budget-mb``), ``attack``
              runs the stale-majority online canary, which must flag
              the q/2+1 rollback *mid-run* and stay silent on the
              <= q/2 control, writing ``watch_attack.json``;
``lint``      determinism static analysis (:mod:`repro.lint`): runs the
              D1-D6 AST ruleset over ``src/repro`` against the
              committed ``.lint-baseline.json`` (non-zero exit on any
              new finding or stale baseline entry); ``--format
              json|md`` for machine/report output, ``--list-rules``
              for the rule table;
``serve``     served mode (:mod:`repro.service`): run the asyncio KV
              front end with a fleet of concurrent client-session
              coroutines on the deterministic virtual-clock loop,
              live watchdog attached; prints tail latency and health
              (non-zero exit on conformance violations or drops);
``load``      closed-loop load generator (:mod:`repro.service.loadgen`):
              drive millions of simulated clients against the sharded
              service core in one closed loop, with seeded key mixes
              (``uniform``/``zipf``/``hotkey``), optional fault
              injection (``--fault crash|stale``), the degraded-mode
              admissibility oracle, and ``BENCH_*.json`` tail-latency
              output via ``--bench-out``.

Examples::

    python -m repro info -q 2 -n 5
    python -m repro locate -q 2 -n 5 0 17 4242
    python -m repro access -q 2 -n 7 --count 4096 --workload strided --op count
    python -m repro access -q 2 -n 5 --count 512 --trace-out trace.jsonl
    python -m repro metrics -q 2 -n 5 --count 512
    python -m repro profile -n 7 --count 10000 --sort tottime
    python -m repro sweep --max-n 7
    python -m repro expansion -q 2 -n 5 --sizes 16 64 256
    python -m repro perf record --repeats 3
    python -m repro perf report
    python -m repro perf check --window 5 --ratio 0.25
    python -m repro faults campaign --qs 2 4 8 --seed 0
    python -m repro faults report
    python -m repro conform fuzz --seed 0 --ops 2000
    python -m repro conform check trace.jsonl
    python -m repro conform report
    python -m repro watch fuzz --ops 100000 --scheme pp2 --state-budget 200000
    python -m repro watch attack --seed 0
    python -m repro serve --clients 200 --ops-per-client 4 --seed 0
    python -m repro load --clients 1000000 --mix zipf --bench-out .
    python -m repro load --clients 100000 --fault stale --oracle
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.analysis.report import Table
from repro.core.bounds import expansion_lower_bound, phi_bound
from repro.core.scheme import PPScheme

__all__ = ["main", "build_parser"]

#: mirror of :data:`repro.conformance.streaming.SCHEME_KEYS` -- kept as a
#: literal so building the parser does not import the conformance stack
_WATCH_SCHEMES = ("single", "mv", "uw", "grid", "pp2", "pp4")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and docs generation)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Pietracaprina-Preparata deterministic shared-memory scheme",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def add_qn(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("-q", type=int, default=2, help="copies = q+1 (power of 2)")
        sp.add_argument("-n", type=int, default=5, help="extension degree (>= 3)")

    sp = sub.add_parser("info", help="structural parameters")
    add_qn(sp)

    sp = sub.add_parser("locate", help="physical copy addresses")
    add_qn(sp)
    sp.add_argument("indices", type=int, nargs="+", help="variable indices")

    def add_batch(sp: argparse.ArgumentParser) -> None:
        add_qn(sp)
        sp.add_argument("--count", type=int, default=1024,
                        help="distinct requests")
        sp.add_argument(
            "--workload",
            choices=["uniform", "strided", "hotspot", "neighborhood"],
            default="uniform",
        )
        sp.add_argument("--op", choices=["count", "read", "write"],
                        default="count")
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--arbitration",
                        choices=["lowest", "random", "rotating"],
                        default="lowest")

    sp = sub.add_parser("access", help="run one protocol batch")
    add_batch(sp)
    sp.add_argument("--trace-out", metavar="FILE", default=None,
                    help="record a JSONL trace of the run to FILE")

    sp = sub.add_parser(
        "metrics",
        help="run one protocol batch with metrics on; print JSON snapshot",
    )
    add_batch(sp)

    sp = sub.add_parser("profile", help="cProfile the protocol hot path")
    sp.add_argument("-n", type=int, default=9, help="extension degree")
    sp.add_argument("--count", type=int, default=100_000,
                    help="max distinct requests")
    sp.add_argument("--sort", choices=["cumulative", "tottime"],
                    default="cumulative", help="pstats sort key")
    sp.add_argument("--limit", type=int, default=15,
                    help="stats entries to print")
    sp.add_argument("--engine", choices=["vector", "scalar"],
                    default="vector", help="protocol engine to profile")

    sp = sub.add_parser("sweep", help="Phi vs N (Theorem 6 series)")
    sp.add_argument("--max-n", type=int, default=7, help="largest n (odd, >= 3)")
    sp.add_argument("--seed", type=int, default=0)

    sp = sub.add_parser("expansion", help="|Gamma(S)| vs Theorem-4 bound")
    add_qn(sp)
    sp.add_argument("--sizes", type=int, nargs="+", default=[16, 64, 256])
    sp.add_argument("--trials", type=int, default=3)
    sp.add_argument("--seed", type=int, default=0)

    sp = sub.add_parser(
        "perf", help="benchmark telemetry: record / report / check"
    )
    psub = sp.add_subparsers(dest="verb", required=True)

    def add_store(vp):
        vp.add_argument("--dir", default=".", metavar="DIR",
                        help="directory holding the BENCH_*.json records")
        vp.add_argument("--window", type=int, default=5,
                        help="rolling-baseline window (runs)")

    vp = psub.add_parser(
        "record", help="run the quick bench suite, write a BENCH_*.json"
    )
    vp.add_argument("--out", default=".", metavar="DIR",
                    help="directory to write the run record into")
    vp.add_argument("--repeats", type=int, default=3,
                    help="recorded repetitions per timed section")
    vp.add_argument("--engine", choices=["vector", "scalar", "both"],
                    default="vector",
                    help="protocol engine for the protocol sections "
                    "('both' also records the engine-speedup scalar)")

    vp = psub.add_parser(
        "report", help="render the trend dashboard (sparklines per metric)"
    )
    add_store(vp)
    vp.add_argument(
        "--md-out", metavar="FILE",
        default=os.path.join("benchmarks", "results", "perf_dashboard.md"),
        help="markdown dashboard path ('-' to skip writing)",
    )

    vp = psub.add_parser(
        "check", help="regression gate: non-zero exit on a flagged slowdown"
    )
    add_store(vp)
    vp.add_argument("--ratio", type=float, default=0.25,
                    help="relative slowdown tolerated before flagging")
    vp.add_argument("--mad-k", type=float, default=4.0,
                    help="MAD multiples of baseline noise tolerated")
    vp.add_argument("--soft", action="store_true",
                    help="report regressions but exit 0 (CI bootstrap)")

    sp = sub.add_parser(
        "faults", help="fault-injection campaigns: campaign / report"
    )
    fsub = sp.add_subparsers(dest="verb", required=True)

    vp = fsub.add_parser(
        "campaign",
        help="sweep fault models and the q/2 threshold ladders; "
        "non-zero exit on violations",
    )
    vp.add_argument("--qs", type=int, nargs="+", default=[2, 4, 8],
                    help="quorum degrees q to test (even)")
    vp.add_argument("--intensities", type=float, nargs="+",
                    default=[0.0, 0.05, 0.15],
                    help="fault intensities for the model sweep")
    vp.add_argument("--models", nargs="+", default=None,
                    metavar="NAME", help="fault models (default: all)")
    vp.add_argument("--victims", type=int, default=12,
                    help="disjoint victims per threshold rung")
    vp.add_argument("--requests", type=int, default=None,
                    help="batch size (default: scheme-sized)")
    vp.add_argument("--seed", type=int, default=0)
    vp.add_argument(
        "--out", metavar="DIR",
        default=os.path.join("benchmarks", "results"),
        help="report directory ('-' to skip writing)",
    )

    vp = fsub.add_parser(
        "report", help="re-render a stored campaign report"
    )
    vp.add_argument(
        "--dir", metavar="DIR",
        default=os.path.join("benchmarks", "results"),
        help="directory holding faults_campaign.json",
    )

    sp = sub.add_parser(
        "conform", help="trace-based conformance: fuzz / check / report"
    )
    csub = sp.add_subparsers(dest="verb", required=True)

    vp = csub.add_parser(
        "fuzz",
        help="differential fuzz all schemes vs a serial oracle; "
        "non-zero exit on violations",
    )
    vp.add_argument("--seed", type=int, default=0)
    vp.add_argument("--ops", type=int, default=2000,
                    help="minimum single operations in the workload")
    vp.add_argument("--max-batch", type=int, default=32,
                    help="largest batch the plan may issue")
    vp.add_argument("--trace-dir", metavar="DIR", default=None,
                    help="also write each scheme's JSONL trace here")
    vp.add_argument("--no-canary", action="store_true",
                    help="skip the stale-majority checker self-test")
    vp.add_argument("--engine", choices=["vector", "scalar"],
                    default="vector",
                    help="protocol engine every scheme runs under")
    vp.add_argument(
        "--out", metavar="DIR",
        default=os.path.join("benchmarks", "results"),
        help="report directory ('-' to skip writing)",
    )

    vp = csub.add_parser(
        "check",
        help="run the consistency checker over stored JSONL trace files",
    )
    vp.add_argument("traces", nargs="+", metavar="FILE",
                    help="JSONL trace files (any tracer's output)")
    vp.add_argument("--max-violations", type=int, default=100,
                    help="violations listed per report before truncating")

    vp = csub.add_parser(
        "report", help="re-render a stored conformance fuzz report"
    )
    vp.add_argument(
        "--dir", metavar="DIR",
        default=os.path.join("benchmarks", "results"),
        help="directory holding conformance_fuzz.json",
    )

    sp = sub.add_parser(
        "watch", help="live watchdog: streaming conformance + health"
    )
    wsub = sp.add_subparsers(dest="verb", required=True)

    vp = wsub.add_parser(
        "fuzz",
        help="run a workload under the online watchdog; non-zero exit "
        "on violations, event drops, or a busted memory budget",
    )
    vp.add_argument("--seed", type=int, default=0)
    vp.add_argument("--ops", type=int, default=2000,
                    help="minimum single operations in the workload")
    vp.add_argument("--scheme", choices=_WATCH_SCHEMES, default="pp2",
                    help="memory scheme under watch")
    vp.add_argument("--window", type=int, default=8,
                    help="rounds the streaming checker keeps open")
    vp.add_argument("--max-batch", type=int, default=32,
                    help="largest batch the plan may issue")
    vp.add_argument("--snapshot-every", type=int, default=50,
                    help="health snapshot cadence, in batches")
    vp.add_argument("--state-budget", type=int, default=None,
                    help="fail if peak checker state exceeds this many "
                    "entries (bounded-memory assertion)")
    vp.add_argument("--rss-budget-mb", type=int, default=None,
                    help="fail if process peak RSS exceeds this many MiB")
    vp.add_argument("--engine", choices=["vector", "scalar"],
                    default="vector", help="protocol engine under watch")
    vp.add_argument(
        "--out", metavar="DIR",
        default=os.path.join("benchmarks", "results"),
        help="directory for watch_fuzz.json ('-' to skip writing)",
    )

    vp = wsub.add_parser(
        "attack",
        help="stale-majority online canary: the watchdog must flag the "
        "q/2+1 attack mid-run and stay silent on the <= q/2 control",
    )
    vp.add_argument("--seed", type=int, default=0)
    vp.add_argument("--victims", type=int, default=3)
    vp.add_argument("--window", type=int, default=8,
                    help="rounds the streaming checker keeps open")
    vp.add_argument("--engine", choices=["vector", "scalar"],
                    default="vector",
                    help="protocol engine the attack runs under")
    vp.add_argument(
        "--out", metavar="DIR",
        default=os.path.join("benchmarks", "results"),
        help="directory for watch_attack.json ('-' to skip writing)",
    )

    sp = sub.add_parser(
        "explain",
        help="theory-vs-measured cost attribution: fit theorem "
        "envelopes, check the scheme suite, render the ledger report",
    )
    sp.add_argument(
        "--check", action="store_true",
        help="exit non-zero on envelope violation, dead attack canary, "
        "or attribution coverage below the floor",
    )
    sp.add_argument("--quick", action="store_true",
                    help="single calibration seed (CI fast path)")
    sp.add_argument("--slack", type=float, default=1.25,
                    help="envelope-fit widening factor")
    sp.add_argument("--coverage-min", type=float, default=0.95,
                    help="attribution coverage floor")
    sp.add_argument(
        "--out", metavar="PATH",
        default=os.path.join("benchmarks", "results", "explain_report.md"),
        help="markdown report path ('-' to skip writing)",
    )

    sp = sub.add_parser("verify", help="run the instance self-checks")
    add_qn(sp)
    sp.add_argument("--level", choices=["quick", "standard", "full"],
                    default="quick")
    sp.add_argument("--seed", type=int, default=0)

    def add_service(sp):
        sp.add_argument("--shards", type=int, default=2,
                        help="worker shards (independent schemes)")
        add_qn(sp)
        sp.add_argument("--round-capacity", type=int, default=1024,
                        help="requests admitted per PRAM round")
        sp.add_argument("--max-pending", type=int, default=4096,
                        help="admission queue depth before backpressure")
        sp.add_argument("--engine", choices=["vector", "scalar"],
                        default="vector", help="protocol engine")
        sp.add_argument("--seed", type=int, default=0)

    sp = sub.add_parser(
        "serve",
        help="run the asyncio KV service with concurrent client "
        "sessions on the deterministic virtual-clock loop",
    )
    add_service(sp)
    sp.add_argument("--clients", type=int, default=100,
                    help="concurrent session coroutines")
    sp.add_argument("--ops-per-client", type=int, default=4,
                    help="requests each session issues")
    sp.add_argument("--keyspace", type=int, default=1024,
                    help="distinct keys the fleet draws from")
    sp.add_argument("--mix", choices=["uniform", "zipf", "hotkey"],
                    default="uniform", help="key popularity mix")
    sp.add_argument("--pipeline-depth", type=int, default=1,
                    help="requests a session may overlap across rounds")
    sp.add_argument("--jitter", type=float, default=0.0,
                    help="seeded virtual-time jitter between a "
                    "session's requests (0 = lockstep rounds; > 0 "
                    "spreads arrivals across rounds)")

    sp = sub.add_parser(
        "load",
        help="closed-loop load generator over the sharded service core; "
        "non-zero exit on health-bar failure",
    )
    add_service(sp)
    sp.add_argument("--clients", type=int, default=100_000,
                    help="simulated closed-loop clients")
    sp.add_argument("--ops-per-client", type=int, default=2,
                    help="requests per client")
    sp.add_argument("--keyspace", type=int, default=65536,
                    help="distinct keys the fleet draws from")
    sp.add_argument("--mix", choices=["uniform", "zipf", "hotkey"],
                    default="uniform", help="key popularity mix")
    sp.add_argument("--get-fraction", type=float, default=0.5,
                    help="fraction of ops that are gets")
    sp.add_argument("--delete-fraction", type=float, default=0.02,
                    help="fraction of ops that are deletes")
    sp.add_argument("--fault", choices=["none", "crash", "stale"],
                    default="none", help="fault timeline to run under")
    sp.add_argument("--crash-rate", type=float, default=0.002,
                    help="per-round module crash probability "
                    "(--fault crash)")
    sp.add_argument("--repair-lag", type=int, default=3,
                    help="rounds a crashed module stays down")
    sp.add_argument("--attack-round", type=int, default=None,
                    help="round to mount the stale-majority attack "
                    "(--fault stale; default: 40%% through the run)")
    sp.add_argument("--victims", type=int, default=3,
                    help="keys the stale attack poisons")
    sp.add_argument("--heal-after", type=int, default=8,
                    help="rounds after detection before healing")
    sp.add_argument("--oracle", action="store_true",
                    help="replay every response through the "
                    "admissibility oracle (degraded-mode bar)")
    sp.add_argument("--bench-out", metavar="DIR", default=None,
                    help="also write a BENCH_*.json run record here")
    sp.add_argument("--json-out", metavar="FILE", default=None,
                    help="write the full load report as JSON")

    sp = sub.add_parser(
        "lint",
        help="determinism static analysis (rules D1-D6); "
        "non-zero exit on new findings",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(sp)
    return p


def _cmd_info(args) -> int:
    s = PPScheme(args.q, args.n)
    t = Table(["parameter", "value"], title=f"PPScheme(q={args.q}, n={args.n})")
    for k, v in s.describe().items():
        t.add_row([k, v])
    t.print()
    return 0


def _cmd_locate(args) -> int:
    s = PPScheme(args.q, args.n)
    t = Table(
        ["variable", "copy", "module", "slot"],
        title=f"physical addresses (N={s.N} modules x {s.module_capacity} slots)",
    )
    for i in args.indices:
        if not 0 <= i < s.M:
            print(f"error: variable {i} out of [0, {s.M})", file=sys.stderr)
            return 2
        for j, (u, k) in enumerate(s.locate(i)):
            t.add_row([i, j, u, k])
    t.print()
    return 0


def _make_workload(s: PPScheme, args) -> np.ndarray:
    from repro.workloads.adversarial import pp_module_neighborhood_set
    from repro.workloads.generators import hotspot_blocks, random_distinct, strided

    if args.workload == "uniform":
        return random_distinct(s.M, args.count, seed=args.seed)
    if args.workload == "strided":
        stride = 7
        while s.M % stride == 0:
            stride += 2
        return strided(s.M, args.count, stride=stride)
    if args.workload == "hotspot":
        return hotspot_blocks(
            s.M, args.count, block=max(64, args.count // 2), n_blocks=4,
            seed=args.seed,
        )
    return pp_module_neighborhood_set(s, args.count)


def _run_batch(args):
    """Build the scheme, generate the workload, and run one batch
    (shared by ``access`` and ``metrics``); returns (scheme, idx, result)
    or an int error code."""
    s = PPScheme(args.q, args.n, arbitration=args.arbitration)
    if args.count > min(s.M, s.N):
        print(
            f"error: count must be <= min(M, N) = {min(s.M, s.N)}", file=sys.stderr
        )
        return 2
    idx = _make_workload(s, args)
    kwargs = {}
    if args.op in ("read", "write"):
        store = s.make_store()
        if args.op == "read":
            s.write(idx, values=idx, store=store, time=1)
        kwargs = {"store": store, "time": 2}
        if args.op == "write":
            kwargs["values"] = idx
    return s, idx, s.access(idx, op=args.op, **kwargs)


def _cmd_access(args) -> int:
    from repro import obs

    tracer = None
    if args.trace_out:
        tracer = obs.RecordingTracer()
        prev = obs.set_tracer(tracer)
    try:
        got = _run_batch(args)
    finally:
        if tracer is not None:
            obs.set_tracer(prev)
    if isinstance(got, int):
        return got
    s, idx, res = got
    if tracer is not None:
        n_events = tracer.write_jsonl(args.trace_out)
        print(f"trace: {n_events} events -> {args.trace_out}", file=sys.stderr)
    t = Table(["metric", "value"], title=f"{args.op} of {len(idx)} variables")
    t.add_row(["phases", len(res.phases)])
    t.add_row(["iterations/phase", str(res.iterations_per_phase)])
    t.add_row(["Phi (max)", res.max_phase_iterations])
    t.add_row(["Theorem-6 shape", round(phi_bound(len(idx), s.q), 1)])
    t.add_row(["total iterations", res.total_iterations])
    t.add_row(["modeled MPC steps", res.modeled_steps(s.N)])
    t.add_row(["copies touched", res.mpc_stats.served])
    t.add_row(["max module congestion", res.mpc_stats.max_congestion])
    t.print()
    return 0


def _cmd_metrics(args) -> int:
    """Run one batch with metrics collection on; print the JSON snapshot
    (only JSON goes to stdout, so the output is pipeable)."""
    from repro import obs

    was_on = obs.metrics_enabled()
    obs.enable_metrics()
    obs.metrics().reset()
    try:
        got = _run_batch(args)
    finally:
        if not was_on:
            obs.disable_metrics()
    if isinstance(got, int):
        return got
    print(obs.metrics().to_json())
    return 0


def _cmd_profile(args) -> int:
    from repro.obs.profiling import profile_access

    profile_access(
        n=args.n, count=args.count, sort=args.sort, limit=args.limit,
        engine=args.engine,
    )
    return 0


def _perf_record(args) -> int:
    from repro import obs
    from repro.obs.perf import BenchRecorder, run_quick_suite

    rec = BenchRecorder(source="quick-suite")
    was_on = obs.metrics_enabled()
    obs.enable_metrics()
    obs.metrics().reset()
    try:
        run_quick_suite(rec, repeats=args.repeats, engine=args.engine)
    finally:
        if not was_on:
            obs.disable_metrics()
    rec.attach_metrics(obs.metrics())
    path = rec.write(args.out)
    print(f"run record -> {path}")
    return 0


def _perf_report(args) -> int:
    from repro.obs.perf import Trajectory, render_report

    results_dir = os.path.join(args.dir, "benchmarks", "results")
    traj = Trajectory.load(
        args.dir,
        results_dir=results_dir if os.path.isdir(results_dir) else None,
    )
    text = render_report(traj, window=args.window)
    print(text)
    if args.md_out != "-":
        os.makedirs(os.path.dirname(args.md_out) or ".", exist_ok=True)
        with open(args.md_out, "w") as fh:
            fh.write(text)
        print(f"dashboard -> {args.md_out}", file=sys.stderr)
    for p in traj.skipped:
        print(f"warning: skipped unreadable record {p}", file=sys.stderr)
    return 0


def _perf_check(args) -> int:
    from repro.obs.perf import RegressionDetector, Trajectory

    traj = Trajectory.load(args.dir)
    if len(traj) == 0:
        print(
            "perf check: no baseline yet (no BENCH_*.json run records in "
            f"{args.dir}) -- run 'repro perf record' to record this "
            "machine's baseline; nothing to gate, ok"
        )
        return 0
    det = RegressionDetector(
        traj, window=args.window, ratio=args.ratio, mad_k=args.mad_k
    )
    res = det.check()
    if len(traj) < 2:
        print(f"perf check: {len(traj)} run(s) recorded, no baseline yet -- ok")
        return 0
    t = Table(
        ["section", "latest", "baseline", "x", "verdict"],
        title=f"perf check -- {res.checked} sections vs last "
        f"{res.baseline_runs} run(s)",
    )
    flagged = {r.name: r for r in res.regressions}
    latest = traj.latest
    for name in sorted(latest.get("sections", {})):
        r = flagged.get(name)
        base = traj.baseline(name, args.window)
        summary = latest["sections"][name]
        t.add_row([
            name,
            round(summary.get("median", float("nan")), 6),
            round(base[0], 6) if base else None,
            round(r.ratio, 2) if r
            else (round(summary["median"] / base[0], 2)
                  if base and base[0] else None),
            "REGRESSION" if r else ("new" if base is None else "ok"),
        ])
    t.print()
    if res.regressions:
        print(
            f"\n{len(res.regressions)} regression(s) beyond "
            f"baseline + max({args.ratio:.0%}, {args.mad_k:g} MAD)"
        )
        return 0 if args.soft else 1
    print("\nno regressions")
    return 0


def _cmd_perf(args) -> int:
    return {
        "record": _perf_record,
        "report": _perf_report,
        "check": _perf_check,
    }[args.verb](args)


def _faults_campaign(args) -> int:
    from repro.faults.campaign import run_campaign, render_markdown, write_report
    from repro.faults.models import make_model

    models = (
        [make_model(name) for name in args.models]
        if args.models is not None
        else None
    )
    result = run_campaign(
        qs=tuple(args.qs),
        intensities=tuple(args.intensities),
        models=models,
        n_victims=args.victims,
        n_requests=args.requests,
        seed=args.seed,
    )
    print(render_markdown(result))
    if args.out != "-":
        md_path, json_path = write_report(result, args.out)
        print(f"report -> {md_path}, {json_path}", file=sys.stderr)
    return 0 if result.ok else 1


def _faults_report(args) -> int:
    import json

    from repro.faults.campaign import (
        REPORT_BASENAME,
        CampaignResult,
        render_markdown,
    )

    path = os.path.join(args.dir, REPORT_BASENAME + ".json")
    with open(path) as fh:
        result = CampaignResult.from_dict(json.load(fh))
    print(render_markdown(result))
    return 0 if result.ok else 1


def _cmd_faults(args) -> int:
    return {
        "campaign": _faults_campaign,
        "report": _faults_report,
    }[args.verb](args)


def _conform_fuzz(args) -> int:
    from repro.conformance.differential import (
        render_markdown,
        run_fuzz,
        stale_majority_canary,
        write_report,
    )

    result = run_fuzz(
        seed=args.seed,
        total_ops=args.ops,
        trace_dir=args.trace_dir,
        max_batch=args.max_batch,
        engine=args.engine,
    )
    print(render_markdown(result))
    ok = result.ok
    if not args.no_canary:
        canary = stale_majority_canary(seed=args.seed, engine=args.engine)
        verdict = "DETECTED" if canary.detected else "MISSED"
        print(
            f"\nStale-majority canary: {verdict} "
            f"({canary.silent_wrong_reads} silently-wrong read(s), "
            f"{canary.report.n_violations} violation(s) flagged)"
        )
        if not canary.detected:
            for v in canary.report.violations:
                print(f"  {v.describe()}", file=sys.stderr)
        ok = ok and canary.detected
    if args.out != "-":
        md_path, json_path = write_report(result, args.out)
        print(f"report -> {md_path}, {json_path}", file=sys.stderr)
    return 0 if ok else 1


def _conform_check(args) -> int:
    from repro.conformance.checker import ConsistencyChecker
    from repro.obs.trace import read_jsonl

    checker = ConsistencyChecker(max_violations=args.max_violations)
    failed = 0
    for path in args.traces:
        rep = checker.check_events(read_jsonl(path))
        print(f"## {path}\n\n{rep.render()}\n")
        if not rep.ok:
            failed += 1
    if failed:
        print(f"{failed} of {len(args.traces)} trace(s) inconsistent",
              file=sys.stderr)
    return 0 if not failed else 1


def _conform_report(args) -> int:
    import json

    from repro.conformance.differential import (
        REPORT_BASENAME,
        FuzzResult,
        render_markdown,
    )

    path = os.path.join(args.dir, REPORT_BASENAME + ".json")
    with open(path) as fh:
        result = FuzzResult.from_dict(json.load(fh))
    print(render_markdown(result))
    return 0 if result.ok else 1


def _cmd_conform(args) -> int:
    return {
        "fuzz": _conform_fuzz,
        "check": _conform_check,
        "report": _conform_report,
    }[args.verb](args)


def _peak_rss_mb() -> float:
    """Process peak RSS in MiB (ru_maxrss is KiB on Linux)."""
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _write_watch_json(
    out_dir: str, basename: str, payload: dict, compress: bool = False
) -> None:
    """Write a run record; ``compress=True`` gzips to ``<name>.gz``.

    Raw watch records are working artifacts, not documentation -- they
    are gitignored (only the rendered ``watchdog_report.md`` is
    committed), and the fuzz record is compressed because its snapshot
    stream dominated the repo's worktree otherwise.
    """
    import gzip
    import json

    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, basename)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if compress:
        path += ".gz"
        # mtime=0 keeps the archive byte-stable for identical payloads
        with gzip.GzipFile(path, "wb", mtime=0) as fh:
            fh.write(text.encode())
    else:
        with open(path, "w") as fh:
            fh.write(text)
    print(f"report -> {path}", file=sys.stderr)


#: snapshot rows kept in the persisted fuzz record (evenly subsampled;
#: the rendered report shows at most 20 anyway)
_MAX_SAVED_SNAPSHOTS = 64


def _watch_fuzz(args) -> int:
    from repro.conformance.streaming import stream_fuzz

    def progress(snap: object) -> None:
        print(
            f"  round {snap.round:>6}  lag {snap.checker_lag:>3}  "
            f"state {snap.state_size:>7}  violations {snap.violations}"
        )

    print(
        f"watch fuzz: scheme={args.scheme} ops>={args.ops} "
        f"seed={args.seed} window={args.window} engine={args.engine}"
    )
    result = stream_fuzz(
        scheme=args.scheme,
        total_ops=args.ops,
        seed=args.seed,
        window=args.window,
        max_batch=args.max_batch,
        snapshot_every=args.snapshot_every,
        on_snapshot=progress,
        engine=args.engine,
    )
    rss_mb = _peak_rss_mb()
    ok = result.ok
    print(
        f"{result.events} events over {result.rounds} rounds; "
        f"peak checker state {result.peak_state} entries, "
        f"{result.events_dropped} dropped, "
        f"{result.report.n_violations} violation(s); "
        f"peak RSS {rss_mb:.0f} MiB"
    )
    for v in result.report.violations:
        print(f"  {v.describe()}", file=sys.stderr)
    if args.state_budget is not None and result.peak_state > args.state_budget:
        print(
            f"state budget busted: peak {result.peak_state} > "
            f"{args.state_budget} entries",
            file=sys.stderr,
        )
        ok = False
    if args.rss_budget_mb is not None and rss_mb > args.rss_budget_mb:
        print(
            f"RSS budget busted: peak {rss_mb:.0f} MiB > "
            f"{args.rss_budget_mb} MiB",
            file=sys.stderr,
        )
        ok = False
    if args.out != "-":
        payload = result.to_dict()
        snaps = payload.get("snapshots", [])
        if len(snaps) > _MAX_SAVED_SNAPSHOTS:
            step = (len(snaps) - 1) / (_MAX_SAVED_SNAPSHOTS - 1)
            picks = sorted(
                {round(i * step) for i in range(_MAX_SAVED_SNAPSHOTS)}
                | {len(snaps) - 1}
            )
            payload["snapshots"] = [snaps[i] for i in picks]
        payload["snapshots_total"] = len(snaps)
        payload["peak_rss_mb"] = round(rss_mb, 1)
        payload["state_budget"] = args.state_budget
        payload["rss_budget_mb"] = args.rss_budget_mb
        payload["ok"] = bool(ok)
        _write_watch_json(args.out, "watch_fuzz.json", payload, compress=True)
    print("watchdog: " + ("clean" if ok else "FAILED"))
    return 0 if ok else 1


def _watch_attack(args) -> int:
    from repro.conformance.streaming import run_watchdog_canary

    result = run_watchdog_canary(
        seed=args.seed, n_victims=args.victims, window=args.window,
        engine=args.engine,
    )
    verdict = "DETECTED ONLINE" if result.detected_online else "MISSED"
    print(
        f"stale-majority attack: {verdict} "
        f"({result.silent_wrong_reads} silently-wrong read(s) flagged at "
        f"round {result.detected_at_round} of {result.last_round})"
    )
    ctrl = "clean" if result.control_clean else "NOT CLEAN"
    print(
        f"<= q/2 control: {ctrl} ({result.control_violations} violation(s), "
        f"{result.control_degraded} degraded, {result.control_lost} lost)"
    )
    if not result.ok:
        for v in result.report.violations:
            print(f"  {v.describe()}", file=sys.stderr)
    if args.out != "-":
        _write_watch_json(args.out, "watch_attack.json", result.to_dict())
    return 0 if result.ok else 1


def _cmd_watch(args) -> int:
    return {
        "fuzz": _watch_fuzz,
        "attack": _watch_attack,
    }[args.verb](args)


def _cmd_sweep(args) -> int:
    t = Table(
        ["n", "N", "Phi", "bound shape", "total iterations"],
        title="Phi vs N, full random load (Theorem 6)",
    )
    for n in range(3, args.max_n + 1, 2):
        s = PPScheme(2, n)
        idx = s.random_request_set(min(s.N, s.M), seed=args.seed)
        res = s.access(idx, op="count")
        t.add_row([n, s.N, res.max_phase_iterations,
                   round(phi_bound(s.N, 2), 1), res.total_iterations])
    t.print()
    return 0


def _cmd_expansion(args) -> int:
    s = PPScheme(args.q, args.n)
    rng = np.random.default_rng(args.seed)
    t = Table(
        ["|S|", "min |Gamma(S)|", "Theorem-4 bound", "ratio"],
        title=f"expansion profile (q={args.q}, n={args.n})",
    )
    for size in args.sizes:
        if size > s.M:
            continue
        best = None
        for _ in range(args.trials):
            mats = s.graph.random_variable_matrices(size, rng)
            got = int(np.unique(s.graph.vgamma_variables(mats)).size)
            best = got if best is None else min(best, got)
        bound = expansion_lower_bound(size, s.q)
        t.add_row([size, best, round(bound, 1), round(best / bound, 2)])
    t.print()
    return 0


def _cmd_lint(args) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


def _cmd_explain(args) -> int:
    from repro.obs.explain import run_explain, write_report

    res = run_explain(
        quick=args.quick,
        slack=args.slack,
        coverage_min=args.coverage_min,
    )
    if args.out != "-":
        path = write_report(res, args.out)
        print(f"report -> {path}", file=sys.stderr)
    nviol = len(res.check_violations)
    print(
        f"explain: {nviol} check violation(s), attack "
        f"{'flagged' if res.attack_flagged else 'MISSED'}, "
        f"attribution coverage {res.coverage * 100:.1f}% "
        f"(floor {res.coverage_min * 100:.0f}%)"
    )
    for v in res.check_violations:
        print(f"  {v}", file=sys.stderr)
    if not res.attack_flagged:
        print("  congestion-attack canary NOT flagged", file=sys.stderr)
    if args.check and not res.ok:
        return 1
    return 0


def _service_config(args):
    from repro.service.batcher import ServiceConfig

    return ServiceConfig(
        n_shards=args.shards,
        q=args.q,
        n=args.n,
        round_capacity=args.round_capacity,
        max_pending=args.max_pending,
        pipeline_depth=getattr(args, "pipeline_depth", 1),
        engine=args.engine,
        seed=args.seed,
    )


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service.errors import RetriableError
    from repro.service.loadgen import client_values
    from repro.service.service import KVService
    from repro.service.sim import Jitter, det_run
    from repro.workloads.generators import client_keys

    cfg = _service_config(args)
    keys = client_keys(
        args.keyspace, args.clients * args.ops_per_client,
        mix=args.mix, seed=args.seed,
    ).reshape(args.clients, args.ops_per_client)
    vals = client_values(
        np.repeat(np.arange(args.clients), args.ops_per_client),
        np.tile(np.arange(args.ops_per_client), args.clients),
        keys.ravel(),
    ).reshape(args.clients, args.ops_per_client)
    retries = 0

    async def client(svc: "object", c: int, jitter: Jitter) -> None:
        nonlocal retries
        s = svc.session()
        for i in range(args.ops_per_client):
            if i:
                await jitter()
            while True:
                try:
                    if (c + i) % 2:
                        await s.get(int(keys[c, i]))
                    else:
                        await s.put(int(keys[c, i]), int(vals[c, i]))
                    break
                except RetriableError:
                    retries += 1
                    await jitter()

    async def fleet(jitter: Jitter):
        loop = asyncio.get_running_loop()
        async with KVService(cfg, clock=loop.time) as svc:
            await asyncio.gather(
                *(client(svc, c, jitter) for c in range(args.clients))
            )
            return svc.latency_summary(), svc.stats()

    def fleet_with_scale(jitter: Jitter):
        jitter.scale = args.jitter
        return fleet(jitter)

    lat, stats = det_run(fleet_with_scale, seed=args.seed)
    t = Table(["metric", "value"],
              title=f"serve: {args.clients} sessions x "
              f"{args.ops_per_client} ops, {args.shards} shard(s)")
    t.add_row(["rounds", stats["rounds"]])
    t.add_row(["completed", stats["completed"]])
    t.add_row(["lost (retried)", retries])
    for k in ("p50", "p95", "p99", "max"):
        if k in lat:
            t.add_row([f"latency {k} (virtual s)", round(lat[k], 6)])
    watch = stats.get("watch", {})
    t.add_row(["watchdog violations", watch.get("violations", "off")])
    t.add_row(["events dropped", watch.get("events_dropped", "off")])
    t.print()
    ok = not watch or (
        watch["violations"] == 0 and watch["events_dropped"] == 0
    )
    print("serve: " + ("clean" if ok else "FAILED"))
    return 0 if ok else 1


def _cmd_load(args) -> int:
    from repro.service.loadgen import LoadConfig, run_load

    cfg = LoadConfig(
        clients=args.clients,
        ops_per_client=args.ops_per_client,
        keyspace=args.keyspace,
        mix=args.mix,
        get_fraction=args.get_fraction,
        delete_fraction=args.delete_fraction,
        seed=args.seed,
        fault=args.fault,
        crash_rate=args.crash_rate,
        repair_lag=args.repair_lag,
        attack_round=args.attack_round,
        attack_victims=args.victims,
        heal_after=args.heal_after,
        oracle=args.oracle,
    )
    rep = run_load(cfg, _service_config(args), log=print)
    lat = rep.latency
    t = Table(["metric", "value"],
              title=f"load: {rep.clients} clients, mix={rep.mix}, "
              f"fault={rep.fault}")
    t.add_row(["requests completed", rep.completed])
    t.add_row(["rounds", rep.rounds])
    t.add_row(["rounds/sec", round(rep.rounds_per_sec, 1)])
    t.add_row(["ops/sec", round(rep.ops_per_sec, 1)])
    for k in ("p50", "p95", "p99", "max"):
        if k in lat:
            t.add_row([f"latency {k} (s)", round(lat[k], 6)])
    t.add_row(["declared lost (retried)", rep.lost])
    t.add_row(["unfinished clients", rep.unfinished_clients])
    t.add_row(["watchdog violations", rep.violations])
    t.add_row(["events dropped", rep.events_dropped])
    if args.oracle:
        t.add_row(["oracle checked", rep.oracle_checked])
        t.add_row(["oracle mismatches", rep.oracle_mismatches])
    t.print()
    if rep.detection is not None:
        d = rep.detection
        print(
            f"attack detected mid-run at stream round {d['stream_round']}: "
            f"{d['kind']} proc={d['proc']} round={d['round']} var={d['var']}"
        )
    # the health bar depends on the fault mode: fault-free must be
    # spotless; crashes allow store-level partial-write violations (the
    # requests were declared lost) but nothing silently wrong; the
    # stale attack MUST be flagged mid-run
    if args.fault == "none":
        ok = rep.fault_free_clean and rep.unfinished_clients == 0
    elif args.fault == "crash":
        ok = rep.unfinished_clients == 0 and rep.events_dropped == 0
    else:
        ok = rep.detection is not None and rep.unfinished_clients == 0
    if args.oracle and rep.fault != "stale":
        ok = ok and rep.oracle_mismatches == 0
    if args.json_out:
        import json

        with open(args.json_out, "w") as fh:
            json.dump(rep.to_dict(), fh, indent=2, sort_keys=True)
        print(f"report -> {args.json_out}", file=sys.stderr)
    if args.bench_out:
        from repro.obs.perf import BenchRecorder

        rec = BenchRecorder(source="load")
        rep.record_bench(rec)
        path = rec.write(args.bench_out)
        print(f"run record -> {path}", file=sys.stderr)
    print("load: " + ("healthy" if ok else "FAILED"))
    return 0 if ok else 1


def _cmd_verify(args) -> int:
    from repro.core.verification import verify_instance

    rep = verify_instance(args.q, args.n, level=args.level, seed=args.seed)
    print(rep.render())
    return 0 if rep.passed else 1


_COMMANDS = {
    "info": _cmd_info,
    "locate": _cmd_locate,
    "access": _cmd_access,
    "metrics": _cmd_metrics,
    "profile": _cmd_profile,
    "perf": _cmd_perf,
    "faults": _cmd_faults,
    "conform": _cmd_conform,
    "watch": _cmd_watch,
    "sweep": _cmd_sweep,
    "expansion": _cmd_expansion,
    "explain": _cmd_explain,
    "verify": _cmd_verify,
    "lint": _cmd_lint,
    "serve": _cmd_serve,
    "load": _cmd_load,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
