"""Request-set generators: random, structured, and adversarial.

* :mod:`repro.workloads.generators` -- seeded random distinct sets,
  permutation traffic, hot-spot mixtures, and strided/array-walk
  patterns typical of PRAM programs;
* :mod:`repro.workloads.adversarial` -- worst-case constructions per
  scheme (single-module attacks, MV write bursts, expansion-tight sets
  for the PP graph, and the Theorem-7 concentrated-set adversary).
"""

from repro.workloads.generators import (
    random_distinct,
    strided,
    hotspot_blocks,
    phase_shuffled,
)
from repro.workloads.adversarial import (
    pp_tight_request_set,
    pp_module_neighborhood_set,
    theorem7_bound,
    concentrated_set_for,
    phase_align,
    tight_set_module_ids,
)

__all__ = [
    "random_distinct",
    "strided",
    "hotspot_blocks",
    "phase_shuffled",
    "pp_tight_request_set",
    "pp_module_neighborhood_set",
    "theorem7_bound",
    "concentrated_set_for",
    "phase_align",
    "tight_set_module_ids",
]
