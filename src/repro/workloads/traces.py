"""Trace-driven workloads: multi-batch request streams with structure.

Real parallel programs do not issue independent uniform batches; they
re-touch working sets (temporal locality) and skew toward popular data
(zipfian).  This module synthesizes such traces -- sequences of request
batches -- and replays them through any scheme, producing the time
series the locality experiments (E16) analyze.

Duplicates inside one machine step are combined before the protocol
runs (the same request-combining convention as the PRAM layer), so a
skewed batch yields *fewer distinct* requests: skew shifts cost from
the memory-organization problem to combining, which is visible in the
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["zipfian_batch", "locality_trace", "TraceReplay", "replay_trace"]


def zipfian_batch(
    M: int, count: int, skew: float, rng: np.random.Generator
) -> np.ndarray:
    """``count`` raw (possibly duplicate) requests with zipf-like
    popularity over ``[0, M)``; ``skew = 0`` is uniform, larger is
    hotter.

    Implemented by inverse-power transform of uniforms (bounded-support
    zipf without scipy's open-ended tail).
    """
    if not 0 <= skew:
        raise ValueError("skew must be >= 0")
    u = rng.random(count)
    # bounded power transform: exponent 1 at skew=0 (uniform), growing
    # smoothly and capped at 20 for skew >= 0.95 -- monotone in skew
    expo = 1.0 / min(1.0, max(0.05, 1.0 - skew))
    ranks = (M * u**expo).astype(np.int64)
    ranks = np.clip(ranks, 0, M - 1)
    # scatter ranks over the index space so "popular" is not "contiguous"
    return (ranks * np.int64(2654435761) + 7) % M


def locality_trace(
    M: int,
    batches: int,
    batch_size: int,
    working_set: int,
    churn: float,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """A trace of ``batches`` raw batches drawn from a drifting working
    set: each step, a ``churn`` fraction of the working set is replaced,
    and the batch samples (with duplicates) from the current set."""
    if not 0 <= churn <= 1:
        raise ValueError("churn must be in [0, 1]")
    if working_set > M:
        raise ValueError("working set larger than memory")
    ws = rng.choice(M, working_set, replace=False)
    out = []
    for _ in range(batches):
        replace = int(round(churn * working_set))
        if replace:
            fresh = rng.choice(M, replace, replace=False)
            ws = np.concatenate([ws[replace:], fresh])
        out.append(rng.choice(ws, batch_size, replace=True))
    return out


@dataclass
class TraceReplay:
    """Result of replaying a trace against one scheme."""

    scheme_name: str
    batches: int
    raw_requests: int
    distinct_requests: int
    total_iterations: int
    per_batch_iterations: list[int] = field(default_factory=list)

    @property
    def combining_ratio(self) -> float:
        """distinct / raw -- how much request combining absorbed."""
        if self.raw_requests == 0:
            return 1.0
        return self.distinct_requests / self.raw_requests

    @property
    def mean_iterations(self) -> float:
        """Average protocol iterations per batch."""
        if self.batches == 0:
            return 0.0
        return self.total_iterations / self.batches


def replay_trace(scheme, trace: list[np.ndarray]) -> TraceReplay:
    """Run every batch of a trace (count mode) through the scheme,
    combining duplicates per batch, and collect the cost series."""
    total_raw = 0
    total_distinct = 0
    total_iters = 0
    per_batch = []
    for batch in trace:
        batch = np.asarray(batch, dtype=np.int64)
        total_raw += batch.size
        distinct = np.unique(batch)
        total_distinct += distinct.size
        res = scheme.access(distinct, op="count", collect_history=False)
        per_batch.append(res.total_iterations)
        total_iters += res.total_iterations
    return TraceReplay(
        scheme_name=getattr(scheme, "name", type(scheme).__name__),
        batches=len(trace),
        raw_requests=total_raw,
        distinct_requests=total_distinct,
        total_iterations=total_iters,
        per_batch_iterations=per_batch,
    )
