"""Adversarial request-set constructions.

Worst cases are the whole point of a deterministic scheme: the paper's
guarantees are worst-case, the baselines' failures are worst-case.  This
module builds, per scheme:

* PP graph: low-expansion request sets -- the variables of one module's
  neighbourhood (congestion ``q^{n-1}`` on that module before dispersal)
  and, for composite n, the subgroup-tight sets of Theorem 4's
  optimality remark, optionally translated and unioned to scale;
* the generic Theorem-7 adversary: request variables whose copies all
  lie inside a small module set B, forcing time >= |S| * quorum / |B|;
* plus re-exports of the per-scheme attacks defined on
  :class:`SingleCopyScheme` and :class:`MehlhornVishkinScheme`.
"""

from __future__ import annotations

import numpy as np

from repro.core.expansion import subgroup_tight_set
from repro.core.scheme import PPScheme
from repro.pgl.matrix import pgl2_mul

__all__ = [
    "pp_module_neighborhood_set",
    "pp_tight_request_set",
    "concentrated_set_for",
    "theorem7_bound",
]


def pp_module_neighborhood_set(
    scheme: PPScheme, count: int, seed_modules: list[int] | None = None
) -> np.ndarray:
    """Variables drawn from full module neighbourhoods ``Gamma(u)``.

    Each seeded module receives ``q^{n-1}`` of the requests' copies, the
    densest congestion a request set can put on one module; the protocol
    must disperse via the other copies (exactly the scenario Theorems
    4/5 govern).  Returns ``count`` distinct variable indices.
    """
    graph = scheme.graph
    auto = seed_modules is None
    if auto:
        # neighbourhoods overlap, so keep consuming modules until filled
        seed_modules = range(graph.N)
    out: list[int] = []
    seen: set[int] = set()
    for u in seed_modules:
        for mat in graph.gamma_module(u):
            idx = scheme.addressing.rank(mat)
            if idx not in seen:
                seen.add(idx)
                out.append(idx)
                if len(out) == count:
                    return np.array(out, dtype=np.int64)
    raise ValueError(
        f"seed modules provided only {len(out)} distinct variables, need {count}"
    )


def pp_tight_request_set(
    scheme: PPScheme, d: int, translates: int = 1, seed: int = 0
) -> np.ndarray:
    """Theorem-4 tightness witnesses as request sets: the variables of
    the embedded ``PGL2(q^d)`` (d a proper divisor of n), unioned over
    ``translates`` random left-translates (left translation is a graph
    automorphism, so each translate is equally tight).
    """
    graph = scheme.graph
    base = subgroup_tight_set(graph, d)
    rng = np.random.default_rng(seed)
    F = graph.F
    out: set[int] = set()
    gs: list[tuple[int, int, int, int]] = [(1, 0, 0, 1)]
    while len(gs) < translates:
        a, b, c, dd = (int(x) for x in rng.integers(0, F.order, size=4))
        if F.add(F.mul(a, dd), F.mul(b, c)) != 0:
            gs.append((a, b, c, dd))
    for g in gs:
        for mat in base:
            out.add(scheme.addressing.rank(pgl2_mul(F, g, mat)))
    return np.fromiter(sorted(out), dtype=np.int64)


def concentrated_set_for(scheme, count: int, **kw) -> tuple[np.ndarray, int]:
    """Dispatch a Theorem-7-style concentrated request set for any of the
    repo's schemes.  Returns ``(indices, |B|)`` where B is the module
    set containing every copy of every returned variable.
    """
    from repro.schemes.mehlhorn_vishkin import MehlhornVishkinScheme
    from repro.schemes.single_copy import SingleCopyScheme
    from repro.schemes.pp_adapter import PPAdapter

    if isinstance(scheme, SingleCopyScheme):
        idx = scheme.adversarial_request_set(count, **kw)
        return idx, 1
    if isinstance(scheme, MehlhornVishkinScheme):
        # grid interpolation: beta values per copy such that beta^c >= count
        beta = 1
        while True:
            grid = [np.arange(beta)] * scheme.c
            idx = scheme.interpolate_variables(grid)
            if idx.shape[0] >= count:
                return idx[:count], beta * scheme.c
            beta += 1
            if beta > scheme.P:  # pragma: no cover
                raise ValueError("cannot build concentrated set")
    if isinstance(scheme, PPAdapter):
        inner = scheme.scheme
        idx = pp_module_neighborhood_set(inner, count)
        mods = np.unique(inner.module_ids_for(idx))
        return idx, int(mods.size)
    from repro.schemes.upfal_wigderson import UpfalWigdersonScheme

    if isinstance(scheme, UpfalWigdersonScheme):
        # Against a random graph the adversary can only search: take the
        # most-loaded modules and grow B until >= count variables have all
        # their copies inside.  That B stays large is exactly UW's w.h.p.
        # guarantee -- this construction is *supposed* to be weak.
        cap = min(scheme.M, 200_000)
        pl = scheme.placement(np.arange(cap, dtype=np.int64))
        loads = np.bincount(pl.ravel(), minlength=scheme.N)
        order = np.argsort(-loads)
        in_b = np.zeros(scheme.N, dtype=bool)
        for b in range(1, scheme.N + 1):
            in_b[order[b - 1]] = True
            inside = in_b[pl].all(axis=1)
            if int(inside.sum()) >= count:
                return np.nonzero(inside)[0][:count].astype(np.int64), b
        raise ValueError("could not concentrate the requested count")
    raise TypeError(f"no concentrated-set construction for {type(scheme).__name__}")


def theorem7_bound(M: int, N: int, r: int) -> float:
    """Theorem 7's worst-case access-time lower bound ``(M/N)^{1/r}``
    for exactly-r-copy schemes (growth term, no constant)."""
    return (M / N) ** (1.0 / r)


def phase_align(
    hot: np.ndarray, fill: np.ndarray, copies: int, phase: int = 0
) -> np.ndarray:
    """Order a request array so every ``hot`` variable lands in the same
    protocol phase.

    On a real MPC the adversary chooses *which processor* requests which
    variable, hence also the cluster/phase assignment; the protocol
    assigns position ``p`` to phase ``p mod copies``.  The hot set is
    interleaved at positions ``=== phase (mod copies)``, padded with
    ``fill`` (which must be disjoint from ``hot`` and large enough:
    ``len(fill) >= (copies - 1) * len(hot)``).
    """
    hot = np.asarray(hot, dtype=np.int64)
    fill = np.asarray(fill, dtype=np.int64)
    if np.intersect1d(hot, fill).size:
        raise ValueError("hot and fill sets must be disjoint")
    need_fill = (copies - 1) * hot.shape[0]
    if fill.shape[0] < need_fill:
        raise ValueError(f"need at least {need_fill} fill variables")
    total = copies * hot.shape[0]
    out = np.empty(total, dtype=np.int64)
    mask = np.arange(total) % copies == phase
    out[mask] = hot
    out[~mask] = fill[:need_fill]
    return out


def tight_set_module_ids(graph, d: int) -> np.ndarray:
    """``(|S|, q+1)`` module ids of the Theorem-4 tight set of the
    (q, n) graph for divisor ``d`` -- bypasses the addressing layer so
    it works at any n (the count-only protocol needs nothing else)."""
    mats = subgroup_tight_set(graph, d)
    arr = np.array(mats, dtype=np.int64)
    return graph.vgamma_variables((arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]))
