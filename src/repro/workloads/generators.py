"""Benign workload generators (seeded, reproducible).

These model the access patterns a PRAM program would actually issue:
uniform random batches, strided array walks, and block-local hot spots.
All return distinct variable indices, as the MPC model (and the paper's
protocol) assumes one request per variable per batch -- concurrent
same-variable reads are combined before the protocol runs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "random_distinct",
    "strided",
    "hotspot_blocks",
    "phase_shuffled",
    "op_batches",
    "zipf_weights",
    "client_keys",
    "KEY_MIXES",
]


def random_distinct(M: int, count: int, seed: int = 0) -> np.ndarray:
    """``count`` distinct uniform indices from ``[0, M)``."""
    if count > M:
        raise ValueError(f"cannot draw {count} distinct from {M}")
    rng = np.random.default_rng(seed)
    if count * 4 >= M:
        return rng.permutation(M)[:count].astype(np.int64)
    return rng.choice(M, size=count, replace=False).astype(np.int64)


def strided(M: int, count: int, stride: int = 1, offset: int = 0) -> np.ndarray:
    """An array walk: ``offset, offset+stride, ...`` (mod M), distinct.

    Models the classic "every processor reads A[i * stride]" PRAM step
    whose interaction with naive modular placement is catastrophic.
    """
    if count > M:
        raise ValueError(f"cannot draw {count} distinct from {M}")
    idx = (offset + stride * np.arange(count, dtype=np.int64)) % M
    if np.unique(idx).size != count:
        raise ValueError(
            f"stride {stride} wraps onto itself within {count} draws (gcd issue)"
        )
    return idx


def hotspot_blocks(
    M: int, count: int, block: int = 64, n_blocks: int = 4, seed: int = 0
) -> np.ndarray:
    """Requests concentrated in a few contiguous index blocks -- the
    "shared data structure" pattern (e.g. all processors walking the
    same few tree pages)."""
    rng = np.random.default_rng(seed)
    if block * n_blocks < count:
        raise ValueError("blocks too small for requested count")
    starts = rng.choice(max(1, M - block), size=n_blocks, replace=False)
    pool = np.concatenate([np.arange(s, s + block, dtype=np.int64) for s in starts])
    pool = np.unique(pool % M)
    if pool.size < count:
        raise ValueError("hot-spot pool smaller than count after dedup")
    return rng.choice(pool, size=count, replace=False)


def op_batches(
    M: int,
    total_ops: int,
    seed: int = 0,
    max_batch: int = 32,
    read_fraction: float = 0.45,
) -> list[tuple[str, np.ndarray]]:
    """A seeded mixed read/write batch plan for the conformance fuzzer.

    Returns ``[(kind, indices), ...]`` with ``kind`` in ``'read'`` /
    ``'write'`` and at least ``total_ops`` single operations overall.
    Batches rotate through the generator families above (uniform,
    strided, hot-spot) so placement pathologies are exercised alongside
    benign traffic; every batch holds distinct indices, as the protocol
    requires.  The plan opens with a write so reads have state to hit.
    """
    if M < 2:
        raise ValueError("need at least 2 variables to fuzz")
    rng = np.random.default_rng(seed)
    plan: list[tuple[str, np.ndarray]] = []
    issued = 0
    while issued < total_ops:
        size = int(rng.integers(1, min(max_batch, M) + 1))
        family = rng.integers(0, 3)
        if family == 0:
            idx = random_distinct(M, size, seed=int(rng.integers(1 << 31)))
        elif family == 1:
            stride = 3
            while M % stride == 0:
                stride += 2
            idx = strided(
                M, size, stride=stride, offset=int(rng.integers(M))
            )
        else:
            block = max(4, min(M // 2, 2 * size))
            try:
                idx = hotspot_blocks(
                    M, size, block=block, n_blocks=4,
                    seed=int(rng.integers(1 << 31)),
                )
            except ValueError:
                idx = random_distinct(M, size, seed=int(rng.integers(1 << 31)))
        kind = (
            "read"
            if plan and rng.random() < read_fraction
            else "write"
        )
        plan.append((kind, idx))
        issued += idx.size
    return plan


#: key-mix names accepted by :func:`client_keys` (and the service CLI)
KEY_MIXES = ("uniform", "zipf", "hotkey")


def zipf_weights(n: int, s: float = 1.2) -> np.ndarray:
    """Normalized bounded-Zipf probabilities over ranks ``0..n-1``:
    ``P(rank k) ~ 1 / (k + 1)^s``."""
    if n < 1:
        raise ValueError("need at least one rank")
    w = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), float(s))
    return w / w.sum()


def client_keys(
    keyspace: int,
    count: int,
    mix: str = "uniform",
    seed: int = 0,
    s: float = 1.2,
    hot: int = 64,
    hot_mass: float = 0.9,
) -> np.ndarray:
    """``count`` seeded key *indices* in ``[0, keyspace)`` -- duplicates
    allowed (these model independent clients, not one protocol batch;
    the service combines same-key requests before the protocol runs).

    Mixes: ``uniform``; ``zipf`` (bounded rank-``s`` power law over a
    seeded rank permutation, so the popular keys are scattered through
    the keyspace); ``hotkey`` (the adversarial contention mix: ``hot``
    seeded keys absorb ``hot_mass`` of the traffic, the rest uniform).
    """
    if keyspace < 1:
        raise ValueError("keyspace must be >= 1")
    rng = np.random.default_rng(seed)
    if mix == "uniform":
        return rng.integers(0, keyspace, size=count, dtype=np.int64)
    if mix == "zipf":
        ranks = rng.choice(
            keyspace, size=count, p=zipf_weights(keyspace, s)
        ).astype(np.int64)
        ident = rng.permutation(keyspace).astype(np.int64)
        return ident[ranks]
    if mix == "hotkey":
        hot = min(max(1, hot), keyspace)
        hot_keys = rng.choice(keyspace, size=hot, replace=False).astype(
            np.int64
        )
        is_hot = rng.random(count) < float(hot_mass)
        out = rng.integers(0, keyspace, size=count, dtype=np.int64)
        n_hot = int(is_hot.sum())
        out[is_hot] = hot_keys[rng.integers(0, hot, size=n_hot)]
        return out
    raise ValueError(f"unknown key mix {mix!r}; one of {KEY_MIXES}")


def phase_shuffled(indices: np.ndarray, seed: int = 0) -> np.ndarray:
    """Reshuffle a request set (changes the cluster/phase assignment in
    the protocol without changing the set -- used to check the protocol
    cost is set-determined, not order-determined, up to arbitration)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(np.asarray(indices, dtype=np.int64))
