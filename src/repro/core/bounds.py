"""The paper's quantitative bounds, as executable formulas.

Everything the experiments compare measurements against lives here:

* Fact 1 closed forms for |V|, |U| and degrees;
* Theorem 4 / 5 expansion lower bounds;
* recurrence (2) ``R_{k+1} <= R_k (1 - c (q / R_k)^{1/3})`` with the
  paper's constant ``c ~= 0.397``, plus a simulator for it;
* the Theorem 6 iteration bound ``Phi in O(N^{1/3} log* N)``;
* the Theorem 1 total-time bound ``O((N')^{1/3} log* N' + log N)``;
* the Theorem 7 lower bound ``Omega((M/N)^{1/r})`` for exactly-r-copy
  schemes (and Upfal-Wigderson's ``Omega((M/N)^{1/(2r)})`` for average
  redundancy r, quoted in the introduction);
* the **bound registry** (:class:`BoundRegistry`): per-scheme
  *envelopes* ``measured <= c * shape(run)`` over the quantities the
  ledger counts -- protocol rounds (Theorem 1), ``Phi`` (Theorem 6),
  field operations per on-the-fly address (Theorem 8), and the
  per-step congestion distribution.  The theorems fix the shapes; the
  hidden constants are fitted once per scheme from a calibration sweep
  (:func:`repro.analysis.fitting.fit_envelope_constant`), after which
  :meth:`BoundRegistry.check` flags any measured count outside its
  envelope with exact ``(scheme, N, N', quantity)`` coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.analysis.fitting import fit_envelope_constant
from repro.gf.modular import log_star

__all__ = [
    "fact1_counts",
    "expansion_lower_bound",
    "live_expansion_lower_bound",
    "recurrence_constant",
    "recurrence_step",
    "simulate_recurrence",
    "phi_bound",
    "total_time_bound",
    "lower_bound_exact_r",
    "lower_bound_average_r",
    "log_star",
    "RunContext",
    "Envelope",
    "BoundViolation",
    "BoundRegistry",
    "ENVELOPE_QUANTITIES",
    "envelope_shape",
]

#: The paper's contraction constant in recurrence (2).
RECURRENCE_C = 0.397


def fact1_counts(q: int, n: int) -> dict[str, int]:
    """Fact 1: |V|, |U|, and the two degrees, as exact integers."""
    qn = q**n
    return {
        "V": (qn + 1) * qn * (qn - 1) // ((q + 1) * q * (q - 1)),
        "U": (qn + 1) * (qn - 1) // (q - 1),
        "deg_V": q + 1,
        "deg_U": q ** (n - 1),
    }


def expansion_lower_bound(size: int, q: int) -> float:
    """Theorem 4: ``|Gamma(S)| >= |S|^{2/3} q / 2^{1/3}``."""
    return size ** (2.0 / 3.0) * q / 2 ** (1.0 / 3.0)


def live_expansion_lower_bound(size: int, q: int) -> float:
    """Theorem 5 (live copies only): ``|Gamma'(S)| >= |S|^{2/3} q / 4``."""
    return size ** (2.0 / 3.0) * q / 4.0


def recurrence_constant() -> float:
    """The paper's ``c ~= 0.397`` of recurrence (2)."""
    return RECURRENCE_C


def recurrence_step(r: float, q: int, c: float = RECURRENCE_C) -> float:
    """One application of recurrence (2):
    ``R_{k+1} = R_k (1 - c (q / R_k)^{1/3})`` (the paper's upper bound on
    the number of live variables after one more iteration)."""
    if r <= 0:
        return 0.0
    return r * (1.0 - c * (q / r) ** (1.0 / 3.0))


def simulate_recurrence(
    r0: float, q: int, c: float = RECURRENCE_C, threshold: float = 1.0
) -> list[float]:
    """Iterate recurrence (2) from ``R_0 = r0`` until ``R_k <= threshold``.

    Returns the full trajectory ``[R_0, R_1, ...]``; its length - 1 is the
    predicted worst-case number of protocol iterations in a phase.
    """
    traj = [float(r0)]
    r = float(r0)
    guard = 0
    while r > threshold:
        r = recurrence_step(r, q, c)
        if r < 0:
            r = 0.0
        traj.append(r)
        guard += 1
        if guard > 10_000_000:  # pragma: no cover
            raise RuntimeError("recurrence failed to converge")
    return traj


def phi_bound(n_live: int, q: int) -> float:
    """Theorem 6 shape: ``Phi <= const * n_live^{1/3} log*(n_live)``
    (returned without the unspecified constant, i.e. the growth term)."""
    if n_live <= 1:
        return 1.0
    return n_live ** (1.0 / 3.0) * max(1, log_star(n_live))


def total_time_bound(n_prime: int, N: int, q: int) -> float:
    """Theorem 1 shape: ``(N')^{1/3} log* N' + log N`` (growth term)."""
    return phi_bound(n_prime, q) + math.log2(max(2, N))


def lower_bound_exact_r(M: int, N: int, r: int) -> float:
    """Theorem 7: any scheme with *exactly* r copies per variable needs
    worst-case access time ``Omega((M/N)^{1/r})`` (growth term)."""
    if r <= 0:
        raise ValueError("r must be positive")
    return (M / N) ** (1.0 / r)


def lower_bound_average_r(M: int, N: int, r: float) -> float:
    """[UW87] (quoted in the introduction): with r copies on *average*,
    worst-case time is ``Omega((M/N)^{1/(2r)})`` (growth term)."""
    if r <= 0:
        raise ValueError("r must be positive")
    return (M / N) ** (1.0 / (2.0 * r))


# ---------------------------------------------------------------------------
# Bound registry: fitted theorem envelopes checked against ledger counts


@dataclass(frozen=True)
class RunContext:
    """Coordinates of one measured run, as the envelopes see it.

    ``n_prime`` is the request-batch size N' (the theorems' access-set
    size); ``N`` the module count of the machine the scheme built.
    """

    scheme: str
    N: int
    M: int
    n_prime: int
    copies: int
    majority: int


def _shape_rounds(ctx: RunContext) -> float:
    """Theorem 1 growth: ``(N')^{1/3} log* N' + log N`` -- total protocol
    rounds across the batch's phases (the per-scheme constant absorbs
    the ``q + 1`` phase multiplicity)."""
    return total_time_bound(ctx.n_prime, ctx.N, ctx.copies - 1)


def _shape_phi(ctx: RunContext) -> float:
    """Theorem 6 growth for ``Phi``: each phase starts with at most
    ``ceil(N' / (q+1))`` live variables."""
    per_phase = max(1, -(-ctx.n_prime // max(1, ctx.copies)))
    return phi_bound(per_phase, ctx.copies - 1)


def _shape_addr_field_ops(ctx: RunContext) -> float:
    """Theorem 8: O(log N) field operations per on-the-fly address (a
    discrete log is charged ``n ~ log N`` steps, matching
    :meth:`repro.core.addressing.OpCounter.modeled_steps`)."""
    return math.log2(max(2.0, float(ctx.N)))


def _shape_congestion(ctx: RunContext) -> float:
    """Practical congestion envelope on admissible loads: near-balanced
    modules track ``log N'`` (balls-into-bins), never the batch size.
    This is the canary shape -- an adversarial request set concentrates
    its copies and blows past any constant fitted on ordinary runs."""
    return math.log2(max(2.0, float(ctx.n_prime)))


#: Quantities the ledger measures and the registry can bound, with the
#: theorem each envelope's shape comes from.
ENVELOPE_QUANTITIES: tuple[str, ...] = (
    "rounds",
    "phi",
    "addr_field_ops",
    "congestion_p95",
)

_SHAPES: dict[str, tuple[str, Callable[[RunContext], float]]] = {
    "rounds": ("Theorem 1", _shape_rounds),
    "phi": ("Theorem 6", _shape_phi),
    "addr_field_ops": ("Theorem 8", _shape_addr_field_ops),
    "congestion_p95": ("Fact 1 / balanced-load", _shape_congestion),
}


def envelope_shape(quantity: str, ctx: RunContext) -> float:
    """The closed-form growth term of ``quantity`` at ``ctx`` (constant
    excluded)."""
    try:
        return _SHAPES[quantity][1](ctx)
    except KeyError:
        raise ValueError(f"unknown envelope quantity {quantity!r}") from None


@dataclass(frozen=True)
class Envelope:
    """One fitted bound ``measured <= constant * shape(ctx)``."""

    scheme: str
    quantity: str
    theorem: str
    constant: float

    def bound(self, ctx: RunContext) -> float:
        """The envelope's value at the run's coordinates."""
        return self.constant * envelope_shape(self.quantity, ctx)


@dataclass(frozen=True)
class BoundViolation:
    """A measured count outside its fitted envelope."""

    scheme: str
    N: int
    n_prime: int
    quantity: str
    measured: float
    bound: float
    theorem: str

    def coordinates(self) -> str:
        """The exact ``(scheme, N, N', quantity)`` coordinate string."""
        return (
            f"(scheme={self.scheme}, N={self.N}, N'={self.n_prime}, "
            f"quantity={self.quantity})"
        )

    def __str__(self) -> str:
        return (
            f"{self.coordinates()}: measured {self.measured:g} > "
            f"envelope {self.bound:g} [{self.theorem}]"
        )


class BoundRegistry:
    """Per-(scheme, quantity) fitted envelopes and the check that uses
    them.

    Fit once from a calibration sweep (:meth:`fit`), then
    :meth:`check` every later run; constants are plain numbers, so a
    registry can also be rebuilt from a stored report.
    """

    def __init__(self) -> None:
        self._envelopes: dict[tuple[str, str], Envelope] = {}

    def register(self, env: Envelope) -> None:
        """Add (or replace) one envelope."""
        if env.quantity not in _SHAPES:
            raise ValueError(f"unknown envelope quantity {env.quantity!r}")
        self._envelopes[(env.scheme, env.quantity)] = env

    def fit(
        self,
        scheme: str,
        quantity: str,
        calibration: list[tuple[RunContext, float]],
        slack: float = 1.25,
    ) -> Envelope:
        """Fit and register the envelope constant for one quantity.

        ``calibration`` pairs each sweep run's :class:`RunContext` with
        its measured count; the constant is the largest
        measured/shape ratio widened by ``slack`` (see
        :func:`repro.analysis.fitting.fit_envelope_constant`).
        """
        shapes = [envelope_shape(quantity, ctx) for ctx, _ in calibration]
        measured = [m for _, m in calibration]
        const = fit_envelope_constant(shapes, measured, slack=slack)
        env = Envelope(
            scheme=scheme,
            quantity=quantity,
            theorem=_SHAPES[quantity][0],
            constant=const,
        )
        self.register(env)
        return env

    def envelope(self, scheme: str, quantity: str) -> Envelope | None:
        """The registered envelope, or None if never fitted."""
        return self._envelopes.get((scheme, quantity))

    def envelopes_for(self, scheme: str) -> list[Envelope]:
        """Every envelope registered for one scheme (stable order)."""
        return [
            env
            for (s, q), env in sorted(self._envelopes.items())
            if s == scheme
        ]

    def check(
        self, ctx: RunContext, measurements: dict[str, float]
    ) -> list[BoundViolation]:
        """Check a run's measured counts against the fitted envelopes.

        Quantities without a registered envelope for ``ctx.scheme`` are
        skipped (no vacuous passes: the caller decides which quantities
        must exist).  Returns the violations, empty when all within.
        """
        out: list[BoundViolation] = []
        for quantity, measured in sorted(measurements.items()):
            env = self._envelopes.get((ctx.scheme, quantity))
            if env is None:
                continue
            bound = env.bound(ctx)
            if measured > bound:
                out.append(
                    BoundViolation(
                        scheme=ctx.scheme,
                        N=ctx.N,
                        n_prime=ctx.n_prime,
                        quantity=quantity,
                        measured=float(measured),
                        bound=bound,
                        theorem=env.theorem,
                    )
                )
        return out
