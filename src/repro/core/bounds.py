"""The paper's quantitative bounds, as executable formulas.

Everything the experiments compare measurements against lives here:

* Fact 1 closed forms for |V|, |U| and degrees;
* Theorem 4 / 5 expansion lower bounds;
* recurrence (2) ``R_{k+1} <= R_k (1 - c (q / R_k)^{1/3})`` with the
  paper's constant ``c ~= 0.397``, plus a simulator for it;
* the Theorem 6 iteration bound ``Phi in O(N^{1/3} log* N)``;
* the Theorem 1 total-time bound ``O((N')^{1/3} log* N' + log N)``;
* the Theorem 7 lower bound ``Omega((M/N)^{1/r})`` for exactly-r-copy
  schemes (and Upfal-Wigderson's ``Omega((M/N)^{1/(2r)})`` for average
  redundancy r, quoted in the introduction).
"""

from __future__ import annotations

import math

from repro.gf.modular import log_star

__all__ = [
    "fact1_counts",
    "expansion_lower_bound",
    "live_expansion_lower_bound",
    "recurrence_constant",
    "recurrence_step",
    "simulate_recurrence",
    "phi_bound",
    "total_time_bound",
    "lower_bound_exact_r",
    "lower_bound_average_r",
    "log_star",
]

#: The paper's contraction constant in recurrence (2).
RECURRENCE_C = 0.397


def fact1_counts(q: int, n: int) -> dict[str, int]:
    """Fact 1: |V|, |U|, and the two degrees, as exact integers."""
    qn = q**n
    return {
        "V": (qn + 1) * qn * (qn - 1) // ((q + 1) * q * (q - 1)),
        "U": (qn + 1) * (qn - 1) // (q - 1),
        "deg_V": q + 1,
        "deg_U": q ** (n - 1),
    }


def expansion_lower_bound(size: int, q: int) -> float:
    """Theorem 4: ``|Gamma(S)| >= |S|^{2/3} q / 2^{1/3}``."""
    return size ** (2.0 / 3.0) * q / 2 ** (1.0 / 3.0)


def live_expansion_lower_bound(size: int, q: int) -> float:
    """Theorem 5 (live copies only): ``|Gamma'(S)| >= |S|^{2/3} q / 4``."""
    return size ** (2.0 / 3.0) * q / 4.0


def recurrence_constant() -> float:
    """The paper's ``c ~= 0.397`` of recurrence (2)."""
    return RECURRENCE_C


def recurrence_step(r: float, q: int, c: float = RECURRENCE_C) -> float:
    """One application of recurrence (2):
    ``R_{k+1} = R_k (1 - c (q / R_k)^{1/3})`` (the paper's upper bound on
    the number of live variables after one more iteration)."""
    if r <= 0:
        return 0.0
    return r * (1.0 - c * (q / r) ** (1.0 / 3.0))


def simulate_recurrence(
    r0: float, q: int, c: float = RECURRENCE_C, threshold: float = 1.0
) -> list[float]:
    """Iterate recurrence (2) from ``R_0 = r0`` until ``R_k <= threshold``.

    Returns the full trajectory ``[R_0, R_1, ...]``; its length - 1 is the
    predicted worst-case number of protocol iterations in a phase.
    """
    traj = [float(r0)]
    r = float(r0)
    guard = 0
    while r > threshold:
        r = recurrence_step(r, q, c)
        if r < 0:
            r = 0.0
        traj.append(r)
        guard += 1
        if guard > 10_000_000:  # pragma: no cover
            raise RuntimeError("recurrence failed to converge")
    return traj


def phi_bound(n_live: int, q: int) -> float:
    """Theorem 6 shape: ``Phi <= const * n_live^{1/3} log*(n_live)``
    (returned without the unspecified constant, i.e. the growth term)."""
    if n_live <= 1:
        return 1.0
    return n_live ** (1.0 / 3.0) * max(1, log_star(n_live))


def total_time_bound(n_prime: int, N: int, q: int) -> float:
    """Theorem 1 shape: ``(N')^{1/3} log* N' + log N`` (growth term)."""
    return phi_bound(n_prime, q) + math.log2(max(2, N))


def lower_bound_exact_r(M: int, N: int, r: int) -> float:
    """Theorem 7: any scheme with *exactly* r copies per variable needs
    worst-case access time ``Omega((M/N)^{1/r})`` (growth term)."""
    if r <= 0:
        raise ValueError("r must be positive")
    return (M / N) ** (1.0 / r)


def lower_bound_average_r(M: int, N: int, r: float) -> float:
    """[UW87] (quoted in the introduction): with r copies on *average*,
    worst-case time is ``Omega((M/N)^{1/(2r)})`` (growth term)."""
    if r <= 0:
        raise ValueError("r must be positive")
    return (M / N) ** (1.0 / (2.0 * r))
