"""Section 4: explicit indexing of variables, modules, and copy slots.

The paper's implementation layer for ``q = 2`` and ``n`` odd.  Each
variable index ``i in [0, M)`` maps to a matrix ``A_i`` (a representative
of a distinct coset of ``PGL2(2^n)/H0``) computable in O(log N) field
operations with O(1) registers, so no processor ever stores a memory map.

Construction recap (all in the quadratic extension L = F_{2^{2n}} with
generator lambda):

* ``rho = (2^{2n} - 1)/3``, ``sigma = 2^n + 1``, ``tau = sigma / 3``
  (integral because n is odd), ``w = lambda^rho`` generates F_4^*;
* a matrix row ``(x, y)`` over ``K = F_{2^n}`` is the element
  ``x*w + y`` of L ((w,1) is a basis since n odd keeps w outside K);
* ``k(s, t) = (s + t*sigma) mod rho``;
* the representative matrices are the four families (paper Section 4)

    S1 = { <1, lambda^(i*sigma) w> },
    S2 = { <1, lambda^k(s,t) w^j> },
    S3 = { <lambda^k(s,t) w^j, 1> },
    S4 = { <lambda^s, lambda^i w^j> : 1 <= i < rho, tau !| i,
           lambda^s (w^j lambda^i)^{-1} not in K^* }.

The S4 side condition simplifies dramatically: K^* consists of the
lambda-powers with exponent divisible by sigma, so the condition excludes
exactly the ``i`` with ``i === s - j*rho (mod sigma)``; since
``rho === tau (mod sigma)``, the three excluded residues are
``{s, s + tau, s + 2*tau}`` -- one per j, each coprime-to-tau because
``1 <= s < tau``.  Counting valid pairs below a threshold is then pure
floor arithmetic, which yields the O(log N) unranking the paper's
Theorem 8 asserts (its proof was omitted there "due to space
limitations"; the exhaustive tests for n = 3, 5 verify completeness and
distinctness of this realization).

The module also provides the physical *slot* of a copy inside its module
(Lemma 4): module ``u`` stores the variables ``B_u (1, p_k; 0, 1) H0``
at slots ``k`` in P_gamma order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro.obs as _obs
from repro.gf.gf2m import GF2m
from repro.gf.subfield import BasisDecomposition, FieldEmbedding
from repro.core.graph import MemoryGraph
from repro.pgl.matrix import Mat, pgl2_canon, pgl2_inv, pgl2_mul, vcanon, vmul

__all__ = ["OpCounter", "AddressLayer", "batched_slots"]


def batched_slots(
    graph: MemoryGraph,
    mats: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    modules: np.ndarray,
) -> np.ndarray:
    """Vectorized Lemma-4 slot computation (the batched coset lookup).

    For each (variable matrix A, module u): the slot is the unique k
    with ``B_u (1, p_k; 0, 1) H0 == A H0``; scan the |H0| = q^3 - q
    right translates of ``B_u^{-1} A`` for the shape ``(1, p; 0, 1)``
    with ``p in P_gamma``.  Shared by the O(log N) layer and the
    enumerated fallback -- the lookup depends only on the graph, not on
    how the matrices were unranked.
    """
    F = graph.F
    V, copies = modules.shape
    qn1 = F.order + 1
    s = modules // qn1
    t = modules % qn1 - 1
    gs = F.vexp(s.reshape(-1))
    tflat = t.reshape(-1)
    diag = tflat < 0
    # B_u: (gs, 0; 0, 1) when diag else (t, gs; 1, 0)
    Ba = np.where(diag, gs, tflat)
    Bb = np.where(diag, np.int64(0), gs)
    Bc = np.where(diag, np.int64(0), np.int64(1))
    Bd = np.where(diag, np.int64(1), np.int64(0))
    # projective inverse = adjugate (char 2): (d, b; c, a)
    Ia, Ib, Ic, Id = Bd, Bb, Bc, Ba
    # broadcast A over its copies
    Aa = np.repeat(mats[0], copies)
    Ab = np.repeat(mats[1], copies)
    Ac = np.repeat(mats[2], copies)
    Ad = np.repeat(mats[3], copies)
    Ca, Cb, Cc, Cd = vmul(F, (Ia, Ib, Ic, Id), (Aa, Ab, Ac, Ad))
    slot = np.full(V * copies, -1, dtype=np.int64)
    for h in graph.H0.elements():
        Ta, Tb, Tc, Td = vcanon(
            F, vmul(F, (Ca, Cb, Cc, Cd), tuple(np.int64(x) for x in h))
        )
        pidx = graph.p_gamma_inverse[Tb]
        mask = (Tc == 0) & (Td == 1) & (Ta == 1) & (pidx >= 0)
        slot = np.where(mask, pidx, slot)
    if np.any(slot < 0):
        raise AssertionError("vectorized slot computation failed")
    return slot.reshape(V, copies)


@dataclass
class OpCounter:
    """Tally of elementary operations spent in address computations.

    The paper counts "arithmetic operations and operations in F_{q^n}".
    Our simulator performs discrete logs by table lookup; in the paper's
    O(1)-register model a dlog over the on-the-fly representation costs
    O(n) = O(log N) elementary steps, so :meth:`modeled_steps` charges
    each dlog ``n`` steps while field ops and integer ops cost 1.
    """

    field_ops: int = 0
    int_ops: int = 0
    dlogs: int = 0
    search_iters: int = 0
    calls: int = 0
    n: int = field(default=0)

    def modeled_steps(self) -> int:
        """Total steps in the paper's cost model (dlog == n steps)."""
        return (
            self.field_ops + self.int_ops + self.search_iters + self.dlogs * self.n
        )

    def reset(self) -> None:
        """Zero every counter (keeps ``n``)."""
        self.field_ops = self.int_ops = self.dlogs = 0
        self.search_iters = self.calls = 0


class AddressLayer:
    """Index <-> coset bijections of Section 4 (q = 2, n odd).

    Parameters
    ----------
    graph:
        The :class:`~repro.core.graph.MemoryGraph`; must have ``q == 2``
        and odd ``n``.
    """

    def __init__(self, graph: MemoryGraph):
        if graph.q != 2:
            raise ValueError(
                "the paper's explicit addressing is specified for q = 2 "
                "(general q is deferred to its extended version); use the "
                "enumerated fallback in PPScheme for other q"
            )
        if graph.n % 2 == 0:
            raise ValueError("Section 4 requires n odd (so that 3 | 2^n + 1)")
        self.graph = graph
        n = graph.n
        self.n = n
        self.K = graph.F
        self.L = GF2m.get(2 * n)
        self.G = self.L.group_order  # 2^{2n} - 1
        self.rho = self.G // 3
        self.sigma = (1 << n) + 1
        self.tau = self.sigma // 3
        self.smax = ((1 << (n - 1)) - 1) // 3
        self.w = self.L.exp(self.rho)
        self.embedding = FieldEmbedding(self.K, self.L)
        self.basis = BasisDecomposition(self.embedding, self.w)
        # Block layout: [S1 | S2 | S3 | S4]
        qn = 1 << n
        self.c1 = qn - 1
        self.c2 = (qn - 1) * ((qn >> 1) - 1)
        self.c3 = self.c2
        self.c4_per_s = (qn - 1) * (qn - 3)
        self.c4 = self.smax * self.c4_per_s
        self.M = self.c1 + self.c2 + self.c3 + self.c4
        if self.M != graph.M:
            raise AssertionError(
                f"S-set sizes sum to {self.M}, but M = {graph.M}"
            )
        self.ops = OpCounter(n=n)
        self._h0_elements = graph.H0.elements()

    # ------------------------------------------------------------------
    # S4 combinatorics
    # ------------------------------------------------------------------

    def _s4_residues(self, s: int) -> tuple[int, int, int]:
        """The three excluded residues mod sigma for parameter ``s``:
        ``r_j = (s - j*rho) mod sigma`` -> ``(s, s + 2*tau, s + tau)``."""
        return (s, (s + 2 * self.tau) % self.sigma, (s + self.tau) % self.sigma)

    def _s4_count(self, s: int, x: int) -> int:
        """Number of valid S4 pairs ``(i, j)`` with ``1 <= i <= x``.

        Valid means ``tau !| i`` and ``i mod sigma != r_j`` for the pair's
        own ``j``; each invalid residue kills exactly one ``j`` at its
        ``i`` values, and those ``i`` are never multiples of tau, so

            count(x) = 3 * (x - floor(x / tau)) - sum_j |{i <= x : i === r_j}|.
        """
        if x <= 0:
            return 0
        base = 3 * (x - x // self.tau)
        excl = 0
        for r in self._s4_residues(s):
            if x >= r:
                excl += (x - r) // self.sigma + 1
        return base - excl

    def _s4_unrank(self, s: int, r: int) -> tuple[int, int]:
        """The ``r``-th (0-based) valid pair ``(i, j)`` for parameter ``s``,
        ordered by ``i`` then ``j``.  O(log rho) binary search."""
        if not 0 <= r < self.c4_per_s:
            raise ValueError(f"S4 residual rank {r} out of range")
        lo, hi = 1, self.rho - 1  # smallest i with count(i) >= r + 1
        while lo < hi:
            mid = (lo + hi) // 2
            self.ops.search_iters += 1
            if self._s4_count(s, mid) >= r + 1:
                hi = mid
            else:
                lo = mid + 1
        i = lo
        within = r - self._s4_count(s, i - 1)
        res = self._s4_residues(s)
        imod = i % self.sigma
        valid_js = [j for j in range(3) if imod != res[j]]
        return i, valid_js[within]

    def _s4_rank(self, s: int, i: int, j: int) -> int:
        """Inverse of :meth:`_s4_unrank`."""
        res = self._s4_residues(s)
        imod = i % self.sigma
        valid_js = [jj for jj in range(3) if imod != res[jj]]
        return self._s4_count(s, i - 1) + valid_js.index(j)

    def _s4_pair_valid(self, s: int, i: int, j: int) -> bool:
        """Validity of an S4 pair (range, tau, and subfield conditions)."""
        if not (1 <= i < self.rho) or i % self.tau == 0:
            return False
        return i % self.sigma != self._s4_residues(s)[j]

    # ------------------------------------------------------------------
    # k(s, t) helpers for S2 / S3
    # ------------------------------------------------------------------

    def _k(self, s: int, t: int) -> int:
        """``k(s, t) = (s + t*sigma) mod rho``."""
        return (s + t * self.sigma) % self.rho

    def _k_invert(self, kappa: int) -> tuple[int, int] | None:
        """Invert ``k``: find the unique in-range ``(s, t)`` with
        ``k(s, t) == kappa``, or None.

        ``s + t*sigma`` lies in ``[1, 1 + (2^n - 2) sigma] < 3 rho``, so the
        wrap count ``m`` is 0, 1, or 2: test ``kappa + m*rho``.
        """
        for m in range(3):
            cand = kappa + m * self.rho
            self.ops.int_ops += 2
            t, s = divmod(cand, self.sigma)
            if 1 <= s <= self.smax and 0 <= t < (1 << self.n) - 1:
                return s, t
        return None

    # ------------------------------------------------------------------
    # unrank: index -> matrix
    # ------------------------------------------------------------------

    def _pair_to_matrix(self, alpha: int, beta: int) -> Mat:
        """Convert ``<alpha, beta>`` (two L elements) to the canonical
        PGL2 matrix over K via the (w, 1) basis split."""
        x, y = self.basis.split(alpha)
        z, v = self.basis.split(beta)
        self.ops.field_ops += 8  # two splits: frobenius + mul + add each
        return pgl2_canon(self.K, (x, y, z, v))

    def unrank(self, index: int) -> Mat:
        """The matrix ``A_index`` -- canonical representative of the
        ``index``-th variable coset.  O(log N) operations, O(1) storage.
        """
        if not 0 <= index < self.M:
            raise ValueError(f"variable index {index} out of [0, {self.M})")
        self.ops.calls += 1
        if _obs.metrics_enabled():
            _obs.metrics().counter("address.unranks").inc()
        if _obs.enabled():
            led = _obs.ledger()
            if led is not None:
                led.count("addr.on_the_fly")
        L = self.L
        if index < self.c1:
            i = index
            alpha = 1
            beta = L.exp(i * self.sigma + self.rho)
            self.ops.dlogs += 1
            self.ops.int_ops += 2
            return self._pair_to_matrix(alpha, beta)
        index -= self.c1
        if index < self.c2:
            s, t, j = self._s2_params(index)
            alpha = 1
            beta = L.exp(self._k(s, t) + j * self.rho)
            self.ops.dlogs += 1
            self.ops.int_ops += 4
            return self._pair_to_matrix(alpha, beta)
        index -= self.c2
        if index < self.c3:
            s, t, j = self._s2_params(index)
            alpha = L.exp(self._k(s, t) + j * self.rho)
            beta = 1
            self.ops.dlogs += 1
            self.ops.int_ops += 4
            return self._pair_to_matrix(alpha, beta)
        index -= self.c3
        s = index // self.c4_per_s + 1
        r = index % self.c4_per_s
        i, j = self._s4_unrank(s, r)
        alpha = L.exp(s)
        beta = L.exp(i + j * self.rho)
        self.ops.dlogs += 2
        self.ops.int_ops += 4
        return self._pair_to_matrix(alpha, beta)

    def _s2_params(self, r: int) -> tuple[int, int, int]:
        """Decode an S2/S3 block offset into (s, t, j): j minor, then t,
        then s (1-based)."""
        j = r % 3
        r //= 3
        qn1 = (1 << self.n) - 1
        t = r % qn1
        s = r // qn1 + 1
        return s, t, j

    def _s2_offset(self, s: int, t: int, j: int) -> int:
        """Inverse of :meth:`_s2_params`."""
        qn1 = (1 << self.n) - 1
        return ((s - 1) * qn1 + t) * 3 + j

    # ------------------------------------------------------------------
    # rank: matrix -> index
    # ------------------------------------------------------------------

    def rank(self, m: Mat) -> int:
        """Index of the variable coset containing matrix ``m``.

        Scans the |H0| = 6 right translates; for each, matches the
        translate (up to a K^* scalar) against the four S-set patterns.
        Theorem 8 guarantees exactly one hit; we assert uniqueness.
        """
        hits = {self._rank_one(pgl2_mul(self.K, m, h)) for h in self._h0_elements}
        hits.discard(None)
        if len(hits) != 1:
            raise AssertionError(
                f"matrix {m} matched {len(hits)} S-set entries; Theorem 8 "
                "guarantees exactly one"
            )
        return hits.pop()

    def _rank_one(self, T: Mat) -> int | None:
        """Match a single (canonical) matrix against the S-set patterns,
        allowing an arbitrary K^* scalar.  Returns a global index or None.
        """
        L = self.L
        x, y, z, v = T
        alpha = self.basis.combine(x, y)
        beta = self.basis.combine(z, v)
        # -- patterns with alpha scaled to 1 (S1, S2): alpha must be in K^*.
        if x == 0:  # alpha = y in K
            ratio = L.div(beta, alpha)
            e = L.log(ratio)
            # S1: e == i*sigma + rho
            diff = (e - self.rho) % self.G
            if diff % self.sigma == 0:
                i = diff // self.sigma
                if 0 <= i < (1 << self.n) - 1:
                    return i
            # S2: e == k(s, t) + j*rho
            for j in range(3):
                kappa = (e - j * self.rho) % self.G
                if kappa < self.rho:
                    st = self._k_invert(kappa)
                    if st is not None:
                        s, t = st
                        return self.c1 + self._s2_offset(s, t, j)
        # -- pattern with beta scaled to 1 (S3): beta in K^*.
        if z == 0:  # beta = v in K^* (v != 0 by nonsingularity)
            ratio = L.div(alpha, beta)
            e = L.log(ratio)
            for j in range(3):
                kappa = (e - j * self.rho) % self.G
                if kappa < self.rho:
                    st = self._k_invert(kappa)
                    if st is not None:
                        s, t = st
                        return self.c1 + self.c2 + self._s2_offset(s, t, j)
        # -- S4: alpha scaled to lambda^s with 1 <= s <= smax.
        ea = L.log(alpha)
        s = ea % self.sigma
        if 1 <= s <= self.smax:
            # mu = lambda^(s - ea) in K^*; beta' = mu * beta
            eb = (L.log(beta) + s - ea) % self.G
            for j in range(3):
                i = (eb - j * self.rho) % self.G
                if self._s4_pair_valid(s, i, j):
                    return (
                        self.c1
                        + self.c2
                        + self.c3
                        + (s - 1) * self.c4_per_s
                        + self._s4_rank(s, i, j)
                    )
        return None

    # ------------------------------------------------------------------
    # vectorized unrank
    # ------------------------------------------------------------------

    def vunrank(
        self, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`unrank`: map an int64 index array to the four
        entry arrays of canonical variable matrices.

        Same O(log N) structure, executed as ~2n numpy passes for the S4
        binary search; this is what makes protocol experiments at
        N = 262k feasible.
        """
        if _obs.enabled():
            led = _obs.ledger()
            if led is not None:
                led.count("addr.on_the_fly", int(np.asarray(indices).size))
            with _obs.span(
                "address.vunrank",
                timer="address.vunrank_seconds",
                count=int(np.asarray(indices).size),
            ):
                return self._vunrank(indices)
        return self._vunrank(indices)

    def _vunrank(
        self, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        idx = np.asarray(indices, dtype=np.int64)
        if np.any((idx < 0) | (idx >= self.M)):
            raise ValueError("variable index out of range in vunrank")
        L = self.L
        G = self.G
        rho, sigma, tau = self.rho, self.sigma, self.tau
        qn1 = (1 << self.n) - 1

        e_alpha = np.zeros_like(idx)  # exponent of alpha; -1 means alpha == 1
        e_beta = np.zeros_like(idx)
        alpha_is_one = np.zeros(idx.shape, dtype=bool)
        beta_is_one = np.zeros(idx.shape, dtype=bool)

        b1 = idx < self.c1
        b2 = (~b1) & (idx < self.c1 + self.c2)
        b3 = (~b1) & (~b2) & (idx < self.c1 + self.c2 + self.c3)
        b4 = (~b1) & (~b2) & (~b3)

        # S1
        i1 = idx[b1]
        alpha_is_one[b1] = True
        e_beta[b1] = (i1 * sigma + rho) % G

        # S2 / S3 share parameter decoding
        def s2_exponent(off: np.ndarray) -> np.ndarray:
            j = off % 3
            r = off // 3
            t = r % qn1
            s = r // qn1 + 1
            return ((s + t * sigma) % rho + j * rho) % G

        off2 = idx[b2] - self.c1
        alpha_is_one[b2] = True
        e_beta[b2] = s2_exponent(off2)

        off3 = idx[b3] - self.c1 - self.c2
        e_alpha[b3] = s2_exponent(off3)
        beta_is_one[b3] = True

        # S4: vector binary search
        off4 = idx[b4] - self.c1 - self.c2 - self.c3
        s4 = off4 // self.c4_per_s + 1
        r4 = off4 % self.c4_per_s
        res0 = s4 % sigma
        res1 = (s4 + 2 * tau) % sigma
        res2 = (s4 + tau) % sigma

        def vcount(xv: np.ndarray) -> np.ndarray:
            base = 3 * (xv - xv // tau)
            excl = np.zeros_like(xv)
            for r in (res0, res1, res2):
                excl += np.where(xv >= r, (xv - r) // sigma + 1, 0)
            return np.where(xv <= 0, 0, base - excl)

        lo = np.ones_like(off4)
        hi = np.full_like(off4, rho - 1)
        while np.any(lo < hi):
            mid = (lo + hi) // 2
            ge = vcount(mid) >= r4 + 1
            hi = np.where(ge, mid, hi)
            lo = np.where(ge, lo, mid + 1)
        i4 = lo
        within = r4 - vcount(i4 - 1)
        imod = i4 % sigma
        # At most one j is excluded at each i (the residues are distinct
        # mod sigma).  The `within`-th valid j skips over the excluded one.
        j_excl = np.full_like(off4, 3)  # 3 == "no exclusion"
        j_excl = np.where(imod == res2, 2, j_excl)
        j_excl = np.where(imod == res1, 1, j_excl)
        j_excl = np.where(imod == res0, 0, j_excl)
        j4 = within + (within >= j_excl)
        if np.any((j4 < 0) | (j4 > 2)):
            raise AssertionError("S4 vector unrank failed to pick a valid j")
        e_alpha[b4] = s4 % G
        e_beta[b4] = (i4 + j4 * rho) % G

        alpha = np.where(alpha_is_one, np.int64(1), L.vexp(e_alpha))
        beta = np.where(beta_is_one, np.int64(1), L.vexp(e_beta))
        xz, yv = self.basis.vsplit(alpha)
        zz, vv = self.basis.vsplit(beta)
        return vcanon(self.K, (xz, yv, zz, vv))

    # ------------------------------------------------------------------
    # vectorized rank
    # ------------------------------------------------------------------

    def vrank(
        self, mats: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    ) -> np.ndarray:
        """Vectorized :meth:`rank`: indices of a batch of variable
        matrices (any coset representatives).

        Mirrors the scalar pattern matching across the |H0| right
        translates, expressed as numpy masks; exactly one (translate,
        pattern) hits per item by Theorem 8.
        """
        a, b, c, d = (np.asarray(x, dtype=np.int64) for x in mats)
        out = np.full(a.shape[0], -1, dtype=np.int64)
        for h in self._h0_elements:
            prod = vmul(self.K, (a, b, c, d), tuple(np.int64(x) for x in h))
            Ta, Tb, Tc, Td = vcanon(self.K, prod)
            cand = self._vrank_one(Ta, Tb, Tc, Td)
            take = (out < 0) & (cand >= 0)
            out[take] = cand[take]
        if np.any(out < 0):
            raise AssertionError("vrank failed to match some matrices")
        return out

    def _vrank_one(
        self, x: np.ndarray, y: np.ndarray, z: np.ndarray, v: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`_rank_one` for a batch of canonical matrices;
        -1 where no S-set pattern matches."""
        L = self.L
        G, rho, sigma, tau = self.G, self.rho, self.sigma, self.tau
        qn1 = (1 << self.n) - 1
        B = x.shape[0]
        out = np.full(B, -1, dtype=np.int64)

        alpha = self.basis.vcombine(x, y)
        beta = self.basis.vcombine(z, v)
        e_ab = L.vlog(L.vdiv(beta, alpha))  # log(beta/alpha), always defined

        def invert_k(
            kappa: np.ndarray, valid: np.ndarray
        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            """Vector version of _k_invert: returns (s, t, ok)."""
            s_out = np.zeros_like(kappa)
            t_out = np.zeros_like(kappa)
            ok = np.zeros(kappa.shape, dtype=bool)
            for m in range(3):
                candv = kappa + m * rho
                t_c, s_c = np.divmod(candv, sigma)
                good = (
                    valid
                    & ~ok
                    & (s_c >= 1)
                    & (s_c <= self.smax)
                    & (t_c >= 0)
                    & (t_c < qn1)
                )
                s_out = np.where(good, s_c, s_out)
                t_out = np.where(good, t_c, t_out)
                ok |= good
            return s_out, t_out, ok

        # ---- S1 / S2: alpha in K^*  (canonical form has x == 0)
        m_a = x == 0
        diff = (e_ab - rho) % G
        s1_ok = m_a & (diff % sigma == 0) & (diff // sigma < qn1)
        out = np.where(s1_ok & (out < 0), diff // sigma, out)
        for j in range(3):
            kappa = (e_ab - j * rho) % G
            s_v, t_v, ok = invert_k(kappa, m_a & (kappa < rho) & (out < 0))
            offset = ((s_v - 1) * qn1 + t_v) * 3 + j
            out = np.where(ok, self.c1 + offset, out)

        # ---- S3: beta in K^* (canonical form has z == 0 => beta == v)
        m_b = z == 0
        e_ba = (-e_ab) % G
        for j in range(3):
            kappa = (e_ba - j * rho) % G
            s_v, t_v, ok = invert_k(kappa, m_b & (kappa < rho) & (out < 0))
            offset = ((s_v - 1) * qn1 + t_v) * 3 + j
            out = np.where(ok, self.c1 + self.c2 + offset, out)

        # ---- S4: alpha ~ lambda^s with 1 <= s <= smax
        ea = L.vlog(alpha)
        s4 = ea % sigma
        m_s4 = (s4 >= 1) & (s4 <= self.smax)
        eb = (L.vlog(beta) + s4 - ea) % G
        res0 = s4 % sigma
        res1 = (s4 + 2 * tau) % sigma
        res2 = (s4 + tau) % sigma
        for j in range(3):
            i_v = (eb - j * rho) % G
            imod = i_v % sigma
            res_j = (res0, res1, res2)[j]
            ok = (
                m_s4
                & (out < 0)
                & (i_v >= 1)
                & (i_v < rho)
                & (i_v % tau != 0)
                & (imod != res_j)
            )
            # rank within s: count of valid pairs with i' < i, plus the
            # position of j among the valid js at i.
            xm1 = i_v - 1
            base = 3 * (xm1 - xm1 // tau)
            excl = np.zeros_like(xm1)
            for r in (res0, res1, res2):
                excl += np.where(xm1 >= r, (xm1 - r) // sigma + 1, 0)
            count_below = np.where(xm1 <= 0, 0, base - excl)
            j_excl = np.full_like(i_v, 3)
            j_excl = np.where(imod == res2, 2, j_excl)
            j_excl = np.where(imod == res1, 1, j_excl)
            j_excl = np.where(imod == res0, 0, j_excl)
            pos = j - (j > j_excl)
            idx = (
                self.c1
                + self.c2
                + self.c3
                + (s4 - 1) * self.c4_per_s
                + count_below
                + pos
            )
            out = np.where(ok, idx, out)
        return out

    # ------------------------------------------------------------------
    # physical copy slots (Lemma 4)
    # ------------------------------------------------------------------

    def slot_of(self, A: Mat, module_index: int) -> int:
        """Slot ``k`` of variable ``A H0``'s copy inside module
        ``module_index``: the unique k with
        ``B_u (1, p_k; 0, 1) H0 == A H0``.

        O(1) group operations (|H0| products) plus one P_gamma lookup.
        """
        graph = self.graph
        K = self.K
        B = graph.modules.rep_of(module_index)
        C = pgl2_mul(K, pgl2_inv(K, B), A)
        for h in self._h0_elements:
            a, b, c, d = pgl2_mul(K, C, h)
            if c == 0 and d == 1 and a == 1:
                k = int(graph.p_gamma_inverse[b])
                if k >= 0:
                    return k
        raise ValueError(
            f"variable {A} has no copy in module {module_index}"
        )

    def locate(self, index: int) -> list[tuple[int, int]]:
        """Physical addresses of all ``q + 1`` copies of variable
        ``index``: a list of ``(module, slot)`` pairs in copy order."""
        A = self.unrank(index)
        out = []
        for mat in self.graph.copy_matrices(A):
            u = self.graph.modules.index_of(mat)
            out.append((u, self.slot_of(A, u)))
        return out

    def vslots(
        self,
        mats: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        modules: np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`slot_of` -- ``(V, q+1)`` slots for canonical
        variable matrices against their copy modules."""
        return batched_slots(self.graph, mats, modules)

    def vlocate(
        self, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`locate`: ``(modules, slots)``, both
        ``(V, q+1)``, for a batch of variable indices."""
        mats = self.vunrank(indices)
        modules = self.graph.vgamma_variables(mats)
        return modules, self.vslots(mats, modules)

    def __repr__(self) -> str:
        return (
            f"AddressLayer(n={self.n}, M={self.M}, blocks="
            f"[{self.c1}, {self.c2}, {self.c3}, {self.c4}])"
        )
