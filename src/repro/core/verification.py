"""Self-verification of a scheme instance.

``verify_instance(q, n)`` runs the structural invariants a downstream
user should check before trusting a new parameterization on their
machine: Fact-1 counts, Lemma-1/2 duality, Theorem-2 pair intersections,
addressing round-trips, placement injectivity, and a read-your-writes
probe.  Levels trade coverage for time:

* ``quick``    -- sampled checks only (seconds at any n);
* ``standard`` -- adds exhaustive addressing round-trip when M is small;
* ``full``     -- adds definition-level edge enumeration (q^{3n} work;
  refuses when infeasible).

Exposed on the CLI as ``python -m repro verify``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bounds import expansion_lower_bound, fact1_counts
from repro.core.scheme import PPScheme

__all__ = ["VerificationReport", "verify_instance"]

_LEVELS = ("quick", "standard", "full")


@dataclass
class VerificationReport:
    """Outcome of one verification run."""

    q: int
    n: int
    level: str
    checks: list[tuple[str, bool, str]] = field(default_factory=list)

    def record(self, name: str, ok: bool, detail: str = "") -> None:
        """Append one check result."""
        self.checks.append((name, bool(ok), detail))

    @property
    def passed(self) -> bool:
        """True iff every check passed."""
        return all(ok for _, ok, _ in self.checks)

    def render(self) -> str:
        """Human-readable summary."""
        lines = [f"verification of PPScheme(q={self.q}, n={self.n}), level={self.level}"]
        for name, ok, detail in self.checks:
            mark = "PASS" if ok else "FAIL"
            suffix = f"  ({detail})" if detail else ""
            lines.append(f"  [{mark}] {name}{suffix}")
        lines.append("RESULT: " + ("all checks passed" if self.passed else "FAILURES PRESENT"))
        return "\n".join(lines)


def verify_instance(
    q: int = 2, n: int = 5, level: str = "quick", seed: int = 0
) -> VerificationReport:
    """Run the invariant suite against a live instance."""
    if level not in _LEVELS:
        raise ValueError(f"level must be one of {_LEVELS}")
    rep = VerificationReport(q=q, n=n, level=level)
    scheme = PPScheme(q, n)
    g = scheme.graph
    rng = np.random.default_rng(seed)

    # 1. Fact 1 counts
    c = fact1_counts(q, n)
    rep.record(
        "fact1-counts",
        g.N == c["U"] and g.M == c["V"],
        f"N={g.N}, M={g.M}",
    )

    # 2. sampled Lemma-1 structure: q+1 distinct copies per variable
    sample = min(512, g.M)
    mats = g.random_variable_matrices(sample, rng)
    mods = g.vgamma_variables(mats)
    distinct_rows = all(len(set(r.tolist())) == q + 1 for r in mods[:128])
    rep.record("lemma1-distinct-copies", distinct_rows, f"{sample} sampled")

    # 3. Lemma-1/2 duality on a few modules
    dual_ok = True
    for u in rng.integers(0, g.N, 4):
        u = int(u)
        for mat in g.gamma_module(u)[:4]:
            dual_ok &= u in g.gamma_variable(g.variables.canon(mat))
    rep.record("lemma2-duality", dual_ok)

    # 4. Theorem 2 on sampled pairs
    worst = 0
    rows = [set(r.tolist()) for r in mods[:100]]
    for i in range(len(rows)):
        for j in range(i):
            worst = max(worst, len(rows[i] & rows[j]))
    rep.record("theorem2-pairs", worst <= 1, f"max intersection {worst}")

    # 5. Theorem 4 on the sample
    gam = int(np.unique(mods).size)
    bound = expansion_lower_bound(sample, q)
    rep.record("theorem4-sample", gam >= bound, f"{gam} >= {bound:.1f}")

    # 6. addressing round-trip
    if level in ("standard", "full") and g.M <= 400_000:
        idx = np.arange(g.M, dtype=np.int64)
    else:
        idx = np.sort(
            rng.choice(min(g.M, 2**62), size=min(2000, g.M), replace=False)
        ).astype(np.int64) % g.M
        idx = np.unique(idx)
    try:
        mats2 = scheme.addressing.vunrank(idx)
        if hasattr(scheme.addressing, "vrank"):
            back = scheme.addressing.vrank(mats2)
        else:
            back = np.fromiter(
                (
                    scheme.addressing.rank(tuple(int(x[k]) for x in mats2))
                    for k in range(idx.shape[0])
                ),
                dtype=np.int64,
            )
        rep.record(
            "addressing-roundtrip",
            bool(np.array_equal(back, idx)),
            f"{idx.shape[0]} indices",
        )
    except Exception as exc:  # pragma: no cover
        rep.record("addressing-roundtrip", False, repr(exc))

    # 7. placement injectivity on the sample
    take = idx[: min(2000, idx.shape[0])]
    m2, s2 = scheme.placement_for(take)
    cells = set(zip(m2.ravel().tolist(), s2.ravel().tolist()))
    rep.record(
        "placement-injective",
        len(cells) == take.shape[0] * (q + 1),
        f"{take.shape[0]} variables",
    )

    # 8. read-your-writes probe
    probe = scheme.random_request_set(min(256, g.M, g.N), seed=seed)
    store = scheme.make_store()
    scheme.write(probe, values=probe % (1 << 20), store=store, time=1)
    res = scheme.read(probe, store=store, time=2)
    rep.record(
        "read-your-writes",
        bool((res.values == probe % (1 << 20)).all()),
        f"{probe.shape[0]} variables",
    )

    # 9. full: definition-level edges
    if level == "full":
        if g.F.order ** 3 > 3_000_000:
            rep.record("definition-edges", False, "infeasible at this size")
        else:
            edges = g.explicit_edges()
            ok = len(edges) == g.M * (q + 1)
            rep.record("definition-edges", ok, f"{len(edges)} edges")
    return rep
