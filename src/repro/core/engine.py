"""The engine switch: scalar reference loop vs vectorized batch loop.

The paper's protocol is array-at-a-time -- every iteration all live
processors re-request their copies' modules and every module serves one
request -- and the production path simulates it that way, as numpy batch
operations (:func:`repro.core.protocol._run_phase`).  Batch code is
fast but hard to trust by inspection: a wrong mask or an off-by-one in
a segment reduction produces *plausible* iteration counts and silently
wrong winners.

This module keeps the semantics honest.  :func:`run_phase_scalar` is a
pure-Python, one-access-per-processor transcription of the Section-3
round loop -- the code a careful reader would write straight from the
paper, with per-module dict arbitration (:meth:`repro.mpc.machine.MPC.
step_scalar`) instead of vectorized sort/argmin.  Both executors
consume the identical arbitration priorities (and the identical RNG
stream for the random policy), so a run under ``engine='scalar'`` must
match a run under ``engine='vector'`` *bit for bit*: same winners, same
R_k histories, same module state, same fault reports.  The differential
suite (``tests/core/test_engine_differential.py``) enforces exactly
that across every scheme, which is what lets the vector hot path be
optimized aggressively without trusting it.

Engine selection: every access entry point takes ``engine='scalar' |
'vector' | None``; ``None`` resolves through the ``REPRO_ENGINE``
environment variable and defaults to ``'vector'``.  The scalar engine
is an *oracle*, not a fallback -- it is orders of magnitude slower and
intended for differential testing and debugging only.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import TYPE_CHECKING

import numpy as np

from repro.core.protocol import PhaseTrace
from repro.mpc.machine import MPC
from repro.mpc.memory import SharedCopyStore

if TYPE_CHECKING:  # ledger only ever arrives from the obs switchboard
    from repro.obs.ledger import Ledger

__all__ = ["ENGINES", "DEFAULT_ENGINE", "ENGINE_ENV", "resolve_engine", "run_phase_scalar"]

#: Recognized engine names, in preference order.
ENGINES: tuple[str, ...] = ("vector", "scalar")

#: Engine used when the caller passes ``engine=None`` and the
#: environment does not override it.
DEFAULT_ENGINE = "vector"

#: Environment variable consulted by :func:`resolve_engine` -- lets CI
#: re-run an entire test suite under the scalar oracle without touching
#: call sites.
ENGINE_ENV = "REPRO_ENGINE"


def resolve_engine(engine: str | None) -> str:
    """Normalize an ``engine`` argument to a concrete engine name.

    ``None`` resolves to ``$REPRO_ENGINE`` when set, else
    :data:`DEFAULT_ENGINE`; anything outside :data:`ENGINES` raises
    ``ValueError`` at the boundary instead of dispatching nowhere.
    """
    if engine is None:
        import os

        engine = os.environ.get(ENGINE_ENV) or DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; options: {list(ENGINES)}"
        )
    return engine


def run_phase_scalar(
    phase_vars: np.ndarray,
    module_ids: np.ndarray,
    slots: np.ndarray | None,
    mpc: MPC,
    majority: int,
    op: str,
    store: SharedCopyStore | None,
    values: np.ndarray | None,
    out_values: np.ndarray | None,
    time: int,
    collect_history: bool,
    max_iterations: int,
    dead_copy: np.ndarray | None = None,
    grey: np.ndarray | None = None,
    retry_limit: int | None = None,
    allow_partial: bool = False,
    out_lost: np.ndarray | None = None,
    out_sat: np.ndarray | None = None,
    led: Ledger | None = None,
) -> PhaseTrace:
    """One protocol phase, one access per processor per iteration.

    Signature-compatible with the vectorized
    :func:`repro.core.protocol._run_phase`; every quantity it writes
    (``out_values``, ``out_lost``, ``out_sat``, the store cells, the
    MPC stats, the returned :class:`~repro.core.protocol.PhaseTrace`)
    is defined to be identical.  ``led`` attribution mirrors the vector
    path's arbitration/memory leaves.
    """
    P = int(phase_vars.shape[0])
    copies = int(module_ids.shape[1])
    history = [P] if collect_history else []
    if P == 0:
        return PhaseTrace(iterations=0, live_history=history)

    pv = [int(v) for v in phase_vars]
    mods = [[int(module_ids[v, c]) for c in range(copies)] for v in pv]
    slts = (
        [[int(slots[v, c]) for c in range(copies)] for v in pv]
        if slots is not None
        else None
    )
    accessed = [[False] * copies for _ in range(P)]
    hit = [0] * P
    satisfied = [False] * P
    doomed = [False] * P
    if dead_copy is not None:
        for i, v in enumerate(pv):
            alive = copies
            for c in range(copies):
                if dead_copy[v, c]:
                    # dead copies are never requested...
                    accessed[i][c] = True
                    alive -= 1
            if alive < majority:
                # ...and unreachable quorums are resolved up front so
                # the phase can end (caller reports them).
                doomed[i] = True
                satisfied[i] = True
    lost = list(doomed)
    sat_local = [-1] * P if out_sat is not None else None
    best: list[tuple[int, int] | None] = [None] * P  # (stamp, value)
    vals_py = [int(values[v]) for v in pv] if op == "write" else None
    grey_list = [int(g) for g in grey] if grey is not None else None

    iterations = 0
    while not all(satisfied):
        if iterations >= max_iterations:  # pragma: no cover
            raise RuntimeError("protocol exceeded max_iterations")
        if retry_limit is not None and iterations >= retry_limit:
            # Bounded retry exhausted: declare the stragglers lost so
            # the phase terminates instead of spinning on them.
            still = [i for i in range(P) if not satisfied[i]]
            if not allow_partial:
                raise ValueError(
                    f"{len(still)} variables did not reach quorum "
                    f"{majority} within retry_limit={retry_limit} "
                    f"iterations; pass allow_partial=True to proceed "
                    f"without them"
                )
            for i in still:
                lost[i] = True
                satisfied[i] = True
            break
        # every live processor re-requests its unaccessed copy's module
        active: list[tuple[int, int]] = []
        for i in range(P):
            if satisfied[i]:
                continue
            row = accessed[i]
            for c in range(copies):
                if not row[c]:
                    active.append((i, c))
        req_mods = [mods[i][c] for (i, c) in active]
        t0 = _perf_counter() if led is not None else None
        if grey_list is None:
            winners = mpc.step_scalar(req_mods)
        else:
            # a grey module with period j answers only on iterations
            # where (iteration + 1) % j == 0 (healthy period-1 modules
            # always answer)
            blocked = [((iterations + 1) % g) != 0 for g in grey_list]
            winners = mpc.step_scalar(req_mods, blocked=blocked)
        if led is not None:
            led.add_seconds("arbitration", _perf_counter() - t0)
        for w in winners:
            i, c = active[w]
            accessed[i][c] = True
            hit[i] += 1
            if op == "write":
                t0 = _perf_counter() if led is not None else None
                store.write(mods[i][c], slts[i][c], vals_py[i], time)
                if led is not None:
                    led.add_seconds("memory", _perf_counter() - t0)
            elif op == "read":
                t0 = _perf_counter() if led is not None else None
                val, stamp = store.read(mods[i][c], slts[i][c])
                if led is not None:
                    led.add_seconds("memory", _perf_counter() - t0)
                stamp = int(stamp)
                if stamp >= 0:
                    cand = (stamp, int(val))
                    if best[i] is None or cand > best[i]:
                        best[i] = cand
        for i in range(P):
            satisfied[i] = lost[i] or hit[i] >= majority
        iterations += 1
        if sat_local is not None:
            for i in range(P):
                if satisfied[i] and sat_local[i] < 0 and not lost[i]:
                    sat_local[i] = iterations
        if collect_history:
            history.append(sum(1 for i in range(P) if not satisfied[i]))

    if op == "read":
        for i, v in enumerate(pv):
            out_values[v] = best[i][1] if best[i] is not None else -1
    if out_lost is not None:
        for i, v in enumerate(pv):
            out_lost[v] = lost[i]
    if out_sat is not None:
        for i, v in enumerate(pv):
            out_sat[v] = sat_local[i]
    return PhaseTrace(iterations=iterations, live_history=history)
