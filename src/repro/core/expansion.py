"""Expansion analysis of the graph G (Theorems 2-5).

Tools to measure ``|Gamma(S)|`` for variable sets S, search for
adversarially contracting sets, and build the algebraic *tight* sets
that witness the optimality of Theorem 4 when ``n`` is composite (the
variables inside an embedded ``PGL2(q^d)`` for a proper divisor ``d | n``
expand by only ``Theta(|S|^{2/3} q)``).
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import expansion_lower_bound
from repro.core.graph import MemoryGraph
from repro.gf.gf2m import GF2m
from repro.gf.subfield import FieldEmbedding
from repro.pgl.matrix import Mat

__all__ = [
    "gamma_size",
    "gamma_of_set",
    "sampled_expansion_profile",
    "greedy_contracting_set",
    "subgroup_tight_set",
]


def gamma_of_set(graph: MemoryGraph, mats: list[Mat]) -> set[int]:
    """``Gamma(S)``: the union of module neighbourhoods of the variables."""
    out: set[int] = set()
    for A in mats:
        out.update(graph.gamma_variable(A))
    return out


def gamma_size(graph: MemoryGraph, mats: list[Mat]) -> int:
    """``|Gamma(S)|``."""
    return len(gamma_of_set(graph, mats))


def sampled_expansion_profile(
    graph: MemoryGraph,
    sizes: list[int],
    rng: np.random.Generator,
    trials: int = 5,
) -> list[dict]:
    """Measure min/mean ``|Gamma(S)|`` over random S of each size.

    Returns one row per size with the Theorem-4 lower bound and the
    measured min/mean/ratio.  Uses the vectorized neighbour kernel.
    """
    rows = []
    for size in sizes:
        if size > graph.M:
            continue
        observed = []
        for _ in range(trials):
            mats = graph.random_variable_matrices(size, rng)
            mods = graph.vgamma_variables(mats)
            observed.append(int(np.unique(mods).size))
        bound = expansion_lower_bound(size, graph.q)
        rows.append(
            {
                "size": size,
                "bound": bound,
                "min": min(observed),
                "mean": float(np.mean(observed)),
                "min_over_bound": min(observed) / bound,
            }
        )
    return rows


def greedy_contracting_set(
    graph: MemoryGraph, size: int, seed_module: int = 0
) -> list[Mat]:
    """Greedy adversarial search for a low-expansion set.

    Starting from the variables of one module, repeatedly add the
    candidate variable (from the neighbourhoods of already-covered
    modules) that adds the fewest new modules.  Validation-scale only
    (cost ~ size * |candidates| * (q+1)).
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    chosen: list[Mat] = []
    chosen_keys: set[int] = set()
    covered: set[int] = set()
    candidates: dict[int, Mat] = {}

    def add_candidates_from_module(u: int) -> None:
        for mat in graph.gamma_module(u):
            key = graph.variables.key(mat)
            if key not in chosen_keys and key not in candidates:
                candidates[key] = graph.variables.unkey(key)

    add_candidates_from_module(seed_module)
    while len(chosen) < size:
        if not candidates:
            raise ValueError(f"ran out of candidates at |S| = {len(chosen)}")
        best_key, best_mat, best_new = None, None, None
        for key, mat in candidates.items():
            new = sum(1 for u in graph.gamma_variable(mat) if u not in covered)
            if best_new is None or new < best_new:
                best_key, best_mat, best_new = key, mat, new
                if new == 0:
                    break
        chosen.append(best_mat)
        chosen_keys.add(best_key)
        del candidates[best_key]
        for u in graph.gamma_variable(best_mat):
            if u not in covered:
                covered.add(u)
                add_candidates_from_module(u)
    return chosen


def subgroup_tight_set(graph: MemoryGraph, d: int) -> list[Mat]:
    """The Theorem-4 tightness witness for composite ``n``: all variable
    cosets inside the embedded subgroup ``PGL2(q^d)``, for ``d | n``,
    ``1 < d < n``.

    ``|S| = |PGL2(q^d)| / |PGL2(q)|`` and ``Gamma(S)`` is (a copy of) the
    module space of the (q, d) graph, of size ``(q^d+1)(q^d-1)/(q-1) =
    Theta(|S|^{2/3} q)``.
    """
    n, q, k = graph.n, graph.q, graph.k
    if n % d != 0 or not 1 < d < n:
        raise ValueError(f"d={d} must be a proper nontrivial divisor of n={n}")
    Fd = GF2m.get(k * d)
    emb = FieldEmbedding(Fd, graph.F)
    # Vectorized enumeration of PGL2(q^d): shapes (a, b, c, 1) with
    # det != 0 and (a, b, 1, 0) with b != 0, entries embedded into F.
    kd = Fd.order
    grid = np.arange(kd, dtype=np.int64)
    a3, b3, c3 = (x.reshape(-1) for x in np.meshgrid(grid, grid, grid, indexing="ij"))
    det = Fd.vadd(a3, Fd.vmul(b3, c3))  # det of (a, b; c, 1)
    ok = det != 0
    a_all = np.concatenate([a3[ok], np.repeat(grid, kd - 1)])
    b_all = np.concatenate([b3[ok], np.tile(grid[1:], kd)])
    c_all = np.concatenate([c3[ok], np.ones((kd - 1) * kd, dtype=np.int64)])
    d_all = np.concatenate(
        [np.ones(int(ok.sum()), dtype=np.int64), np.zeros((kd - 1) * kd, dtype=np.int64)]
    )
    mats = (
        emb.vembed(a_all),
        emb.vembed(b_all),
        emb.vembed(c_all),
        emb.vembed(d_all),
    )
    keys = np.unique(graph.vkeys(mats))
    out = [graph.variables.unkey(int(key)) for key in keys]
    qd = q**d
    expected = ((qd + 1) * qd * (qd - 1)) // ((q + 1) * q * (q - 1))
    if len(out) != expected:
        raise AssertionError(
            f"tight set has {len(out)} cosets, expected {expected}"
        )
    return out
