"""The paper's primary contribution.

* :mod:`repro.core.graph` -- the memory-organization graph ``G(V, U; E)``
  over cosets of PGL2(q^n) (Section 2), with algebraic neighbor maps
  (Lemmas 1-3) and vectorized copy->module kernels;
* :mod:`repro.core.expansion` -- expansion analysis (Theorems 2-5),
  tight-set constructions, adversarial search;
* :mod:`repro.core.addressing` -- the Section-4 implementation layer:
  explicit bijections between indices and cosets, O(log N) rank/unrank,
  physical copy slots (Lemma 4), field-operation accounting;
* :mod:`repro.core.protocol` -- the Section-3 clustered majority access
  protocol on the MPC, with iteration counting and timestamp semantics;
* :mod:`repro.core.scheme` -- :class:`PPScheme`, the user-facing facade;
* :mod:`repro.core.bounds` -- the paper's bound formulas (Theorems 1, 6,
  7, recurrence (2), log*).
"""

from repro.core.graph import MemoryGraph
from repro.core.scheme import PPScheme
from repro.core.addressing import AddressLayer, OpCounter
from repro.core.protocol import AccessResult, run_access_protocol

__all__ = [
    "MemoryGraph",
    "PPScheme",
    "AddressLayer",
    "OpCounter",
    "AccessResult",
    "run_access_protocol",
]
